//! Fault masking and repair: a Byzantine replica corrupts its replies, a
//! software error corrupts another replica's concrete state — the service
//! keeps answering correctly, and proactive recovery repairs the damaged
//! replica from the group's abstract state (paper §2.2: abstraction "may
//! improve availability by hiding corrupt concrete states").
//!
//! Run with: `cargo run --example fault_masking`

use base::demo::{KvWrapper, TinyKv};
use base::{BaseClient, BaseReplica, BaseService, ByzMode, Config};
use base_simnet::{NodeId, SimDuration, Simulation};

type KvReplica = BaseReplica<KvWrapper>;

fn main() {
    let mut cfg = Config::new(4);
    cfg.checkpoint_interval = 8;
    cfg.recovery_period = Some(SimDuration::from_secs(8));
    cfg.reboot_time = SimDuration::from_millis(200);

    let mut sim = Simulation::new(555);
    let dir = base_crypto::KeyDirectory::generate(5, 555);
    for i in 0..4 {
        let keys = base_crypto::NodeKeys::new(dir.clone(), i);
        sim.add_node(Box::new(KvReplica::new(
            cfg.clone(),
            keys,
            BaseService::new(KvWrapper::new(TinyKv::default())),
        )));
    }
    let keys = base_crypto::NodeKeys::new(dir, 4);
    let client = sim.add_node(Box::new(BaseClient::new(cfg, keys)));

    // Store some data.
    {
        let c = sim.actor_as_mut::<BaseClient>(client).unwrap();
        for i in 0..10 {
            c.invoke(format!("put account{i} balance-{i}").into_bytes(), false);
        }
    }
    sim.run_for(SimDuration::from_secs(2));

    // Fault 1: replica 1 turns Byzantine and corrupts every reply.
    sim.actor_as_mut::<KvReplica>(NodeId(1)).unwrap().set_byzantine(ByzMode::CorruptReplies);
    println!("replica 1 is now Byzantine (corrupts all replies)");

    // Fault 2: a software error silently corrupts account3's value inside
    // replica 2's concrete state.
    let corrupted = sim
        .actor_as_mut::<KvReplica>(NodeId(2))
        .unwrap()
        .service_mut()
        .wrapper_mut()
        .kv_mut()
        .corrupt("account3");
    assert!(corrupted);
    println!("replica 2's concrete state is now corrupt (account3 damaged)");

    // The client still reads correct data: f+1 = 2 correct matching
    // replies out-vote the Byzantine one, and the quorum never needs the
    // corrupt value.
    {
        let c = sim.actor_as_mut::<BaseClient>(client).unwrap();
        c.invoke(b"get account3".to_vec(), false);
    }
    sim.run_for(SimDuration::from_secs(2));
    let c = sim.actor_as::<BaseClient>(client).unwrap();
    let answer = &c.completed.last().unwrap().1;
    println!("get account3 -> {:?} (both faults masked)", String::from_utf8_lossy(answer));
    assert_eq!(answer, b"balance-3");

    // Replica 2's next proactive recovery restarts its implementation from
    // a clean state and reinstalls the abstract state fetched from the
    // group — the corruption disappears without anyone diagnosing it.
    sim.run_for(SimDuration::from_secs(10));
    let healed = sim.actor_as::<KvReplica>(NodeId(2)).unwrap();
    assert!(healed.stats.recoveries >= 1);
    assert_eq!(
        healed.service().wrapper().kv().get("account3"),
        Some(&b"balance-3"[..]),
        "recovery must repair the corruption"
    );
    println!(
        "after {} proactive recovery(ies), replica 2's concrete state is repaired ✓",
        healed.stats.recoveries
    );
}
