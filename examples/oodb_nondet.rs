//! The abstract's second example: an object-oriented database where every
//! replica runs the *same, non-deterministic* implementation — random heap
//! addresses and a relocating garbage collector that runs at different
//! moments on each replica.
//!
//! Run with: `cargo run --example oodb_nondet`

use base::{BaseClient, BaseReplica, BaseService, Config};
use base_oodb::{ObjStore, Oo7Workload, OodbWrapper};
use base_oodb::wrapper::OodbReply;
use base_pbft::Service as _;
use base_simnet::{NodeId, SimDuration, Simulation};
use rand::SeedableRng;

type DbReplica = BaseReplica<OodbWrapper>;

fn main() {
    let mut cfg = Config::new(4);
    cfg.checkpoint_interval = 32;
    let mut sim = Simulation::new(1234);
    let dir = base_crypto::KeyDirectory::generate(5, 1234);
    for i in 0..4 {
        let keys = base_crypto::NodeKeys::new(dir.clone(), i);
        // Same implementation, different seed: different addresses,
        // different GC schedule.
        let mut seed_rng = rand::rngs::StdRng::seed_from_u64(500 + i as u64);
        let svc = BaseService::new(OodbWrapper::new(ObjStore::new(&mut seed_rng)));
        sim.add_node(Box::new(DbReplica::new(cfg.clone(), keys, svc)));
    }
    let keys = base_crypto::NodeKeys::new(dir, 4);
    let client = sim.add_node(Box::new(BaseClient::new(cfg, keys)));

    // Build an OO7-style module hierarchy and traverse it.
    let wl = Oo7Workload::small();
    let ops = wl.build_ops();
    println!(
        "OO7-lite: {} composites x {} atomic parts = {} objects, {} operations",
        wl.composites,
        wl.atomics_per_composite,
        wl.total_objects(),
        ops.len()
    );
    {
        let c = sim.actor_as_mut::<BaseClient>(client).unwrap();
        for (op, ro) in &ops {
            c.invoke(op.clone(), *ro);
        }
    }
    sim.run_for(SimDuration::from_secs(30));

    let c = sim.actor_as::<BaseClient>(client).unwrap();
    assert_eq!(c.completed.len(), ops.len(), "workload incomplete");
    let last_traversal = c
        .completed
        .iter()
        .rev()
        .find_map(|(_, r)| match OodbReply::from_bytes(r) {
            Some(OodbReply::Count(n)) => Some(n),
            _ => None,
        })
        .expect("at least one traversal");
    println!("final T1 traversal visited {last_traversal} objects");
    assert_eq!(last_traversal, u64::from(wl.total_objects()));

    // The replicas' collectors ran on their own schedules...
    let collections: Vec<u64> = (0..4)
        .map(|i| {
            sim.actor_as::<DbReplica>(NodeId(i)).unwrap().service().wrapper().store().collections
        })
        .collect();
    println!("per-replica GC collections: {collections:?} (independent schedules)");

    // ...so their concrete heaps diverge, yet the abstract states agree.
    let roots: Vec<String> = (0..4)
        .map(|i| {
            sim.actor_as::<DbReplica>(NodeId(i))
                .unwrap()
                .service()
                .current_tree()
                .root_digest()
                .short_hex()
        })
        .collect();
    println!("abstract state roots: {roots:?}");
    assert!(roots.iter().all(|r| *r == roots[0]));
    println!("same non-deterministic implementation, consistent replication ✓");
}
