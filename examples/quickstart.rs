//! Quickstart: replicate a non-deterministic key-value store with BASE.
//!
//! This walks the whole Figure-1 interface on the demo service:
//! `invoke` on the client side; `execute`, `modify`, `get_obj` and
//! `put_objs` (exercised through checkpointing) on the replica side.
//!
//! Run with: `cargo run --example quickstart`

use base::demo::{KvWrapper, TinyKv};
use base::{BaseClient, BaseReplica, BaseService, Config};
use base_pbft::Service as _;
use base_simnet::{NodeId, SimDuration, Simulation};

type KvReplica = BaseReplica<KvWrapper>;

fn main() {
    // A 4-replica group tolerates f = 1 Byzantine fault.
    let mut cfg = Config::new(4);
    cfg.checkpoint_interval = 8;

    let mut sim = Simulation::new(2026);
    let dir = base_crypto::KeyDirectory::generate(5, 2026);

    // Each replica wraps its own TinyKv instance. TinyKv is deliberately
    // non-deterministic (random internal ids, local-clock timestamps), so
    // classic BFT could not replicate it — the conformance wrapper hides
    // the divergence behind the common abstract specification.
    for i in 0..4 {
        let keys = base_crypto::NodeKeys::new(dir.clone(), i);
        let service = BaseService::new(KvWrapper::new(TinyKv::default()));
        sim.add_node(Box::new(KvReplica::new(cfg.clone(), keys, service)));
        // Give every replica a different local clock.
        sim.config_mut().set_clock_skew(NodeId(i), SimDuration::from_millis(11 * i as u64));
    }
    let keys = base_crypto::NodeKeys::new(dir, 4);
    let client = sim.add_node(Box::new(BaseClient::new(cfg, keys)));

    // invoke() — Figure 1's client entry point. Writes run through the
    // full three-phase protocol; the final read takes the read-only path
    // (2f+1 matching replies).
    {
        let c = sim.actor_as_mut::<BaseClient>(client).unwrap();
        for i in 0..12 {
            c.invoke(format!("put language{i} rust").into_bytes(), false);
        }
        c.invoke(b"del language3".to_vec(), false);
        c.invoke(b"get language7".to_vec(), true);
        c.invoke(b"mtime language7".to_vec(), true);
    }
    sim.run_for(SimDuration::from_secs(2));

    let c = sim.actor_as::<BaseClient>(client).unwrap();
    println!("completed {} operations", c.completed.len());
    let get = &c.completed[13].1;
    let mtime = &c.completed[14].1;
    println!("get language7  -> {}", String::from_utf8_lossy(get));
    println!("mtime language7-> {} (agreed timestamp, identical at every replica)",
        String::from_utf8_lossy(mtime));

    // Every replica's *concrete* state diverged (different ids/clocks),
    // but the *abstract* states are identical — compare the digest trees.
    let roots: Vec<String> = (0..4)
        .map(|i| {
            sim.actor_as::<KvReplica>(NodeId(i))
                .unwrap()
                .service()
                .current_tree()
                .root_digest()
                .short_hex()
        })
        .collect();
    println!("abstract state roots: {roots:?}");
    assert!(roots.iter().all(|r| *r == roots[0]));
    println!("all replicas agree on the abstract state ✓");
}
