//! The paper's worked example (Section 3, Figure 2): a replicated NFS
//! service where every replica runs a *different* off-the-shelf file-system
//! implementation.
//!
//! The pipeline is exactly Figure 2: a workload (standing in for the
//! application + kernel NFS client) feeds the relay, the relay invokes the
//! replication library, each replica's conformance wrapper drives its
//! unmodified file-system implementation.
//!
//! Run with: `cargo run --example replicated_nfs`

use base::{BaseReplica, BaseService};
use base_nfs::ops::{NfsOp, NfsReply};
use base_nfs::relay::{run_to_completion, RelayActor, ScriptDriver};
use base_nfs::spec::Oid;
use base_nfs::{BtreeFs, FlatFs, InodeFs, LogFs, NfsWrapper};
use base_pbft::{Config, Service as _};
use base_simnet::{SimDuration, Simulation};
use rand::SeedableRng;

const CAP: u64 = 1024;

fn main() {
    println!("architecture (paper Figure 2):");
    println!("  workload -> kernel-NFS-client stand-in -> relay");
    println!("  relay -> [replication library] -> 4 replicas:");
    println!("    replica 0: conformance wrapper -> inode-fs (ext2-flavoured)");
    println!("    replica 1: conformance wrapper -> flat-fs  (path-table)");
    println!("    replica 2: conformance wrapper -> log-fs   (log-structured)");
    println!("    replica 3: conformance wrapper -> btree-fs (BTree)\n");

    let mut cfg = Config::new(4);
    cfg.checkpoint_interval = 32;
    let mut sim = Simulation::new(7);
    let dir = base_crypto::KeyDirectory::generate(5, 7);
    let mut rng = rand::rngs::StdRng::seed_from_u64(7);

    let keys = |i| base_crypto::NodeKeys::new(dir.clone(), i);
    let n0 = sim.add_node(Box::new(BaseReplica::new(
        cfg.clone(),
        keys(0),
        BaseService::new(NfsWrapper::with_capacity(InodeFs::new(0x11, &mut rng), CAP)),
    )));
    let n1 = sim.add_node(Box::new(BaseReplica::new(
        cfg.clone(),
        keys(1),
        BaseService::new(NfsWrapper::with_capacity(FlatFs::new(0x44, &mut rng), CAP)),
    )));
    let n2 = sim.add_node(Box::new(BaseReplica::new(
        cfg.clone(),
        keys(2),
        BaseService::new(NfsWrapper::with_capacity(LogFs::new(0x22, &mut rng), CAP)),
    )));
    let n3 = sim.add_node(Box::new(BaseReplica::new(
        cfg.clone(),
        keys(3),
        BaseService::new(NfsWrapper::with_capacity(BtreeFs::new(0x33, &mut rng), CAP)),
    )));
    // Divergent local clocks, like machines in a real machine room.
    for (i, n) in [n0, n1, n2, n3].into_iter().enumerate() {
        sim.config_mut().set_clock_skew(n, SimDuration::from_millis(17 * i as u64));
    }

    // A small project tree: oids are assigned deterministically, so the
    // script can name handles before the replies arrive.
    let root = Oid::ROOT;
    let src = Oid { index: 1, gen: 1 };
    let main_rs = Oid { index: 2, gen: 1 };
    let lib_rs = Oid { index: 3, gen: 1 };
    let script = vec![
        NfsOp::Mkdir { dir: root, name: "src".into(), mode: 0o755 },
        NfsOp::Create { dir: src, name: "main.rs".into(), mode: 0o644 },
        NfsOp::Write { fh: main_rs, offset: 0, data: b"fn main() { lib::run() }\n".to_vec() },
        NfsOp::Create { dir: src, name: "lib.rs".into(), mode: 0o644 },
        NfsOp::Write { fh: lib_rs, offset: 0, data: b"pub fn run() {}\n".to_vec() },
        NfsOp::Symlink { dir: root, name: "entry".into(), target: "src/main.rs".into() },
        NfsOp::Readdir { dir: src },
        NfsOp::Read { fh: main_rs, offset: 0, count: 1024 },
        NfsOp::Getattr { fh: lib_rs },
        NfsOp::Rename {
            from_dir: src,
            from_name: "lib.rs".into(),
            to_dir: root,
            to_name: "lib.rs".into(),
        },
        NfsOp::Readdir { dir: root },
    ];
    let relay_keys = base_crypto::NodeKeys::new(dir, 4);
    let relay = sim.add_node(Box::new(RelayActor::new(cfg, relay_keys, ScriptDriver::new(script))));

    let ok = run_to_completion(
        &mut sim,
        |s| s.actor_as::<RelayActor<ScriptDriver>>(relay).unwrap().done(),
        SimDuration::from_secs(30),
    );
    assert!(ok, "workload did not finish");

    let actor = sim.actor_as::<RelayActor<ScriptDriver>>(relay).unwrap();
    println!("ran {} NFS operations, {} errors", actor.stats.ops, actor.stats.errors);
    for (op_idx, label) in [(6usize, "readdir src"), (7, "read main.rs"), (10, "readdir /")] {
        match &actor.driver().replies[op_idx] {
            NfsReply::Entries(es) => {
                let names: Vec<&str> = es.iter().map(|(n, _)| n.as_str()).collect();
                println!("  {label:14} -> {names:?}");
            }
            NfsReply::Data(d) => {
                println!("  {label:14} -> {:?}", String::from_utf8_lossy(d).trim_end());
            }
            other => println!("  {label:14} -> {other:?}"),
        }
    }

    // Four different file systems, one abstract state.
    let r0 = sim
        .actor_as::<BaseReplica<NfsWrapper<InodeFs>>>(n0)
        .unwrap()
        .service()
        .current_tree()
        .root_digest();
    let r1 = sim
        .actor_as::<BaseReplica<NfsWrapper<FlatFs>>>(n1)
        .unwrap()
        .service()
        .current_tree()
        .root_digest();
    let r2 = sim
        .actor_as::<BaseReplica<NfsWrapper<LogFs>>>(n2)
        .unwrap()
        .service()
        .current_tree()
        .root_digest();
    let r3 = sim
        .actor_as::<BaseReplica<NfsWrapper<BtreeFs>>>(n3)
        .unwrap()
        .service()
        .current_tree()
        .root_digest();
    assert_eq!(r0, r1);
    assert_eq!(r0, r2);
    assert_eq!(r0, r3);
    println!("\nabstract state root at every replica: {}", r0.short_hex());
    println!("four distinct implementations, one replicated file system ✓");
}
