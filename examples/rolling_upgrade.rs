//! On-line software replacement — the upgrade/diversification story the
//! paper's abstraction enables (§1: BASE "reduces the probability of common
//! mode failures" by letting replicas "run different implementations",
//! and replicas can be *repaired or replaced* without stopping the
//! service).
//!
//! A replicated NFS service starts homogeneous: all four replicas run the
//! same vendor file system, which ships a latent bug — a common-mode
//! failure waiting to happen. The operator then performs a rolling
//! diversification: one machine at a time is reinstalled with a different
//! implementation. Each replacement starts from an empty concrete state
//! and rebuilds itself from the group's *abstract* state through its own
//! inverse abstraction function, while the service keeps answering. At the
//! end, the bug is triggered — and the now-heterogeneous group masks it.
//!
//! Run with: `cargo run --example rolling_upgrade`

use base::{BaseClient, BaseReplica, BaseService};
use base_nfs::ops::{NfsOp, NfsReply};
use base_nfs::spec::Oid;
use base_nfs::{BtreeFs, FlatFs, InodeFs, LogFs, NfsWrapper};
use base_pbft::Config;
use base_simnet::{NodeId, SimDuration, Simulation};
use rand::SeedableRng;

const CAP: u64 = 1024;

type InodeReplica = BaseReplica<NfsWrapper<InodeFs>>;
type FlatReplica = BaseReplica<NfsWrapper<FlatFs>>;
type LogReplica = BaseReplica<NfsWrapper<LogFs>>;
type BtreeReplica = BaseReplica<NfsWrapper<BtreeFs>>;

fn invoke(sim: &mut Simulation, client: NodeId, op: NfsOp) {
    sim.actor_as_mut::<BaseClient>(client).unwrap().invoke(op.to_bytes(), false);
}

fn last_reply(sim: &Simulation, client: NodeId) -> NfsReply {
    let done = &sim.actor_as::<BaseClient>(client).unwrap().completed;
    NfsReply::from_bytes(&done.last().expect("an op completed").1).expect("reply decodes")
}

fn completed(sim: &Simulation, client: NodeId) -> usize {
    sim.actor_as::<BaseClient>(client).unwrap().completed.len()
}

/// The abstract encoding of object `index` at each replica, read through
/// the four concrete types.
fn abstract_obj(sim: &mut Simulation, index: u64) -> Vec<Option<Vec<u8>>> {
    let mut out = Vec::new();
    for i in 0..4usize {
        let node = NodeId(i);
        let obj = if let Some(r) = sim.actor_as_mut::<InodeReplica>(node) {
            base::Wrapper::get_obj(r.service_mut().wrapper_mut(), index)
        } else if let Some(r) = sim.actor_as_mut::<FlatReplica>(node) {
            base::Wrapper::get_obj(r.service_mut().wrapper_mut(), index)
        } else if let Some(r) = sim.actor_as_mut::<LogReplica>(node) {
            base::Wrapper::get_obj(r.service_mut().wrapper_mut(), index)
        } else if let Some(r) = sim.actor_as_mut::<BtreeReplica>(node) {
            base::Wrapper::get_obj(r.service_mut().wrapper_mut(), index)
        } else {
            panic!("unknown replica type at node {i}");
        };
        out.push(obj);
    }
    out
}

fn main() {
    let mut cfg = Config::new(4);
    cfg.checkpoint_interval = 16;
    let mut sim = Simulation::new(2026);
    let dir = base_crypto::KeyDirectory::generate(5, 2026);
    let mut rng = rand::rngs::StdRng::seed_from_u64(2026);

    // Day 0: a homogeneous deployment — all four machines run the same
    // vendor release (with a latent bug nobody knows about yet).
    for i in 0..4 {
        let keys = base_crypto::NodeKeys::new(dir.clone(), i);
        sim.add_node(Box::new(InodeReplica::new(
            cfg.clone(),
            keys,
            BaseService::new(NfsWrapper::with_capacity(InodeFs::new(0x50 + i as u64, &mut rng), CAP)),
        )));
    }
    let client = sim.add_node(Box::new(BaseClient::new(
        cfg.clone(),
        base_crypto::NodeKeys::new(dir.clone(), 4),
    )));
    println!("day 0: homogeneous group — 4x inode-fs (same vendor, same latent bug)\n");

    // Build up some state.
    let root = Oid::ROOT;
    let reports = Oid { index: 1, gen: 1 };
    let q1 = Oid { index: 2, gen: 1 };
    invoke(&mut sim, client, NfsOp::Mkdir { dir: root, name: "reports".into(), mode: 0o755 });
    invoke(&mut sim, client, NfsOp::Create { dir: reports, name: "q1.txt".into(), mode: 0o644 });
    invoke(
        &mut sim,
        client,
        NfsOp::Write { fh: q1, offset: 0, data: b"Q1 revenue: up and to the right\n".to_vec() },
    );
    sim.run_for(SimDuration::from_secs(2));
    assert_eq!(completed(&sim, client), 3);
    println!("wrote /reports/q1.txt through the replicated service");

    // Rolling diversification: reinstall machines 1, 2, 3 one at a time,
    // each with a different implementation. The service never stops.
    let upgrades: [(usize, &str); 3] =
        [(1, "flat-fs (path-table)"), (2, "log-fs (log-structured)"), (3, "btree-fs (BTree)")];
    for (step, (node, label)) in upgrades.into_iter().enumerate() {
        println!("\nupgrade {}: reinstalling machine {node} with {label}", step + 1);
        let keys = base_crypto::NodeKeys::new(dir.clone(), node);
        let seed = 0x70 + node as u64;
        let actor: Box<dyn base_simnet::Actor> = match node {
            1 => Box::new(FlatReplica::new(
                cfg.clone(),
                keys,
                BaseService::new(NfsWrapper::with_capacity(FlatFs::new(seed, &mut rng), CAP)),
            )),
            2 => Box::new(LogReplica::new(
                cfg.clone(),
                keys,
                BaseService::new(NfsWrapper::with_capacity(LogFs::new(seed, &mut rng), CAP)),
            )),
            _ => Box::new(BtreeReplica::new(
                cfg.clone(),
                keys,
                BaseService::new(NfsWrapper::with_capacity(BtreeFs::new(seed, &mut rng), CAP)),
            )),
        };
        sim.replace_node(NodeId(node), actor);

        // Traffic continues while the newcomer state-transfers: the
        // abstract objects it fetches are installed through *its own*
        // put_objs into a completely different on-disk layout.
        let before = completed(&sim, client);
        invoke(
            &mut sim,
            client,
            NfsOp::Write {
                fh: q1,
                offset: 32 + 28 * step as u64,
                data: format!("audit line {} (during upgrade)\n", step + 1).into_bytes(),
            },
        );
        invoke(&mut sim, client, NfsOp::Read { fh: q1, offset: 0, count: 4096 });
        sim.run_for(SimDuration::from_secs(30));
        assert_eq!(completed(&sim, client), before + 2, "service stalled during upgrade");
        println!("  service stayed live ({} ops completed so far)", completed(&sim, client));
    }

    // All four replicas now expose identical abstract state from four
    // different concrete representations.
    let objs = abstract_obj(&mut sim, q1.index as u64);
    assert!(objs[0].is_some(), "q1.txt must exist");
    assert!(objs.iter().all(|o| o == &objs[0]), "abstract states diverged");
    println!("\nall 4 implementations expose byte-identical abstract state");
    println!("  (inode table / path table / log / BTree underneath)");

    // The latent bug finally fires on the one remaining original machine —
    // but it is now a minority of one, and the group masks it.
    sim.actor_as_mut::<InodeReplica>(NodeId(0))
        .unwrap()
        .service_mut()
        .wrapper_mut()
        .server_mut()
        .latent_bug = true;
    let mut payload = base_nfs::LATENT_BUG_TRIGGER.to_vec();
    payload.extend_from_slice(b" quarterly numbers");
    invoke(&mut sim, client, NfsOp::Create { dir: reports, name: "q2.txt".into(), mode: 0o644 });
    sim.run_for(SimDuration::from_secs(2));
    let q2 = Oid { index: 3, gen: 1 };
    invoke(&mut sim, client, NfsOp::Write { fh: q2, offset: 0, data: payload.clone() });
    invoke(&mut sim, client, NfsOp::Read { fh: q2, offset: 0, count: 4096 });
    sim.run_for(SimDuration::from_secs(5));
    match last_reply(&sim, client) {
        NfsReply::Data(data) => {
            assert_eq!(data, payload, "the replicated service returned corrupt data!");
            println!("\nlatent bug triggered on machine 0 — and MASKED:");
            println!("  the trigger input corrupts inode-fs, but the three upgraded");
            println!("  replicas out-vote it; the client reads correct data.");
        }
        other => panic!("unexpected reply {other:?}"),
    }
    println!(
        "\nbefore the upgrade this input was a common-mode failure: four identical\n\
         implementations would all have corrupted the file and agreed on the\n\
         corruption. Abstraction made the diversity — and the live upgrade — possible."
    );
}
