//! Software rejuvenation (paper §2.2): staggered proactive recoveries keep
//! the service available while every replica is periodically rebooted from
//! a clean concrete state and brought back up to date from the group's
//! abstract state — reclaiming leaked storage along the way.
//!
//! Run with: `cargo run --example proactive_recovery`

use base::demo::{KvWrapper, TinyKv};
use base::{BaseClient, BaseReplica, BaseService, Config};
use base_simnet::{NodeId, SimDuration, Simulation};

type KvReplica = BaseReplica<KvWrapper>;

fn footprints(sim: &Simulation) -> Vec<(usize, usize)> {
    (0..4)
        .map(|i| {
            let kv = sim.actor_as::<KvReplica>(NodeId(i)).unwrap().service().wrapper().kv();
            (kv.len(), kv.leaked())
        })
        .collect()
}

fn main() {
    let mut cfg = Config::new(4);
    cfg.checkpoint_interval = 16;
    // Rejuvenate each replica every 10 seconds, staggered; reboots take
    // 300 ms of downtime each.
    cfg.recovery_period = Some(SimDuration::from_secs(10));
    cfg.reboot_time = SimDuration::from_millis(300);

    let mut sim = Simulation::new(99);
    let dir = base_crypto::KeyDirectory::generate(5, 99);
    for i in 0..4 {
        let keys = base_crypto::NodeKeys::new(dir.clone(), i);
        let mut kv = TinyKv::default();
        kv.leaky = true; // Deletions leak storage — the "aging" bug.
        sim.add_node(Box::new(KvReplica::new(cfg.clone(), keys, BaseService::new(KvWrapper::new(kv)))));
    }
    let keys = base_crypto::NodeKeys::new(dir, 4);
    let client = sim.add_node(Box::new(BaseClient::new(cfg, keys)));

    // Churn: create and delete temporary keys (leaking on every delete),
    // while keeping a couple of long-lived keys.
    {
        let c = sim.actor_as_mut::<BaseClient>(client).unwrap();
        c.invoke(b"put config production".to_vec(), false);
        for i in 0..60 {
            c.invoke(format!("put scratch{i} data").into_bytes(), false);
            c.invoke(format!("del scratch{i}").into_bytes(), false);
        }
        c.invoke(b"put state healthy".to_vec(), false);
    }
    sim.run_for(SimDuration::from_secs(3));
    println!("after the churn, before any recovery:");
    for (i, (live, leaked)) in footprints(&sim).iter().enumerate() {
        println!("  replica {i}: {live} live entries, {leaked} leaked");
    }

    // One full rotation of staggered recoveries.
    sim.run_for(SimDuration::from_secs(12));
    println!("\nafter one proactive-recovery rotation (staggered clean reboots):");
    for (i, (live, leaked)) in footprints(&sim).iter().enumerate() {
        let r = sim.actor_as::<KvReplica>(NodeId(i)).unwrap();
        println!(
            "  replica {i}: {live} live entries, {leaked} leaked, {} recoveries, last took {} ms",
            r.stats.recoveries,
            r.last_recovery_ns / 1_000_000
        );
    }

    // The service stayed available and kept its state throughout.
    {
        let c = sim.actor_as_mut::<BaseClient>(client).unwrap();
        c.invoke(b"get config".to_vec(), true);
        c.invoke(b"get state".to_vec(), true);
    }
    sim.run_for(SimDuration::from_secs(1));
    let c = sim.actor_as::<BaseClient>(client).unwrap();
    let n = c.completed.len();
    println!(
        "\nget config -> {:?}, get state -> {:?}",
        String::from_utf8_lossy(&c.completed[n - 2].1),
        String::from_utf8_lossy(&c.completed[n - 1].1)
    );
    assert_eq!(c.completed[n - 2].1, b"production");
    assert_eq!(c.completed[n - 1].1, b"healthy");
    println!("state survived rejuvenation via the abstract state ✓");
}
