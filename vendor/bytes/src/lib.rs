//! Minimal offline stand-in for the `bytes` crate. The workspace declares
//! the dependency but no member currently uses it; this keeps dependency
//! resolution working without network access to crates.io.

/// Immutable byte buffer (thin wrapper over `Vec<u8>`).
#[derive(Clone, Debug, Default, PartialEq, Eq, Hash)]
pub struct Bytes(Vec<u8>);

impl Bytes {
    pub fn new() -> Self {
        Self(Vec::new())
    }

    pub fn copy_from_slice(data: &[u8]) -> Self {
        Self(data.to_vec())
    }

    pub fn len(&self) -> usize {
        self.0.len()
    }

    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }
}

impl std::ops::Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Self(v)
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Self(v.to_vec())
    }
}

/// Mutable byte buffer (thin wrapper over `Vec<u8>`).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BytesMut(Vec<u8>);

impl BytesMut {
    pub fn new() -> Self {
        Self(Vec::new())
    }

    pub fn with_capacity(cap: usize) -> Self {
        Self(Vec::with_capacity(cap))
    }

    pub fn extend_from_slice(&mut self, data: &[u8]) {
        self.0.extend_from_slice(data);
    }

    pub fn freeze(self) -> Bytes {
        Bytes(self.0)
    }

    pub fn len(&self) -> usize {
        self.0.len()
    }

    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }
}

impl std::ops::Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.0
    }
}
