//! Minimal offline stand-in for the `criterion` crate (0.5 API subset).
//!
//! Implements just enough — `Criterion`, `benchmark_group`, `bench_function`,
//! `bench_with_input`, `BenchmarkId`, `Throughput`, `black_box`, and the
//! `criterion_group!`/`criterion_main!` macros — for the workspace's bench
//! targets to compile and run without network access to crates.io. Instead of
//! statistical sampling it times a small fixed number of iterations and
//! prints the mean, which is adequate for the coarse relative comparisons the
//! experiment tables make.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

const ITERS: u32 = 3;

#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher::default();
        f(&mut b);
        b.report(name);
        self
    }

    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup {
        BenchmarkGroup { name: name.to_string() }
    }
}

pub struct BenchmarkGroup {
    name: String,
}

impl BenchmarkGroup {
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: F,
    ) -> &mut Self {
        let id = id.into();
        let mut b = Bencher::default();
        f(&mut b);
        b.report(&format!("{}/{}", self.name, id.0));
        self
    }

    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher::default();
        f(&mut b, input);
        b.report(&format!("{}/{}", self.name, id.0));
        self
    }

    pub fn finish(self) {}
}

pub struct BenchmarkId(String);

impl BenchmarkId {
    pub fn new(name: impl Display, param: impl Display) -> Self {
        Self(format!("{name}/{param}"))
    }

    pub fn from_parameter(param: impl Display) -> Self {
        Self(param.to_string())
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        Self(s.to_string())
    }
}

pub enum Throughput {
    Bytes(u64),
    BytesDecimal(u64),
    Elements(u64),
}

#[derive(Default)]
pub struct Bencher {
    elapsed: Option<Duration>,
    iters: u32,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..ITERS {
            black_box(f());
        }
        self.elapsed = Some(start.elapsed());
        self.iters = ITERS;
    }

    fn report(&self, name: &str) {
        match self.elapsed {
            Some(d) => {
                let mean = d / self.iters.max(1);
                println!("bench {name:<40} {mean:>12.2?}/iter ({}x)", self.iters);
            }
            None => println!("bench {name:<40} (no measurement)"),
        }
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
    (name = $group:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        fn $group() {
            let _ = $cfg;
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
