//! Minimal offline stand-in for the `rand` crate (0.8 API subset).
//!
//! The build container has no network access and no vendored registry, so
//! the workspace pins this path crate instead of crates.io `rand`. It
//! implements exactly the surface the repo uses — `rngs::StdRng`,
//! `SeedableRng::{seed_from_u64, from_seed}`, and the `Rng` extension
//! methods `gen`, `gen_range`, `gen_bool`, `fill_bytes` — with a
//! deterministic xoshiro256** generator. The numeric streams differ from
//! upstream `rand`, which is fine: every consumer in this repo only relies
//! on *reproducibility* (same seed → same stream), never on matching
//! upstream values.

pub mod rngs {
    /// Deterministic seeded generator (xoshiro256** core).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        pub(crate) s: [u64; 4],
    }

    impl StdRng {
        pub(crate) fn next(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Splitmix64 step, used to expand seeds into full generator state.
fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let word = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&word[..chunk.len()]);
        }
    }
}

impl RngCore for rngs::StdRng {
    fn next_u64(&mut self) -> u64 {
        self.next()
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

pub trait SeedableRng: Sized {
    type Seed: AsMut<[u8]> + Default;

    fn from_seed(seed: Self::Seed) -> Self;

    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = state;
        for b in seed.as_mut() {
            // One splitmix step per byte keeps short seeds well mixed.
            *b = (splitmix(&mut sm) >> 56) as u8;
        }
        Self::from_seed(seed)
    }
}

impl SeedableRng for rngs::StdRng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut s = [0u64; 4];
        for (i, word) in s.iter_mut().enumerate() {
            let mut w = [0u8; 8];
            w.copy_from_slice(&seed[i * 8..i * 8 + 8]);
            *word = u64::from_le_bytes(w);
        }
        // All-zero state is the one fixed point of xoshiro; avoid it.
        if s == [0; 4] {
            s = [0x9e3779b97f4a7c15, 0x6a09e667f3bcc909, 0xbb67ae8584caa73b, 0x3c6ef372fe94f82b];
        }
        let mut rng = rngs::StdRng { s };
        for _ in 0..4 {
            rng.next();
        }
        rng
    }
}

/// Types producible by `Rng::gen`.
pub trait Standard: Sized {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for u128 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl Standard for i128 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        u128::sample(rng) as i128
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl<const N: usize> Standard for [u8; N] {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        let mut out = [0u8; N];
        rng.fill_bytes(&mut out);
        out
    }
}

/// Ranges accepted by `Rng::gen_range`.
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                let pick = (rng.next_u64() as u128 * span) >> 64;
                (self.start as u128 + pick) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range: empty range");
                let span = (end as u128).wrapping_sub(start as u128) + 1;
                let pick = (rng.next_u64() as u128 * span) >> 64;
                (start as u128).wrapping_add(pick) as $t
            }
        }
    )*};
}
impl_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

pub trait Rng: RngCore {
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p={p} out of range");
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_streams() {
        let mut a = rngs::StdRng::seed_from_u64(7);
        let mut b = rngs::StdRng::seed_from_u64(7);
        let mut c = rngs::StdRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..16).map(|_| a.gen()).collect();
        let ys: Vec<u64> = (0..16).map(|_| b.gen()).collect();
        let zs: Vec<u64> = (0..16).map(|_| c.gen()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn ranges_in_bounds() {
        let mut r = rngs::StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v: u64 = r.gen_range(10..20);
            assert!((10..20).contains(&v));
            let w: i32 = r.gen_range(-5..=5);
            assert!((-5..=5).contains(&w));
            let u: usize = r.gen_range(0..1);
            assert_eq!(u, 0);
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut r = rngs::StdRng::seed_from_u64(2);
        for _ in 0..100 {
            assert!(!r.gen_bool(0.0));
            assert!(r.gen_bool(1.0));
        }
    }
}
