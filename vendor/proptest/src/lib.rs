//! Minimal offline stand-in for the `proptest` crate (1.x API subset).
//!
//! The build container has no network access, so this path crate replaces
//! crates.io `proptest`. It keeps the same surface the workspace's property
//! tests use — `proptest!`, `prop_assert*`, `prop_assume!`, `prop_oneof!`,
//! `any::<T>()`, range/tuple/`Just`/`prop_map` strategies, regex-lite string
//! strategies, `collection::vec`, `option::of`, `sample::Index`, and
//! `ProptestConfig::with_cases` — but generates inputs with a deterministic
//! seeded RNG (seed = hash of test path + case index) and panics on the
//! first failing case instead of shrinking. Failures print the case number
//! so a run can be replayed exactly; statistical coverage is cruder than
//! real proptest but the determinism is total.

pub mod test_runner {
    pub use rand::rngs::StdRng as TestRng;
    use rand::SeedableRng;

    /// Configuration for a `proptest!` block; only `cases` is honoured.
    #[derive(Clone, Debug)]
    pub struct Config {
        pub cases: u32,
    }

    impl Config {
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Self { cases: 64 }
        }
    }

    /// Deterministic per-case RNG: FNV-1a of the test path mixed with the
    /// case index, so every test fn gets an independent reproducible stream.
    pub fn rng_for_case(test_path: &str, case: u64) -> TestRng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_path.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng::seed_from_u64(h ^ case.wrapping_mul(0x9e37_79b9_7f4a_7c15))
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;
    use rand::Rng;
    use std::rc::Rc;

    /// A generator of values. Unlike real proptest there is no shrinking
    /// tree; `generate` draws one value from the strategy's distribution.
    pub trait Strategy {
        type Value;

        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        fn prop_map<T, F: Fn(Self::Value) -> T>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
        {
            FlatMap { inner: self, f }
        }

        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Rc::new(self))
        }
    }

    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, T, F: Fn(S::Value) -> T> Strategy for Map<S, F> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            (self.f)(self.inner.generate(rng))
        }
    }

    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
        type Value = S2::Value;
        fn generate(&self, rng: &mut TestRng) -> S2::Value {
            (self.f)(self.inner.generate(rng)).generate(rng)
        }
    }

    /// Always yields a clone of the given value.
    #[derive(Clone, Debug)]
    pub struct Just<T>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    trait DynStrategy<T> {
        fn generate_dyn(&self, rng: &mut TestRng) -> T;
    }

    impl<S: Strategy> DynStrategy<S::Value> for S {
        fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
            self.generate(rng)
        }
    }

    pub struct BoxedStrategy<T>(Rc<dyn DynStrategy<T>>);

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            Self(Rc::clone(&self.0))
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.0.generate_dyn(rng)
        }
    }

    /// Weighted choice among boxed strategies (backs `prop_oneof!`).
    pub struct Union<T> {
        options: Vec<(u32, BoxedStrategy<T>)>,
        total: u64,
    }

    impl<T> Union<T> {
        pub fn new_weighted(options: Vec<(u32, BoxedStrategy<T>)>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
            let total = options.iter().map(|(w, _)| *w as u64).sum();
            assert!(total > 0, "prop_oneof! weights sum to zero");
            Self { options, total }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let mut pick = rng.gen_range(0..self.total);
            for (w, s) in &self.options {
                if pick < *w as u64 {
                    return s.generate(rng);
                }
                pick -= *w as u64;
            }
            unreachable!("weighted pick out of range")
        }
    }

    macro_rules! int_range_strategies {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }
    int_range_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! tuple_strategies {
        ($(($($S:ident . $idx:tt),+);)*) => {$(
            impl<$($S: Strategy),+> Strategy for ($($S,)+) {
                type Value = ($($S::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }
    tuple_strategies! {
        (A.0);
        (A.0, B.1);
        (A.0, B.1, C.2);
        (A.0, B.1, C.2, D.3);
        (A.0, B.1, C.2, D.3, E.4);
        (A.0, B.1, C.2, D.3, E.4, F.5);
        (A.0, B.1, C.2, D.3, E.4, F.5, G.6);
        (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7);
        (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7, I.8);
        (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7, I.8, J.9);
    }

    /// `&str` strategies are interpreted as a tiny regex subset:
    /// `<class>*`, `<class>{m,n}`, or `<class>` where `<class>` is `\PC`
    /// (printable), `.`, or a `[a-z0-9_]`-style class with ranges.
    /// Unrecognised patterns fall back to short alphanumeric strings.
    impl Strategy for &str {
        type Value = String;
        fn generate(&self, rng: &mut TestRng) -> String {
            crate::string::generate_from_pattern(self, rng)
        }
    }
}

pub mod string {
    use crate::test_runner::TestRng;
    use rand::Rng;

    const PRINTABLE_EXTRA: &[char] = &['é', 'ß', 'λ', '→', '中', '🦀'];

    enum Class {
        Printable,
        Set(Vec<char>),
    }

    fn parse(pattern: &str) -> Option<(Class, usize, usize)> {
        let (class, rest) = if let Some(rest) = pattern.strip_prefix("\\PC") {
            (Class::Printable, rest)
        } else if let Some(rest) = pattern.strip_prefix('.') {
            (Class::Printable, rest)
        } else if let Some(stripped) = pattern.strip_prefix('[') {
            let close = stripped.find(']')?;
            let body: Vec<char> = stripped[..close].chars().collect();
            let mut set = Vec::new();
            let mut i = 0;
            while i < body.len() {
                if i + 2 < body.len() && body[i + 1] == '-' {
                    let (lo, hi) = (body[i], body[i + 2]);
                    for c in lo..=hi {
                        set.push(c);
                    }
                    i += 3;
                } else {
                    set.push(body[i]);
                    i += 1;
                }
            }
            if set.is_empty() {
                return None;
            }
            (Class::Set(set), &stripped[close + 1..])
        } else {
            return None;
        };

        match rest {
            "*" => Some((class, 0, 32)),
            "+" => Some((class, 1, 32)),
            "" => Some((class, 1, 1)),
            _ => {
                let body = rest.strip_prefix('{')?.strip_suffix('}')?;
                let (lo, hi) = body.split_once(',')?;
                Some((class, lo.trim().parse().ok()?, hi.trim().parse().ok()?))
            }
        }
    }

    fn printable_char(rng: &mut TestRng) -> char {
        if rng.gen_bool(0.15) {
            PRINTABLE_EXTRA[rng.gen_range(0..PRINTABLE_EXTRA.len())]
        } else {
            // ASCII space..tilde: the printable range.
            rng.gen_range(0x20u8..0x7f) as char
        }
    }

    pub fn generate_from_pattern(pattern: &str, rng: &mut TestRng) -> String {
        let (class, lo, hi) = parse(pattern)
            .unwrap_or((Class::Set(('a'..='z').chain('0'..='9').collect()), 0, 16));
        let len = rng.gen_range(lo..=hi);
        (0..len)
            .map(|_| match &class {
                Class::Printable => printable_char(rng),
                Class::Set(set) => set[rng.gen_range(0..set.len())],
            })
            .collect()
    }
}

pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;
    use std::marker::PhantomData;

    /// Types with a canonical strategy, reachable through `any::<T>()`.
    pub trait Arbitrary: Sized {
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! arbitrary_prim {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.gen()
                }
            }
        )*};
    }
    arbitrary_prim!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize, bool, f32, f64);

    macro_rules! arbitrary_tuple {
        ($($T:ident),+) => {
            impl<$($T: Arbitrary),+> Arbitrary for ($($T,)+) {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    ($($T::arbitrary(rng),)+)
                }
            }
        };
    }
    arbitrary_tuple!(A);
    arbitrary_tuple!(A, B);
    arbitrary_tuple!(A, B, C);
    arbitrary_tuple!(A, B, C, D);
    arbitrary_tuple!(A, B, C, D, E);
    arbitrary_tuple!(A, B, C, D, E, F);

    impl<T: Arbitrary, const N: usize> Arbitrary for [T; N] {
        fn arbitrary(rng: &mut TestRng) -> Self {
            std::array::from_fn(|_| T::arbitrary(rng))
        }
    }

    impl<T: Arbitrary> Arbitrary for Vec<T> {
        fn arbitrary(rng: &mut TestRng) -> Self {
            let len = rng.gen_range(0usize..=64);
            (0..len).map(|_| T::arbitrary(rng)).collect()
        }
    }

    impl<T: Arbitrary> Arbitrary for Option<T> {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.gen_bool(0.75).then(|| T::arbitrary(rng))
        }
    }

    impl Arbitrary for String {
        fn arbitrary(rng: &mut TestRng) -> Self {
            crate::string::generate_from_pattern("\\PC*", rng)
        }
    }

    impl Arbitrary for char {
        fn arbitrary(rng: &mut TestRng) -> Self {
            crate::string::generate_from_pattern("\\PC", rng).chars().next().unwrap()
        }
    }

    pub struct Any<A>(PhantomData<A>);

    pub fn any<A: Arbitrary>() -> Any<A> {
        Any(PhantomData)
    }

    impl<A: Arbitrary> Strategy for Any<A> {
        type Value = A;
        fn generate(&self, rng: &mut TestRng) -> A {
            A::arbitrary(rng)
        }
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;

    /// Inclusive length bounds for collection strategies.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        min: usize,
        max: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self { min: n, max: n }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty collection size range");
            Self { min: r.start, max: r.end - 1 }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            Self { min: *r.start(), max: *r.end() }
        }
    }

    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let len = rng.gen_range(self.size.min..=self.size.max);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod option {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;

    pub struct OptionStrategy<S>(S);

    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy(inner)
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            rng.gen_bool(0.75).then(|| self.0.generate(rng))
        }
    }
}

pub mod sample {
    use crate::arbitrary::Arbitrary;
    use crate::test_runner::TestRng;
    use rand::Rng;

    /// An index drawn uniformly, scaled to any collection length at use
    /// time via `index(len)`.
    #[derive(Clone, Copy, Debug)]
    pub struct Index(u64);

    impl Index {
        pub fn index(&self, len: usize) -> usize {
            assert!(len > 0, "Index::index on empty collection");
            ((self.0 as u128 * len as u128) >> 64) as usize
        }
    }

    impl Arbitrary for Index {
        fn arbitrary(rng: &mut TestRng) -> Self {
            Self(rng.gen())
        }
    }
}

pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest};
    pub use crate as prop;
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { @cfg[$cfg] $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { @cfg[$crate::test_runner::Config::default()] $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (@cfg[$cfg:expr]) => {};
    (@cfg[$cfg:expr] $(#[$meta:meta])* fn $name:ident($($params:tt)*) $body:block $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let __pt_cfg = $cfg;
            for __pt_case in 0..__pt_cfg.cases as u64 {
                let mut __pt_rng = $crate::test_runner::rng_for_case(
                    concat!(module_path!(), "::", stringify!($name)),
                    __pt_case,
                );
                $crate::__pt_bind! { __pt_rng, $($params)* }
                $body
            }
        }
        $crate::__proptest_fns! { @cfg[$cfg] $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __pt_bind {
    ($rng:ident $(,)?) => {};
    ($rng:ident, $p:pat in $s:expr) => {
        let $p = $crate::strategy::Strategy::generate(&($s), &mut $rng);
    };
    ($rng:ident, $p:pat in $s:expr, $($rest:tt)*) => {
        let $p = $crate::strategy::Strategy::generate(&($s), &mut $rng);
        $crate::__pt_bind! { $rng, $($rest)* }
    };
    ($rng:ident, $i:ident : $t:ty) => {
        let $i: $t = $crate::arbitrary::Arbitrary::arbitrary(&mut $rng);
    };
    ($rng:ident, $i:ident : $t:ty, $($rest:tt)*) => {
        let $i: $t = $crate::arbitrary::Arbitrary::arbitrary(&mut $rng);
        $crate::__pt_bind! { $rng, $($rest)* }
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

/// Skips the current case when the assumption fails. Expands to a
/// `continue` targeting the case loop generated by `proptest!`.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(, $($fmt:tt)*)?) => {
        if !($cond) {
            continue;
        }
    };
}

#[macro_export]
macro_rules! prop_oneof {
    ($($w:literal => $s:expr),+ $(,)?) => {
        $crate::strategy::Union::new_weighted(
            vec![$(($w as u32, $crate::strategy::Strategy::boxed($s))),+]
        )
    };
    ($($s:expr),+ $(,)?) => {
        $crate::strategy::Union::new_weighted(
            vec![$((1u32, $crate::strategy::Strategy::boxed($s))),+]
        )
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn typed_and_strategy_params(v: u32, (a, b) in (0u8..10, 5u64..=6), s in "[a-z]{0,32}") {
            prop_assert!(a < 10);
            prop_assert!(b == 5 || b == 6);
            prop_assert!(s.len() <= 32);
            prop_assert!(s.chars().all(|c| c.is_ascii_lowercase()));
            let _ = v;
        }

        #[test]
        fn assume_skips(n in 0u32..100) {
            prop_assume!(n % 2 == 0);
            prop_assert_eq!(n % 2, 0);
        }

        #[test]
        fn oneof_and_collections(xs in prop::collection::vec(prop_oneof![2 => 0u8..4, 1 => 10u8..14], 0..20)) {
            prop_assert!(xs.len() < 20);
            prop_assert!(xs.iter().all(|&x| x < 4 || (10..14).contains(&x)));
        }
    }

    #[test]
    fn deterministic_generation() {
        use crate::strategy::Strategy;
        let s = crate::collection::vec(0u64..1000, 0..50);
        let mut r1 = crate::test_runner::rng_for_case("x", 3);
        let mut r2 = crate::test_runner::rng_for_case("x", 3);
        assert_eq!(s.generate(&mut r1), s.generate(&mut r2));
    }
}
