//! Cross-crate integration tests: the full stack (simnet → crypto → PBFT →
//! BASE → NFS wrappers over four different file systems) under adverse
//! conditions that no single crate's tests combine — view changes during a
//! file workload, lossy networks, partitions that heal, and proactive
//! recovery with heterogeneous implementations.

use base::{BaseReplica, BaseService};
use base_nfs::ops::NfsOp;
use base_nfs::relay::{run_to_completion, RelayActor, ScriptDriver};
use base_nfs::spec::Oid;
use base_nfs::{BtreeFs, FlatFs, InodeFs, LogFs, NfsWrapper};
use base_pbft::{Config, Service as _};
use base_simnet::{NodeId, SimDuration, Simulation};
use rand::SeedableRng;

const CAP: u64 = 1024;

type R0 = BaseReplica<NfsWrapper<InodeFs>>;
type R1 = BaseReplica<NfsWrapper<FlatFs>>;
type R2 = BaseReplica<NfsWrapper<LogFs>>;
type R3 = BaseReplica<NfsWrapper<BtreeFs>>;

fn build(sim: &mut Simulation, script: Vec<NfsOp>, seed: u64, cfg: Config) -> (Vec<NodeId>, NodeId) {
    let dir = base_crypto::KeyDirectory::generate(5, seed);
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let keys = |i| base_crypto::NodeKeys::new(dir.clone(), i);
    let nodes = vec![
        sim.add_node(Box::new(R0::new(
            cfg.clone(),
            keys(0),
            BaseService::new(NfsWrapper::with_capacity(InodeFs::new(1, &mut rng), CAP)),
        ))),
        sim.add_node(Box::new(R1::new(
            cfg.clone(),
            keys(1),
            BaseService::new(NfsWrapper::with_capacity(FlatFs::new(2, &mut rng), CAP)),
        ))),
        sim.add_node(Box::new(R2::new(
            cfg.clone(),
            keys(2),
            BaseService::new(NfsWrapper::with_capacity(LogFs::new(3, &mut rng), CAP)),
        ))),
        sim.add_node(Box::new(R3::new(
            cfg.clone(),
            keys(3),
            BaseService::new(NfsWrapper::with_capacity(BtreeFs::new(4, &mut rng), CAP)),
        ))),
    ];
    for (i, n) in nodes.iter().enumerate() {
        sim.config_mut().set_clock_skew(*n, SimDuration::from_millis(23 * i as u64));
    }
    let relay_keys = base_crypto::NodeKeys::new(dir, 4);
    let relay =
        sim.add_node(Box::new(RelayActor::new(cfg, relay_keys, ScriptDriver::new(script))));
    (nodes, relay)
}

fn small_cfg() -> Config {
    let mut cfg = Config::new(4);
    cfg.checkpoint_interval = 8;
    cfg.log_window = 64;
    cfg
}

fn workload(files: u32) -> Vec<NfsOp> {
    let root = Oid::ROOT;
    let mut script = vec![NfsOp::Mkdir { dir: root, name: "w".into(), mode: 0o755 }];
    let dir = Oid { index: 1, gen: 1 };
    for i in 0..files {
        script.push(NfsOp::Create { dir, name: format!("f{i}"), mode: 0o644 });
        script.push(NfsOp::Write {
            fh: Oid { index: 2 + i, gen: 1 },
            offset: 0,
            data: format!("content-{i}").into_bytes(),
        });
    }
    for i in 0..files {
        script.push(NfsOp::Read { fh: Oid { index: 2 + i, gen: 1 }, offset: 0, count: 64 });
    }
    script
}

fn roots(sim: &Simulation, nodes: &[NodeId]) -> Vec<base_crypto::Digest> {
    vec![
        sim.actor_as::<R0>(nodes[0]).unwrap().service().current_tree().root_digest(),
        sim.actor_as::<R1>(nodes[1]).unwrap().service().current_tree().root_digest(),
        sim.actor_as::<R2>(nodes[2]).unwrap().service().current_tree().root_digest(),
        sim.actor_as::<R3>(nodes[3]).unwrap().service().current_tree().root_digest(),
    ]
}

#[test]
fn view_change_during_file_workload() {
    let mut sim = Simulation::new(81);
    let (nodes, relay) = build(&mut sim, workload(16), 81, small_cfg());

    // Kill the primary shortly after the workload starts: the view change
    // must happen mid-stream and the workload must still complete.
    sim.run_for(SimDuration::from_millis(5));
    sim.crash_forever(nodes[0]);

    let ok = run_to_completion(
        &mut sim,
        |s| s.actor_as::<RelayActor<ScriptDriver>>(relay).unwrap().done(),
        SimDuration::from_secs(60),
    );
    assert!(ok, "workload must survive the primary failure");
    let actor = sim.actor_as::<RelayActor<ScriptDriver>>(relay).unwrap();
    assert_eq!(actor.stats.errors, 0);
    // The three survivors agree.
    let r = roots(&sim, &nodes);
    assert_eq!(r[1], r[2]);
    assert_eq!(r[1], r[3]);
    assert!(sim.actor_as::<R1>(nodes[1]).unwrap().view() >= 1, "view must have changed");
}

#[test]
fn lossy_network_full_stack() {
    let mut sim = Simulation::new(82);
    sim.config_mut().drop_prob = 0.03;
    let (nodes, relay) = build(&mut sim, workload(12), 82, small_cfg());
    let ok = run_to_completion(
        &mut sim,
        |s| s.actor_as::<RelayActor<ScriptDriver>>(relay).unwrap().done(),
        SimDuration::from_secs(120),
    );
    assert!(ok, "workload must complete despite 3% message loss");
    sim.config_mut().drop_prob = 0.0;
    sim.run_for(SimDuration::from_secs(30));
    let r = roots(&sim, &nodes);
    assert!(r.iter().all(|d| *d == r[0]), "replicas diverged: {r:?}");
}

#[test]
fn partition_heals_and_group_catches_up() {
    let mut sim = Simulation::new(83);
    let (nodes, relay) = build(&mut sim, workload(20), 83, small_cfg());

    // Partition one backup away mid-run; the other three keep going.
    sim.run_for(SimDuration::from_millis(20));
    sim.config_mut().partition(&nodes[..3], &nodes[3..]);
    let ok = run_to_completion(
        &mut sim,
        |s| s.actor_as::<RelayActor<ScriptDriver>>(relay).unwrap().done(),
        SimDuration::from_secs(60),
    );
    assert!(ok, "three connected replicas suffice");

    // Heal: the isolated replica must catch up via state transfer.
    sim.config_mut().heal_all();
    sim.run_for(SimDuration::from_secs(30));
    let r = roots(&sim, &nodes);
    assert!(r.iter().all(|d| *d == r[0]), "healed replica diverged: {r:?}");
    assert!(
        sim.actor_as::<R3>(nodes[3]).unwrap().stats.state_transfers >= 1,
        "the partitioned replica must have state-transferred"
    );
}

#[test]
fn proactive_recovery_with_heterogeneous_implementations() {
    let mut cfg = small_cfg();
    cfg.recovery_period = Some(SimDuration::from_secs(10));
    cfg.reboot_time = SimDuration::from_millis(200);
    let mut sim = Simulation::new(84);
    let (nodes, relay) = build(&mut sim, workload(16), 84, cfg);

    let ok = run_to_completion(
        &mut sim,
        |s| s.actor_as::<RelayActor<ScriptDriver>>(relay).unwrap().done(),
        SimDuration::from_secs(60),
    );
    assert!(ok);
    // A full rotation: every implementation is rebuilt from the abstract
    // state through its own inverse abstraction function.
    sim.run_for(SimDuration::from_secs(15));
    let recoveries = sim.actor_as::<R0>(nodes[0]).unwrap().stats.recoveries
        + sim.actor_as::<R1>(nodes[1]).unwrap().stats.recoveries
        + sim.actor_as::<R2>(nodes[2]).unwrap().stats.recoveries
        + sim.actor_as::<R3>(nodes[3]).unwrap().stats.recoveries;
    assert!(recoveries >= 4, "every replica should have recovered, saw {recoveries}");
    let r = roots(&sim, &nodes);
    assert!(r.iter().all(|d| *d == r[0]), "post-recovery divergence: {r:?}");
    // The rebuilt concrete states answer reads correctly.
    let w = sim.actor_as::<R2>(nodes[2]).unwrap().service().wrapper();
    assert!(w.allocated() >= 17, "objects restored: {}", w.allocated());
}

#[test]
fn deterministic_end_to_end() {
    let run = |seed: u64| {
        let mut sim = Simulation::new(seed);
        let (nodes, relay) = build(&mut sim, workload(10), seed, small_cfg());
        run_to_completion(
            &mut sim,
            |s| s.actor_as::<RelayActor<ScriptDriver>>(relay).unwrap().done(),
            SimDuration::from_secs(60),
        );
        (roots(&sim, &nodes), sim.stats().messages_delivered, sim.stats().bytes_delivered)
    };
    assert_eq!(run(4242), run(4242), "same seed must give identical histories");
}
