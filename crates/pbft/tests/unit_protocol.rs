//! Focused unit tests for protocol components that the end-to-end tests
//! exercise only implicitly: the state-transfer fetcher's verification
//! logic, new-view computation (`compute_o`), checkpoint-certificate
//! validation, and the client core's quorum matching.

use base_crypto::{Digest, KeyDirectory, NodeKeys, Signature};
use base_pbft::messages::{
    CheckpointMsg, Message, MetaReplyMsg, ObjectReplyMsg, PrePrepareMsg, PreparedProof,
    RequestMsg, ViewChangeMsg,
};
use base_pbft::replica::{compute_o, validate_cert};
use base_pbft::transfer::{checkpoint_digest, Fetcher, META_ROOT_LEVEL, REPLIES_INDEX};
use base_pbft::tree::{leaf_digest, PartitionTree};
use base_pbft::Config;

// ---------------------------------------------------------------------
// Fetcher
// ---------------------------------------------------------------------

/// A "remote checkpoint" the fetcher pulls from: a tree plus object values.
struct RemoteState {
    tree: PartitionTree,
    objects: Vec<Option<Vec<u8>>>,
    replies_blob: Vec<u8>,
}

impl RemoteState {
    fn new(n: u64, values: &[(u64, &[u8])]) -> Self {
        let mut tree = PartitionTree::new(n, 4);
        let mut objects = vec![None; n as usize];
        for (i, v) in values {
            tree.set_leaf(*i, leaf_digest(*i, v));
            objects[*i as usize] = Some(v.to_vec());
        }
        Self { tree, objects, replies_blob: b"reply-cache-blob".to_vec() }
    }

    fn composite(&self) -> Digest {
        checkpoint_digest(&self.tree.root_digest(), &Digest::of(&self.replies_blob))
    }

    /// Answers one fetch message the way a correct replica would.
    fn serve(&self, msg: &Message) -> Option<Message> {
        match msg {
            Message::FetchMeta(m) if m.level == META_ROOT_LEVEL => {
                Some(Message::MetaReply(MetaReplyMsg {
                    seq: m.seq,
                    level: m.level,
                    index: m.index,
                    digests: vec![self.tree.root_digest(), Digest::of(&self.replies_blob)],
                    replica: 0,
                }))
            }
            Message::FetchMeta(m) => Some(Message::MetaReply(MetaReplyMsg {
                seq: m.seq,
                level: m.level,
                index: m.index,
                digests: self.tree.children_digests(m.level, m.index)?,
                replica: 0,
            })),
            Message::FetchObject(m) if m.index == REPLIES_INDEX => {
                Some(Message::ObjectReply(ObjectReplyMsg {
                    seq: m.seq,
                    index: m.index,
                    data: self.replies_blob.clone(),
                    replica: 0,
                }))
            }
            Message::FetchObject(m) => Some(Message::ObjectReply(ObjectReplyMsg {
                seq: m.seq,
                index: m.index,
                data: self.objects[m.index as usize].clone()?,
                replica: 0,
            })),
            _ => None,
        }
    }
}

/// Pumps a fetcher against a remote until quiescent; returns the result.
fn drive(fetcher: &mut Fetcher, remote: &RemoteState, local: &PartitionTree) -> Option<base_pbft::transfer::FetchResult> {
    let mut queue: Vec<(u32, Message)> = fetcher.begin();
    let mut guard = 0;
    while let Some((_, msg)) = queue.pop() {
        guard += 1;
        assert!(guard < 10_000, "fetch did not converge");
        let Some(reply) = remote.serve(&msg) else { continue };
        let (more, done) = match reply {
            Message::MetaReply(m) => fetcher.on_meta_reply(&m, local),
            Message::ObjectReply(m) => fetcher.on_object_reply(&m, local),
            _ => unreachable!(),
        };
        queue.extend(more);
        if done.is_some() {
            return done;
        }
    }
    None
}

#[test]
fn fetcher_pulls_exactly_the_differing_objects() {
    let remote = RemoteState::new(64, &[(1, b"one"), (5, b"five"), (40, b"forty")]);
    // Local state already has object 1 right and object 5 wrong.
    let mut local = PartitionTree::new(64, 4);
    local.set_leaf(1, leaf_digest(1, b"one"));
    local.set_leaf(5, leaf_digest(5, b"stale"));

    let mut f = Fetcher::new(3, 4, 128, remote.composite());
    let result = drive(&mut f, &remote, &local).expect("fetch completes");
    assert_eq!(result.seq, 128);
    assert_eq!(result.replies_blob, remote.replies_blob);

    let mut got: Vec<(u64, Option<Vec<u8>>)> = result.objects.clone();
    got.sort_by_key(|(i, _)| *i);
    // Object 1 matches locally → not fetched. 5 and 40 fetched. The stale
    // local 5 is replaced; nothing else is touched.
    assert_eq!(
        got,
        vec![(5, Some(b"five".to_vec())), (40, Some(b"forty".to_vec()))]
    );
}

#[test]
fn fetcher_records_deletions_without_fetching() {
    let remote = RemoteState::new(64, &[(2, b"keep")]);
    let mut local = PartitionTree::new(64, 4);
    local.set_leaf(2, leaf_digest(2, b"keep"));
    local.set_leaf(9, leaf_digest(9, b"doomed")); // Absent in the target.

    let mut f = Fetcher::new(3, 4, 128, remote.composite());
    let result = drive(&mut f, &remote, &local).expect("fetch completes");
    assert_eq!(result.objects, vec![(9, None)]);
}

#[test]
fn fetcher_rejects_corrupt_meta_and_objects() {
    let remote = RemoteState::new(16, &[(3, b"real")]);
    let local = PartitionTree::new(16, 4);
    let mut f = Fetcher::new(3, 4, 128, remote.composite());
    let msgs = f.begin();

    // A Byzantine top-level reply with a forged root must not be accepted;
    // the fetcher re-targets the query to another source right away.
    let bogus = MetaReplyMsg {
        seq: 128,
        level: META_ROOT_LEVEL,
        index: 0,
        digests: vec![Digest::of(b"forged"), Digest::of(b"also forged")],
        replica: 2,
    };
    let (out, done) = f.on_meta_reply(&bogus, &local);
    assert_eq!(out.len(), 1, "corrupt root reply is re-targeted immediately");
    assert!(done.is_none());
    assert!(!f.is_done());
    assert_eq!(f.corrupt_replies(), 1);

    // The genuine reply still works afterwards.
    let (_, msg) = &msgs[0];
    let Some(Message::MetaReply(real)) = remote.serve(msg) else { panic!() };
    let (out, _) = f.on_meta_reply(&real, &local);
    assert!(!out.is_empty(), "fetch proceeds after the real reply");

    // A corrupt object payload is rejected (digest mismatch) and the query
    // stays outstanding.
    let forged_obj = ObjectReplyMsg { seq: 128, index: 3, data: b"fake".to_vec(), replica: 2 };
    let before = f.is_done();
    let (_, done) = f.on_object_reply(&forged_obj, &local);
    assert!(done.is_none());
    assert_eq!(f.is_done(), before);
}

#[test]
fn fetcher_ignores_replies_for_other_checkpoints() {
    let remote = RemoteState::new(16, &[(3, b"x")]);
    let local = PartitionTree::new(16, 4);
    let mut f = Fetcher::new(3, 4, 128, remote.composite());
    f.begin();
    let stale = MetaReplyMsg {
        seq: 64, // Wrong checkpoint.
        level: META_ROOT_LEVEL,
        index: 0,
        digests: vec![remote.tree.root_digest(), Digest::of(&remote.replies_blob)],
        replica: 0,
    };
    let (out, done) = f.on_meta_reply(&stale, &local);
    assert!(out.is_empty());
    assert!(done.is_none());
}

/// Drives like [`drive`] but counts the maximum number of requests ever
/// simultaneously unanswered, serving strictly FIFO.
fn drive_counting(
    fetcher: &mut Fetcher,
    remote: &RemoteState,
    local: &PartitionTree,
) -> (Option<base_pbft::transfer::FetchResult>, usize) {
    let mut queue: std::collections::VecDeque<(u32, Message)> = fetcher.begin().into();
    let mut max_inflight = queue.len();
    let mut guard = 0;
    while let Some((_, msg)) = queue.pop_front() {
        guard += 1;
        assert!(guard < 10_000, "fetch did not converge");
        let Some(reply) = remote.serve(&msg) else { continue };
        let (more, done) = match reply {
            Message::MetaReply(m) => fetcher.on_meta_reply(&m, local),
            Message::ObjectReply(m) => fetcher.on_object_reply(&m, local),
            _ => unreachable!(),
        };
        queue.extend(more);
        max_inflight = max_inflight.max(queue.len());
        if done.is_some() {
            return (done, max_inflight);
        }
    }
    (None, max_inflight)
}

#[test]
fn fetch_window_bounds_outstanding_queries() {
    let values: Vec<(u64, Vec<u8>)> =
        (0..48u64).map(|i| (i, format!("value-{i}").into_bytes())).collect();
    let value_refs: Vec<(u64, &[u8])> =
        values.iter().map(|(i, v)| (*i, v.as_slice())).collect();
    let remote = RemoteState::new(64, &value_refs);
    let local = PartitionTree::new(64, 4);

    // Window 1: strictly serial — never more than one unanswered query.
    let mut serial = Fetcher::with_window(3, 4, 128, remote.composite(), 1);
    let (result, max_inflight) = drive_counting(&mut serial, &remote, &local);
    let serial_result = result.expect("serial fetch completes");
    assert_eq!(max_inflight, 1, "window 1 keeps exactly one query in flight");

    // Window 4 (default): pipelined, but never beyond the window.
    let mut windowed = Fetcher::new(3, 4, 128, remote.composite());
    let (result, max_inflight) = drive_counting(&mut windowed, &remote, &local);
    let windowed_result = result.expect("windowed fetch completes");
    assert!(max_inflight > 1, "default window actually pipelines");
    assert!(max_inflight <= 4, "window caps concurrency, saw {max_inflight}");

    // Pipelining changes scheduling only: both windows fetch the same
    // objects, bytes and metadata.
    let sorted = |mut v: Vec<(u64, Option<Vec<u8>>)>| {
        v.sort_by_key(|(i, _)| *i);
        v
    };
    assert_eq!(sorted(serial_result.objects), sorted(windowed_result.objects));
    assert_eq!(serial_result.fetched_bytes, windowed_result.fetched_bytes);
    assert_eq!(serial_result.meta_queries, windowed_result.meta_queries);
    assert_eq!(serial_result.replies_blob, windowed_result.replies_blob);
}

#[test]
fn fetcher_tick_retransmits_outstanding_queries() {
    let remote = RemoteState::new(16, &[(3, b"x")]);
    let mut f = Fetcher::new(3, 4, 128, remote.composite());
    let first = f.begin();
    assert_eq!(first.len(), 1);
    let resent = f.tick();
    assert_eq!(resent.len(), 1, "outstanding root query resent");
    // Rotation: the resend goes to a different replica than the original.
    assert_ne!(first[0].0, resent[0].0);
}

// ---------------------------------------------------------------------
// compute_o and certificates
// ---------------------------------------------------------------------

fn keys(n: usize) -> Vec<NodeKeys> {
    let dir = KeyDirectory::generate(n, 9);
    (0..n).map(|i| NodeKeys::new(dir.clone(), i)).collect()
}

fn request(op: &[u8]) -> RequestMsg {
    RequestMsg::new(4, 1, false, 0, op.to_vec())
}

fn prepared_proof(view: u64, seq: u64, op: &[u8]) -> PreparedProof {
    PreparedProof {
        pre_prepare: PrePrepareMsg::new(view, seq, vec![request(op)], Vec::new()),
        prepares: Vec::new(),
    }
}

fn view_change(new_view: u64, stable_seq: u64, prepared: Vec<PreparedProof>, replica: u32) -> ViewChangeMsg {
    ViewChangeMsg {
        new_view,
        stable_seq,
        stable_digest: Digest::ZERO,
        stable_proof: Vec::new(),
        prepared,
        replica,
        sig: Signature([0; 32]),
    }
}

#[test]
fn compute_o_fills_gaps_with_null_requests() {
    let cfg = Config::new(4);
    // One replica prepared seq 3 and 5; nothing for 4.
    let vcs = vec![
        view_change(1, 2, vec![prepared_proof(0, 3, b"op3"), prepared_proof(0, 5, b"op5")], 0),
        view_change(1, 2, vec![], 1),
        view_change(1, 2, vec![], 2),
    ];
    let (min_s, o) = compute_o(&cfg, 1, &vcs);
    assert_eq!(min_s, 2);
    let seqs: Vec<u64> = o.iter().map(|p| p.seq).collect();
    assert_eq!(seqs, vec![3, 4, 5]);
    assert_eq!(o[0].requests()[0].op(), b"op3");
    assert!(o[1].requests().is_empty(), "gap filled with a null request");
    assert_eq!(o[2].requests()[0].op(), b"op5");
    assert!(o.iter().all(|p| p.view == 1));
}

#[test]
fn compute_o_prefers_the_highest_view_certificate() {
    let cfg = Config::new(4);
    let vcs = vec![
        view_change(2, 0, vec![prepared_proof(0, 1, b"old")], 0),
        view_change(2, 0, vec![prepared_proof(1, 1, b"newer")], 1),
        view_change(2, 0, vec![], 2),
    ];
    let (_, o) = compute_o(&cfg, 2, &vcs);
    assert_eq!(o.len(), 1);
    assert_eq!(o[0].requests()[0].op(), b"newer", "view-1 certificate wins over view-0");
}

#[test]
fn compute_o_min_s_is_the_highest_stable_checkpoint() {
    let cfg = Config::new(4);
    let vcs = vec![
        view_change(1, 128, vec![], 0),
        view_change(1, 0, vec![prepared_proof(0, 5, b"below-min-s")], 1),
        view_change(1, 64, vec![], 2),
    ];
    let (min_s, o) = compute_o(&cfg, 1, &vcs);
    assert_eq!(min_s, 128);
    assert!(o.is_empty(), "prepared entries at or below min_s are not re-proposed");
}

#[test]
fn validate_cert_requires_quorum_of_valid_signatures() {
    let cfg = Config::new(4);
    let ks = keys(4);
    let digest = Digest::of(b"state");
    let make = |i: usize| {
        let mut m = CheckpointMsg { seq: 128, digest, replica: i as u32, sig: Signature([0; 32]) };
        m.sig = ks[i].sign(&m.signed_bytes());
        m
    };

    // Two valid signatures: not enough.
    assert!(validate_cert(&cfg, &ks[0], &[make(1), make(2)]).is_none());
    // Three valid: certificate accepted.
    assert_eq!(validate_cert(&cfg, &ks[0], &[make(1), make(2), make(3)]), Some((128, digest)));
    // Duplicate senders must not count twice.
    assert!(validate_cert(&cfg, &ks[0], &[make(1), make(1), make(1)]).is_none());
    // A bad signature does not count.
    let mut forged = make(3);
    forged.sig = Signature([7; 32]);
    assert!(validate_cert(&cfg, &ks[0], &[make(1), make(2), forged]).is_none());
    // Mixed digests do not form a certificate.
    let mut other = CheckpointMsg {
        seq: 128,
        digest: Digest::of(b"different"),
        replica: 3,
        sig: Signature([0; 32]),
    };
    other.sig = ks[3].sign(&other.signed_bytes());
    assert!(validate_cert(&cfg, &ks[0], &[make(1), make(2), other]).is_none());
}
