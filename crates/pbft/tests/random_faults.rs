//! Randomized fault-schedule stress tests: for a set of seeds, drive a
//! workload while crashing and restoring random replicas (never more than
//! f at once) at random instants, then assert liveness (every operation
//! completes) and safety (all correct replicas agree on the final state).
//!
//! These are deterministic per seed — a failure reproduces exactly.

use base_pbft::testing::{build_counter_group, op_add, CounterService, TestGroup};
use base_pbft::{ByzMode, ClientActor, Config, Replica};
use base_simnet::{NodeId, SimDuration, Simulation};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const OPS: u64 = 40;

fn cfg() -> Config {
    let mut cfg = Config::new(4);
    cfg.checkpoint_interval = 8;
    cfg.log_window = 32;
    cfg
}

fn final_value(sim: &Simulation, g: &TestGroup, i: usize) -> u64 {
    sim.actor_as::<Replica<CounterService>>(g.replicas[i]).unwrap().service().value(0)
}

/// Runs one seeded schedule: random crash windows (one replica down at a
/// time, possibly the primary), workload injected up front.
fn run_crash_schedule(seed: u64) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut sim = Simulation::new(seed);
    let g = build_counter_group(&mut sim, cfg(), 1, seed);
    let client = g.clients[0];
    {
        let c = sim.actor_as_mut::<ClientActor>(client).unwrap();
        for _ in 0..OPS {
            c.enqueue(op_add(0, 1), false);
        }
    }

    // 3-6 crash windows spread over the run; each takes one random replica
    // down for 200-900 ms. Windows never overlap, so at most f = 1 replica
    // is faulty at any instant.
    let windows = rng.gen_range(3..=6);
    for _ in 0..windows {
        sim.run_for(SimDuration::from_millis(rng.gen_range(100..400)));
        let victim = NodeId(rng.gen_range(0..4));
        let down = SimDuration::from_millis(rng.gen_range(200..900));
        sim.crash(victim, down);
        sim.run_for(down + SimDuration::from_millis(50));
    }
    sim.run_for(SimDuration::from_secs(30));

    let done = sim.actor_as::<ClientActor>(client).unwrap().completed.len() as u64;
    assert_eq!(done, OPS, "liveness violated for seed {seed}");
    // Safety: all four replicas converge (crashed ones recover via the
    // protocol's retransmission and state transfer).
    sim.run_for(SimDuration::from_secs(10));
    for i in 0..4 {
        assert_eq!(final_value(&sim, &g, i), OPS, "replica {i} diverged for seed {seed}");
    }
}

/// Runs one seeded schedule with a random Byzantine replica active the
/// whole time. Safety and liveness must hold for any single-fault mode.
fn run_byzantine_schedule(seed: u64) {
    let mut rng = StdRng::seed_from_u64(seed ^ 0xbad);
    let mut sim = Simulation::new(seed);
    let g = build_counter_group(&mut sim, cfg(), 1, seed);
    let client = g.clients[0];
    let villain = rng.gen_range(0..4usize);
    let mode = match rng.gen_range(0..5) {
        0 => ByzMode::Mute,
        1 => ByzMode::CorruptReplies,
        2 => ByzMode::WithholdCommits,
        3 => ByzMode::CorruptCheckpoints,
        _ => ByzMode::EquivocatePrimary,
    };
    sim.actor_as_mut::<Replica<CounterService>>(g.replicas[villain])
        .unwrap()
        .set_byzantine(mode);
    {
        let c = sim.actor_as_mut::<ClientActor>(client).unwrap();
        for _ in 0..OPS {
            c.enqueue(op_add(0, 1), false);
        }
    }
    sim.run_for(SimDuration::from_secs(60));
    let done = sim.actor_as::<ClientActor>(client).unwrap().completed.len() as u64;
    assert_eq!(done, OPS, "liveness violated for seed {seed} mode {mode:?} villain {villain}");
    for i in 0..4 {
        if i == villain {
            continue;
        }
        assert_eq!(
            final_value(&sim, &g, i),
            OPS,
            "replica {i} diverged for seed {seed} mode {mode:?} villain {villain}"
        );
    }
}

#[test]
fn replacement_under_active_byzantine_fault() {
    // f = 1 is fully spent on a mute replica when a second machine is
    // reinstalled from scratch. The group has exactly 2f+1 = 3 non-mute
    // members, one of which starts from genesis: progress must stall no
    // longer than the newcomer's catch-up, and every operation completes.
    let mut sim = Simulation::new(77);
    let g = build_counter_group(&mut sim, cfg(), 1, 77);
    let client = g.clients[0];
    sim.actor_as_mut::<Replica<CounterService>>(g.replicas[1])
        .unwrap()
        .set_byzantine(ByzMode::Mute);
    {
        let c = sim.actor_as_mut::<ClientActor>(client).unwrap();
        for _ in 0..10 {
            c.enqueue(op_add(0, 1), false);
        }
    }
    sim.run_for(SimDuration::from_secs(5));
    assert_eq!(
        sim.actor_as::<ClientActor>(client).unwrap().completed.len(),
        10,
        "three correct replicas must make progress past the mute one"
    );

    // Reinstall replica 3 (a quorum member) with a fresh instance.
    let keys = base_crypto::NodeKeys::new(g.dir.clone(), 3);
    sim.replace_node(
        g.replicas[3],
        Box::new(Replica::new(g.cfg.clone(), keys, CounterService::default())),
    );
    {
        let c = sim.actor_as_mut::<ClientActor>(client).unwrap();
        for _ in 0..10 {
            c.enqueue(op_add(0, 1), false);
        }
    }
    sim.run_for(SimDuration::from_secs(60));
    assert_eq!(
        sim.actor_as::<ClientActor>(client).unwrap().completed.len(),
        20,
        "the workload must finish once the replacement catches up"
    );
    for i in [0usize, 2, 3] {
        assert_eq!(final_value(&sim, &g, i), 20, "replica {i} diverged");
    }
}

#[test]
fn random_crash_schedules_preserve_safety_and_liveness() {
    for seed in [11, 23, 37, 59, 71, 97] {
        run_crash_schedule(seed);
    }
}

#[test]
fn random_byzantine_replica_is_always_masked() {
    for seed in [5, 13, 29, 43, 61, 83] {
        run_byzantine_schedule(seed);
    }
}
