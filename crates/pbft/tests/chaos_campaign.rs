//! Chaos campaigns over a replicated `CounterService` group: many seeded
//! runs composing crash windows, healing partitions, Byzantine-mode flips
//! and latent state corruption, each audited for linearizability, absence
//! of checkpoint forks, reply-certificate consistency and liveness — plus
//! the demonstration that a deliberately injected client safety bug is
//! caught by the auditor and shrunk to a minimal replayable schedule.

use base_pbft::chaos::{CounterChaosHarness, APP_BYZ, APP_CORRUPT_STATE};
use base_pbft::ByzMode;
use base_simnet::chaos::{
    generate_schedule, minimize, run_campaign, run_campaign_parallel, run_one, CampaignMode,
    CampaignReport, ChaosEvent, FaultSchedule, NetFault,
};
use base_simnet::ddmin::{ddmin_from_failure, CountingHarness};
use base_simnet::tracediff::divergence_report;
use base_simnet::{NodeId, SimDuration, SimTime};

const SEEDS: std::ops::Range<u64> = 0..20;

/// Writes the campaign's coverage JSON under `target/chaos-coverage/` so CI
/// can upload it as an artifact and gate on its contents.
fn write_coverage_artifact(name: &str, report: &CampaignReport) {
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../../target/chaos-coverage");
    if std::fs::create_dir_all(&dir).is_ok() {
        let _ = std::fs::write(dir.join(format!("{name}.json")), report.coverage_json());
    }
}

#[test]
fn campaign_composes_faults_and_passes_auditor() {
    let mut h = CounterChaosHarness::new(4);
    let cfg = h.gen_config(6, SimDuration::from_secs(8));

    // The generated schedules must collectively exercise every fault
    // category the campaign claims to compose.
    let (mut crashes, mut partitions, mut byz, mut corrupt) = (0, 0, 0, 0);
    for seed in SEEDS {
        for ev in &generate_schedule(&cfg, seed).events {
            match &ev.event {
                ChaosEvent::Crash { .. } => crashes += 1,
                ChaosEvent::Net { fault: NetFault::Partition { .. }, .. } => partitions += 1,
                ChaosEvent::App { tag, arg, .. } if *tag == APP_BYZ && *arg != 0 => byz += 1,
                ChaosEvent::App { tag, .. } if *tag == APP_CORRUPT_STATE => corrupt += 1,
                _ => {}
            }
        }
    }
    assert!(
        crashes > 0 && partitions > 0 && byz > 0 && corrupt > 0,
        "campaign must compose all fault categories \
         (crashes={crashes} partitions={partitions} byz={byz} corrupt={corrupt})"
    );

    let report = run_campaign(&mut h, &cfg, SEEDS);
    assert_eq!(report.runs, SEEDS.end as usize);
    assert!(report.events_executed > 0, "campaign generated no events");
    if let Some(f) = report.failures.first() {
        panic!("campaign failed:\n{f}");
    }

    // Coverage is derived from the protocol event trace of every run; a
    // 20-run mixed campaign must actually force the paper's recovery
    // mechanisms, not merely schedule faults.
    println!("{}", report.summary());
    write_coverage_artifact("counter_mixed", &report);
    let cov = report.coverage;
    assert!(cov.view_changes_started > 0, "campaign forced no view changes:\n{cov}");
    assert!(cov.state_transfers_completed > 0, "campaign completed no state transfers:\n{cov}");
    assert!(cov.recoveries_completed > 0, "campaign completed no recoveries:\n{cov}");
    assert!(cov.corrupt_state_repairs > 0, "campaign repaired no corrupt state:\n{cov}");
    assert_eq!(report.seed_coverage.len(), report.runs);
}

#[test]
fn storm_campaign_forces_view_changes_and_converges() {
    let h = CounterChaosHarness::new(4);
    let cfg = h.gen_config(5, SimDuration::from_secs(8));
    let report = run_campaign_parallel(
        || CounterChaosHarness::new(4),
        CampaignMode::Storm,
        &cfg,
        0..8u64,
        4,
    );
    if let Some(f) = report.failures.first() {
        panic!("storm campaign failed:\n{f}");
    }
    println!("{}", report.summary());
    write_coverage_artifact("counter_storm", &report);
    assert!(
        report.coverage.view_changes_completed > 0,
        "primary-targeting storm must complete view changes:\n{}",
        report.coverage
    );
    assert!(
        report.runs_with_view_change >= report.runs / 2,
        "most storm runs should force a view change ({}/{})",
        report.runs_with_view_change,
        report.runs
    );

    // The parallel runner is a determinism-preserving optimization: the
    // merged report must be byte-identical to the sequential one.
    let sequential = run_campaign_parallel(
        || CounterChaosHarness::new(4),
        CampaignMode::Storm,
        &cfg,
        0..8u64,
        1,
    );
    assert_eq!(report.summary(), sequential.summary());
    assert_eq!(report.coverage_json(), sequential.coverage_json());
}

#[test]
fn injected_client_bug_is_caught_and_minimized() {
    let mut h = CounterChaosHarness::new(4);
    h.inject_client_bug = true;

    // The trigger (a reply-corrupting replica) is buried among harmless
    // decoy events; the minimizer must dig it out.
    let mut schedule = FaultSchedule::new();
    schedule
        .net(
            SimTime::from_millis(100),
            NetFault::Duplicate { prob: 0.2 },
            SimDuration::from_secs(2),
        )
        .app(
            SimTime::from_millis(200),
            NodeId(1),
            APP_BYZ,
            ByzMode::CorruptReplies.code(),
        )
        .net(
            SimTime::from_secs(1),
            NetFault::Slow {
                from: NodeId(0),
                to: NodeId(2),
                extra: SimDuration::from_millis(20),
            },
            SimDuration::from_secs(2),
        );

    let seed = 5;
    let (outcome, verdict) = run_one(&mut h, seed, &schedule);
    assert!(
        verdict.is_err(),
        "quorum-skipping client must accept a fabricated reply; trace:\n{}",
        outcome.trace.join("\n")
    );

    let minimal = minimize(&mut h, seed, &schedule);
    assert_eq!(minimal.len(), 1, "expected single-event repro:\n{}", minimal.describe());
    assert!(
        matches!(minimal.events[0].event, ChaosEvent::App { tag: APP_BYZ, .. }),
        "minimal schedule must retain the Byzantine replier:\n{}",
        minimal.describe()
    );

    // Seed + minimal schedule replay the failure exactly.
    let (a, va) = run_one(&mut h, seed, &minimal);
    let (b, vb) = run_one(&mut h, seed, &minimal);
    assert!(va.is_err());
    assert_eq!(a, b);
    assert_eq!(va, vb);
}

/// ddmin on the counter testbed strips every decoy around the injected
/// client bug's trigger, the divergence report between the full and the
/// minimal run names the first protocol event that changed, and the search
/// itself is bounded by the subset cache.
#[test]
fn ddmin_strips_decoys_and_localizes_divergence() {
    let seed = 5;
    let schedule = {
        let mut s = FaultSchedule::new();
        s.net(
            SimTime::from_millis(100),
            NetFault::Duplicate { prob: 0.2 },
            SimDuration::from_secs(2),
        )
        .app(SimTime::from_millis(200), NodeId(1), APP_BYZ, ByzMode::CorruptReplies.code())
        .crash(SimTime::from_millis(700), NodeId(2), SimDuration::from_millis(400))
        .net(
            SimTime::from_secs(1),
            NetFault::Slow {
                from: NodeId(0),
                to: NodeId(2),
                extra: SimDuration::from_millis(20),
            },
            SimDuration::from_secs(2),
        );
        s
    };

    let mut h = CountingHarness::new({
        let mut h = CounterChaosHarness::new(4);
        h.inject_client_bug = true;
        h
    });
    let (full, verdict) = run_one(&mut h, seed, &schedule);
    assert!(verdict.is_err());
    let builds_before = h.builds;

    let dd = ddmin_from_failure(&mut h, seed, &schedule, Some(&full));
    assert_eq!(dd.schedule.len(), 1, "expected single-event repro:\n{}", dd.schedule.describe());
    assert!(
        matches!(dd.schedule.events[0].event, ChaosEvent::App { tag: APP_BYZ, .. }),
        "minimal schedule must retain the Byzantine replier:\n{}",
        dd.schedule.describe()
    );
    // Every harness build past the initial run was a ddmin execution —
    // the known-failing full run is never re-executed.
    assert_eq!(
        (h.builds - builds_before) as u64,
        dd.metrics.counter("ddmin.executions"),
        "{}",
        dd.metrics.to_json()
    );

    // Stripping the decoys changes observable protocol behaviour (no
    // duplicate storm, no crash), so the traces diverge and the report
    // pins the first differing event with replica context.
    let report = divergence_report(&full.events, &dd.outcome.events, 3, "full", "minimal");
    assert!(
        report.contains("first divergence at event index"),
        "expected a localized divergence:\n{report}"
    );
    assert!(report.contains("context (±3 events per replica):"), "{report}");

    // Deterministic: a fresh harness reproduces both byte-for-byte.
    let mut h2 = CounterChaosHarness::new(4);
    h2.inject_client_bug = true;
    let (full2, _) = run_one(&mut h2, seed, &schedule);
    let dd2 = ddmin_from_failure(&mut h2, seed, &schedule, Some(&full2));
    assert_eq!(dd.schedule.describe(), dd2.schedule.describe());
    assert_eq!(
        report,
        divergence_report(&full2.events, &dd2.outcome.events, 3, "full", "minimal")
    );
}

/// Fragment drops and corruption on the coded-transfer wire (FragReply is
/// tag 18, ChunksReply tag 16) layered over a crash that forces state
/// transfer: every campaign invariant must still hold — corrupt fragments
/// are shed by the per-chunk digest check and parity reconstruction, and
/// drops are absorbed by the fetch window's retransmission.
#[test]
fn coded_campaign_survives_fragment_faults() {
    let mut h = CounterChaosHarness::new(4);
    h.coded_transfer = true;
    h.chunk_size = 4;
    let mut schedule = FaultSchedule::new();
    schedule
        .crash(SimTime::from_millis(400), NodeId(3), SimDuration::from_secs(3))
        .net(
            SimTime::from_millis(300),
            NetFault::DropTagged { tag: 18, prob: 0.3 },
            SimDuration::from_secs(6),
        )
        .net(
            SimTime::from_secs(4),
            NetFault::CorruptTagged { tag: 18, prob: 0.4 },
            SimDuration::from_secs(4),
        )
        .net(
            SimTime::from_secs(5),
            NetFault::CorruptTagged { tag: 16, prob: 0.3 },
            SimDuration::from_secs(3),
        );

    let mut transfers = 0u64;
    for seed in 0..4u64 {
        let (outcome, verdict) = run_one(&mut h, seed, &schedule);
        assert_eq!(
            verdict,
            Ok(()),
            "coded run under fragment faults failed (seed {seed}):\n{}",
            outcome.trace.join("\n")
        );
        transfers += outcome.coverage.state_transfers_completed;
    }
    assert!(transfers > 0, "the crash window must force at least one coded state transfer");
}

/// The injected client bug's trigger buried among the new tagged fragment
/// faults: ddmin must treat them as first-class schedule events — digest
/// them, strip them as decoys and keep only the Byzantine replier.
#[test]
fn ddmin_strips_fragment_fault_decoys() {
    let mut h = CounterChaosHarness::new(4);
    h.coded_transfer = true;
    h.inject_client_bug = true;
    let mut schedule = FaultSchedule::new();
    schedule
        .net(
            SimTime::from_millis(100),
            NetFault::DropTagged { tag: 18, prob: 0.4 },
            SimDuration::from_secs(2),
        )
        .app(SimTime::from_millis(200), NodeId(1), APP_BYZ, ByzMode::CorruptReplies.code())
        .net(
            SimTime::from_millis(600),
            NetFault::CorruptTagged { tag: 16, prob: 0.4 },
            SimDuration::from_secs(2),
        );

    let seed = 5;
    let (outcome, verdict) = run_one(&mut h, seed, &schedule);
    assert!(verdict.is_err(), "trigger must fire; trace:\n{}", outcome.trace.join("\n"));

    let minimal = minimize(&mut h, seed, &schedule);
    assert_eq!(minimal.len(), 1, "tagged-fault decoys must be stripped:\n{}", minimal.describe());
    assert!(
        matches!(minimal.events[0].event, ChaosEvent::App { tag: APP_BYZ, .. }),
        "minimal schedule must retain the Byzantine replier:\n{}",
        minimal.describe()
    );
}

#[test]
fn pbft_chaos_runs_are_deterministic() {
    let mut h = CounterChaosHarness::new(4);
    let cfg = h.gen_config(6, SimDuration::from_secs(8));
    let schedule = generate_schedule(&cfg, 42);
    let (a, va) = run_one(&mut h, 42, &schedule);
    let (b, vb) = run_one(&mut h, 42, &schedule);
    assert_eq!(a.trace, b.trace, "same seed + schedule must replay the same trace");
    assert_eq!(a.stats, b.stats, "same seed + schedule must produce identical NetStats");
    assert_eq!(va, vb);
}

/// A partition that heals must be followed by every client's pending work
/// completing within the heal-to-progress bound — and the whole run
/// (coverage counters included) must be byte-identical when replayed.
#[test]
fn partition_heal_liveness_is_bounded_and_deterministic() {
    let mut schedule = FaultSchedule::new();
    schedule.net(
        SimTime::from_millis(500),
        NetFault::Partition { nodes: vec![NodeId(0)] },
        SimDuration::from_secs(2),
    );

    let run = |seed: u64| {
        let mut h = CounterChaosHarness::new(4);
        run_one(&mut h, seed, &schedule)
    };
    for seed in 0..4u64 {
        let (outcome, verdict) = run(seed);
        assert!(
            verdict.is_ok(),
            "partition heal violated a liveness bound (seed {seed}):\n{}\n{}",
            verdict.unwrap_err(),
            outcome.trace.join("\n")
        );
        let cov = outcome.coverage;
        assert!(cov.client_ops_submitted > 0, "no submissions traced:\n{cov}");
        assert_eq!(
            cov.client_ops_submitted, cov.client_ops_completed,
            "every submitted op must complete:\n{cov}"
        );
        assert!(
            cov.heal_to_progress_ns > 0,
            "some op must have completed after the heal:\n{cov}"
        );
        assert_eq!(cov.liveness_violations, 0, "{cov}");

        // Byte-identical replay: trace, stats, coverage.
        let (again, verdict2) = run(seed);
        assert_eq!(outcome, again);
        assert_eq!(verdict.is_ok(), verdict2.is_ok());
    }
}

/// The seeded stall bug — a client that never retransmits — is caught by
/// the heal-to-progress auditor and shrinks to the single partition that
/// loses the request, with the decoys stripped.
#[test]
fn stall_bug_is_caught_by_heal_to_progress_and_minimized() {
    let mut h = CounterChaosHarness::new(4);
    h.inject_stall_bug = true;

    // The trigger (a healing partition swallowing an in-flight request) is
    // buried among harmless decoys.
    let mut schedule = FaultSchedule::new();
    schedule
        .net(
            SimTime::from_millis(100),
            NetFault::Duplicate { prob: 0.2 },
            SimDuration::from_secs(2),
        )
        .net(
            SimTime::from_millis(500),
            NetFault::Partition { nodes: vec![NodeId(0)] },
            SimDuration::from_secs(2),
        )
        .net(
            SimTime::from_secs(1),
            NetFault::Slow {
                from: NodeId(1),
                to: NodeId(2),
                extra: SimDuration::from_millis(20),
            },
            SimDuration::from_secs(2),
        );

    let seed = 3;
    let (outcome, verdict) = run_one(&mut h, seed, &schedule);
    let reason = verdict.expect_err("a never-retransmitting client must stall");
    assert!(
        reason.contains("heal-to-progress"),
        "stall must be attributed to the heal-to-progress auditor, got: {reason}\n{}",
        outcome.trace.join("\n")
    );

    let minimal = minimize(&mut h, seed, &schedule);
    assert_eq!(minimal.len(), 1, "expected single-event repro:\n{}", minimal.describe());
    assert!(
        matches!(
            minimal.events[0].event,
            ChaosEvent::Net { fault: NetFault::Partition { .. }, .. }
        ),
        "minimal schedule must retain the request-losing partition:\n{}",
        minimal.describe()
    );

    // The minimized repro replays the same liveness failure exactly.
    let (a, va) = run_one(&mut h, seed, &minimal);
    let (b, vb) = run_one(&mut h, seed, &minimal);
    let ra = va.expect_err("minimal repro must still stall");
    assert!(ra.contains("heal-to-progress"), "{ra}");
    assert_eq!(a, b);
    assert_eq!(Err(ra), vb);
}
