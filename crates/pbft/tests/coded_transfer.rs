//! End-to-end tests for erasure-coded state transfer: coded recovery must
//! install byte-identical state vs the legacy whole-object path, chunked
//! Merkle leaves must enable local chunk reuse, and fragment-level network
//! faults (drops, corruption) must not prevent convergence.

use base_pbft::testing::{build_counter_group, op_add, CounterService, TestGroup};
use base_pbft::{ClientActor, Config, Replica, Service};
use base_simnet::{NodeId, SimDuration, Simulation};

fn small_config() -> Config {
    let mut cfg = Config::new(4);
    cfg.checkpoint_interval = 8;
    cfg.log_window = 32;
    cfg
}

fn enqueue(sim: &mut Simulation, client: NodeId, op: Vec<u8>, ro: bool) {
    sim.actor_as_mut::<ClientActor>(client).unwrap().enqueue(op, ro);
}

fn completed(sim: &Simulation, client: NodeId) -> usize {
    sim.actor_as::<ClientActor>(client).unwrap().completed.len()
}

fn replica<'a>(sim: &'a Simulation, g: &TestGroup, i: usize) -> &'a Replica<CounterService> {
    sim.actor_as::<Replica<CounterService>>(g.replicas[i]).unwrap()
}

/// Outcome of one cold-recovery run (replica 3 down from genesis).
struct RunOutcome {
    values: Vec<u64>,
    root: base_crypto::Digest,
    state_transfers: u64,
    fetched_bytes: u64,
    frag_queries: u64,
    chunk_queries: u64,
}

/// Runs the lagging-replica scenario (replica 3 crashed from the start,
/// revived after the group executes past several checkpoints) under `cfg`
/// and returns replica 3's converged state and transfer counters.
fn run_cold_recovery(cfg: Config, seed: u64) -> RunOutcome {
    let mut sim = Simulation::new(seed);
    let g = build_counter_group(&mut sim, cfg, 1, seed);
    let client = g.clients[0];

    sim.crash(g.replicas[3], SimDuration::from_secs(5));
    for _ in 0..30 {
        enqueue(&mut sim, client, op_add(0, 1), false);
    }
    sim.run_for(SimDuration::from_secs(5));
    assert_eq!(completed(&sim, client), 30);

    for _ in 0..20 {
        enqueue(&mut sim, client, op_add(0, 1), false);
    }
    sim.run_for(SimDuration::from_secs(10));
    assert_eq!(completed(&sim, client), 50);

    let r3 = replica(&sim, &g, 3);
    let m = r3.metrics();
    RunOutcome {
        values: (0..base_pbft::testing::COUNTER_REGS as usize)
            .map(|r| r3.service().value(r))
            .collect(),
        root: r3.service().current_tree().root_digest(),
        state_transfers: r3.stats.state_transfers,
        fetched_bytes: m.histogram("transfer.bytes_fetched").map(|h| h.sum()).unwrap_or(0),
        frag_queries: m.counter("transfer.frag_queries"),
        chunk_queries: m.counter("transfer.chunk_queries"),
    }
}

#[test]
fn coded_whole_object_recovery_matches_legacy() {
    let legacy = run_cold_recovery(small_config(), 10);
    assert!(legacy.state_transfers >= 1, "legacy run must state-transfer");
    assert_eq!(legacy.values[0], 50);

    let mut coded_cfg = small_config();
    coded_cfg.coded_transfer = true;
    let coded = run_cold_recovery(coded_cfg, 10);
    assert!(coded.state_transfers >= 1, "coded run must state-transfer");
    assert!(coded.frag_queries >= 2, "k = f+1 = 2 fragment queries at minimum");
    assert_eq!(coded.chunk_queries, 0, "chunk_size = 0 never asks for chunk lists");

    // Same digest scheme (chunk_size = 0 on both sides), so the installed
    // state must be byte-identical: same values, same certified root.
    assert_eq!(coded.values, legacy.values, "coded recovery must install identical state");
    assert_eq!(coded.root, legacy.root, "coded recovery must certify the identical root");
}

#[test]
fn chunked_coded_recovery_converges() {
    let mut cfg = small_config();
    cfg.coded_transfer = true;
    cfg.chunk_size = 4; // 8-byte registers span two chunks.
    let chunked = run_cold_recovery(cfg, 10);
    assert!(chunked.state_transfers >= 1);
    assert_eq!(chunked.values[0], 50, "chunked coded recovery must converge");
    assert!(chunked.chunk_queries >= 1, "chunked mode must fetch chunk digests");
    assert!(chunked.frag_queries >= 2, "chunks are striped into k fragments");

    // The concrete installed values agree with a legacy run even though
    // the leaf-digest scheme (and hence the root) differs.
    let legacy = run_cold_recovery(small_config(), 10);
    assert_eq!(chunked.values, legacy.values);
}

#[test]
fn warm_lagging_replica_reuses_untouched_chunks() {
    // Replica 3 executes the first batch (register 0 = 30), crashes across
    // a checkpoint window, and revives with stale-but-mostly-right state:
    // the register's high 4 bytes (chunk 0) are zero both before and after,
    // so chunked transfer re-fetches only the low chunk and reuses the
    // local copy of the untouched one.
    let mut cfg = small_config();
    cfg.coded_transfer = true;
    cfg.chunk_size = 4;
    let mut sim = Simulation::new(23);
    let g = build_counter_group(&mut sim, cfg, 1, 23);
    let client = g.clients[0];

    for _ in 0..30 {
        enqueue(&mut sim, client, op_add(0, 1), false);
    }
    sim.run_for(SimDuration::from_secs(2));
    assert_eq!(completed(&sim, client), 30);
    assert_eq!(replica(&sim, &g, 3).service().value(0), 30);

    sim.crash(g.replicas[3], SimDuration::from_secs(5));
    for _ in 0..20 {
        enqueue(&mut sim, client, op_add(0, 1), false);
    }
    sim.run_for(SimDuration::from_secs(5));
    assert_eq!(completed(&sim, client), 50);

    for _ in 0..20 {
        enqueue(&mut sim, client, op_add(0, 1), false);
    }
    sim.run_for(SimDuration::from_secs(10));
    assert_eq!(completed(&sim, client), 70);

    let r3 = replica(&sim, &g, 3);
    assert_eq!(r3.service().value(0), 70, "replica 3 must converge");
    if r3.stats.state_transfers >= 1 {
        assert!(
            r3.metrics().counter("transfer.chunks_reused") >= 1,
            "the untouched high chunk must be reused from local state"
        );
    }
}

#[test]
fn coded_recovery_survives_dropped_fragments() {
    // A lossy filter drops 30% of FragReply messages (wire tag 18): the
    // fetch window retransmits and recovery still completes.
    let mut cfg = small_config();
    cfg.coded_transfer = true;
    let mut sim = Simulation::new(31);
    let g = build_counter_group(&mut sim, cfg, 1, 31);
    let client = g.clients[0];
    sim.set_filter(Box::new(base_simnet::faults::TaggedDropper { tag: 18, prob: 0.3 }));

    sim.crash(g.replicas[3], SimDuration::from_secs(5));
    for _ in 0..30 {
        enqueue(&mut sim, client, op_add(0, 1), false);
    }
    sim.run_for(SimDuration::from_secs(5));
    for _ in 0..20 {
        enqueue(&mut sim, client, op_add(0, 1), false);
    }
    sim.run_for(SimDuration::from_secs(25));

    assert_eq!(completed(&sim, client), 50);
    let r3 = replica(&sim, &g, 3);
    assert!(r3.stats.state_transfers >= 1);
    assert_eq!(r3.service().value(0), 50, "recovery must survive dropped fragments");
}

#[test]
fn coded_recovery_survives_corrupted_fragments() {
    // Half of all FragReply bodies are bit-flipped in flight: corrupt
    // fragments fail the digest check, the fetcher escalates to parity
    // fragments and retries rotated sources until a verified reconstruction
    // lands. State must still converge to the correct values.
    let mut cfg = small_config();
    cfg.coded_transfer = true;
    let mut sim = Simulation::new(37);
    let g = build_counter_group(&mut sim, cfg, 1, 37);
    let client = g.clients[0];
    sim.set_filter(Box::new(base_simnet::faults::TaggedFlipper { tag: 18, prob: 0.5 }));

    sim.crash(g.replicas[3], SimDuration::from_secs(5));
    for _ in 0..30 {
        enqueue(&mut sim, client, op_add(0, 1), false);
    }
    sim.run_for(SimDuration::from_secs(5));
    for _ in 0..20 {
        enqueue(&mut sim, client, op_add(0, 1), false);
    }
    sim.run_for(SimDuration::from_secs(40));

    assert_eq!(completed(&sim, client), 50);
    let r3 = replica(&sim, &g, 3);
    assert!(r3.stats.state_transfers >= 1);
    assert_eq!(r3.service().value(0), 50, "corrupt fragments must never poison installed state");
    assert!(
        r3.metrics().counter("transfer.corrupt_replies") >= 1
            || r3.metrics().counter("transfer.retransmissions") >= 1,
        "the flipper must have forced at least one rejected reply or retry"
    );
}

#[test]
fn coded_transfer_is_deterministic() {
    let run = |seed: u64| {
        let mut cfg = small_config();
        cfg.coded_transfer = true;
        cfg.chunk_size = 4;
        let out = run_cold_recovery(cfg, seed);
        (out.values, out.root, out.fetched_bytes, out.frag_queries, out.chunk_queries)
    };
    assert_eq!(run(42), run(42));
}
