//! Property tests for the persistent partition tree ([`PartitionTree`]):
//! history independence, snapshot isolation, and Merkle-path verification
//! at arbitrary coordinates.

use base_crypto::Digest;
use base_pbft::tree::leaf_digest;
use base_pbft::PartitionTree;
use proptest::prelude::*;

fn arb_updates(capacity: u64) -> impl Strategy<Value = Vec<(u64, Vec<u8>)>> {
    proptest::collection::vec(
        (0..capacity, proptest::collection::vec(any::<u8>(), 0..8)),
        0..64,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The root depends only on the final leaf contents, not on the update
    /// order or on intermediate overwrites.
    #[test]
    fn root_is_history_independent(
        capacity in 1u64..300,
        branching in 2u32..17,
        updates in arb_updates(300),
    ) {
        let updates: Vec<_> =
            updates.into_iter().filter(|(i, _)| *i < capacity).collect();

        // Apply in given order (with any overwrites that occur).
        let mut a = PartitionTree::new(capacity, branching);
        for (i, v) in &updates {
            a.set_leaf(*i, leaf_digest(*i, v));
        }

        // Apply only the final value per index, in ascending index order.
        let mut finals = std::collections::BTreeMap::new();
        for (i, v) in &updates {
            finals.insert(*i, v.clone());
        }
        let mut b = PartitionTree::new(capacity, branching);
        for (i, v) in &finals {
            b.set_leaf(*i, leaf_digest(*i, v));
        }

        prop_assert_eq!(a.root_digest(), b.root_digest());
        for (i, v) in &finals {
            prop_assert_eq!(a.leaf_digest_at(*i), leaf_digest(*i, v));
        }
    }

    /// A clone is an immutable snapshot: later writes to the original
    /// never leak into it (the Arc-based COW must copy every shared path).
    #[test]
    fn snapshots_are_isolated(
        capacity in 1u64..200,
        branching in 2u32..9,
        before in arb_updates(200),
        after in arb_updates(200),
    ) {
        let before: Vec<_> = before.into_iter().filter(|(i, _)| *i < capacity).collect();
        let after: Vec<_> = after.into_iter().filter(|(i, _)| *i < capacity).collect();
        let mut t = PartitionTree::new(capacity, branching);
        for (i, v) in &before {
            t.set_leaf(*i, leaf_digest(*i, v));
        }
        let snap = t.clone();
        let root_at_snap = snap.root_digest();
        let leaves_at_snap: Vec<Digest> =
            (0..capacity).map(|i| snap.leaf_digest_at(i)).collect();
        for (i, v) in &after {
            t.set_leaf(*i, leaf_digest(*i, &[v.as_slice(), b"!"].concat()));
        }
        prop_assert_eq!(snap.root_digest(), root_at_snap);
        for i in 0..capacity {
            prop_assert_eq!(snap.leaf_digest_at(i), leaves_at_snap[i as usize]);
        }
    }

    /// Every internal node's children verify against it, at every level and
    /// index — the invariant the state-transfer fetcher relies on to walk
    /// down from a trusted root.
    #[test]
    fn all_merkle_paths_verify(
        capacity in 1u64..150,
        branching in 2u32..9,
        updates in arb_updates(150),
    ) {
        let mut t = PartitionTree::new(capacity, branching);
        for (i, v) in updates.iter().filter(|(i, _)| *i < capacity) {
            t.set_leaf(*i, leaf_digest(*i, v));
        }
        let b = t.branching() as u64;
        for level in (1..=t.depth()).rev() {
            let mut index = 0u64;
            while let Some(children) = t.children_digests(level, index) {
                // The parent's digest of this node: the root at the top
                // level, otherwise the matching entry in the parent's own
                // children vector.
                let parent = if level == t.depth() {
                    t.root_digest()
                } else {
                    let up = t
                        .children_digests(level + 1, index / b)
                        .expect("parent in range");
                    up[(index % b) as usize]
                };
                prop_assert!(
                    t.verify_children(level, &children, &parent),
                    "level {} index {}", level, index
                );
                index += 1;
            }
        }
    }

    /// A `set_leaves` batch is observationally identical to the equivalent
    /// sequential `set_leaf` loop — same root and same `children_digests`
    /// at every internal coordinate — for any update order, including
    /// duplicate indices (last write wins in both).
    #[test]
    fn batched_updates_match_sequential(
        capacity in 1u64..300,
        branching in 2u32..17,
        updates in arb_updates(300),
    ) {
        let updates: Vec<_> =
            updates.into_iter().filter(|(i, _)| *i < capacity).collect();

        let mut seq = PartitionTree::new(capacity, branching);
        for (i, v) in &updates {
            seq.set_leaf(*i, leaf_digest(*i, v));
        }

        let mut batched = PartitionTree::new(capacity, branching);
        let stats = batched.set_leaves(
            updates.iter().map(|(i, v)| (*i, leaf_digest(*i, v))),
        );
        prop_assert_eq!(stats.leaves_updated as usize,
            updates.iter().map(|(i, _)| *i).collect::<std::collections::BTreeSet<_>>().len());

        prop_assert_eq!(seq.root_digest(), batched.root_digest());
        for level in 1..=seq.depth() {
            let mut index = 0u64;
            loop {
                let (a, b) = (
                    seq.children_digests(level, index),
                    batched.children_digests(level, index),
                );
                prop_assert_eq!(&a, &b, "level {} index {}", level, index);
                if a.is_none() {
                    break;
                }
                index += 1;
            }
        }
        for i in 0..capacity {
            prop_assert_eq!(seq.leaf_digest_at(i), batched.leaf_digest_at(i));
        }
    }

    /// Splitting one batch into several smaller batches (in order) gives
    /// the same tree, so incremental flushes compose.
    #[test]
    fn batch_splits_compose(
        capacity in 1u64..200,
        branching in 2u32..9,
        updates in arb_updates(200),
        split in 0usize..64,
    ) {
        let updates: Vec<_> =
            updates.into_iter().filter(|(i, _)| *i < capacity).collect();
        let split = split.min(updates.len());

        let mut whole = PartitionTree::new(capacity, branching);
        whole.set_leaves(updates.iter().map(|(i, v)| (*i, leaf_digest(*i, v))));

        let mut parts = PartitionTree::new(capacity, branching);
        parts.set_leaves(updates[..split].iter().map(|(i, v)| (*i, leaf_digest(*i, v))));
        parts.set_leaves(updates[split..].iter().map(|(i, v)| (*i, leaf_digest(*i, v))));

        prop_assert_eq!(whole.root_digest(), parts.root_digest());
    }

    /// Two trees whose leaves differ anywhere have different roots (no
    /// silent collisions from the index-binding or level-binding scheme).
    #[test]
    fn differing_leaves_give_differing_roots(
        capacity in 2u64..100,
        branching in 2u32..9,
        updates in arb_updates(100),
        victim in 0u64..100,
    ) {
        let victim = victim % capacity;
        let mut a = PartitionTree::new(capacity, branching);
        for (i, v) in updates.iter().filter(|(i, _)| *i < capacity) {
            a.set_leaf(*i, leaf_digest(*i, v));
        }
        let mut b = a.clone();
        b.set_leaf(victim, leaf_digest(victim, b"\xffdivergent"));
        if a.leaf_digest_at(victim) != b.leaf_digest_at(victim) {
            prop_assert_ne!(a.root_digest(), b.root_digest());
        }
    }
}
