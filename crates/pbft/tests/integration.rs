//! End-to-end protocol tests on the simulated network: normal case,
//! checkpointing, crash and Byzantine faults, view changes, state transfer,
//! lossy networks, and proactive recovery.

use base_pbft::testing::{build_counter_group, op_add, op_get, CounterService, TestGroup};
use base_pbft::{ByzMode, ClientActor, Config, Replica};
use base_simnet::{NodeId, SimDuration, Simulation};

fn small_config() -> Config {
    let mut cfg = Config::new(4);
    // Small checkpoint interval so tests cross checkpoints quickly.
    cfg.checkpoint_interval = 8;
    cfg.log_window = 32;
    cfg
}

fn enqueue(sim: &mut Simulation, client: NodeId, op: Vec<u8>, ro: bool) {
    sim.actor_as_mut::<ClientActor>(client).unwrap().enqueue(op, ro);
}

fn completed(sim: &Simulation, client: NodeId) -> &[(u64, Vec<u8>)] {
    &sim.actor_as::<ClientActor>(client).unwrap().completed
}

fn replica<'a>(sim: &'a Simulation, g: &TestGroup, i: usize) -> &'a Replica<CounterService> {
    sim.actor_as::<Replica<CounterService>>(g.replicas[i]).unwrap()
}

#[test]
fn normal_case_sequence_of_writes() {
    let mut sim = Simulation::new(1);
    let g = build_counter_group(&mut sim, small_config(), 1, 1);
    let client = g.clients[0];
    for i in 1..=20u64 {
        enqueue(&mut sim, client, op_add(0, i), false);
    }
    sim.run_for(SimDuration::from_secs(2));

    let done = completed(&sim, client);
    assert_eq!(done.len(), 20);
    // Results are the running sums 1, 3, 6, ...
    let mut sum = 0;
    for (i, (_ts, result)) in done.iter().enumerate() {
        sum += (i as u64) + 1;
        assert_eq!(result, sum.to_string().as_bytes());
    }
    // All replicas converge to the same value.
    for i in 0..4 {
        assert_eq!(replica(&sim, &g, i).service().value(0), 210);
    }
}

#[test]
fn checkpoints_become_stable_and_log_is_gced() {
    let mut sim = Simulation::new(2);
    let g = build_counter_group(&mut sim, small_config(), 1, 2);
    let client = g.clients[0];
    for _ in 0..30 {
        enqueue(&mut sim, client, op_add(1, 1), false);
    }
    sim.run_for(SimDuration::from_secs(3));
    assert_eq!(completed(&sim, client).len(), 30);
    for i in 0..4 {
        let r = replica(&sim, &g, i);
        assert!(r.stable_seq() >= 16, "replica {i} stable at {}", r.stable_seq());
        assert!(r.stats.checkpoints_taken >= 2);
    }
}

#[test]
fn read_only_optimization() {
    let mut sim = Simulation::new(3);
    let g = build_counter_group(&mut sim, small_config(), 1, 3);
    let client = g.clients[0];
    enqueue(&mut sim, client, op_add(2, 42), false);
    enqueue(&mut sim, client, op_get(2), true);
    sim.run_for(SimDuration::from_secs(1));
    let done = completed(&sim, client);
    assert_eq!(done.len(), 2);
    assert_eq!(done[1].1, b"42");
    // The read-only op must not consume a sequence number at the replicas.
    assert_eq!(replica(&sim, &g, 0).last_exec(), 1);
}

#[test]
fn tolerates_one_crashed_backup() {
    let mut sim = Simulation::new(4);
    let g = build_counter_group(&mut sim, small_config(), 1, 4);
    let client = g.clients[0];
    sim.crash_forever(g.replicas[2]); // A backup.
    for _ in 0..10 {
        enqueue(&mut sim, client, op_add(0, 1), false);
    }
    sim.run_for(SimDuration::from_secs(2));
    assert_eq!(completed(&sim, client).len(), 10);
}

#[test]
fn masks_one_byzantine_reply_corruptor() {
    let mut sim = Simulation::new(5);
    let g = build_counter_group(&mut sim, small_config(), 1, 5);
    let client = g.clients[0];
    sim.actor_as_mut::<Replica<CounterService>>(g.replicas[1])
        .unwrap()
        .set_byzantine(ByzMode::CorruptReplies);
    for i in 1..=10u64 {
        enqueue(&mut sim, client, op_add(0, i), false);
    }
    sim.run_for(SimDuration::from_secs(2));
    let done = completed(&sim, client);
    assert_eq!(done.len(), 10);
    assert_eq!(done[9].1, b"55", "corrupted replies must never win the quorum");
}

#[test]
fn masks_one_mute_replica() {
    let mut sim = Simulation::new(6);
    let g = build_counter_group(&mut sim, small_config(), 1, 6);
    let client = g.clients[0];
    sim.actor_as_mut::<Replica<CounterService>>(g.replicas[3])
        .unwrap()
        .set_byzantine(ByzMode::Mute);
    for _ in 0..10 {
        enqueue(&mut sim, client, op_add(0, 2), false);
    }
    sim.run_for(SimDuration::from_secs(2));
    assert_eq!(completed(&sim, client).len(), 10);
}

#[test]
fn masks_a_commit_withholder() {
    let mut sim = Simulation::new(15);
    let g = build_counter_group(&mut sim, small_config(), 1, 15);
    let client = g.clients[0];
    sim.actor_as_mut::<Replica<CounterService>>(g.replicas[2])
        .unwrap()
        .set_byzantine(ByzMode::WithholdCommits);
    for _ in 0..10 {
        enqueue(&mut sim, client, op_add(0, 1), false);
    }
    sim.run_for(SimDuration::from_secs(3));
    assert_eq!(completed(&sim, client).len(), 10, "2f+1 commits still form without it");
}

#[test]
fn byzantine_designated_replier_cannot_block_completion() {
    // The reply optimization designates one replica to send the full
    // result. If that replica corrupts its replies, the client's digest
    // quorum never matches its body; retransmission rotates the designee
    // and the operation still completes with the correct result.
    let mut sim = Simulation::new(16);
    let g = build_counter_group(&mut sim, small_config(), 1, 16);
    let client = g.clients[0];
    sim.actor_as_mut::<Replica<CounterService>>(g.replicas[1])
        .unwrap()
        .set_byzantine(ByzMode::CorruptReplies);
    // Timestamps start at 1; ops whose (ts % 4) == 1 designate replica 1.
    for i in 1..=8u64 {
        enqueue(&mut sim, client, op_add(0, i), false);
    }
    sim.run_for(SimDuration::from_secs(20));
    let done = completed(&sim, client);
    assert_eq!(done.len(), 8);
    assert_eq!(done[7].1, b"36");
    let retrans = sim.actor_as::<ClientActor>(client).unwrap().core().retransmissions;
    assert!(retrans >= 1, "the faulty designee forces at least one rotation");
}

#[test]
fn view_change_on_crashed_primary() {
    let mut sim = Simulation::new(7);
    let g = build_counter_group(&mut sim, small_config(), 1, 7);
    let client = g.clients[0];
    sim.crash_forever(g.replicas[0]); // The view-0 primary.
    for _ in 0..5 {
        enqueue(&mut sim, client, op_add(0, 3), false);
    }
    sim.run_for(SimDuration::from_secs(10));
    let done = completed(&sim, client);
    assert_eq!(done.len(), 5, "operations must complete after the view change");
    for i in 1..4 {
        let r = replica(&sim, &g, i);
        assert!(r.view() >= 1, "replica {i} still in view {}", r.view());
        assert_eq!(r.service().value(0), 15);
    }
}

#[test]
fn view_change_on_mute_primary_mid_stream() {
    let mut sim = Simulation::new(8);
    let g = build_counter_group(&mut sim, small_config(), 1, 8);
    let client = g.clients[0];
    for _ in 0..6 {
        enqueue(&mut sim, client, op_add(0, 1), false);
    }
    sim.run_for(SimDuration::from_secs(1));
    assert_eq!(completed(&sim, client).len(), 6);

    // Now the primary goes mute; remaining ops need a view change.
    sim.actor_as_mut::<Replica<CounterService>>(g.replicas[0])
        .unwrap()
        .set_byzantine(ByzMode::Mute);
    for _ in 0..6 {
        enqueue(&mut sim, client, op_add(0, 1), false);
    }
    sim.run_for(SimDuration::from_secs(10));
    assert_eq!(completed(&sim, client).len(), 12);
    for i in 1..4 {
        assert_eq!(replica(&sim, &g, i).service().value(0), 12);
    }
}

#[test]
fn equivocating_primary_is_replaced_or_harmless() {
    let mut sim = Simulation::new(9);
    let g = build_counter_group(&mut sim, small_config(), 1, 9);
    let client = g.clients[0];
    sim.actor_as_mut::<Replica<CounterService>>(g.replicas[0])
        .unwrap()
        .set_byzantine(ByzMode::EquivocatePrimary);
    for _ in 0..8 {
        enqueue(&mut sim, client, op_add(0, 1), false);
    }
    sim.run_for(SimDuration::from_secs(15));
    let done = completed(&sim, client);
    assert_eq!(done.len(), 8);
    // Safety: all correct replicas agree.
    let vals: Vec<u64> = (1..4).map(|i| replica(&sim, &g, i).service().value(0)).collect();
    assert!(vals.iter().all(|v| *v == vals[0]), "divergent state: {vals:?}");
    assert_eq!(vals[0], 8);
}

#[test]
fn lagging_replica_catches_up_via_state_transfer() {
    let mut sim = Simulation::new(10);
    let g = build_counter_group(&mut sim, small_config(), 1, 10);
    let client = g.clients[0];

    // Take replica 3 down while the group executes past a checkpoint.
    sim.crash(g.replicas[3], SimDuration::from_secs(5));
    for _ in 0..30 {
        enqueue(&mut sim, client, op_add(0, 1), false);
    }
    sim.run_for(SimDuration::from_secs(5));
    assert_eq!(completed(&sim, client).len(), 30);

    // Replica 3 comes back; keep traffic flowing so checkpoint messages
    // reach it and it state-transfers.
    for _ in 0..20 {
        enqueue(&mut sim, client, op_add(0, 1), false);
    }
    sim.run_for(SimDuration::from_secs(10));

    let r3 = replica(&sim, &g, 3);
    assert!(r3.stats.state_transfers >= 1, "replica 3 must have fetched state");
    assert_eq!(r3.service().value(0), 50, "replica 3 must converge");
}

#[test]
fn survives_lossy_network() {
    let mut sim = Simulation::new(11);
    let g = build_counter_group(&mut sim, small_config(), 1, 11);
    let client = g.clients[0];
    sim.config_mut().drop_prob = 0.05;
    for _ in 0..15 {
        enqueue(&mut sim, client, op_add(0, 1), false);
    }
    sim.run_for(SimDuration::from_secs(30));
    assert_eq!(completed(&sim, client).len(), 15);
}

#[test]
fn replaced_replica_rejoins_and_catches_up() {
    // On-line software replacement (the upgrade scenario the paper's
    // abstraction enables): replica 2's machine is reinstalled mid-run
    // with a brand-new service instance. The replacement starts from
    // genesis state, learns the group's stable checkpoint through its
    // probes, state-transfers, and converges.
    let mut sim = Simulation::new(19);
    let g = build_counter_group(&mut sim, small_config(), 1, 19);
    let client = g.clients[0];
    for i in 1..=20u64 {
        enqueue(&mut sim, client, op_add(0, i), false);
    }
    sim.run_for(SimDuration::from_secs(2));
    assert_eq!(completed(&sim, client).len(), 20);

    // Reinstall replica 2 with fresh software (same node identity/keys).
    let keys = base_crypto::NodeKeys::new(g.dir.clone(), 2);
    sim.replace_node(
        g.replicas[2],
        Box::new(Replica::new(g.cfg.clone(), keys, CounterService::default())),
    );
    assert_eq!(replica(&sim, &g, 2).service().value(0), 0, "fresh instance starts empty");

    // More traffic; the newcomer must catch up (state transfer + replay).
    for i in 0..10u64 {
        enqueue(&mut sim, client, op_add(1, i), false);
    }
    sim.run_for(SimDuration::from_secs(20));
    assert_eq!(completed(&sim, client).len(), 30);
    assert_eq!(replica(&sim, &g, 2).service().value(0), 210, "replacement caught up");
    assert_eq!(replica(&sim, &g, 2).service().value(1), 45);

    // And it is a full participant again: crash a different replica and
    // the group (now depending on the newcomer) still makes progress.
    sim.crash(g.replicas[3], SimDuration::from_secs(60));
    enqueue(&mut sim, client, op_add(0, 5), false);
    sim.run_for(SimDuration::from_secs(10));
    assert_eq!(completed(&sim, client).len(), 31);
    assert_eq!(replica(&sim, &g, 2).service().value(0), 215);
}

#[test]
fn late_replacement_accepts_agreed_but_stale_timestamps() {
    // The replacement happens long after the original agreements, so every
    // resent batch carries a non-deterministic timestamp far outside the
    // newcomer's freshness window. It must not endorse them (no prepares),
    // but it must accept the quorum's commits and converge — otherwise any
    // replica that is down longer than the skew tolerance could never
    // rejoin without a stable checkpoint to transfer.
    let mut sim = Simulation::new(21);
    let g = build_counter_group(&mut sim, small_config(), 1, 21);
    let client = g.clients[0];
    // Too few ops to ever reach a stable checkpoint (interval 8 needs 8).
    for i in 1..=5u64 {
        enqueue(&mut sim, client, op_add(0, i), false);
    }
    sim.run_for(SimDuration::from_secs(2));
    assert_eq!(completed(&sim, client).len(), 5);

    // Let far more than the 10 s non-determinism skew tolerance pass.
    sim.run_for(SimDuration::from_secs(60));
    let keys = base_crypto::NodeKeys::new(g.dir.clone(), 3);
    sim.replace_node(
        g.replicas[3],
        Box::new(Replica::new(g.cfg.clone(), keys, CounterService::default())),
    );
    sim.run_for(SimDuration::from_secs(20));
    assert_eq!(
        replica(&sim, &g, 3).service().value(0),
        15,
        "newcomer must converge on quorum-agreed batches despite stale timestamps"
    );
}

#[test]
fn survives_duplicated_messages() {
    // A Duplicator filter re-delivers a third of all messages: every
    // protocol step must be idempotent.
    let mut sim = Simulation::new(17);
    let g = build_counter_group(&mut sim, small_config(), 1, 17);
    let client = g.clients[0];
    sim.set_filter(Box::new(base_simnet::faults::Duplicator {
        prob: 0.33,
        dup_delay: SimDuration::from_micros(700),
    }));
    for i in 1..=15u64 {
        enqueue(&mut sim, client, op_add(0, i), false);
    }
    sim.run_for(SimDuration::from_secs(5));
    let done = completed(&sim, client);
    assert_eq!(done.len(), 15);
    assert_eq!(done[14].1, b"120", "duplicates must not double-execute");
    for i in 0..4 {
        assert_eq!(replica(&sim, &g, i).service().value(0), 120);
    }
}

#[test]
fn survives_slow_asymmetric_link() {
    // One direction of one link is congested; the protocol masks it.
    let mut sim = Simulation::new(18);
    let g = build_counter_group(&mut sim, small_config(), 1, 18);
    let client = g.clients[0];
    sim.set_filter(Box::new(base_simnet::faults::SlowLink {
        from: g.replicas[0],
        to: g.replicas[2],
        extra: SimDuration::from_millis(40),
    }));
    for _ in 0..10 {
        enqueue(&mut sim, client, op_add(0, 1), false);
    }
    sim.run_for(SimDuration::from_secs(10));
    assert_eq!(completed(&sim, client).len(), 10);
}

#[test]
fn multiple_clients_interleave() {
    let mut sim = Simulation::new(12);
    let g = build_counter_group(&mut sim, small_config(), 3, 12);
    for (i, &c) in g.clients.iter().enumerate() {
        for _ in 0..8 {
            enqueue(&mut sim, c, op_add(i as u64, 1), false);
        }
    }
    sim.run_for(SimDuration::from_secs(3));
    for &c in &g.clients {
        assert_eq!(completed(&sim, c).len(), 8);
    }
    for r in 0..4 {
        for reg in 0..3 {
            assert_eq!(replica(&sim, &g, r).service().value(reg), 8);
        }
    }
}

#[test]
fn proactive_recovery_keeps_service_available() {
    let mut sim = Simulation::new(13);
    let mut cfg = small_config();
    cfg.recovery_period = Some(SimDuration::from_secs(20));
    cfg.reboot_time = SimDuration::from_millis(500);
    let g = build_counter_group(&mut sim, cfg, 1, 13);
    let client = g.clients[0];

    // Feed a steady stream across a full recovery rotation.
    for _ in 0..100 {
        enqueue(&mut sim, client, op_add(0, 1), false);
    }
    sim.run_for(SimDuration::from_secs(60));

    assert_eq!(completed(&sim, client).len(), 100, "service must stay available");
    let mut recovered = 0;
    for i in 0..4 {
        recovered += replica(&sim, &g, i).stats.recoveries;
    }
    assert!(recovered >= 4, "every replica should have recovered at least once, got {recovered}");
    for i in 0..4 {
        assert_eq!(replica(&sim, &g, i).service().value(0), 100);
    }
}

#[test]
fn deterministic_runs_with_same_seed() {
    let run = |seed: u64| {
        let mut sim = Simulation::new(seed);
        let g = build_counter_group(&mut sim, small_config(), 1, seed);
        let client = g.clients[0];
        for i in 0..12u64 {
            enqueue(&mut sim, client, op_add(i % 4, i), false);
        }
        sim.run_for(SimDuration::from_secs(2));
        (
            completed(&sim, client).to_vec(),
            sim.stats().messages_delivered,
            sim.stats().bytes_delivered,
        )
    };
    assert_eq!(run(42), run(42));
}

#[test]
fn byzantine_checkpoint_liar_cannot_poison_state_transfer() {
    let mut sim = Simulation::new(14);
    let g = build_counter_group(&mut sim, small_config(), 1, 14);
    let client = g.clients[0];
    sim.actor_as_mut::<Replica<CounterService>>(g.replicas[1])
        .unwrap()
        .set_byzantine(ByzMode::CorruptCheckpoints);

    sim.crash(g.replicas[3], SimDuration::from_secs(4));
    for _ in 0..30 {
        enqueue(&mut sim, client, op_add(0, 1), false);
    }
    sim.run_for(SimDuration::from_secs(4));
    for _ in 0..20 {
        enqueue(&mut sim, client, op_add(0, 1), false);
    }
    sim.run_for(SimDuration::from_secs(16));

    assert_eq!(completed(&sim, client).len(), 50);
    // The recovering replica must have converged to the *correct* state
    // despite the liar: fetched objects verify against the certified root.
    assert_eq!(replica(&sim, &g, 3).service().value(0), 50);
}

#[test]
fn view_change_storm_timeout_is_capped() {
    // Mute everyone except backup 1: its view-change chase can never
    // install a new view (no f+1 joins, no quorum), so the escalation
    // timer doubles on every expiry. The doubling must stop exactly at
    // the configured cap instead of growing without bound.
    let mut cfg = small_config();
    cfg.view_change_timeout = SimDuration::from_millis(200);
    cfg.view_change_timeout_cap = SimDuration::from_secs(1);
    let mut sim = Simulation::new(77);
    let g = build_counter_group(&mut sim, cfg.clone(), 1, 77);
    for &i in &[0usize, 2, 3] {
        sim.actor_as_mut::<Replica<CounterService>>(g.replicas[i])
            .unwrap()
            .set_byzantine(ByzMode::Mute);
    }
    enqueue(&mut sim, g.clients[0], op_add(0, 1), false);
    sim.run_for(SimDuration::from_secs(12));

    let chaser = replica(&sim, &g, 1);
    assert_eq!(
        chaser.vc_timeout(),
        cfg.view_change_timeout_cap,
        "escalating chase must pin the timeout at the cap"
    );
    // The chase actually escalated through several views.
    assert!(chaser.view() >= 4, "expected a long chase, got view {}", chaser.view());
}

#[test]
fn primary_elect_holds_requests_instead_of_self_forwarding() {
    // Same muted-group chase as above, but driven long enough that the
    // chaser passes through views where it is itself the primary-elect
    // (view 5, 9, ... for replica 1 of 4). A request arriving then used
    // to be "forwarded to the primary" — i.e. sent to itself, which
    // re-entered handle_request still mid view change and forwarded
    // again: an infinite self-send loop that melted the simulation at
    // ~300k messages per virtual second. Held requests keep the message
    // count sane; the bound here is ~100x headroom over the observed
    // fixed-behaviour count yet ~1000x below the runaway one.
    let mut cfg = small_config();
    cfg.view_change_timeout = SimDuration::from_millis(200);
    cfg.view_change_timeout_cap = SimDuration::from_millis(400);
    let mut sim = Simulation::new(78);
    let g = build_counter_group(&mut sim, cfg, 1, 78);
    for &i in &[0usize, 2, 3] {
        sim.actor_as_mut::<Replica<CounterService>>(g.replicas[i])
            .unwrap()
            .set_byzantine(ByzMode::Mute);
    }
    enqueue(&mut sim, g.clients[0], op_add(0, 1), false);
    sim.run_for(SimDuration::from_secs(20));

    let chaser = replica(&sim, &g, 1);
    assert!(chaser.view() >= 5, "chase never reached a self-primary view: {}", chaser.view());
    assert!(
        sim.stats().messages_sent < 100_000,
        "message count exploded ({}): request self-forward loop is back",
        sim.stats().messages_sent
    );
}
