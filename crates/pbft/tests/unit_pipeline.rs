//! Unit tests for the agreement/execution pipeline: the read-only
//! staleness guard (replies must reflect the last *executed* state, never
//! a committed-but-unexecuted backlog) and the tentative/committed reply
//! distinction on the wire.
//!
//! A single real [`Replica`] (backup 3) runs against hand-crafted protocol
//! messages, so the test controls exactly which slots commit and in which
//! order — including a gap (seq 2 committed before seq 1 arrives) that a
//! live group only produces under message loss.

use base_crypto::{Authenticator, Digest, KeyDirectory, NodeKeys};
use base_pbft::messages::{CommitMsg, PrePrepareMsg, PrepareMsg, ReplyMsg, RequestMsg};
use base_pbft::testing::{build_counter_group, op_add, op_get, CounterService};
use base_pbft::{ClientActor, Config, Message, Replica};
use base_simnet::{Actor, Context, NodeId, SimDuration, Simulation};

const N: usize = 4;
/// The replica under test (a backup; primary of view 0 is replica 0).
const RID: u32 = 3;
/// The client's key index / node id.
const CLIENT: u32 = 4;

/// Absorbs everything (stands in for the other replicas).
struct Sink;
impl Actor for Sink {
    fn on_message(&mut self, _from: NodeId, _payload: &[u8], _ctx: &mut Context<'_>) {}
}

/// Records every reply the client node receives.
#[derive(Default)]
struct Recorder {
    replies: Vec<ReplyMsg>,
}
impl Actor for Recorder {
    fn on_message(&mut self, _from: NodeId, payload: &[u8], _ctx: &mut Context<'_>) {
        if let Some(Message::Reply(r)) = Message::from_wire(payload) {
            self.replies.push(r);
        }
    }
}

struct Rig {
    sim: Simulation,
    dir: KeyDirectory,
    replica: NodeId,
    client: NodeId,
}

fn rig() -> Rig {
    let mut cfg = Config::new(N);
    // Let the backup hold several unexecuted slots without hitting limits.
    cfg.max_inflight = 16;
    cfg.pipeline_depth = 16;
    let mut sim = Simulation::new(77);
    let dir = KeyDirectory::generate(N + 1, 77);
    for _ in 0..3 {
        sim.add_node(Box::new(Sink));
    }
    let replica = sim.add_node(Box::new(Replica::new(
        cfg,
        NodeKeys::new(dir.clone(), RID as usize),
        CounterService::default(),
    )));
    let client = sim.add_node(Box::new(Recorder::default()));
    Rig { sim, dir, replica, client }
}

impl Rig {
    fn keys(&self, id: usize) -> NodeKeys {
        NodeKeys::new(self.dir.clone(), id)
    }

    fn request(&self, ts: u64, read_only: bool, op: Vec<u8>) -> RequestMsg {
        // Full replier 3 = the replica under test, so replies carry the
        // full result rather than its digest.
        let mut r = RequestMsg::new(CLIENT, ts, read_only, RID, op);
        r.auth = Authenticator::generate(&self.keys(CLIENT as usize), N, &r.digest());
        r
    }

    fn pre_prepare(&self, seq: u64, requests: Vec<RequestMsg>) -> PrePrepareMsg {
        let primary = self.keys(0);
        let mut pp = PrePrepareMsg::new(0, seq, requests, Vec::new());
        pp.sig = primary.sign(&pp.signed_bytes());
        pp.auth = Authenticator::generate(&primary, N, &pp.batch_digest());
        pp
    }

    fn prepare(&self, seq: u64, digest: Digest, from: u32) -> PrepareMsg {
        let keys = self.keys(from as usize);
        let mut p = PrepareMsg {
            view: 0,
            seq,
            digest,
            replica: from,
            auth: Authenticator::default(),
            sig: base_crypto::Signature([0; 32]),
        };
        p.sig = keys.sign(&p.signed_bytes());
        p.auth = Authenticator::generate(&keys, N, &Digest::of(&p.signed_bytes()));
        p
    }

    fn commit(&self, seq: u64, digest: Digest, from: u32) -> CommitMsg {
        let keys = self.keys(from as usize);
        let mut c = CommitMsg { view: 0, seq, digest, replica: from, auth: Authenticator::default() };
        c.auth = Authenticator::generate(&keys, N, &Digest::of(&c.signed_bytes()));
        c
    }

    /// Delivers the full agreement round for one slot: pre-prepare from
    /// the primary, prepares from backups 1–2, commits from 1–2 (the
    /// replica's own prepare and commit complete both quorums).
    fn commit_slot(&mut self, pp: PrePrepareMsg) {
        let digest = pp.batch_digest();
        let seq = pp.seq;
        self.inject(0, Message::PrePrepare(pp));
        for from in [1u32, 2] {
            let p = self.prepare(seq, digest, from);
            self.inject(from as usize, Message::Prepare(p));
        }
        for from in [1u32, 2] {
            let c = self.commit(seq, digest, from);
            self.inject(from as usize, Message::Commit(c));
        }
    }

    fn inject(&mut self, from: usize, msg: Message) {
        self.sim.inject(NodeId(from), self.replica, msg.to_wire());
    }

    fn run(&mut self, ms: u64) {
        self.sim.run_for(SimDuration::from_millis(ms));
    }

    fn replies(&self) -> Vec<ReplyMsg> {
        self.sim.actor_as::<Recorder>(self.client).unwrap().replies.clone()
    }

    fn replica(&self) -> &Replica<CounterService> {
        self.sim.actor_as::<Replica<CounterService>>(self.replica).unwrap()
    }
}

/// The satellite scenario: seq 2 commits while seq 1 is still missing, so
/// the replica has agreed state it has not executed. A read-only request
/// arriving in that window must NOT be answered from the stale executed
/// state; it is deferred and answered — marked tentative — once execution
/// catches up and reflects every committed write.
#[test]
fn read_only_deferred_across_commit_gap() {
    let mut r = rig();
    let pp1 = r.pre_prepare(1, vec![r.request(1, false, op_add(0, 10))]);
    let pp2 = r.pre_prepare(2, vec![r.request(2, false, op_add(0, 32))]);

    // Commit seq 2 first: committed backlog with a gap at seq 1.
    r.commit_slot(pp2);
    r.run(50);
    assert_eq!(r.replica().last_exec(), 0, "gap at seq 1 must block execution");

    // Read-only arrives during the window: no reply may be sent.
    let ro = r.request(3, true, op_get(0));
    r.inject(CLIENT as usize, Message::Request(ro));
    r.run(50);
    assert!(
        r.replies().is_empty(),
        "read-only reply during a committed-but-unexecuted backlog would be stale"
    );

    // Fill the gap: both slots execute, then the deferred read drains.
    r.commit_slot(pp1);
    r.run(50);
    assert_eq!(r.replica().last_exec(), 2);
    assert_eq!(r.replica().service().value(0), 42);

    let replies = r.replies();
    let ro_reply = replies
        .iter()
        .find(|m| m.timestamp == 3)
        .expect("deferred read-only must be answered after execution catches up");
    assert!(ro_reply.tentative, "read-only replies bypass agreement and are tentative");
    assert_eq!(ro_reply.result, b"42", "read reflects every committed write, not stale state");

    // The agreed writes replied too, and those are NOT tentative.
    for ts in [1u64, 2] {
        let reply = replies.iter().find(|m| m.timestamp == ts).expect("write replied");
        assert!(!reply.tentative, "agreed writes are committed replies");
    }
}

/// A read-only request with no backlog is answered immediately (no
/// deferral in the common case), still marked tentative.
#[test]
fn read_only_immediate_when_no_backlog() {
    let mut r = rig();
    let pp1 = r.pre_prepare(1, vec![r.request(1, false, op_add(5, 7))]);
    r.commit_slot(pp1);
    r.run(50);
    assert_eq!(r.replica().last_exec(), 1);

    let ro = r.request(2, true, op_get(5));
    r.inject(CLIENT as usize, Message::Request(ro));
    r.run(50);
    let replies = r.replies();
    let reply = replies.iter().find(|m| m.timestamp == 2).expect("answered without deferral");
    assert!(reply.tentative);
    assert_eq!(reply.result, b"7");
}

/// End-to-end sanity for the pipeline gate: a group running with a deep
/// pipeline (agreement ahead of execution) and parallel execution workers
/// completes every request and converges — and a depth-1 group (the
/// serial lockstep oracle) produces the same final state.
#[test]
fn pipelined_group_matches_serial_oracle() {
    let run = |depth: u64, workers: usize| -> (Vec<Vec<u8>>, u64) {
        let mut cfg = Config::new(N);
        cfg.max_inflight = 16;
        cfg.pipeline_depth = depth;
        cfg.exec_workers = workers;
        let mut sim = Simulation::new(9);
        let g = build_counter_group(&mut sim, cfg, 1, 9);
        let client = g.clients[0];
        {
            let c = sim.actor_as_mut::<ClientActor>(client).unwrap();
            for i in 0..30u64 {
                c.enqueue(op_add(i % 4, i + 1), false);
            }
        }
        sim.run_for(SimDuration::from_secs(5));
        let results: Vec<Vec<u8>> = sim
            .actor_as::<ClientActor>(client)
            .unwrap()
            .completed
            .iter()
            .map(|(_, body)| body.clone())
            .collect();
        let value = sim
            .actor_as::<Replica<CounterService>>(g.replicas[0])
            .unwrap()
            .service()
            .value(0) as u64;
        (results, value)
    };

    let (oracle_results, oracle_value) = run(1, 1);
    assert_eq!(oracle_results.len(), 30, "serial oracle completes everything");
    for (depth, workers) in [(4, 1), (4, 8), (16, 2)] {
        let (results, value) = run(depth, workers);
        assert_eq!(
            results, oracle_results,
            "depth={depth} workers={workers} diverged from the serial oracle"
        );
        assert_eq!(value, oracle_value);
    }
}
