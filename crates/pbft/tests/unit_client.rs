//! Unit tests for the client-side protocol ([`ClientCore`] via
//! [`ClientActor`]): reply-quorum counting, the digest-reply optimization,
//! MAC rejection, the read-only fallback, and full-replier rotation.
//!
//! A programmable `MockReplica` stands in for the whole replica group so
//! each test controls exactly which replies the client sees.

use base_crypto::{Authenticator, Digest, KeyDirectory, NodeKeys};
use base_pbft::messages::{ReplyMsg, RequestMsg};
use base_pbft::{ClientActor, Config, Message};
use base_simnet::{Actor, Context, NodeId, SimDuration, Simulation};

/// What a mock replica does with each request it receives.
#[derive(Clone, Copy, PartialEq)]
enum Policy {
    /// Reply with the correct result (full body or digest depending on the
    /// request's `full_replier` designation).
    Honest,
    /// Reply with a *different* result (still correctly MAC'd).
    WrongResult,
    /// Reply with a garbage MAC.
    BadMac,
    /// Never reply.
    Mute,
}

struct MockReplica {
    keys: NodeKeys,
    id: u32,
    n: usize,
    policy: Policy,
    /// Requests seen, as (timestamp, full_replier, read_only, sender).
    seen: Vec<(u64, u32, bool, usize)>,
}

impl MockReplica {
    fn new(dir: KeyDirectory, id: u32, n: usize, policy: Policy) -> Self {
        Self { keys: NodeKeys::new(dir, id as usize), id, n, policy, seen: Vec::new() }
    }

    fn reply_to(&self, req: &RequestMsg, ctx: &mut Context<'_>) {
        let body: Vec<u8> = match self.policy {
            Policy::WrongResult => b"WRONG".to_vec(),
            _ => {
                let mut b = b"ok:".to_vec();
                b.extend_from_slice(req.op());
                b
            }
        };
        let designated = req.full_replier % self.n as u32 == self.id;
        let (digest_only, result) = if designated {
            (false, body)
        } else {
            (true, Digest::of(&body).0.to_vec())
        };
        let mut reply = ReplyMsg {
            view: 0,
            timestamp: req.timestamp(),
            client: req.client(),
            replica: self.id,
            digest_only,
            tentative: req.read_only(),
            result,
            mac: base_crypto::Mac([0; 8]),
        };
        reply.mac = Authenticator::point(&self.keys, req.client() as usize, &reply.digest());
        if self.policy == Policy::BadMac {
            reply.mac.0[0] ^= 0xff;
        }
        ctx.send(NodeId(req.client() as usize), Message::Reply(reply).to_wire());
    }
}

impl Actor for MockReplica {
    fn on_message(&mut self, from: NodeId, payload: &[u8], ctx: &mut Context<'_>) {
        let Some(Message::Request(req)) = Message::from_wire(payload) else { return };
        self.seen.push((req.timestamp(), req.full_replier, req.read_only(), from.0));
        if self.policy == Policy::Mute {
            return;
        }
        // The mock primary stands in for ordering: it relays the request to
        // the backups the way a pre-prepare would carry it.
        if self.id == 0 && from.0 >= self.n && !req.read_only() {
            for i in 1..self.n {
                ctx.send(NodeId(i), payload.to_vec());
            }
        }
        self.reply_to(&req, ctx);
    }
}

struct Rig {
    sim: Simulation,
    replicas: Vec<NodeId>,
    client: NodeId,
}

fn rig(policies: [Policy; 4]) -> Rig {
    let cfg = Config::new(4);
    let mut sim = Simulation::new(404);
    let dir = KeyDirectory::generate(5, 404);
    let replicas: Vec<NodeId> = policies
        .iter()
        .enumerate()
        .map(|(i, p)| sim.add_node(Box::new(MockReplica::new(dir.clone(), i as u32, 4, *p))))
        .collect();
    let client =
        sim.add_node(Box::new(ClientActor::new(cfg, NodeKeys::new(dir, 4))));
    Rig { sim, replicas, client }
}

fn completed(r: &Rig) -> Vec<(u64, Vec<u8>)> {
    r.sim.actor_as::<ClientActor>(r.client).unwrap().completed.clone()
}

fn seen(r: &Rig, i: usize) -> Vec<(u64, u32, bool, usize)> {
    r.sim.actor_as::<MockReplica>(r.replicas[i]).unwrap().seen.clone()
}

#[test]
fn completes_on_reply_quorum() {
    let mut r = rig([Policy::Honest; 4]);
    r.sim
        .actor_as_mut::<ClientActor>(r.client)
        .unwrap()
        .enqueue(b"ping".to_vec(), false);
    r.sim.run_for(SimDuration::from_millis(50));
    let done = completed(&r);
    assert_eq!(done.len(), 1);
    assert_eq!(done[0].1, b"ok:ping");
    // A read-write request goes only to the primary initially; backups
    // hear about it through the (mock) ordering relay, not the client.
    assert_eq!(seen(&r, 0).len(), 1);
    assert!(
        seen(&r, 1).iter().all(|(_, _, _, from)| *from == 0),
        "rw request must not be broadcast to backups on first send"
    );
}

#[test]
fn read_only_broadcasts_and_needs_larger_quorum() {
    // f = 1 honest replies are NOT enough for a read-only op (needs 2f+1);
    // with two mutes, the client falls back to the read-write path after
    // two attempts, which the (mock) primary then answers.
    let mut r = rig([Policy::Honest, Policy::Honest, Policy::Mute, Policy::Mute]);
    r.sim
        .actor_as_mut::<ClientActor>(r.client)
        .unwrap()
        .enqueue(b"get".to_vec(), true);
    r.sim.run_for(SimDuration::from_millis(20));
    // Broadcast: every replica saw the read-only request.
    for i in 0..4 {
        assert_eq!(seen(&r, i).len(), 1, "replica {i} missed the ro broadcast");
        assert!(seen(&r, i)[0].2, "first attempt is read-only");
        assert_eq!(seen(&r, i)[0].3, 4, "ro requests come straight from the client");
    }
    // Two honest replies < 2f+1 = 3: still pending.
    assert!(completed(&r).is_empty());
    // After the fallback the request is re-issued read-write; f+1 = 2
    // matching replies complete it.
    r.sim.run_for(SimDuration::from_secs(5));
    let done = completed(&r);
    assert_eq!(done.len(), 1);
    assert_eq!(done[0].1, b"ok:get");
    let attempts = seen(&r, 0);
    assert!(
        attempts.iter().any(|(_, _, ro, _)| !ro),
        "read-only fallback must re-issue read-write"
    );
}

#[test]
fn wrong_result_votes_do_not_merge() {
    // One liar: its vote lands on a different digest and must not count
    // toward the honest quorum. The client still completes with the honest
    // result (3 honest ≥ f+1 and ≥ 2f+1).
    // The liar is replica 2, not the designated full-replier (ts 1 → 1).
    let mut r = rig([Policy::Honest, Policy::Honest, Policy::WrongResult, Policy::Honest]);
    r.sim
        .actor_as_mut::<ClientActor>(r.client)
        .unwrap()
        .enqueue(b"val".to_vec(), true);
    r.sim.run_for(SimDuration::from_millis(200));
    let done = completed(&r);
    assert_eq!(done.len(), 1);
    assert_eq!(done[0].1, b"ok:val", "honest result wins despite the liar");
}

#[test]
fn bad_macs_are_rejected() {
    // Three replicas with corrupt MACs: their replies are dropped, one
    // honest voice is below quorum, so nothing completes within the first
    // timeout window.
    let mut r = rig([Policy::Honest, Policy::BadMac, Policy::BadMac, Policy::BadMac]);
    r.sim
        .actor_as_mut::<ClientActor>(r.client)
        .unwrap()
        .enqueue(b"x".to_vec(), true);
    r.sim.run_for(SimDuration::from_millis(100));
    assert!(completed(&r).is_empty(), "forged MACs must not form a quorum");
}

#[test]
fn full_replier_rotates_across_retransmissions() {
    // The designated full-replier is mute; digest votes reach quorum but
    // the body is missing, so the client retransmits and rotates the
    // designation until a live replica supplies the full result.
    let mut r = rig([Policy::Honest; 4]);
    // Timestamp will be 1, so the initial designee is 1 % 4 = 1.
    let mute = 1usize;
    r.sim.actor_as_mut::<MockReplica>(r.replicas[mute]).unwrap().policy = Policy::Mute;
    r.sim
        .actor_as_mut::<ClientActor>(r.client)
        .unwrap()
        .enqueue(b"body".to_vec(), false);
    r.sim.run_for(SimDuration::from_secs(10));
    let done = completed(&r);
    assert_eq!(done.len(), 1, "rotation must eventually deliver the full body");
    assert_eq!(done[0].1, b"ok:body");
    // The honest replica 0 observed at least two distinct designations.
    let designees: std::collections::HashSet<u32> =
        seen(&r, 0).iter().map(|(_, d, _, _)| *d).collect();
    assert!(designees.len() >= 2, "designation must rotate, saw {designees:?}");
    let retrans = r
        .sim
        .actor_as::<ClientActor>(r.client)
        .unwrap()
        .core()
        .retransmissions;
    assert!(retrans >= 1, "completion required a retransmission");
}

#[test]
fn operations_are_serialized_one_at_a_time() {
    let mut r = rig([Policy::Honest; 4]);
    {
        let c = r.sim.actor_as_mut::<ClientActor>(r.client).unwrap();
        for i in 0..5 {
            c.enqueue(format!("op{i}").into_bytes(), false);
        }
        assert_eq!(c.core().queued(), 5);
    }
    r.sim.run_for(SimDuration::from_millis(200));
    let done = completed(&r);
    assert_eq!(done.len(), 5);
    // Timestamps are strictly increasing and results ordered.
    for (i, (ts, body)) in done.iter().enumerate() {
        assert_eq!(*ts, i as u64 + 1);
        assert_eq!(body, format!("ok:op{i}").as_bytes());
    }
    // The mock primary never saw two requests with the same timestamp and
    // never saw op k+1 before op k completed.
    let seen0: Vec<u64> = seen(&r, 0).iter().map(|(ts, _, _, _)| *ts).collect();
    let mut sorted = seen0.clone();
    sorted.sort_unstable();
    sorted.dedup();
    assert_eq!(seen0, sorted, "one outstanding operation at a time");
}

#[test]
fn stale_timestamp_replies_are_ignored() {
    // A replica that echoes an old timestamp must not complete the current
    // operation: drive op 1 to completion, then during op 2 inject a
    // hand-built reply for timestamp 1 from every replica. Op 2 completes
    // only with its own replies.
    let mut r = rig([Policy::Honest; 4]);
    r.sim
        .actor_as_mut::<ClientActor>(r.client)
        .unwrap()
        .enqueue(b"first".to_vec(), false);
    r.sim.run_for(SimDuration::from_millis(50));
    assert_eq!(completed(&r).len(), 1);

    // Mute everyone, start op 2, then feed stale ts=1 replies.
    for i in 0..4 {
        r.sim.actor_as_mut::<MockReplica>(r.replicas[i]).unwrap().policy = Policy::Mute;
    }
    r.sim
        .actor_as_mut::<ClientActor>(r.client)
        .unwrap()
        .enqueue(b"second".to_vec(), false);
    r.sim.run_for(SimDuration::from_millis(5));
    let dir = KeyDirectory::generate(5, 404);
    for i in 0..4u32 {
        let keys = NodeKeys::new(dir.clone(), i as usize);
        let mut reply = ReplyMsg {
            view: 0,
            timestamp: 1,
            client: 4,
            replica: i,
            digest_only: false,
            tentative: false,
            result: b"ok:first".to_vec(),
            mac: base_crypto::Mac([0; 8]),
        };
        reply.mac = Authenticator::point(&keys, 4, &reply.digest());
        r.sim.inject(r.replicas[i as usize], r.client, Message::Reply(reply).to_wire());
    }
    r.sim.run_for(SimDuration::from_millis(50));
    assert_eq!(completed(&r).len(), 1, "stale replies must not complete op 2");
}
