//! Property tests for the protocol wire format: every message round-trips
//! exactly, and the decoder never panics on hostile input (random bytes,
//! bit-flipped wires, truncations) — a Byzantine sender controls every
//! byte a replica parses.

use base_crypto::{Authenticator, Digest, Mac, Signature};
use base_pbft::messages::{
    CheckpointMsg, ChunksReplyMsg, CommitMsg, FetchCertMsg, FetchChunksMsg, FetchFragMsg,
    FetchMetaMsg, FetchObjectMsg, FragReplyMsg, PrePrepareMsg, PrepareMsg, PreparedProof,
    ReplyMsg, RequestMsg, StatusMsg, ViewChangeMsg,
};
use base_pbft::Message;
use proptest::prelude::*;

const N: usize = 4;

fn arb_digest() -> impl Strategy<Value = Digest> {
    any::<[u8; 32]>().prop_map(Digest)
}

fn arb_mac() -> impl Strategy<Value = Mac> {
    any::<[u8; 8]>().prop_map(Mac)
}

fn arb_sig() -> impl Strategy<Value = Signature> {
    any::<[u8; 32]>().prop_map(Signature)
}

fn arb_auth() -> impl Strategy<Value = Authenticator> {
    // `Authenticator` deliberately hides its MAC vector; build real ones
    // from arbitrary key material and digests.
    (0u64..4096, arb_digest()).prop_map(|(seed, digest)| {
        let dir = base_crypto::KeyDirectory::generate(N + 1, seed);
        Authenticator::generate(&base_crypto::NodeKeys::new(dir, 0), N, &digest)
    })
}

fn arb_request() -> impl Strategy<Value = RequestMsg> {
    (
        4u32..64,
        any::<u64>(),
        any::<bool>(),
        any::<u32>(),
        proptest::collection::vec(any::<u8>(), 0..128),
        arb_auth(),
    )
        .prop_map(|(client, timestamp, read_only, full_replier, op, auth)| {
            let mut r = RequestMsg::new(client, timestamp, read_only, full_replier, op);
            r.auth = auth;
            r
        })
}

fn arb_reply() -> impl Strategy<Value = ReplyMsg> {
    (
        any::<u64>(),
        any::<u64>(),
        4u32..64,
        0u32..N as u32,
        any::<bool>(),
        any::<bool>(),
        proptest::collection::vec(any::<u8>(), 0..96),
        arb_mac(),
    )
        .prop_map(
            |(view, timestamp, client, replica, digest_only, tentative, result, mac)| ReplyMsg {
                view,
                timestamp,
                client,
                replica,
                digest_only,
                tentative,
                result,
                mac,
            },
        )
}

fn arb_pre_prepare() -> impl Strategy<Value = PrePrepareMsg> {
    (
        any::<u64>(),
        any::<u64>(),
        proptest::collection::vec(arb_request(), 0..4),
        proptest::collection::vec(any::<u8>(), 0..16),
        arb_auth(),
        arb_sig(),
    )
        .prop_map(|(view, seq, requests, nondet, auth, sig)| {
            let mut pp = PrePrepareMsg::new(view, seq, requests, nondet);
            pp.auth = auth;
            pp.sig = sig;
            pp
        })
}

fn arb_prepare() -> impl Strategy<Value = PrepareMsg> {
    (any::<u64>(), any::<u64>(), arb_digest(), 0u32..N as u32, arb_auth(), arb_sig()).prop_map(
        |(view, seq, digest, replica, auth, sig)| PrepareMsg {
            view,
            seq,
            digest,
            replica,
            auth,
            sig,
        },
    )
}

fn arb_checkpoint() -> impl Strategy<Value = CheckpointMsg> {
    (any::<u64>(), arb_digest(), 0u32..N as u32, arb_sig())
        .prop_map(|(seq, digest, replica, sig)| CheckpointMsg { seq, digest, replica, sig })
}

fn arb_view_change() -> impl Strategy<Value = ViewChangeMsg> {
    (
        any::<u64>(),
        any::<u64>(),
        arb_digest(),
        proptest::collection::vec(arb_checkpoint(), 0..3),
        proptest::collection::vec(
            (arb_pre_prepare(), proptest::collection::vec(arb_prepare(), 0..3))
                .prop_map(|(pre_prepare, prepares)| PreparedProof { pre_prepare, prepares }),
            0..2,
        ),
        0u32..N as u32,
        arb_sig(),
    )
        .prop_map(
            |(new_view, stable_seq, stable_digest, stable_proof, prepared, replica, sig)| {
                ViewChangeMsg {
                    new_view,
                    stable_seq,
                    stable_digest,
                    stable_proof,
                    prepared,
                    replica,
                    sig,
                }
            },
        )
}

fn arb_message() -> impl Strategy<Value = Message> {
    prop_oneof![
        arb_request().prop_map(Message::Request),
        arb_reply().prop_map(Message::Reply),
        arb_pre_prepare().prop_map(Message::PrePrepare),
        arb_prepare().prop_map(Message::Prepare),
        (any::<u64>(), any::<u64>(), arb_digest(), 0u32..N as u32, arb_auth()).prop_map(
            |(view, seq, digest, replica, auth)| Message::Commit(CommitMsg {
                view,
                seq,
                digest,
                replica,
                auth,
            })
        ),
        arb_checkpoint().prop_map(Message::Checkpoint),
        arb_view_change().prop_map(Message::ViewChange),
        (any::<u64>(), any::<u64>(), any::<u64>(), 0u32..N as u32).prop_map(
            |(view, last_exec, stable_seq, replica)| Message::Status(StatusMsg {
                view,
                last_exec,
                stable_seq,
                replica,
            })
        ),
        (0u32..N as u32).prop_map(|replica| Message::FetchCert(FetchCertMsg { replica })),
        (any::<u64>(), any::<u32>(), any::<u64>(), 0u32..N as u32).prop_map(
            |(seq, level, index, replica)| Message::FetchMeta(FetchMetaMsg {
                seq,
                level,
                index,
                replica,
            })
        ),
        (any::<u64>(), any::<u64>(), 0u32..N as u32).prop_map(|(seq, index, replica)| {
            Message::FetchObject(FetchObjectMsg { seq, index, replica })
        }),
        (any::<u64>(), any::<u64>(), 0u32..N as u32).prop_map(|(seq, index, replica)| {
            Message::FetchChunks(FetchChunksMsg { seq, index, replica })
        }),
        (
            any::<u64>(),
            any::<u64>(),
            any::<u64>(),
            proptest::collection::vec(arb_digest(), 0..8),
            0u32..N as u32,
        )
            .prop_map(|(seq, index, len, digests, replica)| {
                Message::ChunksReply(ChunksReplyMsg { seq, index, len, digests, replica })
            }),
        (any::<u64>(), any::<u64>(), any::<u32>(), any::<u32>(), 0u32..N as u32).prop_map(
            |(seq, index, chunk, frag, replica)| Message::FetchFrag(FetchFragMsg {
                seq,
                index,
                chunk,
                frag,
                replica,
            })
        ),
        (
            any::<u64>(),
            any::<u64>(),
            any::<u32>(),
            any::<u32>(),
            any::<u64>(),
            proptest::collection::vec(any::<u8>(), 0..128),
            0u32..N as u32,
        )
            .prop_map(|(seq, index, chunk, frag, len, data, replica)| {
                Message::FragReply(FragReplyMsg { seq, index, chunk, frag, len, data, replica })
            }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Every message survives an encode/decode round trip bit-exactly.
    #[test]
    fn wire_roundtrip(msg in arb_message()) {
        let wire = msg.to_wire();
        let back = Message::from_wire(&wire);
        prop_assert_eq!(back.as_ref(), Some(&msg));
        // Re-encoding the decoded message yields the identical wire.
        prop_assert_eq!(back.unwrap().to_wire(), wire);
    }

    /// Arbitrary bytes never panic the decoder.
    #[test]
    fn random_bytes_never_panic(bytes in proptest::collection::vec(any::<u8>(), 0..512)) {
        let _ = Message::from_wire(&bytes);
    }

    /// Single-byte corruption of a valid wire never panics, and whatever
    /// still decodes can be re-encoded without panicking.
    #[test]
    fn bit_flips_never_panic(msg in arb_message(), pos in any::<prop::sample::Index>(), bit in 0u8..8) {
        let mut wire = msg.to_wire();
        prop_assume!(!wire.is_empty());
        let i = pos.index(wire.len());
        wire[i] ^= 1 << bit;
        if let Some(decoded) = Message::from_wire(&wire) {
            let _ = decoded.to_wire();
        }
    }

    /// Truncation at any point never panics and never decodes to the
    /// original message (no silent acceptance of short reads).
    #[test]
    fn truncation_never_panics(msg in arb_message(), cut in any::<prop::sample::Index>()) {
        let wire = msg.to_wire();
        prop_assume!(wire.len() > 1);
        let keep = 1 + cut.index(wire.len() - 1);
        let short = &wire[..keep];
        if keep < wire.len() {
            let decoded = Message::from_wire(short);
            prop_assert_ne!(decoded.as_ref(), Some(&msg));
        }
    }

    /// Trailing garbage after a valid message is rejected (the decoder
    /// demands the buffer be fully consumed).
    #[test]
    fn trailing_garbage_rejected(msg in arb_message(), extra in proptest::collection::vec(any::<u8>(), 1..16)) {
        let mut wire = msg.to_wire();
        wire.extend_from_slice(&extra);
        prop_assert_eq!(Message::from_wire(&wire), None);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The memoized request digest is always the digest of the signed
    /// bytes — caching must be invisible — and clones carry the cache
    /// without drifting from a fresh computation.
    #[test]
    fn memoized_request_digest_matches_fresh(req in arb_request()) {
        prop_assert_eq!(req.digest(), Digest::of(&req.signed_bytes()));
        prop_assert_eq!(req.clone().digest(), req.digest());
    }

    /// Same invariant for the pre-prepare batch digest: the memoized
    /// value equals the associated-function recomputation over the same
    /// requests and nondeterministic choices, before and after cloning.
    #[test]
    fn memoized_batch_digest_matches_fresh(pp in arb_pre_prepare()) {
        prop_assert_eq!(
            pp.batch_digest(),
            PrePrepareMsg::batch_digest_of(pp.requests(), pp.nondet())
        );
        prop_assert_eq!(pp.clone().batch_digest(), pp.batch_digest());
    }

    /// A request that went over the wire (fresh decode, empty cache)
    /// digests identically to the sender's memoized copy.
    #[test]
    fn decoded_request_digest_agrees_with_sender(req in arb_request()) {
        let digest_at_sender = req.digest();
        let wire = Message::Request(req).to_wire();
        match Message::from_wire(&wire) {
            Some(Message::Request(decoded)) => {
                prop_assert_eq!(decoded.digest(), digest_at_sender);
            }
            _ => prop_assert!(false, "request failed to round-trip"),
        }
    }
}
