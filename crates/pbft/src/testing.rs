//! Test services and group-building helpers shared by unit tests,
//! integration tests and benchmarks.

use crate::config::Config;
use crate::replica::Replica;
use crate::service::{ExecEnv, Service};
use crate::tree::{chunked_leaf_digest, PartitionTree};
use crate::ClientActor;
use base_crypto::{Digest, KeyDirectory, NodeKeys};
use base_simnet::{NodeId, Simulation};
use std::collections::BTreeMap;

/// Number of registers in [`CounterService`].
pub const COUNTER_REGS: u64 = 16;

/// A deterministic register-bank service for protocol tests.
///
/// State: [`COUNTER_REGS`] `u64` registers, each one abstract object
/// (8-byte big-endian encoding; a zero register is an *absent* object).
///
/// Text operation format:
/// - `add <reg> <delta>` → adds, replies with the new value in decimal;
/// - `get <reg>` → replies with the value in decimal;
/// - `noop` → replies `ok`.
pub struct CounterService {
    values: Vec<u64>,
    tree: PartitionTree,
    checkpoints: BTreeMap<u64, (Vec<u64>, PartitionTree)>,
    chunk_size: usize,
    /// Execution counter (visible to tests).
    pub executed: u64,
}

impl Default for CounterService {
    fn default() -> Self {
        Self {
            values: vec![0; COUNTER_REGS as usize],
            tree: PartitionTree::new(COUNTER_REGS, 4),
            checkpoints: BTreeMap::new(),
            chunk_size: 0,
            executed: 0,
        }
    }
}

impl CounterService {
    /// Current value of register `reg`.
    pub fn value(&self, reg: usize) -> u64 {
        self.values[reg]
    }

    /// Directly corrupts a register without updating digests (models a
    /// software-error-corrupted concrete state for repair experiments).
    pub fn corrupt_register(&mut self, reg: usize, value: u64) {
        self.values[reg] = value;
    }

    fn set_reg(&mut self, reg: usize, value: u64) {
        self.values[reg] = value;
        let digest = if value == 0 {
            Digest::ZERO
        } else {
            chunked_leaf_digest(reg as u64, &value.to_be_bytes(), self.chunk_size)
        };
        self.tree.set_leaf(reg as u64, digest);
    }

    /// Recomputes every leaf digest from the concrete register values.
    /// This is where latent corruption (from [`Service::corrupt_state`] or
    /// [`CounterService::corrupt_register`]) surfaces as a digest mismatch
    /// that state transfer can then repair.
    fn refresh_digests(&mut self) {
        for reg in 0..self.values.len() {
            let v = self.values[reg];
            let digest = if v == 0 {
                Digest::ZERO
            } else {
                chunked_leaf_digest(reg as u64, &v.to_be_bytes(), self.chunk_size)
            };
            self.tree.set_leaf(reg as u64, digest);
        }
    }
}

/// Builds an `add` operation.
pub fn op_add(reg: u64, delta: u64) -> Vec<u8> {
    format!("add {reg} {delta}").into_bytes()
}

/// Builds a `get` operation.
pub fn op_get(reg: u64) -> Vec<u8> {
    format!("get {reg}").into_bytes()
}

impl Service for CounterService {
    fn execute(
        &mut self,
        op: &[u8],
        _client: u32,
        _nondet: &[u8],
        read_only: bool,
        _env: &mut ExecEnv<'_>,
    ) -> Vec<u8> {
        self.executed += 1;
        let text = String::from_utf8_lossy(op);
        let mut parts = text.split_whitespace();
        match parts.next() {
            Some("add") if !read_only => {
                let reg: usize = parts.next().and_then(|s| s.parse().ok()).unwrap_or(0);
                let delta: u64 = parts.next().and_then(|s| s.parse().ok()).unwrap_or(0);
                if reg < self.values.len() {
                    let v = self.values[reg].wrapping_add(delta);
                    self.set_reg(reg, v);
                    return v.to_string().into_bytes();
                }
                b"err".to_vec()
            }
            Some("get") => {
                let reg: usize = parts.next().and_then(|s| s.parse().ok()).unwrap_or(0);
                match self.values.get(reg) {
                    Some(v) => v.to_string().into_bytes(),
                    None => b"err".to_vec(),
                }
            }
            Some("noop") => b"ok".to_vec(),
            _ => b"err".to_vec(),
        }
    }

    fn take_checkpoint(&mut self, seq: u64, _env: &mut ExecEnv<'_>) -> Digest {
        self.checkpoints.insert(seq, (self.values.clone(), self.tree.clone()));
        self.tree.root_digest()
    }

    fn discard_checkpoints_below(&mut self, seq: u64) {
        self.checkpoints = self.checkpoints.split_off(&seq);
    }

    fn checkpoint_meta(&self, seq: u64, level: u32, index: u64) -> Option<Vec<Digest>> {
        self.checkpoints.get(&seq).and_then(|(_, tree)| tree.children_digests(level, index))
    }

    fn checkpoint_object(&mut self, seq: u64, index: u64) -> Option<Vec<u8>> {
        let (values, _) = self.checkpoints.get(&seq)?;
        let v = *values.get(index as usize)?;
        if v == 0 {
            None
        } else {
            Some(v.to_be_bytes().to_vec())
        }
    }

    fn current_tree(&self) -> &PartitionTree {
        &self.tree
    }

    fn install_checkpoint(
        &mut self,
        seq: u64,
        root: Digest,
        objs: Vec<(u64, Option<Vec<u8>>)>,
        _env: &mut ExecEnv<'_>,
    ) {
        for (idx, value) in objs {
            let v = match value {
                Some(bytes) if bytes.len() == 8 => {
                    u64::from_be_bytes(bytes.as_slice().try_into().expect("checked length"))
                }
                Some(_) => 0,
                None => 0,
            };
            if (idx as usize) < self.values.len() {
                self.set_reg(idx as usize, v);
            }
        }
        debug_assert_eq!(self.tree.root_digest(), root, "installed state must match");
        self.checkpoints.insert(seq, (self.values.clone(), self.tree.clone()));
    }

    fn prepare_for_transfer(&mut self, _env: &mut ExecEnv<'_>) {
        self.refresh_digests();
    }

    fn set_chunk_size(&mut self, chunk_size: usize) {
        if self.chunk_size != chunk_size {
            self.chunk_size = chunk_size;
            self.refresh_digests();
        }
    }

    fn transfer_object(&mut self, index: u64) -> Option<Vec<u8>> {
        let v = *self.values.get(index as usize)?;
        if v == 0 {
            None
        } else {
            Some(v.to_be_bytes().to_vec())
        }
    }

    fn reboot(&mut self, clean: bool, _env: &mut ExecEnv<'_>) {
        if clean {
            self.values = vec![0; COUNTER_REGS as usize];
            self.tree = PartitionTree::new(COUNTER_REGS, 4);
            self.checkpoints.clear();
        } else {
            // Warm reboot: the concrete state survives; re-derive the
            // abstract digests from it so any corruption becomes visible
            // to the state-transfer comparison.
            self.refresh_digests();
        }
    }

    fn corrupt_state(&mut self, seed: u64) {
        // Flip one register to a seed-derived garbage value. Digests are
        // deliberately left stale (latent fault).
        let reg = (seed % COUNTER_REGS) as usize;
        self.corrupt_register(reg, seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1);
    }
}

/// A freshly built replicated group on a simulation.
pub struct TestGroup {
    /// The group configuration.
    pub cfg: Config,
    /// The key directory (replicas and clients share it).
    pub dir: KeyDirectory,
    /// Replica node ids (`0..n`).
    pub replicas: Vec<NodeId>,
    /// Client node ids (`n..n+c`).
    pub clients: Vec<NodeId>,
}

/// Builds a group of `n` [`CounterService`] replicas plus `c` clients on
/// `sim`, with keys seeded from `seed`.
pub fn build_counter_group(sim: &mut Simulation, cfg: Config, c: usize, seed: u64) -> TestGroup {
    build_group(sim, cfg, c, seed, |_| CounterService::default())
}

/// Builds a group with a custom per-replica service factory.
pub fn build_group<S: Service>(
    sim: &mut Simulation,
    cfg: Config,
    c: usize,
    seed: u64,
    mut service: impl FnMut(usize) -> S,
) -> TestGroup {
    let n = cfg.n;
    let dir = KeyDirectory::generate(n + c, seed);
    let mut replicas = Vec::with_capacity(n);
    for i in 0..n {
        let keys = NodeKeys::new(dir.clone(), i);
        let id = sim.add_node(Box::new(Replica::new(cfg.clone(), keys, service(i))));
        replicas.push(id);
    }
    let mut clients = Vec::with_capacity(c);
    for i in 0..c {
        let keys = NodeKeys::new(dir.clone(), n + i);
        let id = sim.add_node(Box::new(ClientActor::new(cfg.clone(), keys)));
        clients.push(id);
    }
    TestGroup { cfg, dir, replicas, clients }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn env_rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(0)
    }

    #[test]
    fn counter_ops() {
        let mut s = CounterService::default();
        let mut rng = env_rng();
        let mut env = ExecEnv::new(0, &mut rng);
        assert_eq!(s.execute(b"add 3 5", 9, &[], false, &mut env), b"5");
        assert_eq!(s.execute(b"add 3 2", 9, &[], false, &mut env), b"7");
        assert_eq!(s.execute(b"get 3", 9, &[], true, &mut env), b"7");
        assert_eq!(s.execute(b"noop", 9, &[], false, &mut env), b"ok");
        assert_eq!(s.execute(b"bogus", 9, &[], false, &mut env), b"err");
        // Mutations via `add` are refused on the read-only path.
        assert_eq!(s.execute(b"add 3 1", 9, &[], true, &mut env), b"err");
    }

    #[test]
    fn checkpoint_and_install_round_trip() {
        let mut a = CounterService::default();
        let mut b = CounterService::default();
        let mut rng = env_rng();
        let mut env = ExecEnv::new(0, &mut rng);
        a.execute(b"add 0 10", 1, &[], false, &mut env);
        a.execute(b"add 7 3", 1, &[], false, &mut env);
        let root = a.take_checkpoint(128, &mut env);

        // Transfer every differing object to b.
        let mut objs = Vec::new();
        for i in 0..COUNTER_REGS {
            if a.current_tree().leaf_digest_at(i) != b.current_tree().leaf_digest_at(i) {
                objs.push((i, a.checkpoint_object(128, i)));
            }
        }
        b.install_checkpoint(128, root, objs, &mut env);
        assert_eq!(b.value(0), 10);
        assert_eq!(b.value(7), 3);
        assert_eq!(b.current_tree().root_digest(), root);
    }

    #[test]
    fn deterministic_across_instances() {
        let mut a = CounterService::default();
        let mut b = CounterService::default();
        let mut rng = env_rng();
        let mut env = ExecEnv::new(0, &mut rng);
        for op in [b"add 1 4".as_slice(), b"add 2 9", b"add 1 1"] {
            assert_eq!(
                a.execute(op, 1, &[], false, &mut env),
                b.execute(op, 1, &[], false, &mut env)
            );
        }
        assert_eq!(
            a.take_checkpoint(1, &mut env),
            b.take_checkpoint(1, &mut env),
            "same history must digest identically"
        );
    }

    #[test]
    fn corruption_is_latent_until_refresh() {
        let mut s = CounterService::default();
        let mut rng = env_rng();
        let mut env = ExecEnv::new(0, &mut rng);
        s.execute(b"add 2 7", 1, &[], false, &mut env);
        let clean_root = s.current_tree().root_digest();

        s.corrupt_state(2);
        assert_ne!(s.value(2), 7, "corruption must hit the concrete state");
        assert_eq!(
            s.current_tree().root_digest(),
            clean_root,
            "corruption is latent: digests must be stale"
        );

        // A warm reboot recomputes digests and surfaces the damage.
        s.reboot(false, &mut env);
        assert_ne!(s.current_tree().root_digest(), clean_root);
    }

    #[test]
    fn clean_reboot_resets_state() {
        let mut s = CounterService::default();
        let mut rng = env_rng();
        let mut env = ExecEnv::new(0, &mut rng);
        s.execute(b"add 0 10", 1, &[], false, &mut env);
        let fresh_root = CounterService::default().current_tree().root_digest();
        s.reboot(true, &mut env);
        assert_eq!(s.value(0), 0);
        assert_eq!(s.current_tree().root_digest(), fresh_root);
    }
}
