//! Practical Byzantine Fault Tolerance (Castro & Liskov, OSDI '99).
//!
//! This crate is the replication substrate that the BASE library (crate
//! `base`) extends, and simultaneously the *baseline* the paper compares
//! against: classic BFT state machine replication that requires all
//! replicas to run the same deterministic implementation.
//!
//! Implemented protocol features:
//!
//! - three-phase normal case (pre-prepare / prepare / commit) with request
//!   batching and watermark windows;
//! - MAC [`base_crypto::Authenticator`]s on normal-case messages plus
//!   signatures where certificates must be transferable;
//! - periodic checkpoints every `k`-th sequence number, checkpoint
//!   certificates (2f+1 signed checkpoint messages), and log garbage
//!   collection at the stable checkpoint;
//! - view changes with prepared-certificate proofs and deterministic
//!   recomputation of the new-view pre-prepare set;
//! - hierarchical (Merkle partition tree) state transfer that fetches only
//!   out-of-date partitions and objects, verified against a checkpoint
//!   certificate;
//! - agreement on non-deterministic values chosen by the primary and
//!   validated by the backups (used for NFS timestamps);
//! - the read-only optimization (2f+1 matching immediate replies);
//! - proactive recovery scaffolding: watchdog-triggered staggered reboots
//!   with session-key refresh and state repair (the BASE crate supplies the
//!   abstraction-aware recovery on top);
//! - canned Byzantine replica behaviours for fault-injection experiments.
//!
//! Replicas occupy simulator nodes `0..n`; clients occupy nodes `>= n`.
//! All messages are XDR-encoded [`messages::Message`] values.
//!
//! # Examples
//!
//! ```
//! use base_pbft::testing::CounterService;
//! use base_pbft::{ClientActor, Config, Replica};
//! use base_simnet::{NodeId, SimDuration, Simulation};
//!
//! let config = Config::new(4);
//! let mut sim = Simulation::new(1);
//! let dir = base_crypto::KeyDirectory::generate(5, 1);
//! for i in 0..4 {
//!     let keys = base_crypto::NodeKeys::new(dir.clone(), i);
//!     sim.add_node(Box::new(Replica::new(config.clone(), keys, CounterService::default())));
//! }
//! let keys = base_crypto::NodeKeys::new(dir, 4);
//! let client = sim.add_node(Box::new(ClientActor::new(config, keys)));
//!
//! sim.actor_as_mut::<ClientActor>(client).unwrap().enqueue(b"add 0 5".to_vec(), false);
//! sim.run_for(SimDuration::from_millis(200));
//! let done = &sim.actor_as::<ClientActor>(client).unwrap().completed;
//! assert_eq!(done[0].1, b"5".to_vec());
//! ```

#![warn(missing_docs)]

pub mod byzantine;
pub mod chaos;
pub mod client;
pub mod config;
pub mod cost;
pub mod log;
pub mod messages;
pub mod replica;
pub mod service;
pub mod testing;
pub mod transfer;
pub mod tree;

pub use byzantine::ByzMode;
pub use client::{ClientActor, ClientCore, ClientEvent};
pub use config::Config;
pub use cost::CostModel;
pub use messages::Message;
pub use replica::{Replica, ReplicaStats};
pub use service::{ExecEnv, Service};
pub use tree::{PartitionTree, TreeUpdateStats};
