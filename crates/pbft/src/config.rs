//! Replication group configuration.

use base_simnet::{NodeId, SimDuration};

/// Static configuration shared by all replicas and clients of one group.
#[derive(Clone, Debug)]
pub struct Config {
    /// Number of replicas (`n >= 3f + 1`).
    pub n: usize,
    /// Checkpoint interval: a checkpoint is taken every `k`-th sequence
    /// number (the paper uses k = 128).
    pub checkpoint_interval: u64,
    /// Log window size: the primary may propose sequence numbers in
    /// `(h, h + log_window]` where `h` is the last stable checkpoint.
    pub log_window: u64,
    /// Maximum requests batched into one pre-prepare.
    pub batch_max: usize,
    /// Maximum unexecuted proposals the primary keeps in flight; arrivals
    /// beyond it accumulate and get batched (the BFT library's behaviour:
    /// batch whatever arrives while earlier batches are in the pipeline).
    pub max_inflight: u64,
    /// Base view-change timeout; doubles for each consecutive failed view.
    pub view_change_timeout: SimDuration,
    /// Client retransmission timeout.
    pub client_timeout: SimDuration,
    /// Periodic retransmission/housekeeping tick at replicas.
    pub tick_interval: SimDuration,
    /// Proactive recovery: full rotation period (every replica recovers
    /// once per period, staggered). `None` disables proactive recovery.
    pub recovery_period: Option<SimDuration>,
    /// Simulated reboot time during proactive recovery.
    pub reboot_time: SimDuration,
    /// Tolerance when backups validate the primary's proposed timestamp
    /// non-determinism.
    pub nondet_skew_tolerance: SimDuration,
    /// State-transfer pipelining: maximum concurrently outstanding
    /// meta/object fetch queries (1 = strictly serial tree walk).
    pub fetch_window: usize,
}

impl Config {
    /// Creates a configuration for `n` replicas with defaults matching the
    /// paper's setup (k = 128, LAN-scale timeouts).
    ///
    /// # Panics
    ///
    /// Panics if `n < 4` (at least one fault must be tolerable).
    pub fn new(n: usize) -> Self {
        assert!(n >= 4, "PBFT needs n >= 3f + 1 >= 4 replicas");
        Self {
            n,
            checkpoint_interval: 128,
            log_window: 256,
            batch_max: 16,
            max_inflight: 16,
            view_change_timeout: SimDuration::from_millis(500),
            client_timeout: SimDuration::from_millis(300),
            tick_interval: SimDuration::from_millis(100),
            recovery_period: None,
            reboot_time: SimDuration::from_secs(30),
            nondet_skew_tolerance: SimDuration::from_secs(10),
            fetch_window: crate::transfer::DEFAULT_FETCH_WINDOW,
        }
    }

    /// Maximum number of Byzantine faults tolerated: `f = (n - 1) / 3`.
    pub fn f(&self) -> usize {
        (self.n - 1) / 3
    }

    /// Quorum size for certificates: `2f + 1`.
    pub fn quorum(&self) -> usize {
        2 * self.f() + 1
    }

    /// Replies needed by a client for a read-write operation: `f + 1`.
    pub fn reply_quorum(&self) -> usize {
        self.f() + 1
    }

    /// The primary replica of `view`.
    pub fn primary_of(&self, view: u64) -> usize {
        (view % self.n as u64) as usize
    }

    /// Simulator node of replica `i` (replicas occupy nodes `0..n`).
    pub fn replica_node(&self, i: usize) -> NodeId {
        NodeId(i)
    }

    /// Iterator over all replica nodes.
    pub fn replica_nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.n).map(NodeId)
    }

    /// True if `node` hosts a replica.
    pub fn is_replica(&self, node: NodeId) -> bool {
        node.0 < self.n
    }

    /// Highest sequence number the group accepts given stable checkpoint
    /// `h`.
    pub fn high_watermark(&self, h: u64) -> u64 {
        h + self.log_window
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quorum_math() {
        let c4 = Config::new(4);
        assert_eq!(c4.f(), 1);
        assert_eq!(c4.quorum(), 3);
        assert_eq!(c4.reply_quorum(), 2);

        let c7 = Config::new(7);
        assert_eq!(c7.f(), 2);
        assert_eq!(c7.quorum(), 5);

        let c10 = Config::new(10);
        assert_eq!(c10.f(), 3);
        assert_eq!(c10.quorum(), 7);
    }

    #[test]
    fn primary_rotates() {
        let c = Config::new(4);
        assert_eq!(c.primary_of(0), 0);
        assert_eq!(c.primary_of(1), 1);
        assert_eq!(c.primary_of(4), 0);
        assert_eq!(c.primary_of(7), 3);
    }

    #[test]
    #[should_panic(expected = "n >= 3f + 1")]
    fn too_few_replicas_panics() {
        Config::new(3);
    }
}
