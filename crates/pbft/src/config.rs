//! Replication group configuration.

use base_simnet::{NodeId, SimDuration};

/// Static configuration shared by all replicas and clients of one group.
#[derive(Clone, Debug)]
pub struct Config {
    /// Number of replicas (`n >= 3f + 1`).
    pub n: usize,
    /// Checkpoint interval: a checkpoint is taken every `k`-th sequence
    /// number (the paper uses k = 128).
    pub checkpoint_interval: u64,
    /// Log window size: the primary may propose sequence numbers in
    /// `(h, h + log_window]` where `h` is the last stable checkpoint.
    pub log_window: u64,
    /// Maximum requests batched into one pre-prepare.
    pub batch_max: usize,
    /// Maximum unexecuted proposals the primary keeps in flight; arrivals
    /// beyond it accumulate and get batched (the BFT library's behaviour:
    /// batch whatever arrives while earlier batches are in the pipeline).
    pub max_inflight: u64,
    /// Base view-change timeout; doubles for each consecutive failed view
    /// (clamped to [`view_change_timeout_cap`](Self::view_change_timeout_cap)).
    /// With [`adaptive_timeouts`](Self::adaptive_timeouts) the base is
    /// re-seeded from observed agreement latency once samples exist.
    pub view_change_timeout: SimDuration,
    /// Ceiling for the doubling view-change timeout: however many
    /// consecutive views fail, the timer never exceeds this.
    pub view_change_timeout_cap: SimDuration,
    /// Client retransmission timeout. With adaptive timeouts this is only
    /// the pre-sample initial RTO; afterwards the Jacobson/Karels estimator
    /// drives the timer.
    pub client_timeout: SimDuration,
    /// When true (the default), retry timers derive from observed
    /// round-trip latency (`base_simnet::RttEstimator`) and the
    /// state-transfer fetch window adapts to reply latency and
    /// retransmission rate. When false, every timer is the static
    /// configured constant — the pre-adaptive behaviour, kept for A/B runs.
    pub adaptive_timeouts: bool,
    /// Lower clamp for adaptive retransmission timeouts.
    pub rto_floor: SimDuration,
    /// Upper clamp for adaptive retransmission timeouts (and their
    /// exponential backoff).
    pub rto_ceiling: SimDuration,
    /// Periodic retransmission/housekeeping tick at replicas.
    pub tick_interval: SimDuration,
    /// Proactive recovery: full rotation period (every replica recovers
    /// once per period, staggered). `None` disables proactive recovery.
    pub recovery_period: Option<SimDuration>,
    /// Simulated reboot time during proactive recovery.
    pub reboot_time: SimDuration,
    /// Tolerance when backups validate the primary's proposed timestamp
    /// non-determinism.
    pub nondet_skew_tolerance: SimDuration,
    /// State-transfer pipelining: maximum concurrently outstanding
    /// meta/object fetch queries (1 = strictly serial tree walk). With
    /// adaptive timeouts this is the *initial* window; it grows on timely
    /// verified replies and halves on retransmission.
    pub fetch_window: usize,
    /// Upper bound for the adaptive fetch window.
    pub fetch_window_max: usize,
    /// Agreement pipelining: maximum consensus instances past the highest
    /// contiguously *committed* sequence number the primary keeps open
    /// (proposing seq `n+1` while `n` is still gathering prepares).
    /// `1` is strict lockstep — the serial oracle the differential
    /// equivalence suite compares every other configuration against.
    /// Distinct from [`max_inflight`](Self::max_inflight), which bounds
    /// unexecuted proposals: a slot can be committed but not yet executed
    /// while the execution stage drains its backlog.
    pub pipeline_depth: u64,
    /// Worker threads for the conflict-partitioned execution stage
    /// ([`Service::set_exec_workers`](crate::Service::set_exec_workers)).
    /// Charge-neutral by construction: the executor reports the modelled
    /// parallel makespan through metrics but never rebooks simulated CPU
    /// charges, so results and timing are byte-identical at any worker
    /// count.
    pub exec_workers: usize,
    /// Erasure-coded state transfer: when true, a recovering replica
    /// fetches checkpoint data as systematic Reed–Solomon fragments
    /// (`k = f + 1` data + `m = f` parity) spread across `f + 1` distinct
    /// sources in parallel, instead of whole objects from one source at a
    /// time. Parity fragments are fetched only when a data fragment is
    /// missing or corrupt. Off by default — the legacy whole-object path.
    pub coded_transfer: bool,
    /// Leaf-digest chunk size in bytes
    /// ([`Service::set_chunk_size`](crate::Service::set_chunk_size)).
    /// `0` (the default) keeps legacy whole-object leaf digests. Non-zero
    /// switches every leaf digest to the chunked fold, so small writes to
    /// big objects re-hash only touched chunks and coded transfer can both
    /// verify and skip chunks the fetcher already holds. Consensus-critical:
    /// all replicas must configure the same value.
    pub chunk_size: usize,
    /// Shard (replica-group) identity. `0` — the default — is the classic
    /// single-group deployment and keeps every message byte-identical to
    /// the unsharded wire format; non-zero shards prefix their messages
    /// with a shard envelope so groups sharing one simulated network never
    /// accept each other's traffic (on top of per-shard key directories,
    /// whose MACs would not cross-verify anyway).
    pub shard: u32,
    /// First simulator node of this group's replica range: replica `i`
    /// lives at node `node_base + i`. Defaults to `0` (the unsharded
    /// layout). Sharded deployments place shard `s` at `s * n`.
    pub node_base: usize,
    /// First simulator node of this group's client range: the client with
    /// protocol id `c` (`c >= n` within the group's key directory) lives at
    /// node `client_base + (c - n)`. Defaults to `n`, which reproduces the
    /// unsharded layout where clients directly follow the replicas.
    pub client_base: usize,
}

impl Config {
    /// Creates a configuration for `n` replicas with defaults matching the
    /// paper's setup (k = 128, LAN-scale timeouts).
    ///
    /// # Panics
    ///
    /// Panics if `n < 4` (at least one fault must be tolerable).
    pub fn new(n: usize) -> Self {
        assert!(n >= 4, "PBFT needs n >= 3f + 1 >= 4 replicas");
        Self {
            n,
            checkpoint_interval: 128,
            log_window: 256,
            batch_max: 16,
            max_inflight: 16,
            view_change_timeout: SimDuration::from_millis(500),
            view_change_timeout_cap: SimDuration::from_secs(8),
            client_timeout: SimDuration::from_millis(300),
            adaptive_timeouts: true,
            rto_floor: SimDuration::from_millis(150),
            rto_ceiling: SimDuration::from_secs(4),
            tick_interval: SimDuration::from_millis(100),
            recovery_period: None,
            reboot_time: SimDuration::from_secs(30),
            nondet_skew_tolerance: SimDuration::from_secs(10),
            fetch_window: crate::transfer::DEFAULT_FETCH_WINDOW,
            fetch_window_max: 16,
            pipeline_depth: 16,
            exec_workers: 1,
            coded_transfer: false,
            chunk_size: 0,
            shard: 0,
            node_base: 0,
            client_base: n,
        }
    }

    /// Re-bases the group at `shard` with its replicas starting at
    /// `node_base` and its clients at `client_base` (sharded deployments;
    /// see [`shard`](Self::shard)).
    pub fn with_shard(mut self, shard: u32, node_base: usize, client_base: usize) -> Self {
        self.shard = shard;
        self.node_base = node_base;
        self.client_base = client_base;
        self
    }

    /// Maximum number of Byzantine faults tolerated: `f = (n - 1) / 3`.
    pub fn f(&self) -> usize {
        (self.n - 1) / 3
    }

    /// Quorum size for certificates: `2f + 1`.
    pub fn quorum(&self) -> usize {
        2 * self.f() + 1
    }

    /// Replies needed by a client for a read-write operation: `f + 1`.
    pub fn reply_quorum(&self) -> usize {
        self.f() + 1
    }

    /// The primary replica of `view`.
    pub fn primary_of(&self, view: u64) -> usize {
        (view % self.n as u64) as usize
    }

    /// Simulator node of replica `i` (replicas occupy nodes
    /// `node_base..node_base + n`).
    pub fn replica_node(&self, i: usize) -> NodeId {
        NodeId(self.node_base + i)
    }

    /// Iterator over all replica nodes.
    pub fn replica_nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.n).map(|i| self.replica_node(i))
    }

    /// True if `node` hosts a replica of this group.
    pub fn is_replica(&self, node: NodeId) -> bool {
        node.0 >= self.node_base && node.0 < self.node_base + self.n
    }

    /// Simulator node of the client with protocol id `client` (client ids
    /// within a group's key directory start at `n`).
    pub fn client_node(&self, client: u32) -> NodeId {
        NodeId(self.client_base + (client as usize).saturating_sub(self.n))
    }

    /// Highest sequence number the group accepts given stable checkpoint
    /// `h`.
    pub fn high_watermark(&self, h: u64) -> u64 {
        h + self.log_window
    }

    /// Next view-change timeout during an escalating chase: double the
    /// current value with saturating arithmetic, clamp to
    /// [`view_change_timeout_cap`](Self::view_change_timeout_cap), and
    /// never fall below [`view_change_timeout`](Self::view_change_timeout).
    /// A long primary-chasing storm must neither overflow the timer nor
    /// push it so far out the group effectively stops trying new views.
    pub fn escalated_vc_timeout(&self, current: SimDuration) -> SimDuration {
        current
            .saturating_mul(2)
            .min(self.view_change_timeout_cap)
            .max(self.view_change_timeout)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quorum_math() {
        let c4 = Config::new(4);
        assert_eq!(c4.f(), 1);
        assert_eq!(c4.quorum(), 3);
        assert_eq!(c4.reply_quorum(), 2);

        let c7 = Config::new(7);
        assert_eq!(c7.f(), 2);
        assert_eq!(c7.quorum(), 5);

        let c10 = Config::new(10);
        assert_eq!(c10.f(), 3);
        assert_eq!(c10.quorum(), 7);
    }

    #[test]
    fn primary_rotates() {
        let c = Config::new(4);
        assert_eq!(c.primary_of(0), 0);
        assert_eq!(c.primary_of(1), 1);
        assert_eq!(c.primary_of(4), 0);
        assert_eq!(c.primary_of(7), 3);
    }

    #[test]
    #[should_panic(expected = "n >= 3f + 1")]
    fn too_few_replicas_panics() {
        Config::new(3);
    }

    #[test]
    fn default_layout_is_the_unsharded_one() {
        let c = Config::new(4);
        assert_eq!(c.shard, 0);
        assert_eq!(c.replica_node(2), NodeId(2));
        assert_eq!(c.client_node(4), NodeId(4));
        assert_eq!(c.client_node(6), NodeId(6));
        assert!(c.is_replica(NodeId(3)));
        assert!(!c.is_replica(NodeId(4)));
    }

    #[test]
    fn sharded_layout_rebases_replicas_and_clients() {
        // Shard 1 of a 2-shard, n=4 deployment with 3 shared router
        // clients: replicas at 4..8, clients at 8..11.
        let c = Config::new(4).with_shard(1, 4, 8);
        assert_eq!(c.replica_node(0), NodeId(4));
        assert_eq!(c.replica_node(3), NodeId(7));
        assert_eq!(c.replica_nodes().collect::<Vec<_>>(), (4..8).map(NodeId).collect::<Vec<_>>());
        assert!(!c.is_replica(NodeId(3)));
        assert!(c.is_replica(NodeId(4)));
        assert!(!c.is_replica(NodeId(8)));
        // Client protocol id 4 (first client of the group's directory)
        // lives at the first router node; id 6 at the third.
        assert_eq!(c.client_node(4), NodeId(8));
        assert_eq!(c.client_node(6), NodeId(10));
    }

    #[test]
    fn vc_escalation_doubles_saturates_and_caps() {
        let mut cfg = Config::new(4);
        cfg.view_change_timeout = SimDuration::from_millis(500);
        cfg.view_change_timeout_cap = SimDuration::from_secs(8);

        // Normal doubling from the base.
        let mut t = cfg.view_change_timeout;
        for expect_ms in [1000, 2000, 4000, 8000] {
            t = cfg.escalated_vc_timeout(t);
            assert_eq!(t, SimDuration::from_millis(expect_ms));
        }
        // Pinned at the cap, however long the storm runs.
        for _ in 0..100 {
            t = cfg.escalated_vc_timeout(t);
            assert_eq!(t, cfg.view_change_timeout_cap);
        }

        // An adaptive base below the configured floor is pulled back up.
        let fast = cfg.escalated_vc_timeout(SimDuration::from_millis(100));
        assert_eq!(fast, cfg.view_change_timeout);

        // Saturating arithmetic: near-overflow current values clamp to the
        // cap instead of wrapping around to a tiny timeout.
        cfg.view_change_timeout_cap = SimDuration::from_nanos(u64::MAX);
        let huge = cfg.escalated_vc_timeout(SimDuration::from_nanos(u64::MAX - 1));
        assert_eq!(huge, SimDuration::from_nanos(u64::MAX));
    }
}
