//! Simulated CPU cost model.
//!
//! Real crypto is computed on every message, but the simulator's virtual
//! clock needs explicit charges to reflect that work in measured latencies.
//! The constants below approximate a ~1 GHz-era server of the paper's
//! vintage running SHA-256-based MACs; they are deliberately configurable
//! so experiments can ablate the cost model.

use base_simnet::SimDuration;

/// CPU cost constants used by replicas and clients.
#[derive(Clone, Copy, Debug)]
pub struct CostModel {
    /// Cost of one MAC computation or verification.
    pub mac: SimDuration,
    /// Cost of one (simulated) signature or verification.
    pub signature: SimDuration,
    /// Fixed cost of hashing a message.
    pub digest_base: SimDuration,
    /// Per-byte cost of hashing.
    pub digest_per_byte_ns: u64,
    /// Fixed protocol bookkeeping cost per handled message.
    pub handle: SimDuration,
}

impl Default for CostModel {
    fn default() -> Self {
        Self {
            mac: SimDuration::from_nanos(700),
            signature: SimDuration::from_micros(3),
            digest_base: SimDuration::from_nanos(400),
            digest_per_byte_ns: 3,
            handle: SimDuration::from_micros(2),
        }
    }
}

impl CostModel {
    /// An ablation cost model where every message authentication is a
    /// public-key signature instead of a MAC (the baseline the BFT
    /// library's authenticators are measured against). 200 µs per
    /// signature operation approximates paper-era RSA/Rabin hardware;
    /// MACs are three orders of magnitude cheaper.
    pub fn signatures_only() -> Self {
        Self { mac: SimDuration::from_micros(200), ..Self::default() }
    }

    /// Cost of hashing `len` bytes.
    pub fn digest(&self, len: usize) -> SimDuration {
        self.digest_base + SimDuration::from_nanos(self.digest_per_byte_ns * len as u64)
    }

    /// Cost of generating an authenticator for `n` receivers.
    pub fn authenticator(&self, n: usize) -> SimDuration {
        self.mac.saturating_mul(n as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn digest_cost_scales_with_length() {
        let c = CostModel::default();
        assert!(c.digest(10_000) > c.digest(10));
        assert_eq!(
            c.digest(1000),
            c.digest_base + SimDuration::from_nanos(3000)
        );
    }

    #[test]
    fn authenticator_scales_with_replicas() {
        let c = CostModel::default();
        assert_eq!(c.authenticator(4), c.mac.saturating_mul(4));
    }
}
