//! Hierarchical state transfer.
//!
//! A replica that is out of date (it missed garbage-collected messages, or
//! it just rebooted during proactive recovery) brings itself to the latest
//! stable checkpoint by walking the partition tree: it fetches the digests
//! of a node's children, compares them with its own, recurses only into
//! subtrees that differ, and finally fetches only the leaf objects that are
//! out of date or corrupt (paper §2.2).
//!
//! Every reply is verified by hashing against a digest that chains up to
//! the checkpoint digest in a checkpoint *certificate* (2f+1 signed
//! checkpoint messages), so Byzantine replicas cannot poison the state of a
//! correct but out-of-date replica — the property the paper highlights as
//! essential for state transfer.
//!
//! Queries are spread round-robin over the other replicas and pipelined:
//! up to a configurable window of meta/object queries is outstanding at a
//! time ([`DEFAULT_FETCH_WINDOW`]), with further discovered queries parked
//! in FIFO order until a slot frees up. A query whose reply fails digest
//! verification is re-targeted to the next source immediately; unanswered
//! queries are retransmitted with per-query exponential backoff and
//! deterministic jitter, so a slow or silent source delays only its own
//! partitions and retries do not synchronize into bursts.
//!
//! The checkpoint identity covers both the service state and the client
//! reply cache (which PBFT replicates as part of the state):
//! `D = H("ckpt" || service_root || H(replies_blob))`.

use crate::messages::{
    ChunksReplyMsg, FetchChunksMsg, FetchFragMsg, FetchMetaMsg, FetchObjectMsg, FragReplyMsg,
    Message, MetaReplyMsg, ObjectReplyMsg,
};
use crate::tree::PartitionTree;
use base_crypto::{fec, Digest};
use base_simnet::RttEstimator;
use std::collections::{BTreeMap, HashMap, VecDeque};

/// Default window of concurrently outstanding fetch queries.
///
/// The fetcher pipelines its tree walk: up to this many meta/object
/// queries are in flight at once, and each reply both advances the walk
/// and releases a window slot for the next parked query. `window = 1`
/// degenerates to a strictly serial walk (one query, one reply, repeat);
/// larger windows overlap query round-trips and cut the number of
/// request/reply rounds a transfer needs, while still bounding how hard a
/// recovering replica hammers its sources.
pub const DEFAULT_FETCH_WINDOW: usize = 4;

/// Pseudo-level used to fetch the checkpoint's top-level metadata
/// (`[service_root, replies_digest]`).
pub const META_ROOT_LEVEL: u32 = u32::MAX;

/// Pseudo-object index used to fetch the serialized reply cache.
pub const REPLIES_INDEX: u64 = u64::MAX;

/// Chunk number in fragment messages meaning "the whole object" — coded
/// transfer without chunked leaf digests fragments entire objects.
pub const CHUNK_WHOLE: u32 = u32::MAX;

/// Composite checkpoint digest over service state and reply cache.
pub fn checkpoint_digest(service_root: &Digest, replies_digest: &Digest) -> Digest {
    Digest::of_parts(&[b"ckpt", &service_root.0, &replies_digest.0])
}

/// Outcome of a completed fetch.
#[derive(Debug, Clone)]
pub struct FetchResult {
    /// The checkpoint sequence number reached.
    pub seq: u64,
    /// Root digest of the service partition tree at the checkpoint.
    pub service_root: Digest,
    /// Objects to install: `(index, Some(value))` for changed objects,
    /// `(index, None)` for objects absent in the checkpoint.
    pub objects: Vec<(u64, Option<Vec<u8>>)>,
    /// Serialized reply cache at the checkpoint.
    pub replies_blob: Vec<u8>,
    /// Total object bytes fetched over the network.
    pub fetched_bytes: u64,
    /// Number of meta (partition) queries issued.
    pub meta_queries: u64,
    /// Replies discarded because their digest did not verify.
    pub corrupt_replies: u64,
    /// Queries retransmitted (timeouts plus corrupt replies).
    pub retransmissions: u64,
    /// Largest pipelining window the fetch reached (equals the configured
    /// window for non-adaptive fetchers).
    pub peak_window: usize,
    /// Coded transfer: chunk-digest-list queries issued.
    pub chunk_queries: u64,
    /// Coded transfer: fragment queries issued.
    pub frag_queries: u64,
    /// Coded transfer: chunks satisfied from the local value (matched the
    /// remote checkpoint's verified chunk digest, so no bytes moved).
    pub chunks_reused: u64,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum FetchKey {
    Root,
    Replies,
    Meta { level: u32, index: u64 },
    Object { index: u64 },
    /// Coded transfer: an object's chunk-digest list.
    Chunks { index: u64 },
    /// Coded transfer: one erasure-coded fragment of a chunk (or of the
    /// whole object when `chunk == CHUNK_WHOLE`).
    Frag { index: u64, chunk: u32, frag: u32 },
}

#[derive(Debug)]
struct Outstanding {
    expected: Digest,
    attempts: u32,
    /// Tick count at which this query becomes eligible for retransmission
    /// (exponential backoff with deterministic jitter).
    next_retry: u64,
    /// Tick count at which the query was last put on the wire; verified
    /// replies feed `ticks - sent_at` to the reply-latency estimator.
    sent_at: u64,
}

/// Retransmission backoff cap, in ticks.
const MAX_BACKOFF_TICKS: u64 = 32;

/// Erasure-coding parameters for a coded fetch.
#[derive(Debug, Clone, Copy)]
struct CodedCfg {
    /// Data fragments needed to reconstruct (`f + 1`).
    k: usize,
    /// Parity fragments available beyond the data ones (`f`).
    m: usize,
    /// Leaf-digest chunk size; `0` fragments whole objects.
    chunk_size: usize,
}

/// Reassembly state for one coded unit — a chunk, or a whole object when
/// `chunk == CHUNK_WHOLE`.
#[derive(Debug)]
struct CodedUnit {
    /// Digest the reassembled bytes must hash to (chunk digest, or leaf
    /// digest for whole-object units).
    expected: Digest,
    /// Unfragmented length when known a priori (chunked mode learns it
    /// from the verified chunk list); whole-object units learn candidate
    /// lengths from fragment replies.
    len: Option<u64>,
    /// Distinct candidate lengths claimed by fragment replies (whole-object
    /// units only; the digest check arbitrates).
    lens_seen: Vec<u64>,
    /// Verified-length fragments received so far, by fragment id.
    frags: BTreeMap<u32, Vec<u8>>,
    /// Fragment queries issued for this unit (k, then k+m once escalated).
    issued: u32,
    /// Parity fragments have been requested (a data fragment arrived
    /// corrupt, or lengths disagree).
    escalated: bool,
}

impl CodedUnit {
    fn new(expected: Digest, len: Option<u64>) -> Self {
        Self { expected, len, lens_seen: Vec::new(), frags: BTreeMap::new(), issued: 0, escalated: false }
    }
}

/// Per-object assembly state for chunked coded fetches: the verified chunk
/// list plus reused or reconstructed chunk bytes.
#[derive(Debug)]
struct ChunkedObject {
    /// Object length from the verified chunk list.
    len: u64,
    /// Chunks still missing.
    remaining: usize,
    /// Chunk bytes, filled in as they are reused or reconstructed.
    chunks: Vec<Option<Vec<u8>>>,
}

/// State machine driving one state transfer.
#[derive(Debug)]
pub struct Fetcher {
    me: u32,
    n: usize,
    seq: u64,
    target: Digest,
    service_root: Option<Digest>,
    replies_digest: Option<Digest>,
    replies_blob: Option<Vec<u8>>,
    outstanding: HashMap<FetchKey, Outstanding>,
    /// Discovered queries parked until a window slot frees up (FIFO, so
    /// the walk order matches discovery order at any window size).
    pending: VecDeque<(FetchKey, Digest)>,
    /// Maximum number of concurrently outstanding queries.
    window: usize,
    /// AIMD adaptation: grow the window on timely verified replies, halve
    /// it on retransmission. Off for the pinned-window constructors.
    adaptive: bool,
    /// Upper bound for adaptive window growth.
    window_max: usize,
    /// Largest window reached over the fetch's lifetime.
    peak_window: usize,
    /// Reply latency in ticks; its RTO is the adaptive retry backoff base
    /// and the timeliness threshold for window growth.
    rtt: RttEstimator,
    /// Objects collected so far.
    objects: Vec<(u64, Option<Vec<u8>>)>,
    /// Round-robin cursor over source replicas.
    cursor: usize,
    /// Ticks elapsed since the fetch began (drives retry backoff).
    ticks: u64,
    /// Replies dropped because their digest did not verify.
    corrupt_replies: u64,
    /// Queries retransmitted (timeout or corrupt reply).
    retransmissions: u64,
    fetched_bytes: u64,
    meta_queries: u64,
    /// Erasure-coded fetch mode; `None` = legacy whole-object fetches.
    coded: Option<CodedCfg>,
    /// In-flight coded units, keyed by `(object index, chunk)`.
    units: HashMap<(u64, u32), CodedUnit>,
    /// In-flight chunked objects, keyed by object index.
    chunked: HashMap<u64, ChunkedObject>,
    chunk_queries: u64,
    frag_queries: u64,
    chunks_reused: u64,
    done: bool,
}

impl Fetcher {
    /// Creates a fetcher targeting checkpoint (`seq`, `target`), where
    /// `target` is the composite digest proven by a checkpoint certificate.
    /// Uses the default pipelining window ([`DEFAULT_FETCH_WINDOW`]).
    pub fn new(me: u32, n: usize, seq: u64, target: Digest) -> Self {
        Self::with_window(me, n, seq, target, DEFAULT_FETCH_WINDOW)
    }

    /// Creates a fetcher with an explicit pipelining window (clamped to a
    /// minimum of 1). `window = 1` walks the tree strictly serially.
    pub fn with_window(me: u32, n: usize, seq: u64, target: Digest, window: usize) -> Self {
        let window = window.max(1);
        Self {
            me,
            n,
            seq,
            target,
            service_root: None,
            replies_digest: None,
            replies_blob: None,
            outstanding: HashMap::new(),
            pending: VecDeque::new(),
            window,
            adaptive: false,
            window_max: window,
            peak_window: window,
            rtt: RttEstimator::new(seq ^ u64::from(me), 1, MAX_BACKOFF_TICKS, 1),
            objects: Vec::new(),
            cursor: (me as usize + 1) % n,
            ticks: 0,
            corrupt_replies: 0,
            retransmissions: 0,
            fetched_bytes: 0,
            meta_queries: 0,
            coded: None,
            units: HashMap::new(),
            chunked: HashMap::new(),
            chunk_queries: 0,
            frag_queries: 0,
            chunks_reused: 0,
            done: false,
        }
    }

    /// Switches the fetcher to erasure-coded object transfer: out-of-date
    /// objects are fetched as `(k, m)` Reed–Solomon fragments spread over
    /// the sources instead of whole values from one source. With
    /// `chunk_size > 0` the leaf digests must be chunked folds
    /// ([`crate::tree::chunked_leaf_digest`]); the fetcher first retrieves
    /// an object's chunk-digest list, reuses local chunks that already
    /// match, and fragments only the missing chunks. Parity fragments are
    /// requested only when a data fragment is lost to corruption.
    pub fn enable_coded(&mut self, k: usize, m: usize, chunk_size: usize) {
        assert!(k >= 1, "coded transfer needs k >= 1 data fragments");
        self.coded = Some(CodedCfg { k, m, chunk_size });
    }

    /// Creates a fetcher whose window adapts between `window` and
    /// `window_max` — additive increase on timely verified replies,
    /// halving on retransmission — and whose per-query retry backoff
    /// derives from the observed reply latency instead of a fixed
    /// schedule. Scheduling-only: the set of fetched objects and issued
    /// queries is identical to a pinned-window fetch absent loss.
    pub fn adaptive(
        me: u32,
        n: usize,
        seq: u64,
        target: Digest,
        window: usize,
        window_max: usize,
    ) -> Self {
        let mut f = Self::with_window(me, n, seq, target, window);
        f.adaptive = true;
        f.window_max = window_max.max(f.window);
        f
    }

    /// The current pipelining window.
    pub fn window(&self) -> usize {
        self.window
    }

    /// The checkpoint this fetch targets.
    pub fn target_seq(&self) -> u64 {
        self.seq
    }

    /// True once the fetch has completed (result already returned).
    pub fn is_done(&self) -> bool {
        self.done
    }

    /// Replies dropped because their digest did not verify.
    pub fn corrupt_replies(&self) -> u64 {
        self.corrupt_replies
    }

    /// Queries retransmitted so far (timeouts plus corrupt replies).
    pub fn retransmissions(&self) -> u64 {
        self.retransmissions
    }

    fn next_source(&mut self) -> u32 {
        loop {
            let r = self.cursor as u32;
            self.cursor = (self.cursor + 1) % self.n;
            if r != self.me {
                return r;
            }
        }
    }

    fn request_for(&self, key: FetchKey) -> Message {
        match key {
            FetchKey::Root => Message::FetchMeta(FetchMetaMsg {
                seq: self.seq,
                level: META_ROOT_LEVEL,
                index: 0,
                replica: self.me,
            }),
            FetchKey::Replies => Message::FetchObject(FetchObjectMsg {
                seq: self.seq,
                index: REPLIES_INDEX,
                replica: self.me,
            }),
            FetchKey::Meta { level, index } => Message::FetchMeta(FetchMetaMsg {
                seq: self.seq,
                level,
                index,
                replica: self.me,
            }),
            FetchKey::Object { index } => Message::FetchObject(FetchObjectMsg {
                seq: self.seq,
                index,
                replica: self.me,
            }),
            FetchKey::Chunks { index } => Message::FetchChunks(FetchChunksMsg {
                seq: self.seq,
                index,
                replica: self.me,
            }),
            FetchKey::Frag { index, chunk, frag } => Message::FetchFrag(FetchFragMsg {
                seq: self.seq,
                index,
                chunk,
                frag,
                replica: self.me,
            }),
        }
    }

    /// Deterministic per-(key, attempt) jitter in `0..=max`, so retries for
    /// different keys (and successive retries for one key) spread out
    /// instead of synchronizing, without consuming simulator randomness.
    fn jitter(&self, key: FetchKey, attempts: u32, max: u64) -> u64 {
        let code = match key {
            FetchKey::Root => 1,
            FetchKey::Replies => 2,
            FetchKey::Meta { level, index } => 3 ^ ((level as u64) << 32) ^ index,
            FetchKey::Object { index } => 5 ^ index,
            FetchKey::Chunks { index } => 7 ^ index,
            FetchKey::Frag { index, chunk, frag } => {
                11 ^ index ^ ((chunk as u64) << 20) ^ ((frag as u64) << 52)
            }
        };
        let mut x = self.seq ^ code ^ (u64::from(attempts) << 48) ^ 0x9e37_79b9_7f4a_7c15;
        x ^= x >> 30;
        x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
        x ^= x >> 27;
        if max == 0 { 0 } else { x % (max + 1) }
    }

    /// Exponential backoff (in ticks) for the next retry of `key`, plus
    /// jitter of up to half the backoff. Adaptive fetchers scale from the
    /// observed reply-latency RTO instead of a fixed one-tick base.
    fn backoff_ticks(&self, key: FetchKey, attempts: u32) -> u64 {
        let base = if self.adaptive {
            self.rtt.backoff(attempts)
        } else {
            (1u64 << attempts.min(5)).min(MAX_BACKOFF_TICKS)
        };
        base + self.jitter(key, attempts, base / 2)
    }

    /// Removes a verified outstanding query, feeding its reply latency to
    /// the estimator and growing the window when the reply was timely.
    /// Returns false when the query was not outstanding (stale reply).
    fn consume(&mut self, key: FetchKey) -> bool {
        let Some(o) = self.outstanding.remove(&key) else { return false };
        if self.adaptive {
            let lat = self.ticks.saturating_sub(o.sent_at);
            self.rtt.observe(lat);
            if lat <= self.rtt.rto() && self.window < self.window_max {
                self.window += 1;
                self.peak_window = self.peak_window.max(self.window);
            }
        }
        true
    }

    /// Queues a newly discovered query. It is sent immediately if the
    /// window has room, otherwise parked until an outstanding query
    /// completes; queries go out in discovery order either way.
    fn issue(&mut self, key: FetchKey, expected: Digest, out: &mut Vec<(u32, Message)>) {
        self.pending.push_back((key, expected));
        self.pump(out);
    }

    /// Moves parked queries onto the wire while window slots are free.
    fn pump(&mut self, out: &mut Vec<(u32, Message)>) {
        while self.outstanding.len() < self.window {
            let Some((key, expected)) = self.pending.pop_front() else { break };
            match key {
                FetchKey::Meta { .. } | FetchKey::Root => self.meta_queries += 1,
                FetchKey::Chunks { .. } => self.chunk_queries += 1,
                FetchKey::Frag { .. } => self.frag_queries += 1,
                _ => {}
            }
            let msg = self.request_for(key);
            let next_retry = self.ticks + self.backoff_ticks(key, 0);
            self.outstanding
                .insert(key, Outstanding { expected, attempts: 0, next_retry, sent_at: self.ticks });
            let src = self.next_source();
            out.push((src, msg));
        }
    }

    /// Drops a query that is no longer needed (its coded unit completed
    /// from other fragments), whether parked or on the wire, and lets a
    /// parked query take the freed slot.
    fn cancel(&mut self, key: FetchKey, out: &mut Vec<(u32, Message)>) {
        self.outstanding.remove(&key);
        self.pending.retain(|(k, _)| *k != key);
        self.pump(out);
    }

    /// Issues the fetch for one out-of-date object, routed by mode: legacy
    /// whole-object query, chunk-digest list (chunked coded), or `k` data
    /// fragment queries (whole-object coded).
    fn issue_object(&mut self, index: u64, expected: Digest, out: &mut Vec<(u32, Message)>) {
        match self.coded {
            None => self.issue(FetchKey::Object { index }, expected, out),
            Some(c) if c.chunk_size > 0 => self.issue(FetchKey::Chunks { index }, expected, out),
            Some(c) => {
                let unit = self
                    .units
                    .entry((index, CHUNK_WHOLE))
                    .or_insert_with(|| CodedUnit::new(expected, None));
                unit.issued = c.k as u32;
                for frag in 0..c.k as u32 {
                    self.issue(FetchKey::Frag { index, chunk: CHUNK_WHOLE, frag }, expected, out);
                }
            }
        }
    }

    /// Re-issues an already outstanding query to the next source, bumping
    /// its attempt count and pushing back its retry deadline.
    fn reissue(&mut self, key: FetchKey) -> Option<(u32, Message)> {
        let attempts = {
            let o = self.outstanding.get_mut(&key)?;
            o.attempts += 1;
            o.attempts
        };
        let next_retry = self.ticks + self.backoff_ticks(key, attempts);
        if let Some(o) = self.outstanding.get_mut(&key) {
            o.next_retry = next_retry;
            o.sent_at = self.ticks;
        }
        self.retransmissions += 1;
        if self.adaptive {
            // Multiplicative decrease: a lost or corrupt reply means the
            // sources (or the path) are struggling — back the window off.
            self.window = (self.window / 2).max(1);
        }
        Some((self.next_source(), self.request_for(key)))
    }

    /// Starts the fetch: issues the top-level metadata query.
    pub fn begin(&mut self) -> Vec<(u32, Message)> {
        let mut out = Vec::new();
        self.issue(FetchKey::Root, self.target, &mut out);
        out
    }

    /// Advances the retry clock and retransmits the outstanding queries
    /// whose backoff expired, each to the next source in rotation. Call on
    /// a periodic tick.
    pub fn tick(&mut self) -> Vec<(u32, Message)> {
        self.ticks += 1;
        let due: Vec<FetchKey> = self
            .outstanding
            .iter()
            .filter(|(_, o)| o.next_retry <= self.ticks)
            .map(|(k, _)| *k)
            .collect();
        // HashMap order is nondeterministic: sort so retransmission order
        // (and thus the simulation trace) is reproducible.
        let mut due = due;
        due.sort_unstable_by_key(|k| match *k {
            FetchKey::Root => (0, 0, 0),
            FetchKey::Replies => (1, 0, 0),
            FetchKey::Meta { level, index } => (2, level as u64, index),
            FetchKey::Object { index } => (3, 0, index),
            FetchKey::Chunks { index } => (4, 0, index),
            FetchKey::Frag { index, chunk, frag } => {
                (5, index, (u64::from(chunk) << 32) | u64::from(frag))
            }
        });
        due.into_iter().filter_map(|key| self.reissue(key)).collect()
    }

    /// Handles a metadata reply. Returns follow-up queries and, if the
    /// fetch completed, the result.
    pub fn on_meta_reply(
        &mut self,
        m: &MetaReplyMsg,
        local: &PartitionTree,
    ) -> (Vec<(u32, Message)>, Option<FetchResult>) {
        if self.done || m.seq != self.seq {
            return (Vec::new(), None);
        }
        let mut out = Vec::new();

        if m.level == META_ROOT_LEVEL {
            // Top-level: digests must be [service_root, replies_digest]
            // hashing to the certified checkpoint digest.
            if m.digests.len() != 2
                || checkpoint_digest(&m.digests[0], &m.digests[1]) != self.target
            {
                // Corrupt root metadata: re-target the query right away
                // (no-op if the root query is no longer outstanding).
                self.corrupt_replies += 1;
                let out = self.reissue(FetchKey::Root).into_iter().collect();
                return (out, None);
            }
            if !self.consume(FetchKey::Root) {
                return (Vec::new(), None);
            }
            let service_root = m.digests[0];
            let replies_digest = m.digests[1];
            self.service_root = Some(service_root);
            self.replies_digest = Some(replies_digest);
            self.issue(FetchKey::Replies, replies_digest, &mut out);

            // Walk the service tree only where it differs locally.
            if service_root != local.root_digest() {
                if local.depth() == 0 {
                    // Degenerate single-object tree: the root is the leaf.
                    if service_root.is_zero() {
                        self.objects.push((0, None));
                    } else {
                        self.issue_object(0, service_root, &mut out);
                    }
                } else {
                    self.issue(
                        FetchKey::Meta { level: local.depth(), index: 0 },
                        service_root,
                        &mut out,
                    );
                }
            }
            return (out, self.maybe_complete());
        }

        // Regular partition node.
        let key = FetchKey::Meta { level: m.level, index: m.index };
        let expected = match self.outstanding.get(&key) {
            Some(o) => o.expected,
            None => return (Vec::new(), None),
        };
        if !local.verify_children(m.level, &m.digests, &expected) {
            // Corrupt or stale reply: re-target the query to the next
            // source immediately instead of waiting out the backoff.
            self.corrupt_replies += 1;
            let out = self.reissue(key).into_iter().collect();
            return (out, None);
        }
        self.consume(key);

        let b = local.branching() as u64;
        let local_children = local
            .children_digests(m.level, m.index)
            .unwrap_or_else(|| vec![local.default_digest(m.level - 1); b as usize]);
        for (c, remote_digest) in m.digests.iter().enumerate() {
            if *remote_digest == local_children[c] {
                continue;
            }
            let child_index = m.index * b + c as u64;
            if m.level - 1 == 0 {
                // Child is a leaf (an abstract object). A zero digest means
                // the object is absent in the checkpoint — record the
                // deletion without a fetch.
                if child_index < local.capacity() {
                    if remote_digest.is_zero() {
                        self.objects.push((child_index, None));
                    } else {
                        self.issue_object(child_index, *remote_digest, &mut out);
                    }
                }
            } else {
                self.issue(
                    FetchKey::Meta { level: m.level - 1, index: child_index },
                    *remote_digest,
                    &mut out,
                );
            }
        }
        // The completed query freed a window slot even if this node
        // contributed no new queries: let a parked one through.
        self.pump(&mut out);
        (out, self.maybe_complete())
    }

    /// Handles an object reply.
    pub fn on_object_reply(
        &mut self,
        m: &ObjectReplyMsg,
        _local: &PartitionTree,
    ) -> (Vec<(u32, Message)>, Option<FetchResult>) {
        if self.done || m.seq != self.seq {
            return (Vec::new(), None);
        }
        if m.index == REPLIES_INDEX {
            let expected = match self.replies_digest {
                Some(d) => d,
                None => return (Vec::new(), None),
            };
            if Digest::of(&m.data) != expected {
                self.corrupt_replies += 1;
                let out = self.reissue(FetchKey::Replies).into_iter().collect();
                return (out, None);
            }
            if self.consume(FetchKey::Replies) {
                self.fetched_bytes += m.data.len() as u64;
                self.replies_blob = Some(m.data.clone());
            }
            let mut out = Vec::new();
            self.pump(&mut out);
            return (out, self.maybe_complete());
        }

        let key = FetchKey::Object { index: m.index };
        let expected = match self.outstanding.get(&key) {
            Some(o) => o.expected,
            None => return (Vec::new(), None),
        };
        if crate::tree::leaf_digest(m.index, &m.data) != expected {
            self.corrupt_replies += 1;
            let out = self.reissue(key).into_iter().collect();
            return (out, None);
        }
        self.consume(key);
        self.fetched_bytes += m.data.len() as u64;
        self.objects.push((m.index, Some(m.data.clone())));
        let mut out = Vec::new();
        self.pump(&mut out);
        (out, self.maybe_complete())
    }

    /// Handles a chunk-digest-list reply. `local_value` is this replica's
    /// *current* value of the object (from
    /// [`Service::transfer_object`](crate::Service::transfer_object)):
    /// chunks whose local bytes already hash to the verified remote chunk
    /// digest are reused without moving bytes.
    pub fn on_chunks_reply(
        &mut self,
        m: &ChunksReplyMsg,
        local_value: Option<&[u8]>,
    ) -> (Vec<(u32, Message)>, Option<FetchResult>) {
        if self.done || m.seq != self.seq {
            return (Vec::new(), None);
        }
        let Some(c) = self.coded else { return (Vec::new(), None) };
        let key = FetchKey::Chunks { index: m.index };
        let expected = match self.outstanding.get(&key) {
            Some(o) => o.expected,
            None => return (Vec::new(), None),
        };
        // The fold binds both the length and every chunk digest to the
        // (certified) leaf digest, so `len` is as trustworthy as the data.
        let len = m.len as usize;
        if c.chunk_size == 0
            || m.digests.len() != len.div_ceil(c.chunk_size)
            || crate::tree::chunked_leaf_from_digests(m.index, m.len, &m.digests) != expected
        {
            self.corrupt_replies += 1;
            let out = self.reissue(key).into_iter().collect();
            return (out, None);
        }
        self.consume(key);
        self.fetched_bytes += (m.digests.len() * 32) as u64;

        let mut out = Vec::new();
        let mut chunks: Vec<Option<Vec<u8>>> = vec![None; m.digests.len()];
        let mut remaining = 0usize;
        for (ci, d) in m.digests.iter().enumerate() {
            let start = ci * c.chunk_size;
            let end = ((ci + 1) * c.chunk_size).min(len);
            // Reuse the local bytes at this chunk's position when they hash
            // to the verified remote digest — correct whatever the local
            // object has drifted to, because equality is checked against
            // the remote checkpoint's digest, not local metadata.
            let reused = local_value
                .and_then(|v| v.get(start..end))
                .filter(|cand| crate::tree::chunk_digest(m.index, ci as u32, cand) == *d);
            if let Some(cand) = reused {
                chunks[ci] = Some(cand.to_vec());
                self.chunks_reused += 1;
                continue;
            }
            remaining += 1;
            let unit = self
                .units
                .entry((m.index, ci as u32))
                .or_insert_with(|| CodedUnit::new(*d, Some((end - start) as u64)));
            unit.issued = c.k as u32;
            for frag in 0..c.k as u32 {
                self.issue(FetchKey::Frag { index: m.index, chunk: ci as u32, frag }, *d, &mut out);
            }
        }
        if remaining == 0 {
            // Everything reused (or a zero-length object): assemble now.
            let mut value = Vec::with_capacity(len);
            for ch in chunks {
                value.extend_from_slice(&ch.expect("no chunk outstanding"));
            }
            self.objects.push((m.index, Some(value)));
        } else {
            self.chunked.insert(m.index, ChunkedObject { len: m.len, remaining, chunks });
        }
        self.pump(&mut out);
        (out, self.maybe_complete())
    }

    /// Handles a fragment reply: validates its geometry, banks it in the
    /// unit, and attempts reconstruction once `k` fragments are in.
    pub fn on_frag_reply(&mut self, m: &FragReplyMsg) -> (Vec<(u32, Message)>, Option<FetchResult>) {
        if self.done || m.seq != self.seq {
            return (Vec::new(), None);
        }
        let Some(c) = self.coded else { return (Vec::new(), None) };
        let key = FetchKey::Frag { index: m.index, chunk: m.chunk, frag: m.frag };
        if !self.outstanding.contains_key(&key) {
            return (Vec::new(), None);
        }
        let Some(unit) = self.units.get_mut(&(m.index, m.chunk)) else {
            return (Vec::new(), None);
        };
        // Geometry check. With a verified length (chunked mode) the reply
        // must match it exactly; whole-object units treat the claimed
        // length as a candidate to be arbitrated by the digest check.
        let geometry_ok = (m.frag as usize) < c.k + c.m
            && match unit.len {
                Some(l) => m.len == l && m.data.len() == fec::fragment_len(l as usize, c.k),
                None => m.data.len() == fec::fragment_len(m.len as usize, c.k),
            };
        if !geometry_ok {
            self.corrupt_replies += 1;
            let out = self.reissue(key).into_iter().collect();
            return (out, None);
        }
        if unit.len.is_none() && !unit.lens_seen.contains(&m.len) {
            unit.lens_seen.push(m.len);
            unit.lens_seen.sort_unstable();
        }
        unit.frags.entry(m.frag).or_insert_with(|| m.data.clone());
        self.consume(key);
        self.fetched_bytes += m.data.len() as u64;
        let mut out = Vec::new();
        self.try_unit(m.index, m.chunk, &mut out);
        self.pump(&mut out);
        (out, self.maybe_complete())
    }

    /// Attempts to reconstruct one coded unit from its banked fragments;
    /// on digest failure with every issued fragment in, escalates to
    /// parity fragments and then to a fresh fetch round (rotated sources).
    fn try_unit(&mut self, index: u64, chunk: u32, out: &mut Vec<(u32, Message)>) {
        let Some(c) = self.coded else { return };
        let Some(unit) = self.units.get(&(index, chunk)) else { return };
        if unit.frags.len() < c.k {
            return;
        }
        let expected = unit.expected;
        let check = |data: &[u8]| {
            if chunk == CHUNK_WHOLE {
                crate::tree::leaf_digest(index, data) == expected
            } else {
                crate::tree::chunk_digest(index, chunk, data) == expected
            }
        };
        let candidates: Vec<u64> = match unit.len {
            Some(l) => vec![l],
            None => unit.lens_seen.clone(),
        };
        let frag_vec: Vec<(usize, Vec<u8>)> =
            unit.frags.iter().map(|(id, d)| (*id as usize, d.clone())).collect();
        for &len in &candidates {
            let flen = fec::fragment_len(len as usize, c.k);
            let fit: Vec<(usize, Vec<u8>)> =
                frag_vec.iter().filter(|(_, d)| d.len() == flen).cloned().collect();
            if fit.len() < c.k {
                continue;
            }
            if let Some(data) = fec::reconstruct_verified(&fit, c.k, c.m, len as usize, check) {
                self.complete_unit(index, chunk, data, out);
                return;
            }
        }
        // >= k fragments and no verifiable reconstruction: wait for the
        // stragglers; once every issued fragment has answered, at least one
        // banked fragment is corrupt.
        let (received, issued, escalated) = {
            let u = &self.units[&(index, chunk)];
            (u.frags.len() as u32, u.issued, u.escalated)
        };
        if received < issued {
            return;
        }
        self.corrupt_replies += 1;
        if !escalated && c.m > 0 {
            // Escalate: pull parity fragments so `reconstruct_verified` can
            // vote the corrupt fragment out.
            let u = self.units.get_mut(&(index, chunk)).expect("unit exists");
            u.escalated = true;
            u.issued = (c.k + c.m) as u32;
            for frag in c.k as u32..(c.k + c.m) as u32 {
                self.issue(FetchKey::Frag { index, chunk, frag }, expected, out);
            }
        } else {
            // Even the full fragment set cannot be verified (more corrupt
            // fragments than parity). Start the unit over — the round-robin
            // cursor has moved on, so the retry lands on different sources.
            let u = self.units.get_mut(&(index, chunk)).expect("unit exists");
            u.frags.clear();
            u.lens_seen.clear();
            u.escalated = false;
            u.issued = c.k as u32;
            self.retransmissions += 1;
            for frag in 0..c.k as u32 {
                self.issue(FetchKey::Frag { index, chunk, frag }, expected, out);
            }
        }
    }

    /// Banks a verified reconstruction: cancels the unit's remaining
    /// fragment queries and, for chunked objects, assembles the value once
    /// the last chunk lands.
    fn complete_unit(&mut self, index: u64, chunk: u32, data: Vec<u8>, out: &mut Vec<(u32, Message)>) {
        let unit = self.units.remove(&(index, chunk)).expect("unit exists");
        for frag in 0..unit.issued {
            self.cancel(FetchKey::Frag { index, chunk, frag }, out);
        }
        if chunk == CHUNK_WHOLE {
            self.objects.push((index, Some(data)));
            return;
        }
        let obj = self.chunked.get_mut(&index).expect("chunked object exists");
        let ci = chunk as usize;
        if obj.chunks[ci].is_none() {
            obj.chunks[ci] = Some(data);
            obj.remaining -= 1;
        }
        if obj.remaining == 0 {
            let obj = self.chunked.remove(&index).expect("just seen");
            let mut value = Vec::with_capacity(obj.len as usize);
            for ch in obj.chunks {
                value.extend_from_slice(&ch.expect("remaining == 0"));
            }
            debug_assert_eq!(value.len() as u64, obj.len);
            self.objects.push((index, Some(value)));
        }
    }

    fn maybe_complete(&mut self) -> Option<FetchResult> {
        if self.done
            || !self.outstanding.is_empty()
            || !self.pending.is_empty()
            || !self.units.is_empty()
            || !self.chunked.is_empty()
            || self.service_root.is_none()
            || self.replies_blob.is_none()
        {
            return None;
        }
        self.done = true;
        Some(FetchResult {
            seq: self.seq,
            service_root: self.service_root.expect("checked above"),
            objects: std::mem::take(&mut self.objects),
            replies_blob: self.replies_blob.clone().expect("checked above"),
            fetched_bytes: self.fetched_bytes,
            meta_queries: self.meta_queries,
            corrupt_replies: self.corrupt_replies,
            retransmissions: self.retransmissions,
            peak_window: self.peak_window,
            chunk_queries: self.chunk_queries,
            frag_queries: self.frag_queries,
            chunks_reused: self.chunks_reused,
        })
    }
}
