//! Hierarchical state transfer.
//!
//! A replica that is out of date (it missed garbage-collected messages, or
//! it just rebooted during proactive recovery) brings itself to the latest
//! stable checkpoint by walking the partition tree: it fetches the digests
//! of a node's children, compares them with its own, recurses only into
//! subtrees that differ, and finally fetches only the leaf objects that are
//! out of date or corrupt (paper §2.2).
//!
//! Every reply is verified by hashing against a digest that chains up to
//! the checkpoint digest in a checkpoint *certificate* (2f+1 signed
//! checkpoint messages), so Byzantine replicas cannot poison the state of a
//! correct but out-of-date replica — the property the paper highlights as
//! essential for state transfer.
//!
//! Queries are spread round-robin over the other replicas and pipelined:
//! up to a configurable window of meta/object queries is outstanding at a
//! time ([`DEFAULT_FETCH_WINDOW`]), with further discovered queries parked
//! in FIFO order until a slot frees up. A query whose reply fails digest
//! verification is re-targeted to the next source immediately; unanswered
//! queries are retransmitted with per-query exponential backoff and
//! deterministic jitter, so a slow or silent source delays only its own
//! partitions and retries do not synchronize into bursts.
//!
//! The checkpoint identity covers both the service state and the client
//! reply cache (which PBFT replicates as part of the state):
//! `D = H("ckpt" || service_root || H(replies_blob))`.

use crate::messages::{FetchMetaMsg, FetchObjectMsg, Message, MetaReplyMsg, ObjectReplyMsg};
use crate::tree::PartitionTree;
use base_crypto::Digest;
use base_simnet::RttEstimator;
use std::collections::{HashMap, VecDeque};

/// Default window of concurrently outstanding fetch queries.
///
/// The fetcher pipelines its tree walk: up to this many meta/object
/// queries are in flight at once, and each reply both advances the walk
/// and releases a window slot for the next parked query. `window = 1`
/// degenerates to a strictly serial walk (one query, one reply, repeat);
/// larger windows overlap query round-trips and cut the number of
/// request/reply rounds a transfer needs, while still bounding how hard a
/// recovering replica hammers its sources.
pub const DEFAULT_FETCH_WINDOW: usize = 4;

/// Pseudo-level used to fetch the checkpoint's top-level metadata
/// (`[service_root, replies_digest]`).
pub const META_ROOT_LEVEL: u32 = u32::MAX;

/// Pseudo-object index used to fetch the serialized reply cache.
pub const REPLIES_INDEX: u64 = u64::MAX;

/// Composite checkpoint digest over service state and reply cache.
pub fn checkpoint_digest(service_root: &Digest, replies_digest: &Digest) -> Digest {
    Digest::of_parts(&[b"ckpt", &service_root.0, &replies_digest.0])
}

/// Outcome of a completed fetch.
#[derive(Debug, Clone)]
pub struct FetchResult {
    /// The checkpoint sequence number reached.
    pub seq: u64,
    /// Root digest of the service partition tree at the checkpoint.
    pub service_root: Digest,
    /// Objects to install: `(index, Some(value))` for changed objects,
    /// `(index, None)` for objects absent in the checkpoint.
    pub objects: Vec<(u64, Option<Vec<u8>>)>,
    /// Serialized reply cache at the checkpoint.
    pub replies_blob: Vec<u8>,
    /// Total object bytes fetched over the network.
    pub fetched_bytes: u64,
    /// Number of meta (partition) queries issued.
    pub meta_queries: u64,
    /// Replies discarded because their digest did not verify.
    pub corrupt_replies: u64,
    /// Queries retransmitted (timeouts plus corrupt replies).
    pub retransmissions: u64,
    /// Largest pipelining window the fetch reached (equals the configured
    /// window for non-adaptive fetchers).
    pub peak_window: usize,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum FetchKey {
    Root,
    Replies,
    Meta { level: u32, index: u64 },
    Object { index: u64 },
}

#[derive(Debug)]
struct Outstanding {
    expected: Digest,
    attempts: u32,
    /// Tick count at which this query becomes eligible for retransmission
    /// (exponential backoff with deterministic jitter).
    next_retry: u64,
    /// Tick count at which the query was last put on the wire; verified
    /// replies feed `ticks - sent_at` to the reply-latency estimator.
    sent_at: u64,
}

/// Retransmission backoff cap, in ticks.
const MAX_BACKOFF_TICKS: u64 = 32;

/// State machine driving one state transfer.
#[derive(Debug)]
pub struct Fetcher {
    me: u32,
    n: usize,
    seq: u64,
    target: Digest,
    service_root: Option<Digest>,
    replies_digest: Option<Digest>,
    replies_blob: Option<Vec<u8>>,
    outstanding: HashMap<FetchKey, Outstanding>,
    /// Discovered queries parked until a window slot frees up (FIFO, so
    /// the walk order matches discovery order at any window size).
    pending: VecDeque<(FetchKey, Digest)>,
    /// Maximum number of concurrently outstanding queries.
    window: usize,
    /// AIMD adaptation: grow the window on timely verified replies, halve
    /// it on retransmission. Off for the pinned-window constructors.
    adaptive: bool,
    /// Upper bound for adaptive window growth.
    window_max: usize,
    /// Largest window reached over the fetch's lifetime.
    peak_window: usize,
    /// Reply latency in ticks; its RTO is the adaptive retry backoff base
    /// and the timeliness threshold for window growth.
    rtt: RttEstimator,
    /// Objects collected so far.
    objects: Vec<(u64, Option<Vec<u8>>)>,
    /// Round-robin cursor over source replicas.
    cursor: usize,
    /// Ticks elapsed since the fetch began (drives retry backoff).
    ticks: u64,
    /// Replies dropped because their digest did not verify.
    corrupt_replies: u64,
    /// Queries retransmitted (timeout or corrupt reply).
    retransmissions: u64,
    fetched_bytes: u64,
    meta_queries: u64,
    done: bool,
}

impl Fetcher {
    /// Creates a fetcher targeting checkpoint (`seq`, `target`), where
    /// `target` is the composite digest proven by a checkpoint certificate.
    /// Uses the default pipelining window ([`DEFAULT_FETCH_WINDOW`]).
    pub fn new(me: u32, n: usize, seq: u64, target: Digest) -> Self {
        Self::with_window(me, n, seq, target, DEFAULT_FETCH_WINDOW)
    }

    /// Creates a fetcher with an explicit pipelining window (clamped to a
    /// minimum of 1). `window = 1` walks the tree strictly serially.
    pub fn with_window(me: u32, n: usize, seq: u64, target: Digest, window: usize) -> Self {
        let window = window.max(1);
        Self {
            me,
            n,
            seq,
            target,
            service_root: None,
            replies_digest: None,
            replies_blob: None,
            outstanding: HashMap::new(),
            pending: VecDeque::new(),
            window,
            adaptive: false,
            window_max: window,
            peak_window: window,
            rtt: RttEstimator::new(seq ^ u64::from(me), 1, MAX_BACKOFF_TICKS, 1),
            objects: Vec::new(),
            cursor: (me as usize + 1) % n,
            ticks: 0,
            corrupt_replies: 0,
            retransmissions: 0,
            fetched_bytes: 0,
            meta_queries: 0,
            done: false,
        }
    }

    /// Creates a fetcher whose window adapts between `window` and
    /// `window_max` — additive increase on timely verified replies,
    /// halving on retransmission — and whose per-query retry backoff
    /// derives from the observed reply latency instead of a fixed
    /// schedule. Scheduling-only: the set of fetched objects and issued
    /// queries is identical to a pinned-window fetch absent loss.
    pub fn adaptive(
        me: u32,
        n: usize,
        seq: u64,
        target: Digest,
        window: usize,
        window_max: usize,
    ) -> Self {
        let mut f = Self::with_window(me, n, seq, target, window);
        f.adaptive = true;
        f.window_max = window_max.max(f.window);
        f
    }

    /// The current pipelining window.
    pub fn window(&self) -> usize {
        self.window
    }

    /// The checkpoint this fetch targets.
    pub fn target_seq(&self) -> u64 {
        self.seq
    }

    /// True once the fetch has completed (result already returned).
    pub fn is_done(&self) -> bool {
        self.done
    }

    /// Replies dropped because their digest did not verify.
    pub fn corrupt_replies(&self) -> u64 {
        self.corrupt_replies
    }

    /// Queries retransmitted so far (timeouts plus corrupt replies).
    pub fn retransmissions(&self) -> u64 {
        self.retransmissions
    }

    fn next_source(&mut self) -> u32 {
        loop {
            let r = self.cursor as u32;
            self.cursor = (self.cursor + 1) % self.n;
            if r != self.me {
                return r;
            }
        }
    }

    fn request_for(&self, key: FetchKey) -> Message {
        match key {
            FetchKey::Root => Message::FetchMeta(FetchMetaMsg {
                seq: self.seq,
                level: META_ROOT_LEVEL,
                index: 0,
                replica: self.me,
            }),
            FetchKey::Replies => Message::FetchObject(FetchObjectMsg {
                seq: self.seq,
                index: REPLIES_INDEX,
                replica: self.me,
            }),
            FetchKey::Meta { level, index } => Message::FetchMeta(FetchMetaMsg {
                seq: self.seq,
                level,
                index,
                replica: self.me,
            }),
            FetchKey::Object { index } => Message::FetchObject(FetchObjectMsg {
                seq: self.seq,
                index,
                replica: self.me,
            }),
        }
    }

    /// Deterministic per-(key, attempt) jitter in `0..=max`, so retries for
    /// different keys (and successive retries for one key) spread out
    /// instead of synchronizing, without consuming simulator randomness.
    fn jitter(&self, key: FetchKey, attempts: u32, max: u64) -> u64 {
        let code = match key {
            FetchKey::Root => 1,
            FetchKey::Replies => 2,
            FetchKey::Meta { level, index } => 3 ^ ((level as u64) << 32) ^ index,
            FetchKey::Object { index } => 5 ^ index,
        };
        let mut x = self.seq ^ code ^ (u64::from(attempts) << 48) ^ 0x9e37_79b9_7f4a_7c15;
        x ^= x >> 30;
        x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
        x ^= x >> 27;
        if max == 0 { 0 } else { x % (max + 1) }
    }

    /// Exponential backoff (in ticks) for the next retry of `key`, plus
    /// jitter of up to half the backoff. Adaptive fetchers scale from the
    /// observed reply-latency RTO instead of a fixed one-tick base.
    fn backoff_ticks(&self, key: FetchKey, attempts: u32) -> u64 {
        let base = if self.adaptive {
            self.rtt.backoff(attempts)
        } else {
            (1u64 << attempts.min(5)).min(MAX_BACKOFF_TICKS)
        };
        base + self.jitter(key, attempts, base / 2)
    }

    /// Removes a verified outstanding query, feeding its reply latency to
    /// the estimator and growing the window when the reply was timely.
    /// Returns false when the query was not outstanding (stale reply).
    fn consume(&mut self, key: FetchKey) -> bool {
        let Some(o) = self.outstanding.remove(&key) else { return false };
        if self.adaptive {
            let lat = self.ticks.saturating_sub(o.sent_at);
            self.rtt.observe(lat);
            if lat <= self.rtt.rto() && self.window < self.window_max {
                self.window += 1;
                self.peak_window = self.peak_window.max(self.window);
            }
        }
        true
    }

    /// Queues a newly discovered query. It is sent immediately if the
    /// window has room, otherwise parked until an outstanding query
    /// completes; queries go out in discovery order either way.
    fn issue(&mut self, key: FetchKey, expected: Digest, out: &mut Vec<(u32, Message)>) {
        self.pending.push_back((key, expected));
        self.pump(out);
    }

    /// Moves parked queries onto the wire while window slots are free.
    fn pump(&mut self, out: &mut Vec<(u32, Message)>) {
        while self.outstanding.len() < self.window {
            let Some((key, expected)) = self.pending.pop_front() else { break };
            if matches!(key, FetchKey::Meta { .. } | FetchKey::Root) {
                self.meta_queries += 1;
            }
            let msg = self.request_for(key);
            let next_retry = self.ticks + self.backoff_ticks(key, 0);
            self.outstanding
                .insert(key, Outstanding { expected, attempts: 0, next_retry, sent_at: self.ticks });
            let src = self.next_source();
            out.push((src, msg));
        }
    }

    /// Re-issues an already outstanding query to the next source, bumping
    /// its attempt count and pushing back its retry deadline.
    fn reissue(&mut self, key: FetchKey) -> Option<(u32, Message)> {
        let attempts = {
            let o = self.outstanding.get_mut(&key)?;
            o.attempts += 1;
            o.attempts
        };
        let next_retry = self.ticks + self.backoff_ticks(key, attempts);
        if let Some(o) = self.outstanding.get_mut(&key) {
            o.next_retry = next_retry;
            o.sent_at = self.ticks;
        }
        self.retransmissions += 1;
        if self.adaptive {
            // Multiplicative decrease: a lost or corrupt reply means the
            // sources (or the path) are struggling — back the window off.
            self.window = (self.window / 2).max(1);
        }
        Some((self.next_source(), self.request_for(key)))
    }

    /// Starts the fetch: issues the top-level metadata query.
    pub fn begin(&mut self) -> Vec<(u32, Message)> {
        let mut out = Vec::new();
        self.issue(FetchKey::Root, self.target, &mut out);
        out
    }

    /// Advances the retry clock and retransmits the outstanding queries
    /// whose backoff expired, each to the next source in rotation. Call on
    /// a periodic tick.
    pub fn tick(&mut self) -> Vec<(u32, Message)> {
        self.ticks += 1;
        let due: Vec<FetchKey> = self
            .outstanding
            .iter()
            .filter(|(_, o)| o.next_retry <= self.ticks)
            .map(|(k, _)| *k)
            .collect();
        // HashMap order is nondeterministic: sort so retransmission order
        // (and thus the simulation trace) is reproducible.
        let mut due = due;
        due.sort_unstable_by_key(|k| match *k {
            FetchKey::Root => (0, 0, 0),
            FetchKey::Replies => (1, 0, 0),
            FetchKey::Meta { level, index } => (2, level as u64, index),
            FetchKey::Object { index } => (3, 0, index),
        });
        due.into_iter().filter_map(|key| self.reissue(key)).collect()
    }

    /// Handles a metadata reply. Returns follow-up queries and, if the
    /// fetch completed, the result.
    pub fn on_meta_reply(
        &mut self,
        m: &MetaReplyMsg,
        local: &PartitionTree,
    ) -> (Vec<(u32, Message)>, Option<FetchResult>) {
        if self.done || m.seq != self.seq {
            return (Vec::new(), None);
        }
        let mut out = Vec::new();

        if m.level == META_ROOT_LEVEL {
            // Top-level: digests must be [service_root, replies_digest]
            // hashing to the certified checkpoint digest.
            if m.digests.len() != 2
                || checkpoint_digest(&m.digests[0], &m.digests[1]) != self.target
            {
                // Corrupt root metadata: re-target the query right away
                // (no-op if the root query is no longer outstanding).
                self.corrupt_replies += 1;
                let out = self.reissue(FetchKey::Root).into_iter().collect();
                return (out, None);
            }
            if !self.consume(FetchKey::Root) {
                return (Vec::new(), None);
            }
            let service_root = m.digests[0];
            let replies_digest = m.digests[1];
            self.service_root = Some(service_root);
            self.replies_digest = Some(replies_digest);
            self.issue(FetchKey::Replies, replies_digest, &mut out);

            // Walk the service tree only where it differs locally.
            if service_root != local.root_digest() {
                if local.depth() == 0 {
                    // Degenerate single-object tree: the root is the leaf.
                    if service_root.is_zero() {
                        self.objects.push((0, None));
                    } else {
                        self.issue(FetchKey::Object { index: 0 }, service_root, &mut out);
                    }
                } else {
                    self.issue(
                        FetchKey::Meta { level: local.depth(), index: 0 },
                        service_root,
                        &mut out,
                    );
                }
            }
            return (out, self.maybe_complete());
        }

        // Regular partition node.
        let key = FetchKey::Meta { level: m.level, index: m.index };
        let expected = match self.outstanding.get(&key) {
            Some(o) => o.expected,
            None => return (Vec::new(), None),
        };
        if !local.verify_children(m.level, &m.digests, &expected) {
            // Corrupt or stale reply: re-target the query to the next
            // source immediately instead of waiting out the backoff.
            self.corrupt_replies += 1;
            let out = self.reissue(key).into_iter().collect();
            return (out, None);
        }
        self.consume(key);

        let b = local.branching() as u64;
        let local_children = local
            .children_digests(m.level, m.index)
            .unwrap_or_else(|| vec![local.default_digest(m.level - 1); b as usize]);
        for (c, remote_digest) in m.digests.iter().enumerate() {
            if *remote_digest == local_children[c] {
                continue;
            }
            let child_index = m.index * b + c as u64;
            if m.level - 1 == 0 {
                // Child is a leaf (an abstract object). A zero digest means
                // the object is absent in the checkpoint — record the
                // deletion without a fetch.
                if child_index < local.capacity() {
                    if remote_digest.is_zero() {
                        self.objects.push((child_index, None));
                    } else {
                        self.issue(
                            FetchKey::Object { index: child_index },
                            *remote_digest,
                            &mut out,
                        );
                    }
                }
            } else {
                self.issue(
                    FetchKey::Meta { level: m.level - 1, index: child_index },
                    *remote_digest,
                    &mut out,
                );
            }
        }
        // The completed query freed a window slot even if this node
        // contributed no new queries: let a parked one through.
        self.pump(&mut out);
        (out, self.maybe_complete())
    }

    /// Handles an object reply.
    pub fn on_object_reply(
        &mut self,
        m: &ObjectReplyMsg,
        _local: &PartitionTree,
    ) -> (Vec<(u32, Message)>, Option<FetchResult>) {
        if self.done || m.seq != self.seq {
            return (Vec::new(), None);
        }
        if m.index == REPLIES_INDEX {
            let expected = match self.replies_digest {
                Some(d) => d,
                None => return (Vec::new(), None),
            };
            if Digest::of(&m.data) != expected {
                self.corrupt_replies += 1;
                let out = self.reissue(FetchKey::Replies).into_iter().collect();
                return (out, None);
            }
            if self.consume(FetchKey::Replies) {
                self.fetched_bytes += m.data.len() as u64;
                self.replies_blob = Some(m.data.clone());
            }
            let mut out = Vec::new();
            self.pump(&mut out);
            return (out, self.maybe_complete());
        }

        let key = FetchKey::Object { index: m.index };
        let expected = match self.outstanding.get(&key) {
            Some(o) => o.expected,
            None => return (Vec::new(), None),
        };
        if crate::tree::leaf_digest(m.index, &m.data) != expected {
            self.corrupt_replies += 1;
            let out = self.reissue(key).into_iter().collect();
            return (out, None);
        }
        self.consume(key);
        self.fetched_bytes += m.data.len() as u64;
        self.objects.push((m.index, Some(m.data.clone())));
        let mut out = Vec::new();
        self.pump(&mut out);
        (out, self.maybe_complete())
    }

    fn maybe_complete(&mut self) -> Option<FetchResult> {
        if self.done
            || !self.outstanding.is_empty()
            || !self.pending.is_empty()
            || self.service_root.is_none()
            || self.replies_blob.is_none()
        {
            return None;
        }
        self.done = true;
        Some(FetchResult {
            seq: self.seq,
            service_root: self.service_root.expect("checked above"),
            objects: std::mem::take(&mut self.objects),
            replies_blob: self.replies_blob.clone().expect("checked above"),
            fetched_bytes: self.fetched_bytes,
            meta_queries: self.meta_queries,
            corrupt_replies: self.corrupt_replies,
            retransmissions: self.retransmissions,
            peak_window: self.peak_window,
        })
    }
}
