//! PBFT-specific chaos-campaign harness and safety auditor.
//!
//! This module binds the protocol-agnostic campaign engine in
//! [`base_simnet::chaos`] to a replicated [`CounterService`] group. It
//! defines the application-fault vocabulary (Byzantine-mode flips, latent
//! state corruption, proactive-recovery triggers), builds a seeded workload
//! whose results admit an exact linearizability check, and audits every
//! finished run for the five campaign invariants:
//!
//! 1. **Linearizability** of completed client operations. Each write adds a
//!    distinct power-of-two delta to one register, so every correct result
//!    is a union of delta bits and the set of completed results must form a
//!    subset chain; reads must return a state on that chain.
//! 2. **No checkpoint fork**: replicas that were never faulty nor corrupted
//!    agree on the checkpoint digest at every sequence number both retain,
//!    and all currently-honest replicas with the same stable sequence agree
//!    on the certificate-backed stable digest.
//! 3. **Reply-certificate consistency**: the result the client accepted for
//!    its last write matches the reply cached by the clean replicas.
//! 4. **Liveness**: every client finishes its whole workload once all
//!    scheduled faults have healed.
//! 5. **View agreement**: honest replicas settle in the same view once the
//!    schedule drains (view-change storms must converge, not spin).

use crate::byzantine::ByzMode;
use crate::config::Config;
use crate::replica::Replica;
use crate::testing::{build_counter_group, op_add, op_get, CounterService, TestGroup};
use crate::ClientActor;
use base_simnet::chaos::{AppFaultSpec, ChaosHarness, HealSpec, LivenessBounds, ScheduleGenConfig};
use base_simnet::{NodeId, SimDuration, Simulation};
use std::collections::{HashMap, HashSet};

/// App-fault tag: set the replica's [`ByzMode`] to `ByzMode::from_code(arg)`.
/// A healing event carries `arg = 0` (back to honest).
pub const APP_BYZ: u32 = 1;
/// App-fault tag: inject latent concrete-state corruption seeded by `arg`
/// (see [`crate::service::Service::corrupt_state`]).
pub const APP_CORRUPT_STATE: u32 = 2;
/// App-fault tag: trigger an immediate proactive recovery (the healing
/// companion of [`APP_CORRUPT_STATE`]).
pub const APP_RECOVER: u32 = 3;

/// What a completed client operation was, for the auditor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum OpKind {
    /// `add 0 <delta>` with a distinct power-of-two delta.
    Add(u64),
    /// `get 0` (submitted read-only).
    Get,
}

/// A campaign harness replicating [`CounterService`] with a workload of
/// distinct-bit adds and reads, plus the full safety audit.
pub struct CounterChaosHarness {
    /// Number of replicas.
    pub n: usize,
    /// Number of clients.
    pub clients: usize,
    /// Operations submitted per client. The total number of writes across
    /// all clients must stay below 64 (one delta bit each).
    pub ops_per_client: usize,
    /// Enables the deliberate client bug (accept the first full reply
    /// without a quorum) on every client, so tests can demonstrate the
    /// auditor catching a reply-certificate violation.
    pub inject_client_bug: bool,
    /// Enables the deliberate client liveness bug (never retransmit after
    /// a reply timeout) on every client, so tests can demonstrate the
    /// heal-to-progress auditor catching a stalled operation.
    pub inject_stall_bug: bool,
    /// Whether the group runs with adaptive (RTT-driven) timeouts; turning
    /// this off pins the static timeout/backoff paths for A/B comparisons.
    pub adaptive: bool,
    /// Gap between a client's submissions, so the workload stretches
    /// across the fault schedule instead of finishing before the first
    /// event fires.
    pub pace: SimDuration,
    /// Extra settle time after the last event.
    pub settle: SimDuration,
    /// Optional per-op critical-path budget for post-heal operations (see
    /// [`base_simnet::chaos::audit_latency_budget`]); `None` disables the
    /// auditor.
    pub latency_budget: Option<SimDuration>,
    /// Consensus pipeline depth the group runs with
    /// ([`Config::pipeline_depth`]); campaigns set a small value so
    /// view-change storms catch slots `n..n+depth` in flight.
    pub pipeline_depth: u64,
    /// Execution worker count ([`Config::exec_workers`]).
    pub exec_workers: usize,
    /// Whether state transfer fetches erasure-coded fragments
    /// ([`Config::coded_transfer`]).
    pub coded_transfer: bool,
    /// Chunk size for chunked Merkle leaf digests ([`Config::chunk_size`]).
    pub chunk_size: usize,
    // Per-run state, reset by `build`.
    group: Option<TestGroup>,
    expected: HashMap<(u32, u64), OpKind>,
    all_deltas: u64,
    tainted: HashSet<NodeId>,
}

impl CounterChaosHarness {
    /// Creates a harness with `n` replicas and a default workload of three
    /// clients running thirteen operations each.
    pub fn new(n: usize) -> Self {
        Self {
            n,
            clients: 3,
            ops_per_client: 13,
            inject_client_bug: false,
            inject_stall_bug: false,
            adaptive: true,
            pace: SimDuration::from_millis(250),
            settle: SimDuration::from_secs(30),
            latency_budget: None,
            pipeline_depth: 16,
            exec_workers: 1,
            coded_transfer: false,
            chunk_size: 0,
            group: None,
            expected: HashMap::new(),
            all_deltas: 0,
            tainted: HashSet::new(),
        }
    }

    /// The group configuration a run is built with: frequent checkpoints so
    /// campaigns exercise garbage collection and state transfer, and a
    /// short reboot so triggered recoveries finish within the run.
    pub fn config(&self) -> Config {
        let mut cfg = Config::new(self.n);
        cfg.checkpoint_interval = 4;
        cfg.log_window = 32;
        cfg.reboot_time = SimDuration::from_millis(100);
        cfg.adaptive_timeouts = self.adaptive;
        cfg.pipeline_depth = self.pipeline_depth;
        cfg.exec_workers = self.exec_workers;
        cfg.coded_transfer = self.coded_transfer;
        cfg.chunk_size = self.chunk_size;
        cfg
    }

    /// A schedule-generation config matching this harness: faults target
    /// the replica set, at most `f` nodes are impaired at once, and the
    /// app-fault vocabulary covers Byzantine flips (healed back to honest)
    /// and latent state corruption (healed by proactive recovery).
    pub fn gen_config(&self, events: usize, horizon: SimDuration) -> ScheduleGenConfig {
        let cfg = self.config();
        ScheduleGenConfig {
            nodes: (0..self.n).map(NodeId).collect(),
            max_impaired: cfg.f(),
            horizon,
            events,
            app_faults: vec![
                AppFaultSpec {
                    tag: APP_BYZ,
                    // Codes 1..=6; CorruptState has its own tag, and arg 0
                    // (honest) is reserved for the healing event.
                    arg_max: 7,
                    impairs: true,
                    heal: Some(HealSpec { tag: APP_BYZ, after: SimDuration::from_secs(2) }),
                },
                AppFaultSpec {
                    tag: APP_CORRUPT_STATE,
                    arg_max: 1 << 32,
                    // A corrupt replica serves wrong replies for the
                    // damaged register, so it counts against the budget.
                    impairs: true,
                    heal: Some(HealSpec { tag: APP_RECOVER, after: SimDuration::from_secs(2) }),
                },
            ],
            net_faults: true,
        }
    }

    fn replica<'a>(&self, sim: &'a Simulation, node: NodeId) -> &'a Replica<CounterService> {
        sim.actor_as::<Replica<CounterService>>(node).expect("replica actor")
    }

    /// Replicas that are honest *now* (their Byzantine behaviour, if any,
    /// has healed).
    fn honest_replicas(&self, sim: &Simulation) -> Vec<NodeId> {
        let group = self.group.as_ref().expect("run built");
        group
            .replicas
            .iter()
            .copied()
            .filter(|&r| self.replica(sim, r).byzantine() == ByzMode::Honest)
            .collect()
    }

    /// Replicas that are honest now *and* were never flipped faulty or
    /// corrupted during the run. Only these are trusted to hold pristine
    /// local checkpoint metadata (a healed `CorruptCheckpoints` replica
    /// retains the corrupted digests it stored about itself).
    fn clean_replicas(&self, sim: &Simulation) -> Vec<NodeId> {
        self.honest_replicas(sim)
            .into_iter()
            .filter(|r| !self.tainted.contains(r))
            .collect()
    }

    fn audit_liveness(&self, sim: &Simulation) -> Result<(), String> {
        let group = self.group.as_ref().expect("run built");
        for (i, &c) in group.clients.iter().enumerate() {
            let actor = sim.actor_as::<ClientActor>(c).expect("client actor");
            if actor.completed.len() != self.ops_per_client {
                return Err(format!(
                    "liveness: client {i} completed {}/{} operations",
                    actor.completed.len(),
                    self.ops_per_client
                ));
            }
        }
        Ok(())
    }

    fn audit_linearizability(&self, sim: &Simulation) -> Result<(), String> {
        let group = self.group.as_ref().expect("run built");
        let mut add_results: Vec<u64> = Vec::new();
        let mut get_results: Vec<(usize, u64, u64)> = Vec::new();

        for (i, &c) in group.clients.iter().enumerate() {
            let client_id = (self.n + i) as u32;
            let actor = sim.actor_as::<ClientActor>(c).expect("client actor");
            for (ts, result) in &actor.completed {
                let kind = self
                    .expected
                    .get(&(client_id, *ts))
                    .ok_or_else(|| format!("client {i} completed unknown op ts={ts}"))?;
                let value: u64 = String::from_utf8_lossy(result)
                    .parse()
                    .map_err(|_| {
                        format!(
                            "linearizability: client {i} ts={ts} accepted a corrupt \
                             reply {:?}",
                            String::from_utf8_lossy(result)
                        )
                    })?;
                if value & !self.all_deltas != 0 {
                    return Err(format!(
                        "linearizability: client {i} ts={ts} result {value:#x} contains \
                         bits no write ever added"
                    ));
                }
                match kind {
                    OpKind::Add(delta) => {
                        if value & delta == 0 {
                            return Err(format!(
                                "linearizability: client {i} ts={ts} add result \
                                 {value:#x} is missing its own delta {delta:#x}"
                            ));
                        }
                        add_results.push(value);
                    }
                    OpKind::Get => get_results.push((i, *ts, value)),
                }
            }
        }

        // Every add returns the register value after it executed, and each
        // add contributes a distinct bit, so the results must form a strict
        // subset chain (one new bit per link) when sorted by population.
        add_results.sort_by_key(|v| (v.count_ones(), *v));
        for pair in add_results.windows(2) {
            let (a, b) = (pair[0], pair[1]);
            if a & !b != 0 || a == b {
                return Err(format!(
                    "linearizability: add results {a:#x} and {b:#x} are not a subset \
                     chain — no sequential execution produces both"
                ));
            }
        }

        // A read returns the register at its linearization point, which is
        // the initial state or the state some add produced.
        for (i, ts, value) in get_results {
            if value != 0 && !add_results.contains(&value) {
                return Err(format!(
                    "linearizability: client {i} ts={ts} read {value:#x}, a state no \
                     sequential execution passes through"
                ));
            }
        }
        Ok(())
    }

    fn audit_view_agreement(&self, sim: &Simulation) -> Result<(), String> {
        // After the settle window every honest replica must have converged
        // on one view: a replica stuck in a higher view than its peers
        // either lost a new-view message it can no longer recover or is
        // spinning through view changes — both liveness bugs a view-change
        // storm is designed to expose.
        let honest = self.honest_replicas(sim);
        let mut views: Vec<(NodeId, u64)> =
            honest.iter().map(|&r| (r, self.replica(sim, r).view())).collect();
        views.sort_by_key(|&(_, v)| v);
        if let (Some(&(lo_node, lo)), Some(&(hi_node, hi))) = (views.first(), views.last()) {
            if lo != hi {
                return Err(format!(
                    "view agreement: honest replicas settled in different views \
                     (replica {} in view {lo}, replica {} in view {hi})",
                    lo_node.0, hi_node.0
                ));
            }
        }
        Ok(())
    }

    fn audit_checkpoints(&self, sim: &Simulation) -> Result<(), String> {
        // Pairwise digest agreement at every retained sequence number,
        // among replicas whose local metadata was never poisoned.
        let clean = self.clean_replicas(sim);
        for (i, &a) in clean.iter().enumerate() {
            let da: HashMap<u64, _> = self.replica(sim, a).checkpoint_digests().into_iter().collect();
            for &b in clean.iter().skip(i + 1) {
                for (seq, db) in self.replica(sim, b).checkpoint_digests() {
                    if let Some(daq) = da.get(&seq) {
                        if *daq != db {
                            return Err(format!(
                                "checkpoint fork: replicas {} and {} disagree at seq {seq}",
                                a.0, b.0
                            ));
                        }
                    }
                }
            }
        }

        // Certificate-backed stable digests must agree among all currently
        // honest replicas at the same stable sequence number (a certificate
        // cannot be assembled for a minority digest, healed or not).
        let honest = self.honest_replicas(sim);
        for (i, &a) in honest.iter().enumerate() {
            let ra = self.replica(sim, a);
            for &b in honest.iter().skip(i + 1) {
                let rb = self.replica(sim, b);
                if ra.stable_seq() == rb.stable_seq() && ra.stable_seq() > 0 {
                    if let (Some(da), Some(db)) = (ra.stable_digest(), rb.stable_digest()) {
                        if da != db {
                            return Err(format!(
                                "checkpoint fork: stable digests diverge at seq {} \
                                 between replicas {} and {}",
                                ra.stable_seq(),
                                a.0,
                                b.0
                            ));
                        }
                    }
                }
            }
        }
        Ok(())
    }

    fn audit_reply_certificates(&self, sim: &Simulation) -> Result<(), String> {
        let group = self.group.as_ref().expect("run built");
        let clean = self.clean_replicas(sim);
        for (i, &c) in group.clients.iter().enumerate() {
            let client_id = (self.n + i) as u32;
            let actor = sim.actor_as::<ClientActor>(c).expect("client actor");
            // The reply cache holds each client's latest executed write, so
            // only the final operation is checkable — and only if it was a
            // write (read-only replies are not cached).
            let Some((ts, result)) = actor.completed.last() else { continue };
            if !matches!(self.expected.get(&(client_id, *ts)), Some(OpKind::Add(_))) {
                continue;
            }
            let mut vouchers = 0usize;
            for &r in &clean {
                match self.replica(sim, r).cached_reply(client_id, *ts) {
                    Some(cached) if cached == result.as_slice() => vouchers += 1,
                    Some(_) => {
                        return Err(format!(
                            "reply certificate: client {i} accepted a result for ts={ts} \
                             that clean replica {} never produced",
                            r.0
                        ));
                    }
                    // A lagging replica may not have executed ts yet.
                    None => {}
                }
            }
            if vouchers == 0 {
                return Err(format!(
                    "reply certificate: no clean replica vouches for client {i}'s \
                     accepted result at ts={ts}"
                ));
            }
        }
        Ok(())
    }
}

impl ChaosHarness for CounterChaosHarness {
    fn build(&mut self, seed: u64) -> Simulation {
        self.expected.clear();
        self.all_deltas = 0;
        self.tainted.clear();

        let mut sim = Simulation::new(seed);
        let group = build_counter_group(&mut sim, self.config(), self.clients, seed);
        for &r in &group.replicas {
            // Warm reboots: recovery repairs state instead of rebuilding it
            // from scratch, which is what surfaces latent corruption.
            sim.actor_as_mut::<Replica<CounterService>>(r)
                .expect("replica actor")
                .set_recovery_clean(false);
        }

        let mut next_bit = 0u32;
        for (i, &c) in group.clients.iter().enumerate() {
            let client_id = (self.n + i) as u32;
            let actor = sim.actor_as_mut::<ClientActor>(c).expect("client actor");
            actor.core_mut().bug_accept_first_reply = self.inject_client_bug;
            actor.core_mut().bug_never_retransmit = self.inject_stall_bug;
            actor.set_pace(self.pace);
            for j in 0..self.ops_per_client {
                // Timestamps are assigned in submission order, starting at 1.
                let ts = (j + 1) as u64;
                if j % 3 == 2 {
                    actor.enqueue(op_get(0), true);
                    self.expected.insert((client_id, ts), OpKind::Get);
                } else {
                    assert!(next_bit < 64, "workload too large for distinct delta bits");
                    let delta = 1u64 << next_bit;
                    next_bit += 1;
                    actor.enqueue(op_add(0, delta), false);
                    self.expected.insert((client_id, ts), OpKind::Add(delta));
                    self.all_deltas |= delta;
                }
            }
        }
        self.group = Some(group);
        sim
    }

    fn apply_app(
        &mut self,
        sim: &mut Simulation,
        node: NodeId,
        tag: u32,
        arg: u64,
        trace: &mut Vec<String>,
    ) {
        let Some(replica) = sim.actor_as_mut::<Replica<CounterService>>(node) else {
            trace.push(format!("app fault at node {} ignored (not a replica)", node.0));
            return;
        };
        match tag {
            APP_BYZ => {
                let mode = ByzMode::from_code(arg);
                replica.set_byzantine(mode);
                if mode.is_faulty() {
                    self.tainted.insert(node);
                }
                trace.push(format!("node {} byzantine mode -> {mode:?}", node.0));
            }
            APP_CORRUPT_STATE => {
                replica.corrupt_service_state(arg);
                self.tainted.insert(node);
                trace.push(format!("node {} concrete state corrupted (seed {arg})", node.0));
            }
            APP_RECOVER => {
                replica.trigger_recovery();
                trace.push(format!("node {} proactive recovery triggered", node.0));
            }
            _ => trace.push(format!("unknown app fault tag {tag} at node {}", node.0)),
        }
    }

    fn settle(&self) -> SimDuration {
        self.settle
    }

    fn liveness_bounds(&self) -> LivenessBounds {
        // Well inside the settle window, but generous enough for the
        // worst capped view-change chase plus a full state transfer.
        LivenessBounds {
            heal_to_progress: Some(SimDuration::from_secs(25)),
            view_convergence: Some(SimDuration::from_secs(25)),
            recovery_duration: Some(SimDuration::from_secs(25)),
        }
    }

    fn latency_budget(&self) -> Option<SimDuration> {
        self.latency_budget
    }

    fn audit(&mut self, sim: &mut Simulation, trace: &mut Vec<String>) -> Result<(), String> {
        self.audit_liveness(sim)?;
        self.audit_linearizability(sim)?;
        self.audit_view_agreement(sim)?;
        self.audit_checkpoints(sim)?;
        self.audit_reply_certificates(sim)?;
        trace.push(format!(
            "audit ok: {} clean / {} honest replicas",
            self.clean_replicas(sim).len(),
            self.honest_replicas(sim).len()
        ));
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use base_simnet::chaos::{run_one, FaultSchedule};
    use base_simnet::SimTime;

    #[test]
    fn fault_free_run_passes_audit() {
        let mut h = CounterChaosHarness::new(4);
        let (outcome, verdict) = run_one(&mut h, 7, &FaultSchedule::new());
        assert_eq!(verdict, Ok(()), "trace:\n{}", outcome.trace.join("\n"));
    }

    #[test]
    fn corrupt_state_then_recovery_passes_audit() {
        let mut h = CounterChaosHarness::new(4);
        let mut schedule = FaultSchedule::new();
        schedule
            .app(SimTime::from_millis(400), NodeId(2), APP_CORRUPT_STATE, 0)
            .app(SimTime::from_millis(900), NodeId(2), APP_RECOVER, 0);
        let (outcome, verdict) = run_one(&mut h, 11, &schedule);
        assert_eq!(verdict, Ok(()), "trace:\n{}", outcome.trace.join("\n"));
        assert!(outcome.trace.iter().any(|l| l.contains("state corrupted")));
    }

    #[test]
    fn latency_budget_violations_become_failures() {
        // A budget far below any real three-phase latency: every post-heal
        // op violates, and the failure message attributes the dominant
        // critical-path phase.
        let mut h = CounterChaosHarness::new(4);
        h.latency_budget = Some(SimDuration::from_micros(10));
        let (outcome, verdict) = run_one(&mut h, 7, &FaultSchedule::new());
        let err = verdict.expect_err("every op must blow a 10us budget");
        assert!(err.contains("latency-budget"), "{err}");
        assert!(err.contains("dominated by"), "{err}");
        assert!(outcome.coverage.latency_budget_violations > 0);
        assert_eq!(outcome.coverage.trace_events_dropped, 0);

        // Same seed without a budget: clean — the violations above are
        // purely the auditor's doing, not a protocol fault.
        let mut h = CounterChaosHarness::new(4);
        let (outcome, verdict) = run_one(&mut h, 7, &FaultSchedule::new());
        assert_eq!(verdict, Ok(()), "trace:\n{}", outcome.trace.join("\n"));
        assert_eq!(outcome.coverage.latency_budget_violations, 0);
    }

    #[test]
    fn buggy_client_is_caught_by_auditor() {
        let mut h = CounterChaosHarness::new(4);
        h.inject_client_bug = true;
        let mut schedule = FaultSchedule::new();
        // A single Byzantine replier feeds the quorum-skipping client a
        // fabricated result.
        schedule.app(
            SimTime::from_millis(10),
            NodeId(1),
            APP_BYZ,
            ByzMode::CorruptReplies.code(),
        );
        let (outcome, verdict) = run_one(&mut h, 3, &schedule);
        assert!(verdict.is_err(), "expected audit failure; trace:\n{}", outcome.trace.join("\n"));
    }
}
