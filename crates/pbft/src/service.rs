//! The service interface between the replication library and the
//! application (or the BASE abstraction layer).

use crate::tree::PartitionTree;
use base_crypto::Digest;
use base_simnet::SimDuration;
use rand::rngs::StdRng;

/// Execution environment handed to service upcalls.
///
/// Carries the replica's local clock and deterministic RNG (the sources of
/// implementation non-determinism the BASE methodology must mask) and
/// accumulates simulated CPU charges back into the simulator.
pub struct ExecEnv<'a> {
    /// The replica's *local* clock in nanoseconds (true time + skew).
    pub local_clock_ns: u64,
    /// Per-replica deterministic RNG.
    pub rng: &'a mut StdRng,
    charged: SimDuration,
}

impl<'a> ExecEnv<'a> {
    /// Creates an environment.
    pub fn new(local_clock_ns: u64, rng: &'a mut StdRng) -> Self {
        Self { local_clock_ns, rng, charged: SimDuration::ZERO }
    }

    /// Charges simulated CPU time for work done in the upcall.
    pub fn charge(&mut self, d: SimDuration) {
        self.charged += d;
    }

    /// Total charged so far.
    pub fn charged(&self) -> SimDuration {
        self.charged
    }
}

/// A replicated service, as seen by the replication protocol.
///
/// Implementations must be deterministic given the same operation sequence
/// and `nondet` values: any internal non-determinism (clocks, RNG,
/// allocation order) must either be hidden behind this interface (the BASE
/// approach — see the `base` crate) or absent (the classic BFT
/// requirement).
///
/// Checkpoint/state-transfer model: the service state is an array of
/// objects summarized by a [`PartitionTree`] of digests. The service stores
/// checkpoints keyed by sequence number until told to discard them, serves
/// partition metadata and object values for stored checkpoints, and can
/// install a set of objects to jump its current state to a checkpoint.
pub trait Service: 'static {
    /// Executes one operation and returns the reply bytes.
    fn execute(
        &mut self,
        op: &[u8],
        client: u32,
        nondet: &[u8],
        read_only: bool,
        env: &mut ExecEnv<'_>,
    ) -> Vec<u8>;

    /// Executes a committed batch and returns one reply per operation, in
    /// batch order. `ops` pairs each operation's bytes with its client id.
    ///
    /// The default runs the batch sequentially through
    /// [`Service::execute`]. Services that can prove operations
    /// independent (the BASE layer partitions a batch by abstract-object
    /// read/write footprints) may reorder *non-conflicting* operations
    /// internally, as long as replies and the resulting abstract state are
    /// identical to sequential batch-order execution and the schedule is a
    /// deterministic function of the batch alone — every replica must take
    /// the same path.
    fn execute_batch(
        &mut self,
        ops: &[(&[u8], u32)],
        nondet: &[u8],
        env: &mut ExecEnv<'_>,
    ) -> Vec<Vec<u8>> {
        ops.iter().map(|(op, client)| self.execute(op, *client, nondet, false, env)).collect()
    }

    /// Sets the worker-pool width for the execution stage. Worker count
    /// must never change results or simulated timing — parallelism is
    /// reported through metrics (modelled makespan), not rebooked into
    /// charges. The default ignores the hint (sequential services).
    fn set_exec_workers(&mut self, workers: usize) {
        let _ = workers;
    }

    /// Sets the leaf-digest chunk size (bytes) used by the checkpoint
    /// digest scheme. `0` = legacy whole-object leaf digests. When
    /// non-zero, every present object's leaf digest must be the chunked
    /// fold (`tree::chunked_leaf_digest`), so per-chunk digest lists served
    /// during coded state transfer verify against the partition tree. All
    /// replicas must agree on the value — it changes every leaf digest and
    /// hence the checkpoint roots. The default ignores the hint (services
    /// that keep whole-object digests only).
    fn set_chunk_size(&mut self, chunk_size: usize) {
        let _ = chunk_size;
    }

    /// The *current* value of object `index` (not a stored checkpoint's),
    /// used by a fetching replica to reuse local chunks that already match
    /// the remote checkpoint's verified chunk digests. `None` = absent or
    /// unsupported (the default) — the fetcher then transfers every chunk.
    fn transfer_object(&mut self, index: u64) -> Option<Vec<u8>> {
        let _ = index;
        None
    }

    /// Called at the primary to choose non-deterministic values for a
    /// batch (e.g. the operation timestamp).
    fn propose_nondet(&mut self, env: &mut ExecEnv<'_>) -> Vec<u8> {
        let _ = env;
        Vec::new()
    }

    /// Called at backups to validate the primary's proposal.
    fn check_nondet(&self, nondet: &[u8], env: &mut ExecEnv<'_>) -> bool {
        let _ = env;
        nondet.is_empty()
    }

    /// Records a checkpoint of the current state at `seq` and returns its
    /// root digest.
    fn take_checkpoint(&mut self, seq: u64, env: &mut ExecEnv<'_>) -> Digest;

    /// Discards stored checkpoints with sequence numbers below `seq`.
    fn discard_checkpoints_below(&mut self, seq: u64);

    /// Child digests of partition-tree node (`level`, `index`) in stored
    /// checkpoint `seq`, or `None` if that checkpoint is not stored.
    fn checkpoint_meta(&self, seq: u64, level: u32, index: u64) -> Option<Vec<Digest>>;

    /// Value of object `index` in stored checkpoint `seq`.
    fn checkpoint_object(&mut self, seq: u64, index: u64) -> Option<Vec<u8>>;

    /// Partition tree of the *current* state (used by a fetching replica to
    /// decide which partitions are out of date).
    fn current_tree(&self) -> &PartitionTree;

    /// Called once before a state transfer begins fetching: the service
    /// must make [`Service::current_tree`] reflect the true current state
    /// (services that maintain digests lazily refresh them here).
    fn prepare_for_transfer(&mut self, env: &mut ExecEnv<'_>) {
        let _ = env;
    }

    /// Installs `objs` so the current state becomes stored checkpoint
    /// (`seq`, `root`); the service should also record it as a stored
    /// checkpoint. Each entry is `(index, Some(value))` for a changed
    /// object or `(index, None)` for an object absent in the checkpoint.
    /// Called with the complete set of objects that differ, so the abstract
    /// state moves to a consistent checkpoint value in one call (the
    /// `put_objs` guarantee from the paper).
    fn install_checkpoint(
        &mut self,
        seq: u64,
        root: Digest,
        objs: Vec<(u64, Option<Vec<u8>>)>,
        env: &mut ExecEnv<'_>,
    );

    /// Proactive recovery reboot hook. `clean` selects the paper's
    /// restart-from-clean-concrete-state mode; otherwise the concrete state
    /// survives and only stale/corrupt objects will be repaired.
    fn reboot(&mut self, clean: bool, env: &mut ExecEnv<'_>) {
        let _ = (clean, env);
    }

    /// Fault-injection hook ([`ByzMode::CorruptState`]): silently flips
    /// some concrete state derived from `seed` *without* refreshing the
    /// digests in [`Service::current_tree`]. The corruption is latent — it
    /// must only surface when digests are recomputed (e.g. by
    /// [`Service::prepare_for_transfer`] during proactive recovery), at
    /// which point state transfer repairs the damaged objects. The default
    /// is a no-op for services with no corruptible representation.
    ///
    /// [`ByzMode::CorruptState`]: crate::byzantine::ByzMode::CorruptState
    fn corrupt_state(&mut self, seed: u64) {
        let _ = seed;
    }
}
