//! The PBFT replica.
//!
//! One [`Replica`] runs on one simulator node and drives a [`Service`]
//! through the three-phase agreement protocol, checkpointing, view changes,
//! state transfer, and (optionally) proactive recovery. See the crate
//! documentation for the feature list and `DESIGN.md` §8 for the documented
//! simplifications.

use crate::byzantine::ByzMode;
use crate::config::Config;
use crate::cost::CostModel;
use crate::log::{CheckpointCollector, Log, ReplyCache, SlotStage, SlotTable};
use crate::messages::{
    CertReplyMsg, CheckpointMsg, ChunksReplyMsg, CommitMsg, FetchCertMsg, FetchChunksMsg,
    FetchFragMsg, FetchMetaMsg, FetchObjectMsg, FragReplyMsg, Message, MetaReplyMsg, NewViewMsg,
    ObjectReplyMsg, PrePrepareMsg, PreparedProof, PrepareMsg, ReplyMsg, RequestMsg, StatusMsg,
    ViewChangeMsg,
};
use crate::service::{ExecEnv, Service};
use crate::transfer::{
    checkpoint_digest, FetchResult, Fetcher, CHUNK_WHOLE, META_ROOT_LEVEL, REPLIES_INDEX,
};
use base_crypto::{fec, Authenticator, Digest, NodeKeys};
use base_simnet::{
    Actor, Context, MetricsRegistry, NodeId, Payload, ProtocolEvent, RttEstimator, SimDuration,
    TimerId,
};
use std::collections::{BTreeMap, HashMap, HashSet, VecDeque};

/// Timer tokens.
const TOKEN_TICK: u64 = 1;
const TOKEN_VIEW_CHANGE: u64 = 2;
const TOKEN_WATCHDOG: u64 = 3;

/// Counters exposed for tests and experiment harnesses.
#[derive(Debug, Default, Clone)]
pub struct ReplicaStats {
    /// Requests executed (including re-executions after recovery).
    pub executed_requests: u64,
    /// Batches (sequence numbers) executed.
    pub executed_batches: u64,
    /// Checkpoints taken.
    pub checkpoints_taken: u64,
    /// Stable checkpoints observed.
    pub stable_checkpoints: u64,
    /// View changes this replica voted for.
    pub view_changes_started: u64,
    /// New views installed.
    pub new_views_installed: u64,
    /// State transfers completed.
    pub state_transfers: u64,
    /// Object bytes fetched by state transfer.
    pub state_transfer_bytes: u64,
    /// Objects fetched by state transfer.
    pub state_transfer_objects: u64,
    /// Partition (meta) queries issued by state transfer.
    pub state_transfer_meta_queries: u64,
    /// Proactive recoveries completed.
    pub recoveries: u64,
    /// Messages discarded as malformed or badly authenticated.
    pub rejected_messages: u64,
}

/// Checkpoint data retained at the replica layer (the service retains the
/// object-level data).
#[derive(Debug, Clone)]
struct CkptMeta {
    service_root: Digest,
    replies_blob: Vec<u8>,
    composite: Digest,
}

/// A PBFT replica actor.
pub struct Replica<S: Service> {
    cfg: Config,
    cost: CostModel,
    keys: NodeKeys,
    id: u32,
    service: S,
    byz: ByzMode,

    view: u64,
    in_view_change: bool,
    /// Next sequence number this replica assigns when primary.
    seq_next: u64,
    last_exec: u64,
    log: Log,
    ckpt_collector: CheckpointCollector,
    reply_cache: ReplyCache,
    /// Locally stored checkpoints (replica layer).
    ckpt_meta: BTreeMap<u64, CkptMeta>,

    stable_seq: u64,
    stable_cert: Vec<CheckpointMsg>,

    /// Primary: queued requests not yet assigned a sequence number.
    pending: VecDeque<RequestMsg>,
    pending_digests: HashSet<Digest>,
    /// Backup: forwarded requests awaiting execution (liveness timer).
    awaiting: HashSet<(u32, u64)>,
    /// When each logged sequence number's pre-prepare was first accepted
    /// (ns): execution removes the entry and feeds the agreement-latency
    /// estimator with the full three-phase round duration.
    slot_arrival: HashMap<u64, u64>,
    /// Per-slot agreement stage index. This is what lets agreement run
    /// ahead of execution: the pipeline gate in [`Replica::try_propose`]
    /// reads the contiguously committed floor from here, and the
    /// read-only staleness guard ([`Replica::exec_backlog`]) asks it
    /// whether committed-but-unexecuted slots exist. Also owns the
    /// `CommitQuorum` trace dedup.
    slots: SlotTable,
    /// Read-only requests deferred while committed-but-unexecuted slots
    /// (or an active state transfer) would make a reply stale; drained
    /// after execution catches up.
    ro_deferred: VecDeque<RequestMsg>,

    vc_collect: BTreeMap<u64, HashMap<u32, ViewChangeMsg>>,
    vc_timer: Option<TimerId>,
    vc_timeout: SimDuration,
    /// Observed pre-prepare-to-execution latency (the three-phase
    /// agreement round); re-seeds the view-change base timeout when
    /// adaptive timeouts are on, so a fast group chases a silent primary
    /// sooner and a slow one stops churning views it cannot finish.
    agree_rtt: RttEstimator,
    /// When the current state-transfer fetch began (`transfer.fetch_ns`).
    fetch_started_at_ns: u64,
    last_new_view: u64,
    /// Last own view-change message (retransmitted on ticks).
    own_vc: Option<ViewChangeMsg>,
    /// Last new-view message installed (resent to peers stuck in an older
    /// view).
    last_nv_msg: Option<NewViewMsg>,

    fetcher: Option<Fetcher>,
    recovering: bool,
    recovery_clean: bool,
    /// Set by [`Replica::trigger_recovery`]; the next tick runs the
    /// proactive-recovery watchdog immediately instead of waiting for the
    /// scheduled rotation.
    recover_asap: bool,
    recovery_started_at_ns: u64,
    /// Duration of the last completed recovery, for experiments.
    pub last_recovery_ns: u64,

    /// Progress marker for the retransmission tick.
    last_exec_at_tick: u64,
    /// Consecutive ticks without execution progress.
    idle_ticks: u64,

    /// Public counters.
    pub stats: ReplicaStats,
    /// Per-replica metrics: counters plus log-scale histograms (request
    /// batch occupancy, checkpoint duration, transfer sizes, recovery
    /// wall-time). Always recorded; aggregated by experiments.
    pub metrics: MetricsRegistry,
}

impl<S: Service> Replica<S> {
    /// Creates a replica. Its id is taken from `keys` and must match the
    /// simulator node it is installed on.
    pub fn new(cfg: Config, keys: NodeKeys, service: S) -> Self {
        let mut service = service;
        service.set_exec_workers(cfg.exec_workers);
        service.set_chunk_size(cfg.chunk_size);
        let id = keys.id() as u32;
        assert!((id as usize) < cfg.n, "replica id must be < n");
        let vc_timeout = cfg.view_change_timeout;
        let agree_rtt = RttEstimator::new(
            0x517c_a11e_0000_0000 ^ u64::from(id),
            cfg.rto_floor.as_nanos(),
            cfg.rto_ceiling.as_nanos(),
            cfg.view_change_timeout.as_nanos(),
        );
        Self {
            cfg,
            cost: CostModel::default(),
            keys,
            id,
            service,
            byz: ByzMode::Honest,
            view: 0,
            in_view_change: false,
            seq_next: 1,
            last_exec: 0,
            log: Log::default(),
            ckpt_collector: CheckpointCollector::default(),
            reply_cache: ReplyCache::default(),
            ckpt_meta: BTreeMap::new(),
            stable_seq: 0,
            stable_cert: Vec::new(),
            pending: VecDeque::new(),
            pending_digests: HashSet::new(),
            awaiting: HashSet::new(),
            slot_arrival: HashMap::new(),
            slots: SlotTable::default(),
            ro_deferred: VecDeque::new(),
            vc_collect: BTreeMap::new(),
            vc_timer: None,
            vc_timeout,
            agree_rtt,
            fetch_started_at_ns: 0,
            last_new_view: 0,
            own_vc: None,
            last_nv_msg: None,
            fetcher: None,
            recovering: false,
            recovery_clean: true,
            recover_asap: false,
            recovery_started_at_ns: 0,
            last_recovery_ns: 0,
            last_exec_at_tick: 0,
            idle_ticks: 0,
            stats: ReplicaStats::default(),
            metrics: MetricsRegistry::new(),
        }
    }

    /// The replica's metrics registry.
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.metrics
    }

    /// The current view-change timeout (exposed so tests can assert the
    /// doubling is capped).
    pub fn vc_timeout(&self) -> SimDuration {
        self.vc_timeout
    }

    /// Base view-change timeout for a freshly installed view: the static
    /// configured value, or — once adaptive and seeded — the RTO of the
    /// observed agreement latency, so a fast group chases a silent primary
    /// sooner and a slow one stops churning views it cannot finish.
    fn base_vc_timeout(&self) -> SimDuration {
        if self.cfg.adaptive_timeouts && self.agree_rtt.samples() > 0 {
            SimDuration::from_nanos(self.agree_rtt.rto())
        } else {
            self.cfg.view_change_timeout
        }
    }

    /// Configures Byzantine behaviour (fault injection).
    ///
    /// [`ByzMode::CorruptState`] takes effect immediately: the service's
    /// concrete state is flipped once (latent corruption) and the replica
    /// then continues to follow the protocol on the damaged state.
    pub fn set_byzantine(&mut self, mode: ByzMode) {
        self.byz = mode;
        if matches!(mode, ByzMode::CorruptState) {
            self.service.corrupt_state(0x5eed_0000 | self.id as u64);
        }
    }

    /// Currently configured Byzantine mode (audit harnesses use this to
    /// decide which replicas count as honest).
    pub fn byzantine(&self) -> ByzMode {
        self.byz
    }

    /// Injects a concrete-state corruption derived from `seed` (see
    /// [`Service::corrupt_state`]) and marks the replica
    /// [`ByzMode::CorruptState`].
    pub fn corrupt_service_state(&mut self, seed: u64) {
        self.byz = ByzMode::CorruptState;
        self.service.corrupt_state(seed);
    }

    /// Requests an immediate proactive recovery: the next tick runs the
    /// same reboot-refresh-repair path as the periodic watchdog. Chaos
    /// campaigns use this to demonstrate that recovery repairs injected
    /// state corruption without waiting for the rotation schedule.
    pub fn trigger_recovery(&mut self) {
        self.recover_asap = true;
    }

    /// Selects clean (paper §3.4) or warm proactive-recovery reboots.
    pub fn set_recovery_clean(&mut self, clean: bool) {
        self.recovery_clean = clean;
    }

    /// Overrides the CPU cost model.
    pub fn set_cost_model(&mut self, cost: CostModel) {
        self.cost = cost;
    }

    /// Current view.
    pub fn view(&self) -> u64 {
        self.view
    }

    /// Highest executed sequence number.
    pub fn last_exec(&self) -> u64 {
        self.last_exec
    }

    /// Last stable checkpoint.
    pub fn stable_seq(&self) -> u64 {
        self.stable_seq
    }

    /// True while a state transfer is in progress.
    pub fn fetching(&self) -> bool {
        self.fetcher.is_some()
    }

    /// True while a proactive recovery is still repairing state.
    pub fn recovering(&self) -> bool {
        self.recovering
    }

    /// Composite digest of the locally retained checkpoint at `seq`, if
    /// still stored. Safety auditors compare these across honest replicas:
    /// two honest replicas disagreeing at the same stable sequence number
    /// is a checkpoint fork.
    pub fn checkpoint_digest(&self, seq: u64) -> Option<Digest> {
        self.ckpt_meta.get(&seq).map(|m| m.composite)
    }

    /// All locally retained checkpoint digests, oldest first.
    pub fn checkpoint_digests(&self) -> Vec<(u64, Digest)> {
        self.ckpt_meta.iter().map(|(s, m)| (*s, m.composite)).collect()
    }

    /// Digest proven by the current stable-checkpoint certificate.
    pub fn stable_digest(&self) -> Option<Digest> {
        self.stable_cert.first().map(|c| c.digest)
    }

    /// The cached reply for `client`'s request at `timestamp`, if this
    /// replica still remembers it. Auditors use this to cross-check reply
    /// certificates against replica execution.
    pub fn cached_reply(&self, client: u32, timestamp: u64) -> Option<&[u8]> {
        self.reply_cache.cached_result(client, timestamp)
    }

    /// Read access to the service, for test inspection.
    pub fn service(&self) -> &S {
        &self.service
    }

    /// Mutable access to the service, for fault injection in tests.
    pub fn service_mut(&mut self) -> &mut S {
        &mut self.service
    }

    fn is_primary(&self) -> bool {
        self.cfg.primary_of(self.view) == self.id as usize
    }

    fn f(&self) -> usize {
        self.cfg.f()
    }

    fn high_watermark(&self) -> u64 {
        self.cfg.high_watermark(self.stable_seq)
    }

    fn in_watermarks(&self, seq: u64) -> bool {
        seq > self.stable_seq && seq <= self.high_watermark()
    }

    fn send(&self, ctx: &mut Context<'_>, to: NodeId, msg: &Message) {
        if matches!(self.byz, ByzMode::Mute) {
            return;
        }
        ctx.send(to, msg.to_wire_tagged(self.cfg.shard));
    }

    fn multicast(&self, ctx: &mut Context<'_>, msg: &Message) {
        if matches!(self.byz, ByzMode::Mute) {
            return;
        }
        // Encode once; every recipient shares the same allocation.
        let wire = Payload::from(msg.to_wire_tagged(self.cfg.shard));
        for i in 0..self.cfg.n {
            if i != self.id as usize {
                ctx.send(self.cfg.replica_node(i), wire.clone());
            }
        }
    }

    // ------------------------------------------------------------------
    // Requests and proposals
    // ------------------------------------------------------------------

    fn handle_request(&mut self, req: RequestMsg, ctx: &mut Context<'_>) {
        // Authenticate: the authenticator must verify for this replica
        // under the claimed client's key.
        ctx.charge(self.cost.mac + self.cost.digest(req.op().len()));
        if !req.auth.check(&self.keys, req.client() as usize, &req.digest()) {
            self.stats.rejected_messages += 1;
            return;
        }

        if req.read_only() {
            self.execute_read_only(&req, ctx);
            return;
        }

        // Retransmission of the last executed request: resend the reply.
        if let Some(result) = self.reply_cache.cached_result(req.client(), req.timestamp()) {
            let full = self.is_full_replier(&req);
            let reply =
                self.make_reply(req.client(), req.timestamp(), result.to_vec(), full, false, ctx);
            self.send(ctx, self.cfg.client_node(req.client()), &Message::Reply(reply));
            return;
        }
        if !self.reply_cache.is_new(req.client(), req.timestamp()) {
            return; // Stale.
        }

        if self.is_primary() && !self.in_view_change {
            let d = req.digest();
            if self.pending_digests.insert(d) {
                self.pending.push_back(req);
            }
            self.try_propose(ctx);
        } else {
            // Forward to the primary and start the progress timer.
            let primary = self.cfg.primary_of(self.view);
            let key = (req.client(), req.timestamp());
            let is_new = self.awaiting.insert(key);
            if primary == self.id as usize {
                // Primary-elect mid view change: forwarding would loop the
                // request back to ourselves forever. Hold it instead —
                // install_new_view runs try_propose, which drains it.
                let d = req.digest();
                if self.pending_digests.insert(d) {
                    self.pending.push_back(req);
                }
            } else {
                self.send(ctx, self.cfg.replica_node(primary), &Message::Request(req));
            }
            if is_new && self.vc_timer.is_none() && !self.in_view_change {
                // Fresh arm (no escalation in progress): start from the
                // adaptive base so the timeout tracks observed agreement
                // speed rather than the static configured value.
                self.vc_timeout = self.base_vc_timeout();
                self.vc_timer = Some(ctx.set_timer(self.vc_timeout, TOKEN_VIEW_CHANGE));
            }
        }
    }

    fn execute_read_only(&mut self, req: &RequestMsg, ctx: &mut Context<'_>) {
        // Staleness guard: with agreement pipelined ahead of execution, a
        // slot can be committed but not yet applied. Answering a read now
        // would reflect the last *executed* state while peers that already
        // applied the backlog answer from a newer one — the client's 2f+1
        // matching-reply quorum would mix states. Defer until execution
        // catches up (or state transfer finishes rebuilding the state).
        if self.exec_backlog() {
            let dup = self
                .ro_deferred
                .iter()
                .any(|r| r.client() == req.client() && r.timestamp() == req.timestamp());
            if !dup {
                self.ro_deferred.push_back(req.clone());
            }
            return;
        }
        let clock = ctx.local_clock().as_nanos();
        let (result, charged) = {
            let mut env = ExecEnv::new(clock, ctx.rng());
            let result = self.service.execute(req.op(), req.client(), &[], true, &mut env);
            let charged = env.charged();
            (result, charged)
        };
        ctx.charge(charged);
        let full = self.is_full_replier(req);
        // Read-only replies bypass agreement: mark them tentative so the
        // client knows this result reflects executed state only.
        let reply = self.make_reply(req.client(), req.timestamp(), result, full, true, ctx);
        self.send(ctx, self.cfg.client_node(req.client()), &Message::Reply(reply));
    }

    /// Whether committed-but-unexecuted work (or an active state transfer)
    /// makes the last executed state stale relative to what the group has
    /// already agreed on.
    fn exec_backlog(&self) -> bool {
        self.fetcher.is_some() || self.slots.has_backlog(self.last_exec)
    }

    /// Recomputes the slot table from the log after an event that changed
    /// its shape wholesale (new-view installation, state transfer, clean
    /// recovery). Trace-dedup flags of surviving slots are preserved.
    fn rebuild_slots(&mut self) {
        let view = self.view;
        let f = self.f();
        let stages: Vec<(u64, SlotStage)> = self
            .log
            .iter()
            .filter(|(_, e)| e.pre_prepare.is_some())
            .map(|(s, e)| {
                let stage = if e.executed {
                    SlotStage::Executed
                } else if e.committed(view, f) {
                    SlotStage::Committed
                } else if e.prepared(view, f) {
                    SlotStage::Prepared
                } else {
                    SlotStage::Proposed
                };
                (*s, stage)
            })
            .collect();
        self.slots.rebuild(stages);
    }

    fn make_reply(
        &mut self,
        client: u32,
        timestamp: u64,
        mut result: Vec<u8>,
        full: bool,
        tentative: bool,
        ctx: &mut Context<'_>,
    ) -> ReplyMsg {
        if matches!(self.byz, ByzMode::CorruptReplies) {
            // Consistently wrong: flip the result, then MAC the corrupted
            // bytes so the client sees a well-formed but incorrect reply.
            for b in &mut result {
                *b ^= 0xa5;
            }
            if result.is_empty() {
                result.push(0xa5);
            }
        }
        // The reply optimization: only the designated replica sends the
        // full result; the others send its digest.
        let (digest_only, payload) = if full {
            (false, result)
        } else {
            ctx.charge(self.cost.digest(result.len()));
            (true, Digest::of(&result).0.to_vec())
        };
        let mut reply = ReplyMsg {
            view: self.view,
            timestamp,
            client,
            replica: self.id,
            digest_only,
            tentative,
            result: payload,
            mac: base_crypto::Mac([0; 8]),
        };
        ctx.charge(self.cost.mac + self.cost.digest(reply.result.len()));
        reply.mac = Authenticator::point(&self.keys, client as usize, &reply.digest());
        // One site covers every reply path (execution, cached resend,
        // read-only), so the span layer's last replica-side hop is total.
        ctx.emit(
            self.view,
            0,
            ProtocolEvent::ReplySent { client: u64::from(client), ts: timestamp },
        );
        reply
    }

    /// Whether this replica sends the full result for `req`.
    fn is_full_replier(&self, req: &RequestMsg) -> bool {
        req.full_replier as usize % self.cfg.n == self.id as usize
    }

    /// Primary: assign sequence numbers to pending requests.
    fn try_propose(&mut self, ctx: &mut Context<'_>) {
        while !self.pending.is_empty()
            && self.seq_next <= self.high_watermark()
            && self.seq_next.saturating_sub(self.last_exec + 1) < self.cfg.max_inflight
            && self
                .seq_next
                .saturating_sub(self.slots.committed_floor(self.last_exec) + 1)
                < self.cfg.pipeline_depth
            && !self.in_view_change
        {
            let mut batch = Vec::new();
            while batch.len() < self.cfg.batch_max {
                match self.pending.pop_front() {
                    Some(r) => {
                        self.pending_digests.remove(&r.digest());
                        batch.push(r);
                    }
                    None => break,
                }
            }
            let seq = self.seq_next;
            self.seq_next += 1;

            let clock = ctx.local_clock().as_nanos();
            let (mut nondet, charged) = {
                let mut env = ExecEnv::new(clock, ctx.rng());
                let nd = self.service.propose_nondet(&mut env);
                (nd, env.charged())
            };
            ctx.charge(charged);
            if matches!(self.byz, ByzMode::BadTimestamps) && nondet.len() == 8 {
                // A century in the future: honest backups must reject it.
                let forged = clock + 100 * 365 * 24 * 3600 * 1_000_000_000;
                nondet = forged.to_be_bytes().to_vec();
            }

            let mut pp = PrePrepareMsg::new(self.view, seq, batch, nondet);
            ctx.charge(self.cost.authenticator(self.cfg.n) + self.cost.signature);
            pp.sig = self.keys.sign(&pp.signed_bytes());
            pp.auth = Authenticator::generate(&self.keys, self.cfg.n, &pp.batch_digest());

            if ctx.trace_enabled() {
                // Causal edge for the span layer: which client ops landed in
                // this agreement slot, and how long the triggering event sat
                // queued behind this (busy) primary.
                let queue_ns = ctx.sched_lag().as_nanos();
                for r in pp.requests() {
                    ctx.emit(
                        self.view,
                        seq,
                        ProtocolEvent::RequestProposed {
                            client: u64::from(r.client()),
                            ts: r.timestamp(),
                            queue_ns,
                        },
                    );
                }
            }
            if matches!(self.byz, ByzMode::EquivocatePrimary) {
                self.equivocate(&pp, ctx);
            } else {
                self.multicast(ctx, &Message::PrePrepare(pp.clone()));
            }
            self.log.entry_mut(seq).pre_prepare = Some(pp);
            self.slots.observe_proposed(seq);
            self.slot_arrival.insert(seq, ctx.now().as_nanos());
            self.maybe_prepared(seq, ctx);
        }
    }

    /// Byzantine primary: send conflicting proposals to the two halves of
    /// the backup set.
    fn equivocate(&mut self, pp: &PrePrepareMsg, ctx: &mut Context<'_>) {
        // The covered fields are construction-only, so the conflicting
        // proposal is rebuilt (its batch digest is memoized afresh).
        let mut nd = pp.nondet().to_vec();
        nd.push(0xff);
        let mut alt = PrePrepareMsg::new(pp.view, pp.seq, pp.requests().to_vec(), nd);
        alt.sig = self.keys.sign(&alt.signed_bytes());
        alt.auth = Authenticator::generate(&self.keys, self.cfg.n, &alt.batch_digest());
        for i in 0..self.cfg.n {
            if i == self.id as usize {
                continue;
            }
            let msg = if i % 2 == 0 {
                Message::PrePrepare(pp.clone())
            } else {
                Message::PrePrepare(alt.clone())
            };
            self.send(ctx, self.cfg.replica_node(i), &msg);
        }
    }

    fn handle_pre_prepare(&mut self, pp: PrePrepareMsg, ctx: &mut Context<'_>) {
        if self.in_view_change || pp.view != self.view || self.is_primary() {
            return;
        }
        if !self.in_watermarks(pp.seq) {
            return;
        }
        let primary = self.cfg.primary_of(self.view);
        ctx.charge(self.cost.mac + self.cost.digest(64) + self.cost.signature);
        if !pp.auth.check(&self.keys, primary, &pp.batch_digest()) {
            self.stats.rejected_messages += 1;
            return;
        }
        if !self.keys.verify(primary, &pp.signed_bytes(), &pp.sig) {
            self.stats.rejected_messages += 1;
            return;
        }
        // Authenticate every piggybacked request.
        for r in pp.requests() {
            ctx.charge(self.cost.mac + self.cost.digest(r.op().len()));
            if !r.auth.check(&self.keys, r.client() as usize, &r.digest()) {
                self.stats.rejected_messages += 1;
                return;
            }
        }
        // Validate the primary's non-deterministic choices. Failing the
        // check means this replica refuses to ENDORSE the proposal — it
        // sends no prepare, so a faulty primary cannot gather a quorum and
        // is deposed by the progress timer. The pre-prepare is still
        // logged: when the batch is a *retransmission* of something 2f+1
        // replicas already agreed on (catch-up after a reinstall or a long
        // crash, where the agreed timestamp is legitimately older than the
        // freshness window), their resent commits carry the quorum's
        // endorsement and this replica must accept the agreed value.
        let clock = ctx.local_clock().as_nanos();
        let endorse = {
            let mut env = ExecEnv::new(clock, ctx.rng());
            self.service.check_nondet(pp.nondet(), &mut env)
        };
        if !endorse {
            self.stats.rejected_messages += 1;
        }

        let digest = pp.batch_digest();
        let entry = self.log.entry_mut(pp.seq);
        if let Some(existing) = &entry.pre_prepare {
            if existing.view == pp.view && existing.batch_digest() != digest {
                // Conflicting proposal from the primary — evidence of a
                // faulty primary; the progress timer will trigger a view
                // change.
                return;
            }
            if existing.view == pp.view {
                return; // Duplicate.
            }
        }
        entry.pre_prepare = Some(pp.clone());
        self.slots.observe_proposed(pp.seq);
        self.slot_arrival.insert(pp.seq, ctx.now().as_nanos());
        ctx.emit(
            pp.view,
            pp.seq,
            ProtocolEvent::PrePrepareLogged { queue_ns: ctx.sched_lag().as_nanos() },
        );
        if !endorse {
            // Logged but not endorsed: wait for a quorum's commits.
            self.maybe_committed(pp.seq, ctx);
            return;
        }

        // Multicast our prepare.
        let mut prepare = PrepareMsg {
            view: self.view,
            seq: pp.seq,
            digest,
            replica: self.id,
            auth: Authenticator::default(),
            sig: base_crypto::Signature([0; 32]),
        };
        ctx.charge(self.cost.authenticator(self.cfg.n) + self.cost.signature);
        prepare.sig = self.keys.sign(&prepare.signed_bytes());
        prepare.auth = Authenticator::generate(&self.keys, self.cfg.n, &prepare_digest(&prepare));
        let entry = self.log.entry_mut(pp.seq);
        entry.prepares.insert(self.id, prepare.clone());
        entry.prepare_sent = true;
        self.multicast(ctx, &Message::Prepare(prepare));
        self.maybe_prepared(pp.seq, ctx);
    }

    fn handle_prepare(&mut self, p: PrepareMsg, ctx: &mut Context<'_>) {
        if self.in_view_change || p.view != self.view {
            return;
        }
        if !self.in_watermarks(p.seq) {
            return;
        }
        if p.replica as usize >= self.cfg.n
            || p.replica as usize == self.cfg.primary_of(p.view)
            || p.replica == self.id
        {
            return;
        }
        ctx.charge(self.cost.mac + self.cost.signature);
        if !p.auth.check(&self.keys, p.replica as usize, &prepare_digest(&p)) {
            self.stats.rejected_messages += 1;
            return;
        }
        if !self.keys.verify(p.replica as usize, &p.signed_bytes(), &p.sig) {
            self.stats.rejected_messages += 1;
            return;
        }
        let seq = p.seq;
        self.log.entry_mut(seq).prepares.entry(p.replica).or_insert(p);
        self.maybe_prepared(seq, ctx);
    }

    fn maybe_prepared(&mut self, seq: u64, ctx: &mut Context<'_>) {
        let view = self.view;
        let f = self.f();
        let entry = self.log.entry_mut(seq);
        if !entry.prepared(view, f) || entry.commit_sent {
            return;
        }
        entry.commit_sent = true;
        self.slots.observe_prepared(seq);
        let digest = entry.accepted_digest().expect("prepared implies pre-prepare");
        // `commit_sent` is one-shot per slot, so this traces exactly once.
        ctx.emit(view, seq, ProtocolEvent::PrepareQuorum);
        if matches!(self.byz, ByzMode::WithholdCommits) {
            return;
        }
        let mut commit = CommitMsg {
            view,
            seq,
            digest,
            replica: self.id,
            auth: Authenticator::default(),
        };
        ctx.charge(self.cost.authenticator(self.cfg.n));
        commit.auth = Authenticator::generate(&self.keys, self.cfg.n, &commit_digest(&commit));
        self.log.entry_mut(seq).commits.insert(self.id, commit.clone());
        self.multicast(ctx, &Message::Commit(commit));
        self.maybe_committed(seq, ctx);
    }

    fn handle_commit(&mut self, c: CommitMsg, ctx: &mut Context<'_>) {
        if self.in_view_change || c.view != self.view {
            return;
        }
        if !self.in_watermarks(c.seq) {
            return;
        }
        if c.replica as usize >= self.cfg.n || c.replica == self.id {
            return;
        }
        ctx.charge(self.cost.mac);
        if !c.auth.check(&self.keys, c.replica as usize, &commit_digest(&c)) {
            self.stats.rejected_messages += 1;
            return;
        }
        let seq = c.seq;
        self.log.entry_mut(seq).commits.entry(c.replica).or_insert(c);
        self.maybe_committed(seq, ctx);
    }

    fn maybe_committed(&mut self, seq: u64, ctx: &mut Context<'_>) {
        let view = self.view;
        let f = self.f();
        if !self.log.entry_mut(seq).committed(view, f) {
            return;
        }
        self.slots.mark_committed(seq);
        if ctx.trace_enabled() && self.slots.first_quorum_trace(seq) {
            ctx.emit(view, seq, ProtocolEvent::CommitQuorum);
        }
        self.execute_ready(ctx);
    }

    // ------------------------------------------------------------------
    // Execution and checkpointing
    // ------------------------------------------------------------------

    fn execute_ready(&mut self, ctx: &mut Context<'_>) {
        if self.fetcher.is_some() {
            // Don't execute while state transfer is rebuilding the state.
            return;
        }
        loop {
            let next = self.last_exec + 1;
            let view = self.view;
            let f = self.f();
            let ready = match self.log.entry(next) {
                Some(e) => e.committed(view, f) && !e.executed,
                None => false,
            };
            if !ready {
                break;
            }
            let pp = self
                .log
                .entry(next)
                .and_then(|e| e.pre_prepare.clone())
                .expect("committed implies pre-prepare");
            self.execute_batch(&pp, ctx);
            let entry = self.log.entry_mut(next);
            entry.executed = true;
            self.slots.mark_executed(next);
            self.last_exec = next;
            self.stats.executed_batches += 1;

            if next.is_multiple_of(self.cfg.checkpoint_interval) {
                self.take_checkpoint(next, ctx);
            }
        }
        // Execution caught up with agreement: deferred read-only requests
        // can now be answered from fresh state.
        if !self.exec_backlog() && !self.ro_deferred.is_empty() {
            let drained: Vec<RequestMsg> = self.ro_deferred.drain(..).collect();
            for req in drained {
                self.execute_read_only(&req, ctx);
            }
        }
        // Window space may have opened: the primary drains its queue.
        if self.is_primary() && !self.in_view_change {
            self.try_propose(ctx);
        }
        // Progress: reset the liveness timer.
        if !self.in_view_change {
            if let Some(t) = self.vc_timer.take() {
                ctx.cancel_timer(t);
            }
            self.awaiting.retain(|(c, ts)| self.reply_cache.is_new(*c, *ts));
            if !self.awaiting.is_empty() {
                // Progress was made, so the escalation (if any) is over:
                // restart the timer from the adaptive base.
                self.vc_timeout = self.base_vc_timeout();
                self.vc_timer = Some(ctx.set_timer(self.vc_timeout, TOKEN_VIEW_CHANGE));
            }
        }
    }

    fn execute_batch(&mut self, pp: &PrePrepareMsg, ctx: &mut Context<'_>) {
        ctx.emit(pp.view, pp.seq, ProtocolEvent::RequestExecuted { batch: pp.requests().len() as u64 });
        if let Some(arrived) = self.slot_arrival.remove(&pp.seq) {
            // Pre-prepare-to-execution: the three-phase agreement round as
            // this replica saw it. Slots re-proposed across a view change
            // were dropped from the map (Karn: ambiguous samples).
            let lat = ctx.now().as_nanos().saturating_sub(arrived);
            self.agree_rtt.observe(lat);
            self.metrics.observe("replica.agreement_latency_ns", lat);
        }
        self.metrics.observe("replica.batch_occupancy", pp.requests().len() as u64);
        // Split cached resends from fresh work so the fresh operations go
        // through the service as one batch: the service partitions them by
        // conflict footprint and executes non-conflicting groups in
        // parallel, merging results back in batch order.
        let mut fresh: Vec<&RequestMsg> = Vec::new();
        for req in pp.requests() {
            if !self.reply_cache.is_new(req.client(), req.timestamp()) {
                // Already executed (e.g. re-proposed across a view change);
                // resend the cached reply if this was the last request.
                if let Some(result) = self.reply_cache.cached_result(req.client(), req.timestamp()) {
                    let full = self.is_full_replier(req);
                    let reply = self.make_reply(
                        req.client(),
                        req.timestamp(),
                        result.to_vec(),
                        full,
                        false,
                        ctx,
                    );
                    self.send(ctx, self.cfg.client_node(req.client()), &Message::Reply(reply));
                }
                continue;
            }
            fresh.push(req);
        }
        if fresh.is_empty() {
            return;
        }
        let ops: Vec<(&[u8], u32)> = fresh.iter().map(|r| (r.op(), r.client())).collect();
        let clock = ctx.local_clock().as_nanos();
        let (results, charged) = {
            let mut env = ExecEnv::new(clock, ctx.rng());
            let results = self.service.execute_batch(&ops, pp.nondet(), &mut env);
            (results, env.charged())
        };
        ctx.charge(charged);
        debug_assert_eq!(results.len(), fresh.len());
        for (req, result) in fresh.into_iter().zip(results) {
            self.reply_cache.record(req.client(), req.timestamp(), result.clone());
            self.stats.executed_requests += 1;
            let full = self.is_full_replier(req);
            let reply = self.make_reply(req.client(), req.timestamp(), result, full, false, ctx);
            self.send(ctx, self.cfg.client_node(req.client()), &Message::Reply(reply));
            self.awaiting.remove(&(req.client(), req.timestamp()));
        }
    }

    fn take_checkpoint(&mut self, seq: u64, ctx: &mut Context<'_>) {
        let clock = ctx.local_clock().as_nanos();
        let (service_root, charged) = {
            let mut env = ExecEnv::new(clock, ctx.rng());
            let root = self.service.take_checkpoint(seq, &mut env);
            (root, env.charged())
        };
        ctx.charge(charged);
        let replies_blob = self.reply_cache.to_blob();
        ctx.charge(self.cost.digest(replies_blob.len()) + self.cost.signature);
        let replies_digest = Digest::of(&replies_blob);
        let mut composite = checkpoint_digest(&service_root, &replies_digest);
        if matches!(self.byz, ByzMode::CorruptCheckpoints) {
            composite = Digest::of_parts(&[b"corrupt", &composite.0]);
        }
        self.ckpt_meta.insert(seq, CkptMeta { service_root, replies_blob, composite });
        self.stats.checkpoints_taken += 1;
        self.metrics.inc("replica.checkpoints_taken");
        // Duration: the CPU charged for digesting the service state.
        self.metrics.observe_duration("replica.checkpoint_ns", charged);

        let mut msg = CheckpointMsg {
            seq,
            digest: composite,
            replica: self.id,
            sig: base_crypto::Signature([0; 32]),
        };
        msg.sig = self.keys.sign(&msg.signed_bytes());
        if let Some(cert) = self.ckpt_collector.add(msg.clone(), self.cfg.quorum()) {
            self.make_stable(seq, composite, cert, ctx);
        }
        self.multicast(ctx, &Message::Checkpoint(msg));
    }

    fn handle_checkpoint(&mut self, c: CheckpointMsg, ctx: &mut Context<'_>) {
        if c.replica as usize >= self.cfg.n || c.replica == self.id {
            return;
        }
        if c.seq <= self.stable_seq {
            return;
        }
        ctx.charge(self.cost.signature);
        if !self.keys.verify(c.replica as usize, &c.signed_bytes(), &c.sig) {
            self.stats.rejected_messages += 1;
            return;
        }
        let seq = c.seq;
        let digest = c.digest;
        if let Some(cert) = self.ckpt_collector.add(c, self.cfg.quorum()) {
            self.make_stable(seq, digest, cert, ctx);
        }
    }

    fn make_stable(
        &mut self,
        seq: u64,
        digest: Digest,
        cert: Vec<CheckpointMsg>,
        ctx: &mut Context<'_>,
    ) {
        if seq <= self.stable_seq {
            return;
        }
        self.stable_seq = seq;
        self.stable_cert = cert;
        self.stats.stable_checkpoints += 1;
        self.metrics.inc("replica.stable_checkpoints");
        ctx.emit(self.view, seq, ProtocolEvent::CheckpointStable);
        self.log.gc_up_to(seq);
        self.slot_arrival.retain(|s, _| *s > seq);
        self.slots.gc_up_to(seq);
        self.ckpt_collector.gc_up_to(seq);
        // Keep the stable checkpoint itself; discard older ones.
        self.ckpt_meta = self.ckpt_meta.split_off(&seq);
        self.service.discard_checkpoints_below(seq);

        if self.last_exec < seq {
            // The group moved past us; fetch the stable checkpoint.
            self.start_fetch(seq, digest, ctx);
        }
    }

    // ------------------------------------------------------------------
    // State transfer
    // ------------------------------------------------------------------

    fn start_fetch(&mut self, seq: u64, digest: Digest, ctx: &mut Context<'_>) {
        if let Some(f) = &self.fetcher {
            if f.target_seq() >= seq {
                return;
            }
        }
        let clock = ctx.local_clock().as_nanos();
        {
            let mut env = ExecEnv::new(clock, ctx.rng());
            self.service.prepare_for_transfer(&mut env);
            let charged = env.charged();
            ctx.charge(charged);
        }
        let mut fetcher = if self.cfg.adaptive_timeouts {
            Fetcher::adaptive(
                self.id,
                self.cfg.n,
                seq,
                digest,
                self.cfg.fetch_window,
                self.cfg.fetch_window_max,
            )
        } else {
            Fetcher::with_window(self.id, self.cfg.n, seq, digest, self.cfg.fetch_window)
        };
        if self.cfg.coded_transfer {
            // Systematic Reed–Solomon over k = f+1 data + m = f parity
            // fragments: any f+1 of the 2f+1 correct sources suffice, and
            // the parity budget absorbs up to f corrupt fragments.
            let f = self.cfg.f();
            fetcher.enable_coded(f + 1, f, self.cfg.chunk_size);
        }
        for (to, msg) in fetcher.begin() {
            self.send(ctx, self.cfg.replica_node(to as usize), &msg);
        }
        self.fetcher = Some(fetcher);
        self.fetch_started_at_ns = ctx.now().as_nanos();
        ctx.emit(self.view, seq, ProtocolEvent::StateTransferFetchStarted);
        self.metrics.inc("transfer.fetches_started");
    }

    fn finish_fetch(&mut self, result: FetchResult, ctx: &mut Context<'_>) {
        self.stats.state_transfers += 1;
        self.stats.state_transfer_bytes += result.fetched_bytes;
        self.stats.state_transfer_objects += result.objects.len() as u64;
        self.stats.state_transfer_meta_queries += result.meta_queries;
        ctx.emit(
            self.view,
            result.seq,
            ProtocolEvent::StateTransferFetchCompleted { objects: result.objects.len() as u64 },
        );
        self.metrics.inc("transfer.completed");
        self.metrics.observe("transfer.bytes_fetched", result.fetched_bytes);
        self.metrics.observe("transfer.objects_fetched", result.objects.len() as u64);
        self.metrics.add("transfer.meta_queries", result.meta_queries);
        self.metrics.add("transfer.corrupt_replies", result.corrupt_replies);
        self.metrics.add("transfer.retransmissions", result.retransmissions);
        self.metrics.observe("transfer.peak_window", result.peak_window as u64);
        if self.cfg.coded_transfer {
            self.metrics.add("transfer.chunk_queries", result.chunk_queries);
            self.metrics.add("transfer.frag_queries", result.frag_queries);
            self.metrics.add("transfer.chunks_reused", result.chunks_reused);
        }
        // Wall-clock from fetch start to installation: the transfer's
        // contribution to heal-to-progress latency.
        self.metrics.observe(
            "transfer.fetch_ns",
            ctx.now().as_nanos().saturating_sub(self.fetch_started_at_ns),
        );

        // Install the reply cache and the service objects.
        if let Some(cache) = ReplyCache::from_blob(&result.replies_blob) {
            self.reply_cache = cache;
        }
        ctx.charge(self.cost.digest(result.fetched_bytes as usize));
        let clock = ctx.local_clock().as_nanos();
        {
            let mut env = ExecEnv::new(clock, ctx.rng());
            self.service.install_checkpoint(
                result.seq,
                result.service_root,
                result.objects,
                &mut env,
            );
            let charged = env.charged();
            ctx.charge(charged);
        }

        // Record the checkpoint locally so we can serve it to others.
        let replies_digest = Digest::of(&result.replies_blob);
        let composite = checkpoint_digest(&result.service_root, &replies_digest);
        self.ckpt_meta.insert(
            result.seq,
            CkptMeta {
                service_root: result.service_root,
                replies_blob: result.replies_blob,
                composite,
            },
        );

        // Execution state now corresponds exactly to the fetched
        // checkpoint. If we had executed past it before a recovery reboot,
        // roll back and re-execute the committed suffix from the log on the
        // repaired state.
        self.last_exec = result.seq;
        let stale: Vec<u64> =
            self.log.iter().filter(|(s, e)| **s > result.seq && e.executed).map(|(s, _)| *s).collect();
        for seq in stale {
            self.log.entry_mut(seq).executed = false;
        }
        self.fetcher = None;
        self.rebuild_slots();

        if self.recovering {
            self.recovering = false;
            self.stats.recoveries += 1;
            self.last_recovery_ns =
                ctx.now().as_nanos().saturating_sub(self.recovery_started_at_ns);
            // State transfer has replaced any corrupted objects: a replica
            // whose only fault was damaged state is correct again.
            let repaired = matches!(self.byz, ByzMode::CorruptState);
            if repaired {
                self.byz = ByzMode::Honest;
            }
            ctx.emit(
                self.view,
                result.seq,
                ProtocolEvent::RecoveryCompleted { repaired_corruption: repaired },
            );
            self.metrics.observe("replica.recovery_ns", self.last_recovery_ns);
        }

        // Re-execute any committed batches beyond the checkpoint.
        self.execute_ready(ctx);
    }

    fn handle_fetch_meta(&mut self, m: FetchMetaMsg, ctx: &mut Context<'_>) {
        if m.replica as usize >= self.cfg.n {
            return;
        }
        let digests = if m.level == META_ROOT_LEVEL {
            match self.ckpt_meta.get(&m.seq) {
                Some(meta) => {
                    vec![meta.service_root, Digest::of(&meta.replies_blob)]
                }
                None => return,
            }
        } else {
            match self.service.checkpoint_meta(m.seq, m.level, m.index) {
                Some(d) => d,
                None => return,
            }
        };
        ctx.charge(self.cost.handle);
        let reply = MetaReplyMsg {
            seq: m.seq,
            level: m.level,
            index: m.index,
            digests,
            replica: self.id,
        };
        self.send(ctx, self.cfg.replica_node(m.replica as usize), &Message::MetaReply(reply));
    }

    fn handle_fetch_object(&mut self, m: FetchObjectMsg, ctx: &mut Context<'_>) {
        if m.replica as usize >= self.cfg.n {
            return;
        }
        let data = if m.index == REPLIES_INDEX {
            match self.ckpt_meta.get(&m.seq) {
                Some(meta) => meta.replies_blob.clone(),
                None => return,
            }
        } else {
            match self.service.checkpoint_object(m.seq, m.index) {
                Some(d) => d,
                None => return,
            }
        };
        ctx.charge(self.cost.digest(data.len()));
        let reply = ObjectReplyMsg { seq: m.seq, index: m.index, data, replica: self.id };
        self.send(ctx, self.cfg.replica_node(m.replica as usize), &Message::ObjectReply(reply));
    }

    fn handle_meta_reply(&mut self, m: MetaReplyMsg, ctx: &mut Context<'_>) {
        ctx.charge(self.cost.digest(m.digests.len() * 32));
        let (out, done) = match &mut self.fetcher {
            Some(f) => f.on_meta_reply(&m, self.service.current_tree()),
            None => return,
        };
        ctx.emit(
            self.view,
            m.seq,
            ProtocolEvent::StateTransferFetchChunk { bytes: (m.digests.len() * 32) as u64 },
        );
        for (to, msg) in out {
            self.send(ctx, self.cfg.replica_node(to as usize), &msg);
        }
        if let Some(result) = done {
            self.finish_fetch(result, ctx);
        }
    }

    fn handle_object_reply(&mut self, m: ObjectReplyMsg, ctx: &mut Context<'_>) {
        ctx.charge(self.cost.digest(m.data.len()));
        let (out, done) = match &mut self.fetcher {
            Some(f) => f.on_object_reply(&m, self.service.current_tree()),
            None => return,
        };
        ctx.emit(
            self.view,
            m.seq,
            ProtocolEvent::StateTransferFetchChunk { bytes: m.data.len() as u64 },
        );
        for (to, msg) in out {
            self.send(ctx, self.cfg.replica_node(to as usize), &msg);
        }
        if let Some(result) = done {
            self.finish_fetch(result, ctx);
        }
    }

    fn handle_fetch_chunks(&mut self, m: FetchChunksMsg, ctx: &mut Context<'_>) {
        if m.replica as usize >= self.cfg.n || self.cfg.chunk_size == 0 {
            return;
        }
        let Some(data) = self.service.checkpoint_object(m.seq, m.index) else { return };
        // Recomputing the chunk digests re-hashes the object once.
        ctx.charge(self.cost.digest(data.len()));
        let digests = crate::tree::chunk_digests(m.index, &data, self.cfg.chunk_size);
        let reply = ChunksReplyMsg {
            seq: m.seq,
            index: m.index,
            len: data.len() as u64,
            digests,
            replica: self.id,
        };
        self.send(ctx, self.cfg.replica_node(m.replica as usize), &Message::ChunksReply(reply));
    }

    fn handle_fetch_frag(&mut self, m: FetchFragMsg, ctx: &mut Context<'_>) {
        let f = self.cfg.f();
        let (k, pm) = (f + 1, f);
        if m.replica as usize >= self.cfg.n || (m.frag as usize) >= k + pm {
            return;
        }
        let Some(data) = self.service.checkpoint_object(m.seq, m.index) else { return };
        let bytes: &[u8] = if m.chunk == CHUNK_WHOLE {
            &data
        } else {
            let cs = self.cfg.chunk_size;
            let start = m.chunk as usize * cs;
            let end = ((m.chunk as usize + 1) * cs).min(data.len());
            if cs == 0 || start >= end {
                return;
            }
            &data[start..end]
        };
        // Serving one fragment streams 1/k of the bytes; parity fragments
        // additionally pay one pass of GF(2^8) arithmetic, charged as a
        // digest pass over the source bytes.
        let frag = fec::fragment(bytes, k, pm, m.frag as usize);
        let charged = if (m.frag as usize) < k { frag.len() } else { bytes.len() };
        ctx.charge(self.cost.digest(charged));
        let reply = FragReplyMsg {
            seq: m.seq,
            index: m.index,
            chunk: m.chunk,
            frag: m.frag,
            len: bytes.len() as u64,
            data: frag,
            replica: self.id,
        };
        self.send(ctx, self.cfg.replica_node(m.replica as usize), &Message::FragReply(reply));
    }

    fn handle_chunks_reply(&mut self, m: ChunksReplyMsg, ctx: &mut Context<'_>) {
        ctx.charge(self.cost.digest(m.digests.len() * 32));
        if self.fetcher.is_none() {
            return;
        }
        // Local chunk reuse diffs against the *current* value of the
        // object, whatever it has drifted to — the fetcher validates every
        // reused chunk against the verified remote chunk digest.
        let local = self.service.transfer_object(m.index);
        let (out, done) = match &mut self.fetcher {
            Some(f) => f.on_chunks_reply(&m, local.as_deref()),
            None => return,
        };
        ctx.emit(
            self.view,
            m.seq,
            ProtocolEvent::StateTransferFetchChunk { bytes: (m.digests.len() * 32) as u64 },
        );
        for (to, msg) in out {
            self.send(ctx, self.cfg.replica_node(to as usize), &msg);
        }
        if let Some(result) = done {
            self.finish_fetch(result, ctx);
        }
    }

    fn handle_frag_reply(&mut self, m: FragReplyMsg, ctx: &mut Context<'_>) {
        ctx.charge(self.cost.digest(m.data.len()));
        let (out, done) = match &mut self.fetcher {
            Some(f) => f.on_frag_reply(&m),
            None => return,
        };
        ctx.emit(
            self.view,
            m.seq,
            ProtocolEvent::StateTransferFetchChunk { bytes: m.data.len() as u64 },
        );
        for (to, msg) in out {
            self.send(ctx, self.cfg.replica_node(to as usize), &msg);
        }
        if let Some(result) = done {
            self.finish_fetch(result, ctx);
        }
    }

    fn handle_fetch_cert(&mut self, m: FetchCertMsg, ctx: &mut Context<'_>) {
        if m.replica as usize >= self.cfg.n || self.stable_cert.is_empty() {
            return;
        }
        let reply = CertReplyMsg { msgs: self.stable_cert.clone(), replica: self.id };
        self.send(ctx, self.cfg.replica_node(m.replica as usize), &Message::CertReply(reply));
    }

    fn handle_cert_reply(&mut self, m: CertReplyMsg, ctx: &mut Context<'_>) {
        // Validate: 2f+1 checkpoint messages from distinct replicas with
        // the same seq and digest, each correctly signed.
        let Some((seq, digest)) = validate_cert(&self.cfg, &self.keys, &m.msgs) else {
            self.stats.rejected_messages += 1;
            return;
        };
        ctx.charge(self.cost.signature.saturating_mul(m.msgs.len() as u64));
        if seq < self.stable_seq {
            return; // Stale certificate from a lagging replier.
        }
        if seq > self.stable_seq {
            self.stable_seq = seq;
            self.stable_cert = m.msgs;
            self.log.gc_up_to(seq);
            self.slot_arrival.retain(|s, _| *s > seq);
            self.slots.gc_up_to(seq);
            self.service.discard_checkpoints_below(seq);
        }
        if seq > self.last_exec || (self.recovering && seq > 0) {
            // Recovering replicas fetch even when nominally up to date:
            // the fetch walks the partition tree comparing digests and
            // repairs exactly the objects whose concrete state is stale or
            // corrupt (paper §3.4).
            self.start_fetch(seq, digest, ctx);
        } else if self.recovering {
            // No checkpoint exists yet; recovery completes immediately.
            self.recovering = false;
            self.stats.recoveries += 1;
            self.last_recovery_ns =
                ctx.now().as_nanos().saturating_sub(self.recovery_started_at_ns);
            ctx.emit(self.view, seq, ProtocolEvent::RecoveryCompleted { repaired_corruption: false });
            self.metrics.observe("replica.recovery_ns", self.last_recovery_ns);
        }
    }

    // ------------------------------------------------------------------
    // View changes
    // ------------------------------------------------------------------

    fn move_to_view(&mut self, target: u64, ctx: &mut Context<'_>) {
        if target <= self.view {
            return;
        }
        self.view = target;
        self.in_view_change = true;
        self.stats.view_changes_started += 1;
        self.metrics.inc("replica.view_changes_started");
        ctx.emit(target, self.stable_seq, ProtocolEvent::ViewChangeStarted);

        // Build our view-change message from the log.
        let mut prepared = Vec::new();
        for (seq, entry) in self.log.iter() {
            if let Some(pp) = &entry.pre_prepare {
                if *seq > self.stable_seq && entry.prepared(pp.view, self.f()) {
                    prepared.push(PreparedProof {
                        pre_prepare: pp.clone(),
                        prepares: entry.prepare_proof(pp.view),
                    });
                }
            }
        }
        let stable_digest = self
            .ckpt_meta
            .get(&self.stable_seq)
            .map(|m| m.composite)
            .or_else(|| self.stable_cert.first().map(|c| c.digest))
            .unwrap_or(Digest::ZERO);
        let mut vc = ViewChangeMsg {
            new_view: target,
            stable_seq: self.stable_seq,
            stable_digest,
            stable_proof: self.stable_cert.clone(),
            prepared,
            replica: self.id,
            sig: base_crypto::Signature([0; 32]),
        };
        ctx.charge(self.cost.signature);
        vc.sig = self.keys.sign(&vc.signed_bytes());
        self.own_vc = Some(vc.clone());
        self.vc_collect.entry(target).or_default().insert(self.id, vc.clone());
        self.multicast(ctx, &Message::ViewChange(vc));

        // Escalation timer: if the new view does not start in time, move on.
        if let Some(t) = self.vc_timer.take() {
            ctx.cancel_timer(t);
        }
        self.vc_timeout = self.cfg.escalated_vc_timeout(self.vc_timeout);
        self.vc_timer = Some(ctx.set_timer(self.vc_timeout, TOKEN_VIEW_CHANGE));

        self.maybe_new_view(ctx);
    }

    fn handle_view_change(&mut self, vc: ViewChangeMsg, ctx: &mut Context<'_>) {
        if vc.replica as usize >= self.cfg.n || vc.replica == self.id {
            return;
        }
        if vc.new_view <= self.last_new_view {
            return;
        }
        ctx.charge(self.cost.signature);
        if !self.verify_view_change(&vc) {
            self.stats.rejected_messages += 1;
            return;
        }
        self.vc_collect.entry(vc.new_view).or_default().insert(vc.replica, vc.clone());

        // Liveness rule: if f+1 distinct replicas vote for views greater
        // than ours, join the smallest such view even if our own timer has
        // not expired.
        let mut voters: HashSet<u32> = HashSet::new();
        let mut smallest: Option<u64> = None;
        for (v, senders) in self.vc_collect.range((self.view + 1)..) {
            if smallest.is_none() {
                smallest = Some(*v);
            }
            voters.extend(senders.keys().copied());
        }
        if voters.len() > self.f() {
            if let Some(target) = smallest {
                self.move_to_view(target, ctx);
            }
        }

        self.maybe_new_view(ctx);
    }

    fn verify_view_change(&self, vc: &ViewChangeMsg) -> bool {
        if !self.keys.verify(vc.replica as usize, &vc.signed_bytes(), &vc.sig) {
            return false;
        }
        // Stable checkpoint proof.
        if vc.stable_seq > 0 {
            let Some((seq, digest)) = validate_cert(&self.cfg, &self.keys, &vc.stable_proof)
            else {
                return false;
            };
            if seq != vc.stable_seq || digest != vc.stable_digest {
                return false;
            }
        }
        // Prepared certificates.
        for p in &vc.prepared {
            if !self.verify_prepared_proof(p, vc.stable_seq) {
                return false;
            }
        }
        true
    }

    fn verify_prepared_proof(&self, p: &PreparedProof, stable_seq: u64) -> bool {
        let pp = &p.pre_prepare;
        if pp.seq <= stable_seq {
            return false;
        }
        let primary = self.cfg.primary_of(pp.view);
        if !self.keys.verify(primary, &pp.signed_bytes(), &pp.sig) {
            return false;
        }
        let digest = pp.batch_digest();
        let mut senders = HashSet::new();
        for prep in &p.prepares {
            if prep.view != pp.view || prep.seq != pp.seq || prep.digest != digest {
                continue;
            }
            if prep.replica as usize == primary || prep.replica as usize >= self.cfg.n {
                continue;
            }
            if !self.keys.verify(prep.replica as usize, &prep.signed_bytes(), &prep.sig) {
                continue;
            }
            senders.insert(prep.replica);
        }
        senders.len() >= 2 * self.f()
    }

    /// If we are the primary of a view with a quorum of view-change votes,
    /// build and send the new-view message.
    fn maybe_new_view(&mut self, ctx: &mut Context<'_>) {
        let target = self.view;
        if !self.in_view_change
            || self.cfg.primary_of(target) != self.id as usize
            || self.last_new_view >= target
        {
            return;
        }
        let Some(senders) = self.vc_collect.get(&target) else { return };
        if senders.len() < self.cfg.quorum() {
            return;
        }
        // Deterministic selection: the quorum with the lowest replica ids.
        let mut ids: Vec<u32> = senders.keys().copied().collect();
        ids.sort_unstable();
        ids.truncate(self.cfg.quorum());
        let vcs: Vec<ViewChangeMsg> = ids.iter().map(|i| senders[i].clone()).collect();

        let (min_s, pre_prepares) = compute_o(&self.cfg, target, &vcs);
        let mut signed = Vec::with_capacity(pre_prepares.len());
        for mut pp in pre_prepares {
            ctx.charge(self.cost.signature);
            pp.sig = self.keys.sign(&pp.signed_bytes());
            pp.auth = Authenticator::generate(&self.keys, self.cfg.n, &pp.batch_digest());
            signed.push(pp);
        }
        let mut nv = NewViewMsg {
            view: target,
            view_changes: vcs,
            pre_prepares: signed,
            replica: self.id,
            sig: base_crypto::Signature([0; 32]),
        };
        ctx.charge(self.cost.signature);
        nv.sig = self.keys.sign(&nv.signed_bytes());
        self.multicast(ctx, &Message::NewView(nv.clone()));
        self.install_new_view(nv, min_s, ctx);
    }

    fn handle_new_view(&mut self, nv: NewViewMsg, ctx: &mut Context<'_>) {
        if nv.view < self.view || nv.view <= self.last_new_view {
            return;
        }
        if nv.replica as usize != self.cfg.primary_of(nv.view) {
            return;
        }
        ctx.charge(self.cost.signature.saturating_mul((1 + nv.view_changes.len()) as u64));
        if !self.keys.verify(nv.replica as usize, &nv.signed_bytes(), &nv.sig) {
            self.stats.rejected_messages += 1;
            return;
        }
        // Validate the view changes: quorum from distinct senders.
        let mut senders = HashSet::new();
        for vc in &nv.view_changes {
            if vc.new_view != nv.view || !self.verify_view_change(vc) {
                self.stats.rejected_messages += 1;
                return;
            }
            senders.insert(vc.replica);
        }
        if senders.len() < self.cfg.quorum() {
            self.stats.rejected_messages += 1;
            return;
        }
        // Recompute O and check the primary's list matches.
        let (min_s, expected) = compute_o(&self.cfg, nv.view, &nv.view_changes);
        if expected.len() != nv.pre_prepares.len() {
            self.stats.rejected_messages += 1;
            return;
        }
        for (exp, got) in expected.iter().zip(nv.pre_prepares.iter()) {
            if got.view != nv.view
                || got.seq != exp.seq
                || got.batch_digest() != exp.batch_digest()
                || !self.keys.verify(nv.replica as usize, &got.signed_bytes(), &got.sig)
            {
                self.stats.rejected_messages += 1;
                return;
            }
        }
        self.install_new_view(nv, min_s, ctx);
    }

    fn install_new_view(&mut self, nv: NewViewMsg, min_s: u64, ctx: &mut Context<'_>) {
        self.view = nv.view;
        self.in_view_change = false;
        self.last_new_view = nv.view;
        self.stats.new_views_installed += 1;
        self.metrics.inc("replica.new_views_installed");
        ctx.emit(nv.view, self.stable_seq, ProtocolEvent::ViewChangeCompleted);
        self.own_vc = None;
        self.last_nv_msg = Some(nv.clone());
        // Slots carried across the view change would sample the view
        // change itself, not an agreement round: drop them (Karn).
        self.slot_arrival.clear();
        self.vc_timeout = self.base_vc_timeout();
        if let Some(t) = self.vc_timer.take() {
            ctx.cancel_timer(t);
        }
        self.vc_collect = self.vc_collect.split_off(&(nv.view + 1));

        // Adopt a higher stable checkpoint if the quorum proves one.
        if min_s > self.stable_seq {
            if let Some(vc) = nv.view_changes.iter().find(|vc| vc.stable_seq == min_s) {
                if let Some((seq, digest)) = validate_cert(&self.cfg, &self.keys, &vc.stable_proof)
                {
                    self.stable_seq = seq;
                    self.stable_cert = vc.stable_proof.clone();
                    self.log.gc_up_to(seq);
                    self.service.discard_checkpoints_below(seq);
                    if self.last_exec < seq {
                        self.start_fetch(seq, digest, ctx);
                    }
                }
            }
        }

        // Install the re-proposed pre-prepares and prepare them.
        let mut max_seq = self.stable_seq;
        for pp in &nv.pre_prepares {
            max_seq = max_seq.max(pp.seq);
            if pp.seq <= self.stable_seq {
                continue;
            }
            let entry = self.log.entry_mut(pp.seq);
            entry.pre_prepare = Some(pp.clone());
            entry.prepares.clear();
            entry.commits.clear();
            entry.commit_sent = false;
            entry.prepare_sent = false;
        }
        // The log just changed shape under the slot table: recompute every
        // slot's stage from the log itself. A slot re-agreed in the new
        // view is a fresh agreement instance and traces its own commit
        // quorum, so the trace dedup is re-armed too.
        self.rebuild_slots();
        self.slots.reset_traced();
        if self.cfg.primary_of(nv.view) == self.id as usize {
            self.seq_next = max_seq + 1;
            self.try_propose(ctx);
        } else {
            // Backups prepare everything in O.
            let seqs: Vec<u64> =
                nv.pre_prepares.iter().map(|p| p.seq).filter(|s| *s > self.stable_seq).collect();
            for seq in seqs {
                let digest = self
                    .log
                    .entry(seq)
                    .and_then(|e| e.accepted_digest())
                    .expect("just installed");
                let mut prepare = PrepareMsg {
                    view: nv.view,
                    seq,
                    digest,
                    replica: self.id,
                    auth: Authenticator::default(),
                    sig: base_crypto::Signature([0; 32]),
                };
                ctx.charge(self.cost.authenticator(self.cfg.n) + self.cost.signature);
                prepare.sig = self.keys.sign(&prepare.signed_bytes());
                prepare.auth =
                    Authenticator::generate(&self.keys, self.cfg.n, &prepare_digest(&prepare));
                let entry = self.log.entry_mut(seq);
                entry.prepares.insert(self.id, prepare.clone());
                entry.prepare_sent = true;
                self.multicast(ctx, &Message::Prepare(prepare));
            }
            let seqs: Vec<u64> = self.log.iter().map(|(s, _)| *s).collect();
            for seq in seqs {
                self.maybe_prepared(seq, ctx);
            }
        }
        if !self.awaiting.is_empty() {
            self.vc_timer = Some(ctx.set_timer(self.vc_timeout, TOKEN_VIEW_CHANGE));
        }
    }

    // ------------------------------------------------------------------
    // Timers
    // ------------------------------------------------------------------

    fn on_tick(&mut self, ctx: &mut Context<'_>) {
        // An explicitly requested recovery runs now, out of rotation.
        if self.recover_asap {
            self.recover_asap = false;
            // Not a scheduled rotation: do not re-arm the periodic timer.
            self.on_watchdog(ctx, false);
        }

        // Retransmit only if no execution progress since the last tick.
        let progressed = self.last_exec != self.last_exec_at_tick;
        self.last_exec_at_tick = self.last_exec;

        if let Some(f) = &mut self.fetcher {
            let resend = f.tick();
            let msgs: Vec<(u32, Message)> = resend;
            for (to, msg) in msgs {
                self.send(ctx, self.cfg.replica_node(to as usize), &msg);
            }
        }

        if !progressed && !self.in_view_change {
            // Nudge the first blocked sequence number.
            let next = self.last_exec + 1;
            let view = self.view;
            let mut to_send: Vec<Message> = Vec::new();
            if let Some(entry) = self.log.entry(next) {
                if let Some(pp) = &entry.pre_prepare {
                    if self.is_primary() && pp.view == view {
                        to_send.push(Message::PrePrepare(pp.clone()));
                    }
                    if let Some(p) = entry.prepares.get(&self.id) {
                        to_send.push(Message::Prepare(p.clone()));
                    }
                    if let Some(c) = entry.commits.get(&self.id) {
                        to_send.push(Message::Commit(c.clone()));
                    }
                }
            }
            for m in to_send {
                self.multicast(ctx, &m);
            }
            // Re-announce our newest checkpoint if it is not stable yet.
            if let Some((seq, meta)) = self.ckpt_meta.iter().next_back() {
                if *seq > self.stable_seq {
                    let mut msg = CheckpointMsg {
                        seq: *seq,
                        digest: meta.composite,
                        replica: self.id,
                        sig: base_crypto::Signature([0; 32]),
                    };
                    msg.sig = self.keys.sign(&msg.signed_bytes());
                    self.multicast(ctx, &Message::Checkpoint(msg));
                }
            }
        }

        if self.in_view_change && !progressed {
            if let Some(vc) = &self.own_vc {
                self.multicast(ctx, &Message::ViewChange(vc.clone()));
            }
        }

        // Gap detection: the group has moved ahead of us (we see traffic
        // for later sequence numbers) but we are missing the next batch —
        // it was garbage-collected at the others. Ask for their stable
        // checkpoint certificate so we can state-transfer. The same probe
        // doubles as a periodic idle status exchange (PBFT's status
        // messages): a replica that slept through the entire workload
        // still discovers the group's stable checkpoint. These probes run
        // even mid-view-change: a replica that escalated into a lonely
        // high view (e.g. while partitioned away) must still be able to
        // learn state from the quorum it cannot vote with.
        if !progressed && self.fetcher.is_none() {
            let next = self.last_exec + 1;
            let missing_next =
                self.log.entry(next).map(|e| e.pre_prepare.is_none()).unwrap_or(true);
            let group_ahead = self
                .log
                .iter()
                .any(|(s, e)| *s > next && (e.pre_prepare.is_some() || !e.commits.is_empty()));
            self.idle_ticks += 1;
            if (missing_next && group_ahead) || self.idle_ticks.is_multiple_of(10) {
                self.multicast(ctx, &Message::FetchCert(FetchCertMsg { replica: self.id }));
            }
            // Status report: peers retransmit whatever we are missing.
            let status = StatusMsg {
                view: self.view,
                last_exec: self.last_exec,
                stable_seq: self.stable_seq,
                replica: self.id,
            };
            self.multicast(ctx, &Message::Status(status));
        } else if progressed {
            self.idle_ticks = 0;
        }

        ctx.set_timer(self.cfg.tick_interval, TOKEN_TICK);
    }

    /// Responds to a peer's status report by retransmitting whatever it is
    /// missing (PBFT's status/retransmission mechanism, simplified).
    fn handle_status(&mut self, st: StatusMsg, ctx: &mut Context<'_>) {
        if st.replica as usize >= self.cfg.n || st.replica == self.id {
            return;
        }
        let to = self.cfg.replica_node(st.replica as usize);
        // Peer stuck in an older view: resend the new-view message.
        if st.view < self.view {
            if let Some(nv) = &self.last_nv_msg {
                self.send(ctx, to, &Message::NewView(nv.clone()));
            }
        }
        // Peer behind the stable checkpoint: hand it the certificate so it
        // can state-transfer.
        if st.stable_seq < self.stable_seq && !self.stable_cert.is_empty() {
            let reply = CertReplyMsg { msgs: self.stable_cert.clone(), replica: self.id };
            self.send(ctx, to, &Message::CertReply(reply));
        }
        // Peer behind in execution: resend the logged messages for its next
        // few sequence numbers (bounded burst).
        if st.last_exec < self.last_exec {
            let from = st.last_exec + 1;
            let upto = (st.last_exec + 8).min(self.last_exec);
            for seq in from..=upto {
                if let Some(e) = self.log.entry(seq) {
                    if let Some(pp) = &e.pre_prepare {
                        self.send(ctx, to, &Message::PrePrepare(pp.clone()));
                    }
                    // Relay every logged prepare/commit, not only our own:
                    // they carry full authenticator vectors and signatures,
                    // so the peer can verify them, and the original senders
                    // may be gone (reinstalled or crashed) — the log is the
                    // only place their endorsements survive.
                    for p in e.prepares.values() {
                        self.send(ctx, to, &Message::Prepare(p.clone()));
                    }
                    for c in e.commits.values() {
                        self.send(ctx, to, &Message::Commit(c.clone()));
                    }
                }
            }
        }
    }

    /// Proactive recovery: watchdog fired (or an explicit
    /// [`Replica::trigger_recovery`] request; only the periodic rotation
    /// re-arms its timer).
    fn on_watchdog(&mut self, ctx: &mut Context<'_>, rearm: bool) {
        // Reboot: the node is busy (down) for the reboot time.
        ctx.charge(self.cfg.reboot_time);
        self.keys.refresh();
        self.recovering = true;
        self.recovery_started_at_ns = ctx.now().as_nanos();
        ctx.emit(self.view, self.stable_seq, ProtocolEvent::RecoveryStarted);
        self.metrics.inc("replica.recoveries_started");
        let clock = ctx.local_clock().as_nanos();
        {
            let mut env = ExecEnv::new(clock, ctx.rng());
            self.service.reboot(self.recovery_clean, &mut env);
            let charged = env.charged();
            ctx.charge(charged);
        }
        if self.recovery_clean {
            // The concrete state restarted from the initial state: every
            // executed request's effects must be refetched or re-executed.
            self.last_exec = 0;
            self.reply_cache = ReplyCache::default();
            self.ckpt_meta.clear();
            let seqs: Vec<u64> = self.log.iter().map(|(s, _)| *s).collect();
            for seq in seqs {
                self.log.entry_mut(seq).executed = false;
            }
            self.rebuild_slots();
            self.ro_deferred.clear();
        }
        // Learn the group's latest stable checkpoint and repair against it
        // (even if nominally up to date — see handle_cert_reply).
        if !self.stable_cert.is_empty() {
            let digest = self.stable_cert[0].digest;
            let seq = self.stable_seq;
            if seq > 0 {
                self.start_fetch(seq, digest, ctx);
            }
        }
        self.multicast(ctx, &Message::FetchCert(FetchCertMsg { replica: self.id }));
        if self.stable_seq == 0 && self.last_exec == 0 {
            // Nothing executed group-wide yet; recovery is trivially done
            // unless a cert reply teaches us otherwise.
            self.recovering = false;
            self.stats.recoveries += 1;
            ctx.emit(self.view, 0, ProtocolEvent::RecoveryCompleted { repaired_corruption: false });
            self.metrics.observe("replica.recovery_ns", 0);
        }

        // Re-arm for the next rotation.
        if rearm {
            if let Some(period) = self.cfg.recovery_period {
                ctx.set_timer(period, TOKEN_WATCHDOG);
            }
        }
    }
}

/// Digest used for prepare authenticators.
fn prepare_digest(p: &PrepareMsg) -> Digest {
    Digest::of(&p.signed_bytes())
}

/// Digest used for commit authenticators.
fn commit_digest(c: &CommitMsg) -> Digest {
    Digest::of(&c.signed_bytes())
}

/// Validates a checkpoint certificate: at least 2f+1 messages from distinct
/// replicas, all with the same sequence number and digest, all correctly
/// signed. Returns the proven (seq, digest).
pub fn validate_cert(
    cfg: &Config,
    keys: &NodeKeys,
    msgs: &[CheckpointMsg],
) -> Option<(u64, Digest)> {
    let first = msgs.first()?;
    let (seq, digest) = (first.seq, first.digest);
    let mut senders = HashSet::new();
    for m in msgs {
        if m.seq != seq || m.digest != digest || m.replica as usize >= cfg.n {
            continue;
        }
        if !keys.verify(m.replica as usize, &m.signed_bytes(), &m.sig) {
            continue;
        }
        senders.insert(m.replica);
    }
    if senders.len() >= cfg.quorum() {
        Some((seq, digest))
    } else {
        None
    }
}

/// Deterministically computes the new-view pre-prepare set `O` from a set
/// of view-change messages. Returns `(min_s, pre_prepares)` where the
/// pre-prepares carry empty authentication (the caller signs them).
pub fn compute_o(
    cfg: &Config,
    view: u64,
    vcs: &[ViewChangeMsg],
) -> (u64, Vec<PrePrepareMsg>) {
    let min_s = vcs.iter().map(|vc| vc.stable_seq).max().unwrap_or(0);
    let max_s = vcs
        .iter()
        .flat_map(|vc| vc.prepared.iter().map(|p| p.pre_prepare.seq))
        .max()
        .unwrap_or(min_s);

    let mut out = Vec::new();
    for seq in (min_s + 1)..=max_s {
        // Pick the prepared certificate with the highest view for `seq`.
        let best = vcs
            .iter()
            .flat_map(|vc| vc.prepared.iter())
            .filter(|p| p.pre_prepare.seq == seq)
            .max_by_key(|p| p.pre_prepare.view);
        let (requests, nondet) = match best {
            Some(p) => (p.pre_prepare.requests().to_vec(), p.pre_prepare.nondet().to_vec()),
            None => (Vec::new(), Vec::new()), // Null request.
        };
        out.push(PrePrepareMsg::new(view, seq, requests, nondet));
    }
    let _ = cfg;
    (min_s, out)
}

impl<S: Service> Actor for Replica<S> {
    fn on_start(&mut self, ctx: &mut Context<'_>) {
        ctx.set_timer(self.cfg.tick_interval, TOKEN_TICK);
        if let Some(period) = self.cfg.recovery_period {
            // Stagger: replica i first recovers at (i+1)/n of the period.
            let offset = SimDuration::from_nanos(
                period.as_nanos() / self.cfg.n as u64 * (self.id as u64 + 1),
            );
            ctx.set_timer(offset, TOKEN_WATCHDOG);
        }
    }

    fn on_message(&mut self, from: NodeId, payload: &[u8], ctx: &mut Context<'_>) {
        ctx.charge(self.cost.handle);
        let Some((shard, msg)) = Message::from_wire_tagged(payload) else {
            self.stats.rejected_messages += 1;
            return;
        };
        if shard != self.cfg.shard {
            // Another group's traffic on the shared network; its MACs would
            // not verify here anyway, but reject it before any crypto work.
            self.stats.rejected_messages += 1;
            return;
        }
        let _ = from;
        match msg {
            Message::Request(r) => self.handle_request(r, ctx),
            Message::PrePrepare(pp) => self.handle_pre_prepare(pp, ctx),
            Message::Prepare(p) => self.handle_prepare(p, ctx),
            Message::Commit(c) => self.handle_commit(c, ctx),
            Message::Checkpoint(c) => self.handle_checkpoint(c, ctx),
            Message::ViewChange(vc) => self.handle_view_change(vc, ctx),
            Message::NewView(nv) => self.handle_new_view(nv, ctx),
            Message::FetchMeta(m) => self.handle_fetch_meta(m, ctx),
            Message::MetaReply(m) => self.handle_meta_reply(m, ctx),
            Message::FetchObject(m) => self.handle_fetch_object(m, ctx),
            Message::ObjectReply(m) => self.handle_object_reply(m, ctx),
            Message::FetchChunks(m) => self.handle_fetch_chunks(m, ctx),
            Message::ChunksReply(m) => self.handle_chunks_reply(m, ctx),
            Message::FetchFrag(m) => self.handle_fetch_frag(m, ctx),
            Message::FragReply(m) => self.handle_frag_reply(m, ctx),
            Message::FetchCert(m) => self.handle_fetch_cert(m, ctx),
            Message::CertReply(m) => self.handle_cert_reply(m, ctx),
            Message::Status(m) => self.handle_status(m, ctx),
            Message::Reply(_) => {} // Replicas do not process replies.
        }
    }

    fn on_timer(&mut self, token: u64, ctx: &mut Context<'_>) {
        match token {
            TOKEN_TICK => self.on_tick(ctx),
            TOKEN_VIEW_CHANGE => {
                self.vc_timer = None;
                let target = self.view + 1;
                self.move_to_view(target, ctx);
            }
            TOKEN_WATCHDOG => self.on_watchdog(ctx, true),
            _ => {}
        }
    }
}
