//! Protocol messages and their XDR wire format.
//!
//! Every message type carries its authentication inline (a MAC
//! [`Authenticator`], a point [`Mac`], and/or a [`Signature`]). Digests and
//! signatures are computed over the message's *signed portion* — all fields
//! except the authentication itself — prefixed with a per-type domain-
//! separation tag so a digest of one message type can never validate as
//! another.

use base_crypto::{Authenticator, Digest, Mac, Signature};
use base_xdr::{
    decode_vec, encode_vec, from_bytes, to_bytes, XdrDecode, XdrDecoder, XdrEncode, XdrEncoder,
    XdrError,
};
use std::sync::OnceLock;

/// Lazily computed digest, carried alongside the fields it covers.
///
/// The covered fields are construction-only immutable (private, set once
/// by the constructor or the XDR decoder), so a computed digest stays
/// valid for the message's lifetime. The cache is pure memoization: it is
/// never encoded on the wire, compares equal regardless of fill state,
/// and cloning carries the computed value along with the (immutable)
/// fields it was derived from.
#[derive(Default)]
struct DigestCache(OnceLock<Digest>);

impl DigestCache {
    fn get_or_init(&self, compute: impl FnOnce() -> Digest) -> Digest {
        *self.0.get_or_init(compute)
    }
}

impl Clone for DigestCache {
    fn clone(&self) -> Self {
        let c = DigestCache::default();
        if let Some(d) = self.0.get() {
            let _ = c.0.set(*d);
        }
        c
    }
}

impl std::fmt::Debug for DigestCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("DigestCache(..)")
    }
}

impl PartialEq for DigestCache {
    fn eq(&self, _other: &Self) -> bool {
        true
    }
}

impl Eq for DigestCache {}

/// The digest of a *null request batch* (no requests, no non-deterministic
/// values), used by view changes to fill sequence-number gaps.
pub fn null_batch_digest() -> Digest {
    PrePrepareMsg::batch_digest_of(&[], &[])
}

/// A client request.
///
/// The digest-covered fields (`client`, `timestamp`, `read_only`, `op`)
/// are private and set only at construction, which makes the memoized
/// [`RequestMsg::digest`] sound: nothing can change under the cache.
/// `full_replier` and `auth` stay public — neither is digest-covered.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RequestMsg {
    /// Client node id.
    client: u32,
    /// Per-client monotone request number.
    timestamp: u64,
    /// True for the read-only optimization path.
    read_only: bool,
    /// Replica designated to send the *full* result; the others reply
    /// with a digest (the BFT library's reply optimization).
    pub full_replier: u32,
    /// Opaque operation bytes, interpreted by the service.
    op: Vec<u8>,
    /// MAC vector over the request digest, one entry per replica.
    pub auth: Authenticator,
    /// Memoized digest of the signed portion.
    digest_cache: DigestCache,
}

impl RequestMsg {
    /// Builds a request with an empty authenticator (fill `auth` after).
    pub fn new(client: u32, timestamp: u64, read_only: bool, full_replier: u32, op: Vec<u8>) -> Self {
        Self {
            client,
            timestamp,
            read_only,
            full_replier,
            op,
            auth: Authenticator::default(),
            digest_cache: DigestCache::default(),
        }
    }

    /// Client node id.
    pub fn client(&self) -> u32 {
        self.client
    }

    /// Per-client monotone request number.
    pub fn timestamp(&self) -> u64 {
        self.timestamp
    }

    /// True for the read-only optimization path.
    pub fn read_only(&self) -> bool {
        self.read_only
    }

    /// Opaque operation bytes, interpreted by the service.
    pub fn op(&self) -> &[u8] {
        &self.op
    }

    /// Bytes covered by authentication.
    pub fn signed_bytes(&self) -> Vec<u8> {
        let mut enc = XdrEncoder::new();
        enc.put_string("pbft:request");
        enc.put_u32(self.client);
        enc.put_u64(self.timestamp);
        enc.put_bool(self.read_only);
        enc.put_opaque(&self.op);
        enc.finish()
        // `full_replier` is deliberately NOT covered: it is a liveness
        // hint the client may rotate between retransmissions without
        // changing the request's identity.
    }

    /// Digest identifying this request (computed once, then memoized).
    pub fn digest(&self) -> Digest {
        self.digest_cache.get_or_init(|| Digest::of(&self.signed_bytes()))
    }
}

impl XdrEncode for RequestMsg {
    fn encode(&self, enc: &mut XdrEncoder) {
        enc.put_u32(self.client);
        enc.put_u64(self.timestamp);
        enc.put_bool(self.read_only);
        enc.put_u32(self.full_replier);
        enc.put_opaque(&self.op);
        self.auth.encode(enc);
    }
}

impl XdrDecode for RequestMsg {
    fn decode(dec: &mut XdrDecoder<'_>) -> Result<Self, XdrError> {
        Ok(Self {
            client: dec.get_u32()?,
            timestamp: dec.get_u64()?,
            read_only: dec.get_bool()?,
            full_replier: dec.get_u32()?,
            op: dec.get_opaque()?,
            auth: Authenticator::decode(dec)?,
            digest_cache: DigestCache::default(),
        })
    }
}

/// A reply from one replica to a client.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ReplyMsg {
    /// View in which the request executed (tells the client the primary).
    pub view: u64,
    /// Echo of the request timestamp.
    pub timestamp: u64,
    /// Client node id.
    pub client: u32,
    /// Replying replica.
    pub replica: u32,
    /// True if `result` holds only the 32-byte digest of the result (the
    /// reply optimization: one designated replica sends the full result).
    pub digest_only: bool,
    /// True for a read-only reply executed against the last *executed*
    /// state outside agreement; false for a reply to an operation ordered
    /// and committed by the protocol. With the execution stage decoupled
    /// from agreement, committed-but-unexecuted slots may be queued — a
    /// tentative reply tells the client (and the auditors) exactly which
    /// state it reflects.
    pub tentative: bool,
    /// Execution result, or its digest when `digest_only`.
    pub result: Vec<u8>,
    /// Point MAC to the client.
    pub mac: Mac,
}

impl ReplyMsg {
    /// Bytes covered by the MAC.
    pub fn signed_bytes(&self) -> Vec<u8> {
        let mut enc = XdrEncoder::new();
        enc.put_string("pbft:reply");
        enc.put_u64(self.view);
        enc.put_u64(self.timestamp);
        enc.put_u32(self.client);
        enc.put_u32(self.replica);
        enc.put_bool(self.digest_only);
        enc.put_bool(self.tentative);
        enc.put_opaque(&self.result);
        enc.finish()
    }

    /// Digest of the signed portion.
    pub fn digest(&self) -> Digest {
        Digest::of(&self.signed_bytes())
    }
}

impl XdrEncode for ReplyMsg {
    fn encode(&self, enc: &mut XdrEncoder) {
        enc.put_u64(self.view);
        enc.put_u64(self.timestamp);
        enc.put_u32(self.client);
        enc.put_u32(self.replica);
        enc.put_bool(self.digest_only);
        enc.put_bool(self.tentative);
        enc.put_opaque(&self.result);
        self.mac.encode(enc);
    }
}

impl XdrDecode for ReplyMsg {
    fn decode(dec: &mut XdrDecoder<'_>) -> Result<Self, XdrError> {
        Ok(Self {
            view: dec.get_u64()?,
            timestamp: dec.get_u64()?,
            client: dec.get_u32()?,
            replica: dec.get_u32()?,
            digest_only: dec.get_bool()?,
            tentative: dec.get_bool()?,
            result: dec.get_opaque()?,
            mac: Mac::decode(dec)?,
        })
    }
}

/// The primary's ordering proposal for one batch of requests.
///
/// The batch-digest-covered fields (`requests`, `nondet`) are private and
/// set only at construction, which makes the memoized
/// [`PrePrepareMsg::batch_digest`] sound. `view`/`seq` stay public: they
/// are covered by [`PrePrepareMsg::signed_bytes`] (recomputed on demand)
/// but deliberately not by the batch digest.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PrePrepareMsg {
    /// View this proposal belongs to.
    pub view: u64,
    /// Sequence number assigned to the batch.
    pub seq: u64,
    /// The batched requests (piggybacked on the pre-prepare).
    requests: Vec<RequestMsg>,
    /// Non-deterministic values chosen by the primary for this batch
    /// (e.g. the agreed timestamp for NFS mtimes).
    nondet: Vec<u8>,
    /// MAC vector from the primary.
    pub auth: Authenticator,
    /// Primary signature over the header, kept for view-change proofs.
    pub sig: Signature,
    /// Memoized batch digest.
    batch_cache: DigestCache,
}

impl PrePrepareMsg {
    /// Builds a proposal with empty authentication (fill `auth`/`sig`
    /// after).
    pub fn new(view: u64, seq: u64, requests: Vec<RequestMsg>, nondet: Vec<u8>) -> Self {
        Self {
            view,
            seq,
            requests,
            nondet,
            auth: Authenticator::default(),
            sig: Signature::default(),
            batch_cache: DigestCache::default(),
        }
    }

    /// The batched requests (piggybacked on the pre-prepare).
    pub fn requests(&self) -> &[RequestMsg] {
        &self.requests
    }

    /// Non-deterministic values chosen by the primary for this batch.
    pub fn nondet(&self) -> &[u8] {
        &self.nondet
    }

    /// Digest of the request batch + non-deterministic values.
    ///
    /// Deliberately excludes view and sequence number: after a view change
    /// the new primary re-proposes the same batch digest under a new view.
    pub fn batch_digest_of(requests: &[RequestMsg], nondet: &[u8]) -> Digest {
        let mut enc = XdrEncoder::new();
        enc.put_string("pbft:batch");
        enc.put_opaque(nondet);
        enc.put_u32(requests.len() as u32);
        for r in requests {
            r.digest().encode(&mut enc);
        }
        Digest::of(enc.as_bytes())
    }

    /// Digest of the carried batch (computed once, then memoized).
    pub fn batch_digest(&self) -> Digest {
        self.batch_cache
            .get_or_init(|| Self::batch_digest_of(&self.requests, &self.nondet))
    }

    /// Bytes covered by the primary's authentication: view, seq and batch
    /// digest.
    pub fn signed_bytes(&self) -> Vec<u8> {
        header_bytes("pbft:pre-prepare", self.view, self.seq, &self.batch_digest())
    }
}

/// Canonical byte string for (tag, view, seq, digest) headers.
fn header_bytes(tag: &str, view: u64, seq: u64, digest: &Digest) -> Vec<u8> {
    let mut enc = XdrEncoder::new();
    enc.put_string(tag);
    enc.put_u64(view);
    enc.put_u64(seq);
    digest.encode(&mut enc);
    enc.finish()
}

impl XdrEncode for PrePrepareMsg {
    fn encode(&self, enc: &mut XdrEncoder) {
        enc.put_u64(self.view);
        enc.put_u64(self.seq);
        encode_vec(&self.requests, enc);
        enc.put_opaque(&self.nondet);
        self.auth.encode(enc);
        self.sig.encode(enc);
    }
}

impl XdrDecode for PrePrepareMsg {
    fn decode(dec: &mut XdrDecoder<'_>) -> Result<Self, XdrError> {
        Ok(Self {
            view: dec.get_u64()?,
            seq: dec.get_u64()?,
            requests: decode_vec(dec)?,
            nondet: dec.get_opaque()?,
            auth: Authenticator::decode(dec)?,
            sig: Signature::decode(dec)?,
            batch_cache: DigestCache::default(),
        })
    }
}

/// A backup's agreement to the primary's proposal.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PrepareMsg {
    /// View of the proposal.
    pub view: u64,
    /// Sequence number of the proposal.
    pub seq: u64,
    /// Batch digest being prepared.
    pub digest: Digest,
    /// Sending replica.
    pub replica: u32,
    /// MAC vector.
    pub auth: Authenticator,
    /// Signature, kept for view-change proofs.
    pub sig: Signature,
}

impl PrepareMsg {
    /// Bytes covered by authentication.
    pub fn signed_bytes(&self) -> Vec<u8> {
        let mut enc = XdrEncoder::new();
        enc.put_raw(&header_bytes("pbft:prepare", self.view, self.seq, &self.digest));
        enc.put_u32(self.replica);
        enc.finish()
    }
}

impl XdrEncode for PrepareMsg {
    fn encode(&self, enc: &mut XdrEncoder) {
        enc.put_u64(self.view);
        enc.put_u64(self.seq);
        self.digest.encode(enc);
        enc.put_u32(self.replica);
        self.auth.encode(enc);
        self.sig.encode(enc);
    }
}

impl XdrDecode for PrepareMsg {
    fn decode(dec: &mut XdrDecoder<'_>) -> Result<Self, XdrError> {
        Ok(Self {
            view: dec.get_u64()?,
            seq: dec.get_u64()?,
            digest: Digest::decode(dec)?,
            replica: dec.get_u32()?,
            auth: Authenticator::decode(dec)?,
            sig: Signature::decode(dec)?,
        })
    }
}

/// A replica's commitment to a prepared proposal.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CommitMsg {
    /// View of the proposal.
    pub view: u64,
    /// Sequence number of the proposal.
    pub seq: u64,
    /// Batch digest being committed.
    pub digest: Digest,
    /// Sending replica.
    pub replica: u32,
    /// MAC vector.
    pub auth: Authenticator,
}

impl CommitMsg {
    /// Bytes covered by authentication.
    pub fn signed_bytes(&self) -> Vec<u8> {
        let mut enc = XdrEncoder::new();
        enc.put_raw(&header_bytes("pbft:commit", self.view, self.seq, &self.digest));
        enc.put_u32(self.replica);
        enc.finish()
    }
}

impl XdrEncode for CommitMsg {
    fn encode(&self, enc: &mut XdrEncoder) {
        enc.put_u64(self.view);
        enc.put_u64(self.seq);
        self.digest.encode(enc);
        enc.put_u32(self.replica);
        self.auth.encode(enc);
    }
}

impl XdrDecode for CommitMsg {
    fn decode(dec: &mut XdrDecoder<'_>) -> Result<Self, XdrError> {
        Ok(Self {
            view: dec.get_u64()?,
            seq: dec.get_u64()?,
            digest: Digest::decode(dec)?,
            replica: dec.get_u32()?,
            auth: Authenticator::decode(dec)?,
        })
    }
}

/// A replica's announcement that it took a checkpoint.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CheckpointMsg {
    /// Sequence number of the checkpoint.
    pub seq: u64,
    /// Root digest of the (abstract) state at `seq`.
    pub digest: Digest,
    /// Sending replica.
    pub replica: u32,
    /// Signature (checkpoint certificates must be transferable).
    pub sig: Signature,
}

impl CheckpointMsg {
    /// Bytes covered by the signature.
    pub fn signed_bytes(&self) -> Vec<u8> {
        let mut enc = XdrEncoder::new();
        enc.put_string("pbft:checkpoint");
        enc.put_u64(self.seq);
        self.digest.encode(&mut enc);
        enc.put_u32(self.replica);
        enc.finish()
    }
}

impl XdrEncode for CheckpointMsg {
    fn encode(&self, enc: &mut XdrEncoder) {
        enc.put_u64(self.seq);
        self.digest.encode(enc);
        enc.put_u32(self.replica);
        self.sig.encode(enc);
    }
}

impl XdrDecode for CheckpointMsg {
    fn decode(dec: &mut XdrDecoder<'_>) -> Result<Self, XdrError> {
        Ok(Self {
            seq: dec.get_u64()?,
            digest: Digest::decode(dec)?,
            replica: dec.get_u32()?,
            sig: Signature::decode(dec)?,
        })
    }
}

/// Proof that a request prepared at the sender: the pre-prepare plus `2f`
/// signed prepares from distinct backups.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PreparedProof {
    /// The pre-prepare (carries the request bodies, so a new primary can
    /// re-propose them).
    pub pre_prepare: PrePrepareMsg,
    /// Matching prepares.
    pub prepares: Vec<PrepareMsg>,
}

impl XdrEncode for PreparedProof {
    fn encode(&self, enc: &mut XdrEncoder) {
        self.pre_prepare.encode(enc);
        encode_vec(&self.prepares, enc);
    }
}

impl XdrDecode for PreparedProof {
    fn decode(dec: &mut XdrDecoder<'_>) -> Result<Self, XdrError> {
        Ok(Self { pre_prepare: PrePrepareMsg::decode(dec)?, prepares: decode_vec(dec)? })
    }
}

/// A replica's vote to move to a new view.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ViewChangeMsg {
    /// The view being proposed.
    pub new_view: u64,
    /// The sender's last stable checkpoint.
    pub stable_seq: u64,
    /// Digest of the stable checkpoint.
    pub stable_digest: Digest,
    /// 2f+1 signed checkpoint messages proving the stable checkpoint.
    /// Empty when `stable_seq` is 0 (the genesis state needs no proof).
    pub stable_proof: Vec<CheckpointMsg>,
    /// Prepared certificates for requests above `stable_seq`.
    pub prepared: Vec<PreparedProof>,
    /// Sending replica.
    pub replica: u32,
    /// Signature.
    pub sig: Signature,
}

impl ViewChangeMsg {
    /// Bytes covered by the signature.
    pub fn signed_bytes(&self) -> Vec<u8> {
        let mut enc = XdrEncoder::new();
        enc.put_string("pbft:view-change");
        enc.put_u64(self.new_view);
        enc.put_u64(self.stable_seq);
        self.stable_digest.encode(&mut enc);
        // Bind the P-set by content: (seq, view, batch digest) triples.
        enc.put_u32(self.prepared.len() as u32);
        for p in &self.prepared {
            enc.put_u64(p.pre_prepare.seq);
            enc.put_u64(p.pre_prepare.view);
            p.pre_prepare.batch_digest().encode(&mut enc);
        }
        enc.put_u32(self.replica);
        enc.finish()
    }

    /// Digest identifying this view-change message.
    pub fn digest(&self) -> Digest {
        Digest::of(&self.signed_bytes())
    }
}

impl XdrEncode for ViewChangeMsg {
    fn encode(&self, enc: &mut XdrEncoder) {
        enc.put_u64(self.new_view);
        enc.put_u64(self.stable_seq);
        self.stable_digest.encode(enc);
        encode_vec(&self.stable_proof, enc);
        encode_vec(&self.prepared, enc);
        enc.put_u32(self.replica);
        self.sig.encode(enc);
    }
}

impl XdrDecode for ViewChangeMsg {
    fn decode(dec: &mut XdrDecoder<'_>) -> Result<Self, XdrError> {
        Ok(Self {
            new_view: dec.get_u64()?,
            stable_seq: dec.get_u64()?,
            stable_digest: Digest::decode(dec)?,
            stable_proof: decode_vec(dec)?,
            prepared: decode_vec(dec)?,
            replica: dec.get_u32()?,
            sig: Signature::decode(dec)?,
        })
    }
}

/// The new primary's announcement of a view, carrying the 2f+1 view-change
/// messages from which every replica deterministically recomputes the
/// re-proposed pre-prepares.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct NewViewMsg {
    /// The view being started.
    pub view: u64,
    /// 2f+1 valid view-change messages.
    pub view_changes: Vec<ViewChangeMsg>,
    /// The re-proposed pre-prepares (the set `O`). Every replica recomputes
    /// `O` from `view_changes` and verifies this list matches; carrying the
    /// signed pre-prepares lets them serve in later prepared-certificate
    /// proofs.
    pub pre_prepares: Vec<PrePrepareMsg>,
    /// Sending replica (the new primary).
    pub replica: u32,
    /// Signature.
    pub sig: Signature,
}

impl NewViewMsg {
    /// Bytes covered by the signature.
    pub fn signed_bytes(&self) -> Vec<u8> {
        let mut enc = XdrEncoder::new();
        enc.put_string("pbft:new-view");
        enc.put_u64(self.view);
        enc.put_u32(self.view_changes.len() as u32);
        for vc in &self.view_changes {
            vc.digest().encode(&mut enc);
        }
        enc.put_u32(self.pre_prepares.len() as u32);
        for pp in &self.pre_prepares {
            enc.put_u64(pp.seq);
            pp.batch_digest().encode(&mut enc);
        }
        enc.put_u32(self.replica);
        enc.finish()
    }
}

impl XdrEncode for NewViewMsg {
    fn encode(&self, enc: &mut XdrEncoder) {
        enc.put_u64(self.view);
        encode_vec(&self.view_changes, enc);
        encode_vec(&self.pre_prepares, enc);
        enc.put_u32(self.replica);
        self.sig.encode(enc);
    }
}

impl XdrDecode for NewViewMsg {
    fn decode(dec: &mut XdrDecoder<'_>) -> Result<Self, XdrError> {
        Ok(Self {
            view: dec.get_u64()?,
            view_changes: decode_vec(dec)?,
            pre_prepares: decode_vec(dec)?,
            replica: dec.get_u32()?,
            sig: Signature::decode(dec)?,
        })
    }
}

/// State-transfer request for the children digests of one partition-tree
/// node of a checkpoint.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FetchMetaMsg {
    /// Checkpoint sequence number.
    pub seq: u64,
    /// Tree level (root = tree depth, leaves = 0).
    pub level: u32,
    /// Node index within the level.
    pub index: u64,
    /// Requesting replica.
    pub replica: u32,
}

impl XdrEncode for FetchMetaMsg {
    fn encode(&self, enc: &mut XdrEncoder) {
        enc.put_u64(self.seq);
        enc.put_u32(self.level);
        enc.put_u64(self.index);
        enc.put_u32(self.replica);
    }
}

impl XdrDecode for FetchMetaMsg {
    fn decode(dec: &mut XdrDecoder<'_>) -> Result<Self, XdrError> {
        Ok(Self {
            seq: dec.get_u64()?,
            level: dec.get_u32()?,
            index: dec.get_u64()?,
            replica: dec.get_u32()?,
        })
    }
}

/// Reply to [`FetchMetaMsg`]: digests of the node's children. Verified by
/// hashing, so it needs no authentication.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MetaReplyMsg {
    /// Checkpoint sequence number.
    pub seq: u64,
    /// Tree level of the parent node.
    pub level: u32,
    /// Parent node index.
    pub index: u64,
    /// Child digests, in child order.
    pub digests: Vec<Digest>,
    /// Replying replica.
    pub replica: u32,
}

impl XdrEncode for MetaReplyMsg {
    fn encode(&self, enc: &mut XdrEncoder) {
        enc.put_u64(self.seq);
        enc.put_u32(self.level);
        enc.put_u64(self.index);
        encode_vec(&self.digests, enc);
        enc.put_u32(self.replica);
    }
}

impl XdrDecode for MetaReplyMsg {
    fn decode(dec: &mut XdrDecoder<'_>) -> Result<Self, XdrError> {
        Ok(Self {
            seq: dec.get_u64()?,
            level: dec.get_u32()?,
            index: dec.get_u64()?,
            digests: decode_vec(dec)?,
            replica: dec.get_u32()?,
        })
    }
}

/// State-transfer request for the value of one abstract object.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FetchObjectMsg {
    /// Checkpoint sequence number.
    pub seq: u64,
    /// Object (leaf) index.
    pub index: u64,
    /// Requesting replica.
    pub replica: u32,
}

impl XdrEncode for FetchObjectMsg {
    fn encode(&self, enc: &mut XdrEncoder) {
        enc.put_u64(self.seq);
        enc.put_u64(self.index);
        enc.put_u32(self.replica);
    }
}

impl XdrDecode for FetchObjectMsg {
    fn decode(dec: &mut XdrDecoder<'_>) -> Result<Self, XdrError> {
        Ok(Self { seq: dec.get_u64()?, index: dec.get_u64()?, replica: dec.get_u32()? })
    }
}

/// Reply to [`FetchObjectMsg`]: the object value, verified by hashing.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ObjectReplyMsg {
    /// Checkpoint sequence number.
    pub seq: u64,
    /// Object (leaf) index.
    pub index: u64,
    /// Object value.
    pub data: Vec<u8>,
    /// Replying replica.
    pub replica: u32,
}

impl XdrEncode for ObjectReplyMsg {
    fn encode(&self, enc: &mut XdrEncoder) {
        enc.put_u64(self.seq);
        enc.put_u64(self.index);
        enc.put_opaque(&self.data);
        enc.put_u32(self.replica);
    }
}

impl XdrDecode for ObjectReplyMsg {
    fn decode(dec: &mut XdrDecoder<'_>) -> Result<Self, XdrError> {
        Ok(Self {
            seq: dec.get_u64()?,
            index: dec.get_u64()?,
            data: dec.get_opaque()?,
            replica: dec.get_u32()?,
        })
    }
}

/// Coded state transfer: request for the chunk-digest list of one object
/// in a checkpoint. The reply verifies against the object's (chunked) leaf
/// digest, after which individual chunks can be fetched as erasure-coded
/// fragments and verified one by one.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FetchChunksMsg {
    /// Checkpoint sequence number.
    pub seq: u64,
    /// Object (leaf) index.
    pub index: u64,
    /// Requesting replica.
    pub replica: u32,
}

impl XdrEncode for FetchChunksMsg {
    fn encode(&self, enc: &mut XdrEncoder) {
        enc.put_u64(self.seq);
        enc.put_u64(self.index);
        enc.put_u32(self.replica);
    }
}

impl XdrDecode for FetchChunksMsg {
    fn decode(dec: &mut XdrDecoder<'_>) -> Result<Self, XdrError> {
        Ok(Self { seq: dec.get_u64()?, index: dec.get_u64()?, replica: dec.get_u32()? })
    }
}

/// Reply to [`FetchChunksMsg`]: the object's length and per-chunk digests.
/// Verified by folding into the chunked leaf digest, so it needs no
/// authentication; `len` is thereby as trustworthy as the digests.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ChunksReplyMsg {
    /// Checkpoint sequence number.
    pub seq: u64,
    /// Object (leaf) index.
    pub index: u64,
    /// Object length in bytes.
    pub len: u64,
    /// Per-chunk digests, in chunk order.
    pub digests: Vec<Digest>,
    /// Replying replica.
    pub replica: u32,
}

impl XdrEncode for ChunksReplyMsg {
    fn encode(&self, enc: &mut XdrEncoder) {
        enc.put_u64(self.seq);
        enc.put_u64(self.index);
        enc.put_u64(self.len);
        encode_vec(&self.digests, enc);
        enc.put_u32(self.replica);
    }
}

impl XdrDecode for ChunksReplyMsg {
    fn decode(dec: &mut XdrDecoder<'_>) -> Result<Self, XdrError> {
        Ok(Self {
            seq: dec.get_u64()?,
            index: dec.get_u64()?,
            len: dec.get_u64()?,
            digests: decode_vec(dec)?,
            replica: dec.get_u32()?,
        })
    }
}

/// Coded state transfer: request for one Reed–Solomon fragment of a chunk
/// (or of a whole object when `chunk` is [`CHUNK_WHOLE`](crate::transfer::CHUNK_WHOLE)).
/// Fragment ids `0..k` are systematic data fragments; `k..k+m` are parity.
/// `k = f + 1` and `m = f` are derived from the group configuration, not
/// carried on the wire.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FetchFragMsg {
    /// Checkpoint sequence number.
    pub seq: u64,
    /// Object (leaf) index.
    pub index: u64,
    /// Chunk number within the object, or `u32::MAX` for the whole object.
    pub chunk: u32,
    /// Fragment id (`0..k` data, `k..k+m` parity).
    pub frag: u32,
    /// Requesting replica.
    pub replica: u32,
}

impl XdrEncode for FetchFragMsg {
    fn encode(&self, enc: &mut XdrEncoder) {
        enc.put_u64(self.seq);
        enc.put_u64(self.index);
        enc.put_u32(self.chunk);
        enc.put_u32(self.frag);
        enc.put_u32(self.replica);
    }
}

impl XdrDecode for FetchFragMsg {
    fn decode(dec: &mut XdrDecoder<'_>) -> Result<Self, XdrError> {
        Ok(Self {
            seq: dec.get_u64()?,
            index: dec.get_u64()?,
            chunk: dec.get_u32()?,
            frag: dec.get_u32()?,
            replica: dec.get_u32()?,
        })
    }
}

/// Reply to [`FetchFragMsg`]: one fragment of the (chunk's) bytes. `len` is
/// the *unfragmented* length, which fixes the fragment geometry; it is
/// validated against the verified chunk list (chunked mode) or treated as a
/// candidate to be confirmed by digest check after reassembly (whole-object
/// mode).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FragReplyMsg {
    /// Checkpoint sequence number.
    pub seq: u64,
    /// Object (leaf) index.
    pub index: u64,
    /// Chunk number within the object, or `u32::MAX` for the whole object.
    pub chunk: u32,
    /// Fragment id.
    pub frag: u32,
    /// Length in bytes of the unfragmented chunk/object.
    pub len: u64,
    /// Fragment bytes (`fragment_len(len, k)` of them).
    pub data: Vec<u8>,
    /// Replying replica.
    pub replica: u32,
}

impl XdrEncode for FragReplyMsg {
    fn encode(&self, enc: &mut XdrEncoder) {
        enc.put_u64(self.seq);
        enc.put_u64(self.index);
        enc.put_u32(self.chunk);
        enc.put_u32(self.frag);
        enc.put_u64(self.len);
        enc.put_opaque(&self.data);
        enc.put_u32(self.replica);
    }
}

impl XdrDecode for FragReplyMsg {
    fn decode(dec: &mut XdrDecoder<'_>) -> Result<Self, XdrError> {
        Ok(Self {
            seq: dec.get_u64()?,
            index: dec.get_u64()?,
            chunk: dec.get_u32()?,
            frag: dec.get_u32()?,
            len: dec.get_u64()?,
            data: dec.get_opaque()?,
            replica: dec.get_u32()?,
        })
    }
}

/// Periodic status report (PBFT's status messages, simplified): lets peers
/// detect that this replica is missing messages and retransmit them.
/// Unauthenticated by design — a forged status can only trigger bounded
/// retransmission of messages that are themselves authenticated.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StatusMsg {
    /// Sender's current view.
    pub view: u64,
    /// Sender's last executed sequence number.
    pub last_exec: u64,
    /// Sender's last stable checkpoint.
    pub stable_seq: u64,
    /// Sending replica.
    pub replica: u32,
}

impl XdrEncode for StatusMsg {
    fn encode(&self, enc: &mut XdrEncoder) {
        enc.put_u64(self.view);
        enc.put_u64(self.last_exec);
        enc.put_u64(self.stable_seq);
        enc.put_u32(self.replica);
    }
}

impl XdrDecode for StatusMsg {
    fn decode(dec: &mut XdrDecoder<'_>) -> Result<Self, XdrError> {
        Ok(Self {
            view: dec.get_u64()?,
            last_exec: dec.get_u64()?,
            stable_seq: dec.get_u64()?,
            replica: dec.get_u32()?,
        })
    }
}

/// Request for the latest stable checkpoint certificate (sent by lagging
/// or recovering replicas).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FetchCertMsg {
    /// Requesting replica.
    pub replica: u32,
}

impl XdrEncode for FetchCertMsg {
    fn encode(&self, enc: &mut XdrEncoder) {
        enc.put_u32(self.replica);
    }
}

impl XdrDecode for FetchCertMsg {
    fn decode(dec: &mut XdrDecoder<'_>) -> Result<Self, XdrError> {
        Ok(Self { replica: dec.get_u32()? })
    }
}

/// Reply to [`FetchCertMsg`]: 2f+1 signed checkpoint messages for the
/// sender's latest stable checkpoint.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CertReplyMsg {
    /// The checkpoint certificate.
    pub msgs: Vec<CheckpointMsg>,
    /// Replying replica.
    pub replica: u32,
}

impl XdrEncode for CertReplyMsg {
    fn encode(&self, enc: &mut XdrEncoder) {
        encode_vec(&self.msgs, enc);
        enc.put_u32(self.replica);
    }
}

impl XdrDecode for CertReplyMsg {
    fn decode(dec: &mut XdrDecoder<'_>) -> Result<Self, XdrError> {
        Ok(Self { msgs: decode_vec(dec)?, replica: dec.get_u32()? })
    }
}

/// Top-level message envelope.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Message {
    /// Client request.
    Request(RequestMsg),
    /// Replica reply to a client.
    Reply(ReplyMsg),
    /// Primary ordering proposal.
    PrePrepare(PrePrepareMsg),
    /// Backup agreement.
    Prepare(PrepareMsg),
    /// Commit vote.
    Commit(CommitMsg),
    /// Checkpoint announcement.
    Checkpoint(CheckpointMsg),
    /// View-change vote.
    ViewChange(ViewChangeMsg),
    /// New-view announcement.
    NewView(NewViewMsg),
    /// State transfer: fetch partition metadata.
    FetchMeta(FetchMetaMsg),
    /// State transfer: partition metadata reply.
    MetaReply(MetaReplyMsg),
    /// State transfer: fetch object value.
    FetchObject(FetchObjectMsg),
    /// State transfer: object value reply.
    ObjectReply(ObjectReplyMsg),
    /// Fetch latest stable checkpoint certificate.
    FetchCert(FetchCertMsg),
    /// Checkpoint certificate reply.
    CertReply(CertReplyMsg),
    /// Periodic status report.
    Status(StatusMsg),
    /// Coded state transfer: fetch an object's chunk-digest list.
    FetchChunks(FetchChunksMsg),
    /// Coded state transfer: chunk-digest list reply.
    ChunksReply(ChunksReplyMsg),
    /// Coded state transfer: fetch one erasure-coded fragment.
    FetchFrag(FetchFragMsg),
    /// Coded state transfer: fragment reply.
    FragReply(FragReplyMsg),
}

/// Envelope discriminant for shard-tagged messages. Chosen just past the
/// last [`Message`] variant tag, so a plain (shard-0) message can never be
/// mistaken for an envelope and vice versa.
pub const SHARD_ENVELOPE_TAG: u32 = 19;

impl Message {
    /// Encodes to wire bytes.
    pub fn to_wire(&self) -> Vec<u8> {
        to_bytes(self)
    }

    /// Decodes from wire bytes; `None` on any malformed input (Byzantine
    /// senders can produce arbitrary bytes).
    pub fn from_wire(bytes: &[u8]) -> Option<Message> {
        from_bytes(bytes).ok()
    }

    /// Encodes to wire bytes carrying the sender's shard identity. Shard 0
    /// emits the plain unsharded encoding — byte-identical to
    /// [`Message::to_wire`] — so single-group deployments never pay for (or
    /// reveal) the envelope; other shards prefix
    /// `[SHARD_ENVELOPE_TAG, shard]` ahead of the plain encoding.
    pub fn to_wire_tagged(&self, shard: u32) -> Vec<u8> {
        if shard == 0 {
            return self.to_wire();
        }
        let mut enc = XdrEncoder::new();
        enc.put_u32(SHARD_ENVELOPE_TAG);
        enc.put_u32(shard);
        self.encode(&mut enc);
        enc.finish()
    }

    /// Decodes wire bytes that may carry a shard envelope, returning the
    /// sender's shard alongside the message. Plain (unprefixed) messages
    /// decode as shard 0; the envelope's `shard` field is forbidden from
    /// claiming 0 (shard 0 always sends plain bytes), so every encoding
    /// has exactly one parse.
    pub fn from_wire_tagged(bytes: &[u8]) -> Option<(u32, Message)> {
        let mut dec = XdrDecoder::new(bytes);
        if dec.get_u32().ok()? == SHARD_ENVELOPE_TAG {
            let shard = dec.get_u32().ok()?;
            if shard == 0 {
                return None;
            }
            let msg = Message::decode(&mut dec).ok()?;
            dec.finish().ok()?;
            return Some((shard, msg));
        }
        Some((0, Message::from_wire(bytes)?))
    }

    /// Short name for tracing.
    pub fn kind(&self) -> &'static str {
        match self {
            Message::Request(_) => "request",
            Message::Reply(_) => "reply",
            Message::PrePrepare(_) => "pre-prepare",
            Message::Prepare(_) => "prepare",
            Message::Commit(_) => "commit",
            Message::Checkpoint(_) => "checkpoint",
            Message::ViewChange(_) => "view-change",
            Message::NewView(_) => "new-view",
            Message::FetchMeta(_) => "fetch-meta",
            Message::MetaReply(_) => "meta-reply",
            Message::FetchObject(_) => "fetch-object",
            Message::ObjectReply(_) => "object-reply",
            Message::FetchCert(_) => "fetch-cert",
            Message::CertReply(_) => "cert-reply",
            Message::Status(_) => "status",
            Message::FetchChunks(_) => "fetch-chunks",
            Message::ChunksReply(_) => "chunks-reply",
            Message::FetchFrag(_) => "fetch-frag",
            Message::FragReply(_) => "frag-reply",
        }
    }
}

impl XdrEncode for Message {
    fn encode(&self, enc: &mut XdrEncoder) {
        match self {
            Message::Request(m) => {
                enc.put_u32(0);
                m.encode(enc);
            }
            Message::Reply(m) => {
                enc.put_u32(1);
                m.encode(enc);
            }
            Message::PrePrepare(m) => {
                enc.put_u32(2);
                m.encode(enc);
            }
            Message::Prepare(m) => {
                enc.put_u32(3);
                m.encode(enc);
            }
            Message::Commit(m) => {
                enc.put_u32(4);
                m.encode(enc);
            }
            Message::Checkpoint(m) => {
                enc.put_u32(5);
                m.encode(enc);
            }
            Message::ViewChange(m) => {
                enc.put_u32(6);
                m.encode(enc);
            }
            Message::NewView(m) => {
                enc.put_u32(7);
                m.encode(enc);
            }
            Message::FetchMeta(m) => {
                enc.put_u32(8);
                m.encode(enc);
            }
            Message::MetaReply(m) => {
                enc.put_u32(9);
                m.encode(enc);
            }
            Message::FetchObject(m) => {
                enc.put_u32(10);
                m.encode(enc);
            }
            Message::ObjectReply(m) => {
                enc.put_u32(11);
                m.encode(enc);
            }
            Message::FetchCert(m) => {
                enc.put_u32(12);
                m.encode(enc);
            }
            Message::CertReply(m) => {
                enc.put_u32(13);
                m.encode(enc);
            }
            Message::Status(m) => {
                enc.put_u32(14);
                m.encode(enc);
            }
            Message::FetchChunks(m) => {
                enc.put_u32(15);
                m.encode(enc);
            }
            Message::ChunksReply(m) => {
                enc.put_u32(16);
                m.encode(enc);
            }
            Message::FetchFrag(m) => {
                enc.put_u32(17);
                m.encode(enc);
            }
            Message::FragReply(m) => {
                enc.put_u32(18);
                m.encode(enc);
            }
        }
    }
}

impl XdrDecode for Message {
    fn decode(dec: &mut XdrDecoder<'_>) -> Result<Self, XdrError> {
        let tag = dec.get_u32()?;
        Ok(match tag {
            0 => Message::Request(RequestMsg::decode(dec)?),
            1 => Message::Reply(ReplyMsg::decode(dec)?),
            2 => Message::PrePrepare(PrePrepareMsg::decode(dec)?),
            3 => Message::Prepare(PrepareMsg::decode(dec)?),
            4 => Message::Commit(CommitMsg::decode(dec)?),
            5 => Message::Checkpoint(CheckpointMsg::decode(dec)?),
            6 => Message::ViewChange(ViewChangeMsg::decode(dec)?),
            7 => Message::NewView(NewViewMsg::decode(dec)?),
            8 => Message::FetchMeta(FetchMetaMsg::decode(dec)?),
            9 => Message::MetaReply(MetaReplyMsg::decode(dec)?),
            10 => Message::FetchObject(FetchObjectMsg::decode(dec)?),
            11 => Message::ObjectReply(ObjectReplyMsg::decode(dec)?),
            12 => Message::FetchCert(FetchCertMsg::decode(dec)?),
            13 => Message::CertReply(CertReplyMsg::decode(dec)?),
            14 => Message::Status(StatusMsg::decode(dec)?),
            15 => Message::FetchChunks(FetchChunksMsg::decode(dec)?),
            16 => Message::ChunksReply(ChunksReplyMsg::decode(dec)?),
            17 => Message::FetchFrag(FetchFragMsg::decode(dec)?),
            18 => Message::FragReply(FragReplyMsg::decode(dec)?),
            v => {
                return Err(XdrError::InvalidDiscriminant { type_name: "Message", value: v })
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use base_crypto::{KeyDirectory, NodeKeys};

    fn keys() -> NodeKeys {
        NodeKeys::new(KeyDirectory::generate(5, 1), 0)
    }

    fn sample_request(k: &NodeKeys) -> RequestMsg {
        let mut r = RequestMsg::new(4, 9, false, 0, b"op-bytes".to_vec());
        r.auth = Authenticator::generate(k, 4, &r.digest());
        r
    }

    #[test]
    fn request_round_trip() {
        let r = sample_request(&keys());
        let m = Message::Request(r.clone());
        let decoded = Message::from_wire(&m.to_wire()).unwrap();
        assert_eq!(decoded, m);
    }

    #[test]
    fn shard_zero_tagged_encoding_is_plain() {
        let m = Message::Request(sample_request(&keys()));
        assert_eq!(m.to_wire_tagged(0), m.to_wire());
        assert_eq!(Message::from_wire_tagged(&m.to_wire()), Some((0, m.clone())));
    }

    #[test]
    fn shard_envelope_round_trips_and_is_unambiguous() {
        let m = Message::Request(sample_request(&keys()));
        let tagged = m.to_wire_tagged(3);
        assert_ne!(tagged, m.to_wire());
        assert_eq!(Message::from_wire_tagged(&tagged), Some((3, m.clone())));
        // A tagged frame is not a valid plain message, and an envelope
        // claiming shard 0 (which always sends plain bytes) is rejected,
        // so every byte string has at most one parse.
        assert_eq!(Message::from_wire(&tagged), None);
        let mut forged = XdrEncoder::new();
        forged.put_u32(SHARD_ENVELOPE_TAG);
        forged.put_u32(0);
        m.encode(&mut forged);
        assert_eq!(Message::from_wire_tagged(&forged.finish()), None);
        // Trailing bytes after the enveloped message are rejected just
        // like the plain decoder rejects them.
        let mut trailing = m.to_wire_tagged(3);
        trailing.push(0);
        assert_eq!(Message::from_wire_tagged(&trailing), None);
    }

    #[test]
    fn digest_ignores_auth() {
        let k = keys();
        let mut r = sample_request(&k);
        let d1 = r.digest();
        r.auth.corrupt();
        assert_eq!(r.digest(), d1);
    }

    #[test]
    fn batch_digest_excludes_view_and_seq() {
        let k = keys();
        let r = sample_request(&k);
        let make = |view, seq| PrePrepareMsg::new(view, seq, vec![r.clone()], b"nd".to_vec());
        assert_eq!(make(0, 5).batch_digest(), make(3, 9).batch_digest());
    }

    #[test]
    fn batch_digest_depends_on_requests_and_nondet() {
        let k = keys();
        let r = sample_request(&k);
        let d1 = PrePrepareMsg::batch_digest_of(std::slice::from_ref(&r), b"a");
        let d2 = PrePrepareMsg::batch_digest_of(std::slice::from_ref(&r), b"b");
        let d3 = PrePrepareMsg::batch_digest_of(&[], b"a");
        assert_ne!(d1, d2);
        assert_ne!(d1, d3);
    }

    #[test]
    fn all_message_kinds_round_trip() {
        let k = keys();
        let r = sample_request(&k);
        let pp = {
            let mut pp = PrePrepareMsg::new(1, 2, vec![r.clone()], vec![1, 2]);
            pp.auth = Authenticator::generate(&k, 4, &Digest::of(b"x"));
            pp.sig = k.sign(b"pp");
            pp
        };
        let prepare = PrepareMsg {
            view: 1,
            seq: 2,
            digest: pp.batch_digest(),
            replica: 1,
            auth: Authenticator::generate(&k, 4, &Digest::of(b"y")),
            sig: k.sign(b"p"),
        };
        let commit = CommitMsg {
            view: 1,
            seq: 2,
            digest: pp.batch_digest(),
            replica: 1,
            auth: Authenticator::generate(&k, 4, &Digest::of(b"z")),
        };
        let ckpt = CheckpointMsg { seq: 128, digest: Digest::of(b"s"), replica: 2, sig: k.sign(b"c") };
        let vc = ViewChangeMsg {
            new_view: 2,
            stable_seq: 128,
            stable_digest: Digest::of(b"s"),
            stable_proof: vec![ckpt.clone()],
            prepared: vec![PreparedProof { pre_prepare: pp.clone(), prepares: vec![prepare.clone()] }],
            replica: 0,
            sig: k.sign(b"vc"),
        };
        let nv = NewViewMsg {
            view: 2,
            view_changes: vec![vc.clone()],
            pre_prepares: vec![pp.clone()],
            replica: 2,
            sig: k.sign(b"nv"),
        };

        let msgs = vec![
            Message::Request(r),
            Message::Reply(ReplyMsg {
                view: 1,
                timestamp: 9,
                client: 4,
                replica: 0,
                digest_only: false,
                tentative: true,
                result: b"res".to_vec(),
                mac: Authenticator::point(&k, 4, &Digest::of(b"r")),
            }),
            Message::PrePrepare(pp),
            Message::Prepare(prepare),
            Message::Commit(commit),
            Message::Checkpoint(ckpt.clone()),
            Message::ViewChange(vc),
            Message::NewView(nv),
            Message::FetchMeta(FetchMetaMsg { seq: 128, level: 2, index: 3, replica: 1 }),
            Message::MetaReply(MetaReplyMsg {
                seq: 128,
                level: 2,
                index: 3,
                digests: vec![Digest::of(b"a"), Digest::of(b"b")],
                replica: 1,
            }),
            Message::FetchObject(FetchObjectMsg { seq: 128, index: 7, replica: 1 }),
            Message::ObjectReply(ObjectReplyMsg { seq: 128, index: 7, data: vec![9; 100], replica: 1 }),
            Message::FetchCert(FetchCertMsg { replica: 3 }),
            Message::CertReply(CertReplyMsg { msgs: vec![ckpt], replica: 3 }),
            Message::FetchChunks(FetchChunksMsg { seq: 128, index: 7, replica: 1 }),
            Message::ChunksReply(ChunksReplyMsg {
                seq: 128,
                index: 7,
                len: 5000,
                digests: vec![Digest::of(b"c0"), Digest::of(b"c1")],
                replica: 1,
            }),
            Message::FetchFrag(FetchFragMsg { seq: 128, index: 7, chunk: 1, frag: 2, replica: 1 }),
            Message::FragReply(FragReplyMsg {
                seq: 128,
                index: 7,
                chunk: u32::MAX,
                frag: 0,
                len: 300,
                data: vec![5; 100],
                replica: 1,
            }),
        ];
        for m in msgs {
            let decoded = Message::from_wire(&m.to_wire()).unwrap_or_else(|| panic!("{}", m.kind()));
            assert_eq!(decoded, m, "{}", m.kind());
        }
    }

    #[test]
    fn malformed_wire_bytes_are_rejected() {
        assert!(Message::from_wire(&[]).is_none());
        assert!(Message::from_wire(&[0, 0, 0, 99]).is_none());
        let mut good = Message::FetchCert(FetchCertMsg { replica: 1 }).to_wire();
        good.push(0);
        assert!(Message::from_wire(&good).is_none(), "trailing bytes must be rejected");
    }

    #[test]
    fn view_change_digest_binds_pset() {
        let k = keys();
        let r = sample_request(&k);
        let pp = PrePrepareMsg::new(0, 2, vec![r], vec![]);
        let mut vc = ViewChangeMsg {
            new_view: 1,
            stable_seq: 0,
            stable_digest: Digest::ZERO,
            stable_proof: vec![],
            prepared: vec![],
            replica: 0,
            sig: Signature([0; 32]),
        };
        let d_empty = vc.digest();
        vc.prepared.push(PreparedProof { pre_prepare: pp, prepares: vec![] });
        assert_ne!(vc.digest(), d_empty);
    }
}
