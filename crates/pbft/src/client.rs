//! The PBFT client: `invoke` semantics, reply quorum matching,
//! retransmission, and the read-only optimization.

use crate::config::Config;
use crate::cost::CostModel;
use crate::messages::{Message, ReplyMsg, RequestMsg};
use base_crypto::{Authenticator, NodeKeys};
use base_simnet::{
    Actor, Context, MetricsRegistry, NodeId, Payload, ProtocolEvent, RttEstimator, SimDuration,
    TimerId,
};
use std::collections::{HashMap, HashSet, VecDeque};

/// Timer token used by the embedded client core (high bit set so embedding
/// actors can use low token values freely).
pub const TOKEN_CLIENT_RETRANS: u64 = 1 << 63;
/// Timer token for the [`ClientActor`] pump.
const TOKEN_PUMP: u64 = (1 << 63) | 1;

/// A completed invocation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClientEvent {
    /// The operation with this timestamp completed with this result.
    Completed {
        /// Request timestamp (invocation id).
        timestamp: u64,
        /// Agreed result (matched by a quorum of replies).
        result: Vec<u8>,
    },
}

#[derive(Debug)]
struct Pending {
    ts: u64,
    op: Vec<u8>,
    read_only: bool,
    /// result digest → replicas that vouched for it (digest replies and
    /// full replies both vote by digest).
    votes: HashMap<Vec<u8>, HashSet<u32>>,
    /// Full result bodies received, keyed by their digest.
    full: HashMap<Vec<u8>, Vec<u8>>,
    attempts: u32,
    timer: Option<TimerId>,
    submitted_at_ns: u64,
}

/// The client-side replication protocol, embeddable in any actor (the NFS
/// relay embeds one; [`ClientActor`] is a ready-made standalone driver).
///
/// This realizes the `invoke` entry point of the BASE interface (paper
/// Figure 1): one outstanding operation at a time, completion when `f+1`
/// matching replies arrive (`2f+1` for read-only operations).
pub struct ClientCore {
    cfg: Config,
    keys: NodeKeys,
    cost: CostModel,
    id: u32,
    next_ts: u64,
    view_guess: u64,
    pending: Option<Pending>,
    queue: VecDeque<(Vec<u8>, bool)>,
    /// Completed-operation latencies in nanoseconds (for experiments).
    pub latencies_ns: Vec<u64>,
    /// Number of retransmissions performed.
    pub retransmissions: u64,
    /// Read-only operations that fell back to the full quorum path.
    pub ro_degradations: u64,
    /// **Fault injection (tests only):** accept the first full reply
    /// without waiting for a quorum. This deliberately breaks the client's
    /// safety — a single Byzantine replica can then feed it a fabricated
    /// result — and exists so chaos-campaign auditors can demonstrate they
    /// catch reply-certificate violations. Never enable outside tests.
    pub bug_accept_first_reply: bool,
    /// **Fault injection (tests only):** swallow the retransmission timer.
    /// A request lost to a partition is then never retried — a liveness
    /// (not safety) bug, seeded so the chaos engine's heal-to-progress
    /// auditor can demonstrate it catches stalls. Never enable outside
    /// tests.
    pub bug_never_retransmit: bool,
    /// When false, a completed operation does not immediately pump the next
    /// queued one; the embedding actor paces submissions itself (see
    /// [`ClientActor::set_pace`]).
    pub auto_pump: bool,
    /// Client-side metrics (request latency, retransmissions, quorum
    /// degradations).
    pub metrics: MetricsRegistry,
    /// Adaptive retransmission timeout, fed by completed-operation
    /// latencies. Only consulted when `cfg.adaptive_timeouts` is set.
    rtt: RttEstimator,
    /// Persistent RTO backoff exponent (RFC 6298 §5.5-5.7): Karn's
    /// algorithm discards retransmitted samples, so when *every* exchange
    /// is retransmitted the estimator alone could never adapt upward.
    /// Each timeout doubles the effective RTO for subsequent sends; the
    /// next clean (unretransmitted) completion resets it.
    rto_shift: u32,
    /// Timer token used for this core's retransmission timer
    /// ([`TOKEN_CLIENT_RETRANS`] by default). Actors embedding several
    /// cores — the sharded router hosts one per replica group — give each
    /// a distinct token so timers route to the right core.
    retrans_token: u64,
}

impl ClientCore {
    /// Creates a client core. The node id is taken from `keys` and must be
    /// `>= n` (clients are not replicas).
    pub fn new(cfg: Config, keys: NodeKeys) -> Self {
        let id = keys.id() as u32;
        assert!(id as usize >= cfg.n, "client ids start after replica ids");
        // Seed the jitter stream per client so concurrent retries
        // de-synchronize without consuming simulator RNG.
        let rtt = RttEstimator::new(
            0x9e37_79b9_7f4a_7c15 ^ u64::from(id),
            cfg.rto_floor.as_nanos(),
            cfg.rto_ceiling.as_nanos(),
            cfg.client_timeout.as_nanos(),
        );
        Self {
            cfg,
            keys,
            cost: CostModel::default(),
            id,
            next_ts: 0,
            view_guess: 0,
            pending: None,
            queue: VecDeque::new(),
            latencies_ns: Vec::new(),
            retransmissions: 0,
            ro_degradations: 0,
            bug_accept_first_reply: false,
            bug_never_retransmit: false,
            rto_shift: 0,
            auto_pump: true,
            metrics: MetricsRegistry::new(),
            rtt,
            retrans_token: TOKEN_CLIENT_RETRANS,
        }
    }

    /// Overrides the retransmission-timer token (embedders hosting several
    /// cores in one actor). Must keep the high bit set so it never collides
    /// with an embedding actor's own low-valued tokens.
    pub fn set_retrans_token(&mut self, token: u64) {
        assert!(token & (1 << 63) != 0, "client timer tokens keep the high bit");
        self.retrans_token = token;
    }

    /// Overrides the CPU cost model (ablations).
    pub fn set_cost_model(&mut self, cost: CostModel) {
        self.cost = cost;
    }

    /// The current adaptive retransmission timeout (the static
    /// `client_timeout` until the first completion seeds the estimator).
    pub fn current_rto(&self) -> SimDuration {
        SimDuration::from_nanos(self.rtt.rto())
    }

    /// Queues an operation. Call [`ClientCore::pump`] afterwards (with a
    /// context) to actually send it.
    pub fn submit(&mut self, op: Vec<u8>, read_only: bool) {
        self.queue.push_back((op, read_only));
    }

    /// True if an operation is in flight.
    pub fn busy(&self) -> bool {
        self.pending.is_some()
    }

    /// Number of queued (unsent) operations.
    pub fn queued(&self) -> usize {
        self.queue.len()
    }

    /// Sends the next queued operation if none is in flight.
    pub fn pump(&mut self, ctx: &mut Context<'_>) {
        if self.pending.is_some() {
            return;
        }
        let Some((op, read_only)) = self.queue.pop_front() else { return };
        self.next_ts += 1;
        let ts = self.next_ts;
        let req = self.build_request(ts, op.clone(), read_only, 0, ctx);
        if read_only {
            // Read-only requests go straight to all replicas.
            self.broadcast(&req, ctx);
        } else {
            let primary = self.cfg.primary_of(self.view_guess);
            ctx.send(
                self.cfg.replica_node(primary),
                Message::Request(req).to_wire_tagged(self.cfg.shard),
            );
        }
        ctx.emit(self.view_guess, ts, ProtocolEvent::ClientOpSubmitted);
        let timeout = if self.cfg.adaptive_timeouts {
            // Jacobson/Karels RTO (equal to `client_timeout` until the
            // first clean completion seeds the estimator), doubled once
            // per unresolved timeout so a chronically underestimated RTO
            // still adapts upward despite Karn discarding its samples.
            SimDuration::from_nanos(self.rtt.backoff(self.rto_shift))
        } else {
            self.cfg.client_timeout
        };
        let timer = ctx.set_timer(timeout, self.retrans_token);
        self.pending = Some(Pending {
            ts,
            op,
            read_only,
            votes: HashMap::new(),
            full: HashMap::new(),
            attempts: 0,
            timer: Some(timer),
            submitted_at_ns: ctx.now().as_nanos(),
        });
    }

    fn build_request(
        &mut self,
        ts: u64,
        op: Vec<u8>,
        read_only: bool,
        attempts: u32,
        ctx: &mut Context<'_>,
    ) -> RequestMsg {
        // Rotate the designated full-replier across retransmissions so
        // a faulty designee cannot starve us of the full result.
        let full_replier = ((ts + u64::from(attempts)) % self.cfg.n as u64) as u32;
        let mut req = RequestMsg::new(self.id, ts, read_only, full_replier, op);
        ctx.charge(self.cost.digest(req.op().len()) + self.cost.authenticator(self.cfg.n));
        req.auth = Authenticator::generate(&self.keys, self.cfg.n, &req.digest());
        req
    }

    fn broadcast(&self, req: &RequestMsg, ctx: &mut Context<'_>) {
        // Encode once; every replica shares the same allocation.
        let wire = Payload::from(Message::Request(req.clone()).to_wire_tagged(self.cfg.shard));
        for i in 0..self.cfg.n {
            ctx.send(self.cfg.replica_node(i), wire.clone());
        }
    }

    /// Processes an incoming message. Returns a completion event when the
    /// pending operation gathers its reply quorum.
    pub fn on_message(
        &mut self,
        _from: NodeId,
        payload: &[u8],
        ctx: &mut Context<'_>,
    ) -> Option<ClientEvent> {
        let Some((shard, Message::Reply(reply))) = Message::from_wire_tagged(payload) else {
            return None;
        };
        if shard != self.cfg.shard {
            return None;
        }
        self.on_reply(reply, ctx)
    }

    fn on_reply(&mut self, reply: ReplyMsg, ctx: &mut Context<'_>) -> Option<ClientEvent> {
        if reply.client != self.id || reply.replica as usize >= self.cfg.n {
            return None;
        }
        ctx.charge(self.cost.mac + self.cost.digest(reply.result.len()));
        if !Authenticator::check_point(
            &self.keys,
            reply.replica as usize,
            &reply.digest(),
            &reply.mac,
        ) {
            return None;
        }
        self.view_guess = self.view_guess.max(reply.view);

        let needed = {
            let pending = self.pending.as_ref()?;
            if reply.timestamp != pending.ts {
                return None;
            }
            if pending.read_only {
                self.cfg.quorum()
            } else {
                self.cfg.reply_quorum()
            }
        };
        let pending = self.pending.as_mut()?;
        // Digest and full replies both vote by result digest; a full reply
        // additionally supplies the body.
        let digest = if reply.digest_only {
            reply.result.clone()
        } else {
            let d = base_crypto::Digest::of(&reply.result).0.to_vec();
            pending.full.insert(d.clone(), reply.result.clone());
            d
        };
        pending.votes.entry(digest.clone()).or_default().insert(reply.replica);
        let enough_votes =
            pending.votes[&digest].len() >= needed || self.bug_accept_first_reply;
        let Some(result) = pending.full.get(&digest).cloned() else {
            // Votes may be complete, but we still need the full body from
            // the designated replica (retransmission rotates it if the
            // designee is faulty).
            return None;
        };
        if !enough_votes {
            return None;
        }

        // Quorum reached with a matching full result: complete.
        let done = self.pending.take().expect("checked above");
        if let Some(t) = done.timer {
            ctx.cancel_timer(t);
        }
        let latency = ctx.now().as_nanos().saturating_sub(done.submitted_at_ns);
        self.latencies_ns.push(latency);
        self.metrics.observe("client.request_latency_ns", latency);
        if done.attempts == 0 {
            // Karn's algorithm: an operation that needed retransmission is
            // an ambiguous sample — its latency includes the backoff waits
            // and whatever fault it rode out, which would inflate the RTO
            // and suppress the very retransmissions that drive recovery.
            self.rtt.observe(latency);
            self.rto_shift = 0;
        }
        if done.attempts > 0 {
            // An op that needed retransmission was pending across some
            // disruption; its total latency is the client-visible
            // heal-to-progress cost.
            self.metrics.observe("client.heal_to_progress_ns", latency);
        }
        ctx.emit(self.view_guess, done.ts, ProtocolEvent::ClientOpCompleted);
        if self.auto_pump {
            self.pump(ctx);
        }
        Some(ClientEvent::Completed { timestamp: done.ts, result })
    }

    /// Handles the retransmission timer. Returns true if the token belonged
    /// to this core.
    pub fn on_timer(&mut self, token: u64, ctx: &mut Context<'_>) -> bool {
        if token != self.retrans_token {
            return false;
        }
        if self.bug_never_retransmit {
            // Seeded liveness bug: drop the timer on the floor. The op
            // stays pending forever if its request was lost.
            if let Some(p) = self.pending.as_mut() {
                p.timer = None;
            }
            return true;
        }
        let Some(pending) = self.pending.as_mut() else { return true };
        pending.attempts += 1;
        pending.timer = None;
        self.retransmissions += 1;
        self.metrics.inc("client.retransmissions");
        let pending_ts = pending.ts;
        ctx.emit(self.view_guess, pending_ts, ProtocolEvent::ClientRetransmit);
        let pending = self.pending.as_mut().expect("still pending");

        // Read-only fallback: reissue through the full quorum protocol
        // after two failed attempts, or immediately when the immediate
        // replies already conflict — under a partition (or with Byzantine
        // repliers) the 2f+1 matching immediate replies may never arrive,
        // and waiting out another fast-path round trip cannot help.
        let (ts, op, read_only, attempts) =
            (pending.ts, pending.op.clone(), pending.read_only, pending.attempts);
        let conflicted = pending.votes.len() > 1;
        let effective_ro = read_only && attempts < 2 && !conflicted;
        if read_only && !effective_ro {
            pending.read_only = false;
            pending.votes.clear();
            pending.full.clear();
            self.ro_degradations += 1;
            self.metrics.inc("client.ro_degradations");
            ctx.emit(self.view_guess, ts, ProtocolEvent::ReplyQuorumDegraded);
        }
        let req = self.build_request(ts, op, effective_ro, attempts, ctx);
        // Retransmissions are broadcast so backups can nudge the primary
        // (or trigger a view change if it is faulty).
        self.broadcast(&req, ctx);

        // Exponential backoff with jitter: up to a quarter of the base
        // backoff of extra delay, so the retry storms of many clients
        // recovering from one partition do not synchronize.
        let attempts = self.pending.as_ref().map(|p| p.attempts).unwrap_or(1);
        let delay = if self.cfg.adaptive_timeouts {
            self.rto_shift = (self.rto_shift + 1).min(6);
            // RTO-based backoff with seeded jitter: deterministic, and no
            // simulator RNG is consumed on the retry path.
            SimDuration::from_nanos(self.rtt.jittered_backoff(attempts, ts))
        } else {
            let backoff = self.cfg.client_timeout.saturating_mul(1 << attempts.min(6));
            let jitter = SimDuration::from_nanos(rand::Rng::gen_range(
                ctx.rng(),
                0..=backoff.as_nanos() / 4,
            ));
            backoff + jitter
        };
        let timer = ctx.set_timer(delay, self.retrans_token);
        if let Some(p) = self.pending.as_mut() {
            p.timer = Some(timer);
        }
        true
    }
}

/// A standalone client actor for tests and examples: enqueue operations,
/// run the simulation, then read `completed`.
pub struct ClientActor {
    core: ClientCore,
    pace: SimDuration,
    /// Completed operations as (timestamp, result) pairs, in order.
    pub completed: Vec<(u64, Vec<u8>)>,
}

impl ClientActor {
    /// Creates a client actor.
    pub fn new(cfg: Config, keys: NodeKeys) -> Self {
        Self {
            core: ClientCore::new(cfg, keys),
            pace: SimDuration::from_millis(1),
            completed: Vec::new(),
        }
    }

    /// Spaces submissions at least `gap` apart instead of firing the next
    /// queued operation the moment one completes (chaos campaigns use this
    /// to spread the workload across the fault schedule).
    pub fn set_pace(&mut self, gap: SimDuration) {
        self.pace = gap;
        self.core.auto_pump = false;
    }

    /// Queues an operation; it is picked up by the pump timer.
    pub fn enqueue(&mut self, op: Vec<u8>, read_only: bool) {
        self.core.submit(op, read_only);
    }

    /// Access to the embedded core (latency stats etc.).
    pub fn core(&self) -> &ClientCore {
        &self.core
    }

    /// Mutable access to the embedded core (cost-model overrides).
    pub fn core_mut(&mut self) -> &mut ClientCore {
        &mut self.core
    }

    /// True when nothing is queued or in flight.
    pub fn idle(&self) -> bool {
        !self.core.busy() && self.core.queued() == 0
    }
}

impl Actor for ClientActor {
    fn on_start(&mut self, ctx: &mut Context<'_>) {
        self.core.pump(ctx);
        ctx.set_timer(self.pace, TOKEN_PUMP);
    }

    fn on_message(&mut self, from: NodeId, payload: &[u8], ctx: &mut Context<'_>) {
        if let Some(ClientEvent::Completed { timestamp, result }) =
            self.core.on_message(from, payload, ctx)
        {
            self.completed.push((timestamp, result));
        }
    }

    fn on_timer(&mut self, token: u64, ctx: &mut Context<'_>) {
        if token == TOKEN_PUMP {
            self.core.pump(ctx);
            ctx.set_timer(self.pace, TOKEN_PUMP);
            return;
        }
        self.core.on_timer(token, ctx);
    }
}
