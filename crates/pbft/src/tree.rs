//! Hierarchical state partition tree.
//!
//! The BFT/BASE libraries organize the (abstract) state as an array of
//! objects and maintain a tree of cryptographic digests over it. A replica
//! fetching state recurses down the hierarchy, comparing digests, and
//! fetches only the leaves (objects) that are out of date or corrupt
//! (paper §2.2).
//!
//! The tree here is *persistent* (purely functional with [`Arc`] structure
//! sharing): updating a leaf copies only the path to the root, and taking a
//! checkpoint is an O(1) clone of the root pointer. This realizes the
//! copy-on-write checkpointing the paper describes, for the digest
//! metadata; object *values* are copy-on-write separately (see the `base`
//! crate's checkpoint module).
//!
//! Digest conventions:
//! - leaf `i` with value `v`: `H("leaf" || i || v)` (computed by callers
//!   via [`leaf_digest`]); an absent leaf has digest [`Digest::ZERO`];
//! - internal node at `level` with children `c_0..c_b`:
//!   `H("node" || level || c_0 || ... || c_b)`, with a precomputed default
//!   for all-absent subtrees.

use base_crypto::Digest;
use base_xdr::XdrEncoder;
use std::sync::Arc;

/// Digest of abstract object `index` with encoding `value`.
///
/// Binding the index prevents a Byzantine replica from serving object `j`'s
/// valid value in response to a fetch of object `i`.
pub fn leaf_digest(index: u64, value: &[u8]) -> Digest {
    let mut enc = XdrEncoder::with_capacity(value.len() + 24);
    enc.put_string("leaf");
    enc.put_u64(index);
    enc.put_opaque(value);
    Digest::of(enc.as_bytes())
}

/// Number of fixed-size chunks a value of `len` bytes splits into under
/// `chunk_size` (0 chunks for an empty value).
///
/// # Panics
///
/// Panics if `chunk_size` is zero (callers gate on `chunk_size > 0`).
pub fn chunk_count(len: usize, chunk_size: usize) -> usize {
    assert!(chunk_size > 0, "chunk_count needs a positive chunk size");
    len.div_ceil(chunk_size)
}

/// Digest of chunk `chunk` of abstract object `index`.
///
/// Binding both indices prevents a Byzantine replica from answering a
/// fetch of one chunk with another chunk's (individually valid) bytes.
pub fn chunk_digest(index: u64, chunk: u32, data: &[u8]) -> Digest {
    let mut enc = XdrEncoder::with_capacity(data.len() + 28);
    enc.put_string("chnk");
    enc.put_u64(index);
    enc.put_u32(chunk);
    enc.put_opaque(data);
    Digest::of(enc.as_bytes())
}

/// Folds a value's per-chunk digests (plus its exact length) into the leaf
/// digest used when chunked digesting is enabled.
///
/// The length is bound so that a value whose trailing chunk is a strict
/// prefix of another's cannot collide, and so state transfer can trust the
/// length carried by a verified chunk list.
pub fn chunked_leaf_from_digests(index: u64, len: u64, digests: &[Digest]) -> Digest {
    let mut enc = XdrEncoder::with_capacity(digests.len() * 32 + 28);
    enc.put_string("cleaf");
    enc.put_u64(index);
    enc.put_u64(len);
    for d in digests {
        enc.put_opaque_fixed(&d.0);
    }
    Digest::of(enc.as_bytes())
}

/// The per-chunk digests of `value` under `chunk_size` (empty for an empty
/// value).
pub fn chunk_digests(index: u64, value: &[u8], chunk_size: usize) -> Vec<Digest> {
    assert!(chunk_size > 0, "chunk_digests needs a positive chunk size");
    value
        .chunks(chunk_size)
        .enumerate()
        .map(|(c, data)| chunk_digest(index, c as u32, data))
        .collect()
}

/// Digest of leaf `index` with chunked digesting: `chunk_size = 0` is the
/// legacy whole-object [`leaf_digest`]; otherwise the leaf digest folds the
/// value's fixed-size chunk digests, so a small write to a big object only
/// re-hashes the touched chunks (given a cache of the previous chunk
/// digests — see the `base` crate's checkpoint module).
pub fn chunked_leaf_digest(index: u64, value: &[u8], chunk_size: usize) -> Digest {
    if chunk_size == 0 {
        return leaf_digest(index, value);
    }
    let digests = chunk_digests(index, value, chunk_size);
    chunked_leaf_from_digests(index, value.len() as u64, &digests)
}

fn node_digest(level: u32, children: &[Digest]) -> Digest {
    let mut enc = XdrEncoder::with_capacity(children.len() * 32 + 16);
    enc.put_string("node");
    enc.put_u32(level);
    for c in children {
        enc.put_opaque_fixed(&c.0);
    }
    Digest::of(enc.as_bytes())
}

#[derive(Debug)]
struct Node {
    digest: Digest,
    /// Child links; empty for leaves. `None` = all-default subtree.
    children: Vec<Option<Arc<Node>>>,
}

/// Hash-work accounting returned by [`PartitionTree::set_leaves`].
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct TreeUpdateStats {
    /// Distinct leaves written (duplicates in the batch collapse).
    pub leaves_updated: u64,
    /// Internal nodes rehashed — each touched node exactly once.
    pub internal_hashes: u64,
}

impl TreeUpdateStats {
    /// Accumulates another batch's counts.
    pub fn absorb(&mut self, other: TreeUpdateStats) {
        self.leaves_updated += other.leaves_updated;
        self.internal_hashes += other.internal_hashes;
    }
}

/// A persistent digest tree over `capacity` leaves with a fixed branching
/// factor.
///
/// # Examples
///
/// ```
/// use base_pbft::tree::{leaf_digest, PartitionTree};
///
/// let mut t = PartitionTree::new(1024, 16);
/// t.set_leaf(5, leaf_digest(5, b"object five"));
/// let snap = t.clone(); // O(1) checkpoint
/// t.set_leaf(5, leaf_digest(5, b"changed"));
/// assert_ne!(t.root_digest(), snap.root_digest());
/// assert_eq!(snap.leaf_digest_at(5), leaf_digest(5, b"object five"));
/// ```
#[derive(Debug, Clone)]
pub struct PartitionTree {
    capacity: u64,
    branching: u32,
    depth: u32,
    /// Default digest for an all-absent subtree rooted at each level.
    defaults: Arc<Vec<Digest>>,
    root: Option<Arc<Node>>,
}

impl PartitionTree {
    /// Creates an empty tree over `capacity` leaves with the given
    /// branching factor.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero or `branching < 2`.
    pub fn new(capacity: u64, branching: u32) -> Self {
        assert!(capacity > 0, "tree needs at least one leaf");
        assert!(branching >= 2, "branching factor must be at least 2");
        let mut depth = 0u32;
        let mut span = 1u64;
        while span < capacity {
            span = span.saturating_mul(branching as u64);
            depth += 1;
        }
        // defaults[l] = digest of an all-absent subtree whose root is at
        // level l (leaves are level 0).
        let mut defaults = vec![Digest::ZERO];
        for level in 1..=depth {
            let child = defaults[(level - 1) as usize];
            let children = vec![child; branching as usize];
            defaults.push(node_digest(level, &children));
        }
        Self { capacity, branching, depth, defaults: Arc::new(defaults), root: None }
    }

    /// Number of leaves.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Branching factor.
    pub fn branching(&self) -> u32 {
        self.branching
    }

    /// Tree depth: the root sits at this level; leaves are level 0.
    pub fn depth(&self) -> u32 {
        self.depth
    }

    /// Digest of the whole tree.
    pub fn root_digest(&self) -> Digest {
        match &self.root {
            Some(n) => n.digest,
            None => self.defaults[self.depth as usize],
        }
    }

    /// Default digest of an all-absent subtree rooted at `level`.
    pub fn default_digest(&self, level: u32) -> Digest {
        self.defaults[level as usize]
    }

    /// Current digest of leaf `index` ([`Digest::ZERO`] if absent).
    ///
    /// # Panics
    ///
    /// Panics if `index >= capacity`.
    pub fn leaf_digest_at(&self, index: u64) -> Digest {
        assert!(index < self.capacity, "leaf index out of range");
        let mut node = match &self.root {
            Some(n) => n,
            None => return Digest::ZERO,
        };
        let mut level = self.depth;
        let mut idx = index;
        while level > 0 {
            let child_span = (self.branching as u64).pow(level - 1);
            let child = (idx / child_span) as usize;
            idx %= child_span;
            match &node.children[child] {
                Some(n) => node = n,
                None => return Digest::ZERO,
            }
            level -= 1;
        }
        node.digest
    }

    /// Sets the digest of leaf `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= capacity`.
    pub fn set_leaf(&mut self, index: u64, digest: Digest) {
        assert!(index < self.capacity, "leaf index out of range");
        let root = self.root.take();
        self.root = Some(self.set_rec(root, self.depth, index, digest));
    }

    /// Applies a batch of leaf updates, recomputing each touched internal
    /// node exactly once.
    ///
    /// Semantically equivalent to calling [`PartitionTree::set_leaf`] for
    /// every pair in order (later duplicates win), but the cost is
    /// O(distinct touched nodes) internal hashes instead of
    /// O(updates × depth): updates sharing a subtree are grouped and the
    /// path above them is rehashed once, bottom-up — the Merkle-tree
    /// discipline a checkpoint flush with a clustered dirty set wants.
    ///
    /// Returns how many leaves were written and how many internal nodes
    /// were rehashed, so callers can account hash work precisely.
    ///
    /// # Panics
    ///
    /// Panics if any index is `>= capacity`.
    pub fn set_leaves(
        &mut self,
        updates: impl IntoIterator<Item = (u64, Digest)>,
    ) -> TreeUpdateStats {
        let mut ups: Vec<(u64, Digest)> = updates.into_iter().collect();
        for &(i, _) in &ups {
            assert!(i < self.capacity, "leaf index out of range");
        }
        // Last write per index wins: stable-sort by index (preserving
        // arrival order within an index), then keep each run's final entry.
        ups.sort_by_key(|&(i, _)| i);
        ups.reverse(); // runs now end-first, still grouped by index
        ups.dedup_by_key(|&mut (i, _)| i); // keeps the first = latest write
        ups.reverse(); // back to ascending index order
        if ups.is_empty() {
            return TreeUpdateStats::default();
        }
        let mut stats = TreeUpdateStats { leaves_updated: ups.len() as u64, internal_hashes: 0 };
        let root = self.root.take();
        self.root = Some(self.set_many_rec(root, self.depth, 0, &ups, &mut stats));
        stats
    }

    /// Recursive worker for [`PartitionTree::set_leaves`]: `ups` is a
    /// non-empty, ascending, duplicate-free slice of leaf updates that all
    /// fall inside the subtree rooted at (`level`, base leaf `base`).
    fn set_many_rec(
        &self,
        node: Option<Arc<Node>>,
        level: u32,
        base: u64,
        ups: &[(u64, Digest)],
        stats: &mut TreeUpdateStats,
    ) -> Arc<Node> {
        if level == 0 {
            debug_assert_eq!(ups.len(), 1);
            return Arc::new(Node { digest: ups[0].1, children: Vec::new() });
        }
        let b = self.branching as usize;
        let child_span = (self.branching as u64).pow(level - 1);
        let mut children: Vec<Option<Arc<Node>>> = match node {
            Some(n) => n.children.clone(),
            None => vec![None; b],
        };
        // The slice is sorted, so updates for one child form a contiguous
        // run; each run recurses once and the node rehashes once at the end.
        let mut start = 0;
        while start < ups.len() {
            let child_idx = ((ups[start].0 - base) / child_span) as usize;
            let mut end = start + 1;
            while end < ups.len() && ((ups[end].0 - base) / child_span) as usize == child_idx {
                end += 1;
            }
            let child_base = base + child_idx as u64 * child_span;
            children[child_idx] = Some(self.set_many_rec(
                children[child_idx].take(),
                level - 1,
                child_base,
                &ups[start..end],
                stats,
            ));
            start = end;
        }
        let child_digests: Vec<Digest> = children
            .iter()
            .map(|c| match c {
                Some(n) => n.digest,
                None => self.defaults[(level - 1) as usize],
            })
            .collect();
        stats.internal_hashes += 1;
        let digest = node_digest(level, &child_digests);
        Arc::new(Node { digest, children })
    }

    fn set_rec(
        &self,
        node: Option<Arc<Node>>,
        level: u32,
        index: u64,
        digest: Digest,
    ) -> Arc<Node> {
        if level == 0 {
            return Arc::new(Node { digest, children: Vec::new() });
        }
        let b = self.branching as usize;
        let child_span = (self.branching as u64).pow(level - 1);
        let child_idx = (index / child_span) as usize;
        let sub_index = index % child_span;

        let mut children: Vec<Option<Arc<Node>>> = match node {
            Some(n) => n.children.clone(),
            None => vec![None; b],
        };
        let new_child = self.set_rec(children[child_idx].take(), level - 1, sub_index, digest);
        children[child_idx] = Some(new_child);

        let child_digests: Vec<Digest> = children
            .iter()
            .map(|c| match c {
                Some(n) => n.digest,
                None => self.defaults[(level - 1) as usize],
            })
            .collect();
        let digest = node_digest(level, &child_digests);
        Arc::new(Node { digest, children })
    }

    /// Digests of the children of the node at (`level`, `index`), where the
    /// root is (depth, 0) and a node's children sit one level below.
    ///
    /// Returns `None` if the coordinates are out of range or name a leaf.
    pub fn children_digests(&self, level: u32, index: u64) -> Option<Vec<Digest>> {
        if level == 0 || level > self.depth {
            return None;
        }
        let nodes_at_level = self.nodes_at_level(level)?;
        if index >= nodes_at_level {
            return None;
        }
        // Walk down from the root: the ancestor of node (level, index) at
        // level `l` has index `index / b^(l - level)`, so the child choice
        // taken when descending from `l` to `l - 1` is
        // `(index / b^(l - 1 - level)) % b`.
        let b = self.branching as u64;
        let mut cur: Option<&Arc<Node>> = self.root.as_ref();
        let mut l = self.depth;
        while l > level {
            let choice = ((index / b.pow(l - 1 - level)) % b) as usize;
            cur = match cur {
                Some(n) => n.children[choice].as_ref(),
                None => None,
            };
            l -= 1;
        }
        let child_default = self.defaults[(level - 1) as usize];
        Some(match cur {
            Some(n) => n
                .children
                .iter()
                .map(|c| c.as_ref().map(|n| n.digest).unwrap_or(child_default))
                .collect(),
            None => vec![child_default; self.branching as usize],
        })
    }

    /// Number of nodes at `level` (root level has 1).
    pub fn nodes_at_level(&self, level: u32) -> Option<u64> {
        if level > self.depth {
            return None;
        }
        Some((self.branching as u64).pow(self.depth - level))
    }

    /// Verifies that `children` hash to the expected digest of node
    /// (`level`, `index`).
    pub fn verify_children(&self, level: u32, children: &[Digest], expected: &Digest) -> bool {
        if level == 0 || children.len() != self.branching as usize {
            return false;
        }
        node_digest(level, children) == *expected
    }

    /// Leaf index range covered by node (`level`, `index`).
    pub fn leaf_range(&self, level: u32, index: u64) -> (u64, u64) {
        let span = (self.branching as u64).pow(level);
        let start = index * span;
        (start, (start + span).min(self.capacity))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_trees_with_same_shape_agree() {
        let a = PartitionTree::new(100, 4);
        let b = PartitionTree::new(100, 4);
        assert_eq!(a.root_digest(), b.root_digest());
    }

    #[test]
    fn set_and_get_leaves() {
        let mut t = PartitionTree::new(1000, 8);
        for i in [0u64, 1, 7, 8, 63, 999] {
            t.set_leaf(i, leaf_digest(i, b"v"));
        }
        assert_eq!(t.leaf_digest_at(7), leaf_digest(7, b"v"));
        assert_eq!(t.leaf_digest_at(2), Digest::ZERO);
        assert_eq!(t.leaf_digest_at(999), leaf_digest(999, b"v"));
    }

    #[test]
    fn root_changes_with_any_leaf() {
        let mut t = PartitionTree::new(64, 4);
        let r0 = t.root_digest();
        t.set_leaf(5, leaf_digest(5, b"a"));
        let r1 = t.root_digest();
        assert_ne!(r0, r1);
        t.set_leaf(63, leaf_digest(63, b"b"));
        assert_ne!(t.root_digest(), r1);
    }

    #[test]
    fn same_content_same_root_regardless_of_order() {
        let mut a = PartitionTree::new(64, 4);
        let mut b = PartitionTree::new(64, 4);
        a.set_leaf(3, leaf_digest(3, b"x"));
        a.set_leaf(40, leaf_digest(40, b"y"));
        b.set_leaf(40, leaf_digest(40, b"y"));
        b.set_leaf(3, leaf_digest(3, b"x"));
        assert_eq!(a.root_digest(), b.root_digest());
    }

    #[test]
    fn clone_is_a_cheap_snapshot() {
        let mut t = PartitionTree::new(256, 16);
        t.set_leaf(10, leaf_digest(10, b"old"));
        let snap = t.clone();
        t.set_leaf(10, leaf_digest(10, b"new"));
        assert_eq!(snap.leaf_digest_at(10), leaf_digest(10, b"old"));
        assert_eq!(t.leaf_digest_at(10), leaf_digest(10, b"new"));
        assert_ne!(snap.root_digest(), t.root_digest());
    }

    #[test]
    fn children_digests_chain_to_root() {
        let mut t = PartitionTree::new(256, 4);
        for i in 0..100 {
            t.set_leaf(i, leaf_digest(i, &[i as u8]));
        }
        // Walk from the root down to a leaf, verifying each meta reply.
        let mut expected = t.root_digest();
        let mut level = t.depth();
        let mut index = 0u64;
        let target_leaf = 37u64;
        while level > 0 {
            let children = t.children_digests(level, index).expect("in range");
            assert!(t.verify_children(level, &children, &expected), "level {level}");
            let span = (t.branching() as u64).pow(level - 1);
            let (start, _) = t.leaf_range(level, index);
            let child_idx = ((target_leaf - start) / span) as usize;
            expected = children[child_idx];
            index = index * t.branching() as u64 + child_idx as u64;
            level -= 1;
        }
        assert_eq!(expected, leaf_digest(target_leaf, &[37]));
    }

    #[test]
    fn children_of_untouched_subtree_are_defaults() {
        let t = PartitionTree::new(256, 4);
        let children = t.children_digests(t.depth(), 0).unwrap();
        assert!(children.iter().all(|d| *d == t.default_digest(t.depth() - 1)));
    }

    #[test]
    fn out_of_range_queries_return_none() {
        let t = PartitionTree::new(256, 4);
        assert!(t.children_digests(0, 0).is_none(), "leaves have no children");
        assert!(t.children_digests(t.depth() + 1, 0).is_none());
        assert!(t.children_digests(t.depth(), 1).is_none());
    }

    #[test]
    fn leaf_range_math() {
        let t = PartitionTree::new(100, 4);
        assert_eq!(t.leaf_range(0, 5), (5, 6));
        assert_eq!(t.leaf_range(1, 2), (8, 12));
        assert_eq!(t.leaf_range(t.depth(), 0), (0, 100));
    }

    #[test]
    fn single_leaf_tree() {
        let mut t = PartitionTree::new(1, 2);
        assert_eq!(t.depth(), 0);
        assert_eq!(t.root_digest(), Digest::ZERO);
        t.set_leaf(0, leaf_digest(0, b"only"));
        assert_eq!(t.root_digest(), leaf_digest(0, b"only"));
    }

    #[test]
    fn leaf_digest_binds_index() {
        assert_ne!(leaf_digest(1, b"v"), leaf_digest(2, b"v"));
    }

    #[test]
    fn chunk_count_math() {
        assert_eq!(chunk_count(0, 8), 0);
        assert_eq!(chunk_count(1, 8), 1);
        assert_eq!(chunk_count(8, 8), 1);
        assert_eq!(chunk_count(9, 8), 2);
        assert_eq!(chunk_count(64, 8), 8);
    }

    #[test]
    fn chunked_leaf_zero_chunk_size_is_legacy() {
        assert_eq!(chunked_leaf_digest(7, b"value", 0), leaf_digest(7, b"value"));
    }

    #[test]
    fn chunked_leaf_matches_fold_of_chunk_digests() {
        let value = vec![3u8; 100];
        let ds = chunk_digests(9, &value, 32);
        assert_eq!(ds.len(), 4);
        assert_eq!(
            chunked_leaf_digest(9, &value, 32),
            chunked_leaf_from_digests(9, 100, &ds)
        );
    }

    #[test]
    fn chunk_digest_binds_object_and_chunk() {
        assert_ne!(chunk_digest(1, 0, b"x"), chunk_digest(2, 0, b"x"));
        assert_ne!(chunk_digest(1, 0, b"x"), chunk_digest(1, 1, b"x"));
    }

    #[test]
    fn chunked_leaf_binds_length() {
        // Same chunk list length, different trailing-chunk content =>
        // different digests; and an explicit length mismatch changes the
        // fold even with identical digests.
        let ds = chunk_digests(4, b"abcdefgh", 4);
        assert_ne!(
            chunked_leaf_from_digests(4, 8, &ds),
            chunked_leaf_from_digests(4, 7, &ds)
        );
    }

    #[test]
    fn chunked_leaf_changes_only_touched_chunk_digests() {
        let mut value = vec![0u8; 96];
        let before = chunk_digests(5, &value, 32);
        value[40] = 1; // inside chunk 1
        let after = chunk_digests(5, &value, 32);
        assert_eq!(before[0], after[0]);
        assert_ne!(before[1], after[1]);
        assert_eq!(before[2], after[2]);
    }

    #[test]
    fn batch_update_matches_sequential() {
        let updates: Vec<(u64, Digest)> =
            [7u64, 250, 3, 64, 65, 66, 999, 0].iter().map(|&i| (i, leaf_digest(i, &[i as u8]))).collect();
        let mut seq = PartitionTree::new(1000, 8);
        for &(i, d) in &updates {
            seq.set_leaf(i, d);
        }
        let mut batch = PartitionTree::new(1000, 8);
        let stats = batch.set_leaves(updates.iter().copied());
        assert_eq!(batch.root_digest(), seq.root_digest());
        assert_eq!(stats.leaves_updated, updates.len() as u64);
        for &(i, d) in &updates {
            assert_eq!(batch.leaf_digest_at(i), d);
        }
    }

    #[test]
    fn batch_duplicates_last_write_wins() {
        let mut seq = PartitionTree::new(64, 4);
        seq.set_leaf(5, leaf_digest(5, b"first"));
        seq.set_leaf(5, leaf_digest(5, b"second"));
        let mut batch = PartitionTree::new(64, 4);
        let stats = batch
            .set_leaves([(5, leaf_digest(5, b"first")), (5, leaf_digest(5, b"second"))]);
        assert_eq!(batch.root_digest(), seq.root_digest());
        assert_eq!(stats.leaves_updated, 1, "duplicates collapse");
        assert_eq!(batch.leaf_digest_at(5), leaf_digest(5, b"second"));
    }

    #[test]
    fn empty_batch_is_a_no_op() {
        let mut t = PartitionTree::new(64, 4);
        t.set_leaf(3, leaf_digest(3, b"x"));
        let before = t.root_digest();
        let stats = t.set_leaves(std::iter::empty());
        assert_eq!(stats, TreeUpdateStats::default());
        assert_eq!(t.root_digest(), before);
    }

    #[test]
    fn clustered_batch_hashes_each_touched_node_once() {
        // 4096 leaves at branching 16: depth 3. 256 contiguous dirty leaves
        // touch 16 level-1 nodes, 1 level-2 node and the root = 18 internal
        // hashes, versus 256 x 3 = 768 for per-leaf root-path rehashing.
        let mut t = PartitionTree::new(4096, 16);
        let stats = t.set_leaves((0..256u64).map(|i| (i, leaf_digest(i, &[1]))));
        assert_eq!(t.depth(), 3);
        assert_eq!(stats.internal_hashes, 16 + 1 + 1);
        assert!(stats.internal_hashes < 256 * t.depth() as u64);
    }

    #[test]
    fn batch_on_single_leaf_tree() {
        let mut t = PartitionTree::new(1, 2);
        let stats = t.set_leaves([(0, leaf_digest(0, b"only"))]);
        assert_eq!(stats.internal_hashes, 0);
        assert_eq!(t.root_digest(), leaf_digest(0, b"only"));
    }
}
