//! Canned Byzantine replica behaviours for fault-injection experiments.
//!
//! A replica configured with a non-honest mode misbehaves in a specific,
//! reproducible way. These behaviours drive experiment E6 (the fault
//! injection study the paper lists as future work) and the integration
//! tests that check the protocol masks up to `f` faults.

/// How a replica misbehaves.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ByzMode {
    /// Follows the protocol.
    #[default]
    Honest,
    /// Sends nothing at all (fail-silent without crashing the process).
    Mute,
    /// Executes correctly but flips bits in every reply to clients.
    CorruptReplies,
    /// As primary, sends different batches to different backups
    /// (equivocation); as backup, behaves honestly.
    EquivocatePrimary,
    /// Lies in checkpoint messages (claims a bogus state digest), which
    /// also poisons any state a fetcher would get from it.
    CorruptCheckpoints,
    /// Executes requests but never sends commit messages (slows the group
    /// to the quorum without it).
    WithholdCommits,
    /// As primary, proposes wildly wrong non-deterministic timestamps
    /// (backups must reject them and depose the primary).
    BadTimestamps,
}

impl ByzMode {
    /// True for any non-honest mode.
    pub fn is_faulty(&self) -> bool {
        !matches!(self, ByzMode::Honest)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn honesty_check() {
        assert!(!ByzMode::Honest.is_faulty());
        assert!(ByzMode::Mute.is_faulty());
        assert!(ByzMode::CorruptReplies.is_faulty());
    }
}
