//! Canned Byzantine replica behaviours for fault-injection experiments.
//!
//! A replica configured with a non-honest mode misbehaves in a specific,
//! reproducible way. These behaviours drive experiment E6 (the fault
//! injection study the paper lists as future work) and the integration
//! tests that check the protocol masks up to `f` faults.

/// How a replica misbehaves.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ByzMode {
    /// Follows the protocol.
    #[default]
    Honest,
    /// Sends nothing at all (fail-silent without crashing the process).
    Mute,
    /// Executes correctly but flips bits in every reply to clients.
    CorruptReplies,
    /// As primary, sends different batches to different backups
    /// (equivocation); as backup, behaves honestly.
    EquivocatePrimary,
    /// Lies in checkpoint messages (claims a bogus state digest), which
    /// also poisons any state a fetcher would get from it.
    CorruptCheckpoints,
    /// Executes requests but never sends commit messages (slows the group
    /// to the quorum without it).
    WithholdCommits,
    /// As primary, proposes wildly wrong non-deterministic timestamps
    /// (backups must reject them and depose the primary).
    BadTimestamps,
    /// Concrete-state corruption (the BASE scenario): the replica's
    /// service state is silently flipped without updating abstraction
    /// digests, so the fault is latent until proactive recovery recomputes
    /// digests and state transfer repairs the damaged objects. The replica
    /// otherwise follows the protocol, but executes on wrong state.
    CorruptState,
}

impl ByzMode {
    /// True for any non-honest mode.
    pub fn is_faulty(&self) -> bool {
        !matches!(self, ByzMode::Honest)
    }

    /// Stable numeric code, used by chaos schedules to name a mode in a
    /// serialized fault event.
    pub fn code(&self) -> u64 {
        match self {
            ByzMode::Honest => 0,
            ByzMode::Mute => 1,
            ByzMode::CorruptReplies => 2,
            ByzMode::EquivocatePrimary => 3,
            ByzMode::CorruptCheckpoints => 4,
            ByzMode::WithholdCommits => 5,
            ByzMode::BadTimestamps => 6,
            ByzMode::CorruptState => 7,
        }
    }

    /// Inverse of [`ByzMode::code`]; unknown codes map to `Honest`.
    pub fn from_code(code: u64) -> ByzMode {
        match code {
            1 => ByzMode::Mute,
            2 => ByzMode::CorruptReplies,
            3 => ByzMode::EquivocatePrimary,
            4 => ByzMode::CorruptCheckpoints,
            5 => ByzMode::WithholdCommits,
            6 => ByzMode::BadTimestamps,
            7 => ByzMode::CorruptState,
            _ => ByzMode::Honest,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn honesty_check() {
        assert!(!ByzMode::Honest.is_faulty());
        assert!(ByzMode::Mute.is_faulty());
        assert!(ByzMode::CorruptReplies.is_faulty());
        assert!(ByzMode::CorruptState.is_faulty());
    }

    #[test]
    fn code_roundtrip() {
        for code in 0..8 {
            assert_eq!(ByzMode::from_code(code).code(), code);
        }
        assert_eq!(ByzMode::from_code(999), ByzMode::Honest);
    }
}
