//! The replica message log: per-sequence certificates, checkpoint
//! certificates, and the client reply cache.

use crate::messages::{CheckpointMsg, CommitMsg, PrePrepareMsg, PrepareMsg};
use base_crypto::Digest;
use std::collections::{BTreeMap, HashMap};

/// Log state for one sequence number in one view.
#[derive(Debug, Default, Clone)]
pub struct SeqEntry {
    /// Accepted pre-prepare (at most one per view; conflicting ones are
    /// rejected on receipt).
    pub pre_prepare: Option<PrePrepareMsg>,
    /// Prepares received, keyed by sender (first one wins).
    pub prepares: BTreeMap<u32, PrepareMsg>,
    /// Commits received, keyed by sender.
    pub commits: BTreeMap<u32, CommitMsg>,
    /// This replica multicast its prepare.
    pub prepare_sent: bool,
    /// This replica multicast its commit.
    pub commit_sent: bool,
    /// The batch has been executed.
    pub executed: bool,
}

impl SeqEntry {
    /// Digest of the accepted pre-prepare's batch, if any.
    pub fn accepted_digest(&self) -> Option<Digest> {
        self.pre_prepare.as_ref().map(|p| p.batch_digest())
    }

    /// Number of logged prepares matching the accepted pre-prepare
    /// (view + digest), excluding the primary (whose pre-prepare already
    /// counts).
    pub fn matching_prepares(&self, view: u64) -> usize {
        let digest = match self.accepted_digest() {
            Some(d) => d,
            None => return 0,
        };
        self.prepares
            .values()
            .filter(|p| p.view == view && p.digest == digest)
            .count()
    }

    /// The *prepared* predicate: pre-prepare plus `2f` matching prepares
    /// from distinct replicas.
    pub fn prepared(&self, view: u64, f: usize) -> bool {
        match &self.pre_prepare {
            Some(pp) if pp.view == view => self.matching_prepares(view) >= 2 * f,
            _ => false,
        }
    }

    /// Number of logged commits matching (view, digest).
    pub fn matching_commits(&self, view: u64) -> usize {
        let digest = match self.accepted_digest() {
            Some(d) => d,
            None => return 0,
        };
        self.commits
            .values()
            .filter(|c| c.view == view && c.digest == digest)
            .count()
    }

    /// The *committed-local* predicate: prepared plus `2f + 1` matching
    /// commits.
    pub fn committed(&self, view: u64, f: usize) -> bool {
        self.prepared(view, f) && self.matching_commits(view) > 2 * f
    }

    /// The matching prepare messages (for view-change proofs).
    pub fn prepare_proof(&self, view: u64) -> Vec<PrepareMsg> {
        let digest = match self.accepted_digest() {
            Some(d) => d,
            None => return Vec::new(),
        };
        self.prepares
            .values()
            .filter(|p| p.view == view && p.digest == digest)
            .cloned()
            .collect()
    }
}

/// The sequence-number log with watermark-based garbage collection.
#[derive(Debug, Default)]
pub struct Log {
    entries: BTreeMap<u64, SeqEntry>,
    /// Low watermark: the last stable checkpoint.
    pub low: u64,
}

impl Log {
    /// Mutable access to the entry for `seq`, creating it if absent.
    pub fn entry_mut(&mut self, seq: u64) -> &mut SeqEntry {
        self.entries.entry(seq).or_default()
    }

    /// Read access to the entry for `seq`.
    pub fn entry(&self, seq: u64) -> Option<&SeqEntry> {
        self.entries.get(&seq)
    }

    /// Discards entries at or below the new stable checkpoint `h` and
    /// advances the low watermark.
    pub fn gc_up_to(&mut self, h: u64) {
        self.low = self.low.max(h);
        self.entries = self.entries.split_off(&(h + 1));
    }

    /// Iterates over logged entries above the low watermark.
    pub fn iter(&self) -> impl Iterator<Item = (&u64, &SeqEntry)> {
        self.entries.iter()
    }

    /// Drops every entry (used when a view change installs a new log).
    pub fn clear(&mut self) {
        self.entries.clear();
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if no entries are logged.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// Agreement stage of one in-flight slot, as tracked by the [`SlotTable`].
///
/// Ordered: a slot only ever moves forward within one agreement instance
/// (a view change rebuilds the table, since re-proposed slots restart
/// agreement in the new view).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum SlotStage {
    /// A pre-prepare is logged; prepares are being gathered.
    Proposed,
    /// The *prepared* predicate holds; commits are being gathered.
    Prepared,
    /// Committed-local: ready for the execution stage.
    Committed,
    /// Executed (and therefore no longer backlog).
    Executed,
}

#[derive(Debug, Clone, Copy)]
struct SlotState {
    stage: SlotStage,
    /// A `CommitQuorum` trace event has been emitted for this slot in the
    /// current agreement instance (dedup across redundant commits).
    traced: bool,
}

/// Indexed table of in-flight consensus slots.
///
/// With agreement pipelined ahead of execution, the replica needs fast
/// answers to two questions the message log itself answers only by
/// re-evaluating quorum predicates: *how far has contiguous commitment
/// progressed* (gates how many instances the primary may keep open, see
/// [`Config::pipeline_depth`](crate::Config::pipeline_depth)) and *is there
/// committed-but-unexecuted backlog* (read-only replies must not claim
/// freshness past state the execution stage has not applied yet). The
/// table is a stage index over the log — it holds no messages, and is
/// rebuilt from the log's predicates after view changes, state transfer
/// and reboots.
#[derive(Debug, Default)]
pub struct SlotTable {
    slots: BTreeMap<u64, SlotState>,
}

impl SlotTable {
    /// Records that a pre-prepare was logged for `seq` (never downgrades).
    pub fn observe_proposed(&mut self, seq: u64) {
        self.slots.entry(seq).or_insert(SlotState { stage: SlotStage::Proposed, traced: false });
    }

    /// Records that `seq` reached the *prepared* predicate.
    pub fn observe_prepared(&mut self, seq: u64) {
        let s = self
            .slots
            .entry(seq)
            .or_insert(SlotState { stage: SlotStage::Prepared, traced: false });
        s.stage = s.stage.max(SlotStage::Prepared);
    }

    /// Records that `seq` committed locally.
    pub fn mark_committed(&mut self, seq: u64) {
        let s = self
            .slots
            .entry(seq)
            .or_insert(SlotState { stage: SlotStage::Committed, traced: false });
        s.stage = s.stage.max(SlotStage::Committed);
    }

    /// Records that `seq` was executed.
    pub fn mark_executed(&mut self, seq: u64) {
        let s = self
            .slots
            .entry(seq)
            .or_insert(SlotState { stage: SlotStage::Executed, traced: false });
        s.stage = SlotStage::Executed;
    }

    /// True exactly once per agreement instance: marks the slot's commit
    /// quorum as traced and reports whether it was untraced before (the
    /// `CommitQuorum` trace event dedup; [`SlotTable::reset_traced`] re-arms
    /// it when a view change restarts agreement).
    pub fn first_quorum_trace(&mut self, seq: u64) -> bool {
        match self.slots.get_mut(&seq) {
            Some(s) if !s.traced => {
                s.traced = true;
                true
            }
            _ => false,
        }
    }

    /// Re-arms `CommitQuorum` tracing for every slot: a slot re-agreed in a
    /// new view is a fresh agreement instance and traces its own quorum.
    pub fn reset_traced(&mut self) {
        for s in self.slots.values_mut() {
            s.traced = false;
        }
    }

    /// Stage of `seq`, if the table has seen it.
    pub fn stage(&self, seq: u64) -> Option<SlotStage> {
        self.slots.get(&seq).map(|s| s.stage)
    }

    /// Highest sequence number `c >= base` such that every slot in
    /// `base+1..=c` is committed (or executed): the pipeline gate measures
    /// open consensus instances from here, so an execution backlog does not
    /// stall proposals the way the unexecuted-based `max_inflight` bound
    /// does.
    pub fn committed_floor(&self, base: u64) -> u64 {
        let mut c = base;
        while matches!(self.stage(c + 1), Some(s) if s >= SlotStage::Committed) {
            c += 1;
        }
        c
    }

    /// True if any slot past `last_exec` is committed but not yet executed
    /// — the execution stage has backlog and the current service state is
    /// older than the committed prefix.
    pub fn has_backlog(&self, last_exec: u64) -> bool {
        self.slots
            .range(last_exec + 1..)
            .any(|(_, s)| s.stage == SlotStage::Committed)
    }

    /// Discards slots at or below the new stable checkpoint `h`.
    pub fn gc_up_to(&mut self, h: u64) {
        self.slots = self.slots.split_off(&(h + 1));
    }

    /// Replaces the table's stages with `stages` (derived by the replica
    /// from the log's quorum predicates after a view change, state install
    /// or reboot). Trace-dedup flags of surviving slots are preserved so a
    /// rebuild alone never re-emits a `CommitQuorum` for the same agreement
    /// instance.
    pub fn rebuild(&mut self, stages: impl IntoIterator<Item = (u64, SlotStage)>) {
        let old = std::mem::take(&mut self.slots);
        for (seq, stage) in stages {
            let traced = old.get(&seq).map(|s| s.traced).unwrap_or(false);
            self.slots.insert(seq, SlotState { stage, traced });
        }
    }
}

/// Collects checkpoint messages into certificates.
#[derive(Debug, Default)]
pub struct CheckpointCollector {
    /// seq → digest → sender → message.
    by_seq: BTreeMap<u64, HashMap<Digest, HashMap<u32, CheckpointMsg>>>,
}

impl CheckpointCollector {
    /// Adds a (verified) checkpoint message. Returns the certificate if
    /// this message completed a quorum of `quorum` matching messages.
    pub fn add(&mut self, msg: CheckpointMsg, quorum: usize) -> Option<Vec<CheckpointMsg>> {
        let senders = self
            .by_seq
            .entry(msg.seq)
            .or_default()
            .entry(msg.digest)
            .or_default();
        senders.insert(msg.replica, msg.clone());
        if senders.len() >= quorum {
            Some(senders.values().cloned().collect())
        } else {
            None
        }
    }

    /// Discards state for checkpoints at or below `seq`.
    pub fn gc_up_to(&mut self, seq: u64) {
        self.by_seq = self.by_seq.split_off(&(seq + 1));
    }

    /// Highest sequence number with at least `count` matching messages.
    pub fn highest_with(&self, count: usize) -> Option<(u64, Digest)> {
        self.by_seq
            .iter()
            .rev()
            .find_map(|(seq, by_digest)| {
                by_digest
                    .iter()
                    .find(|(_, senders)| senders.len() >= count)
                    .map(|(digest, _)| (*seq, *digest))
            })
    }
}

/// Per-client cache of the last executed request and its result.
///
/// PBFT assumes each client has at most one outstanding request; the cache
/// answers retransmissions of the last request and filters stale ones.
///
/// The cache is part of the replicated state: its canonical serialization
/// ([`ReplyCache::to_blob`]) is covered by the checkpoint digest and
/// travels with state transfer. Only `(client, timestamp, result)` is
/// stored — never replica-specific fields like the view or MAC, which would
/// make the blob diverge across replicas.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct ReplyCache {
    by_client: BTreeMap<u32, (u64, Vec<u8>)>,
}

impl ReplyCache {
    /// Last executed timestamp for `client`.
    pub fn last_timestamp(&self, client: u32) -> Option<u64> {
        self.by_client.get(&client).map(|(t, _)| *t)
    }

    /// Cached result if `timestamp` matches the last executed request.
    pub fn cached_result(&self, client: u32, timestamp: u64) -> Option<&[u8]> {
        match self.by_client.get(&client) {
            Some((t, result)) if *t == timestamp => Some(result),
            _ => None,
        }
    }

    /// Records the result of `client`'s request `timestamp`.
    pub fn record(&mut self, client: u32, timestamp: u64, result: Vec<u8>) {
        self.by_client.insert(client, (timestamp, result));
    }

    /// True if `timestamp` is newer than anything executed for `client`.
    pub fn is_new(&self, client: u32, timestamp: u64) -> bool {
        match self.last_timestamp(client) {
            Some(t) => timestamp > t,
            None => true,
        }
    }

    /// Canonical serialization (sorted by client id, so identical logical
    /// content produces identical bytes at every replica).
    pub fn to_blob(&self) -> Vec<u8> {
        let mut enc = base_xdr::XdrEncoder::new();
        enc.put_u32(self.by_client.len() as u32);
        for (client, (ts, result)) in &self.by_client {
            enc.put_u32(*client);
            enc.put_u64(*ts);
            enc.put_opaque(result);
        }
        enc.finish()
    }

    /// Rebuilds a cache from its canonical serialization.
    pub fn from_blob(blob: &[u8]) -> Option<Self> {
        let mut dec = base_xdr::XdrDecoder::new(blob);
        let n = dec.get_count(16).ok()?;
        let mut by_client = BTreeMap::new();
        for _ in 0..n {
            let client = dec.get_u32().ok()?;
            let ts = dec.get_u64().ok()?;
            let result = dec.get_opaque().ok()?;
            by_client.insert(client, (ts, result));
        }
        dec.finish().ok()?;
        Some(Self { by_client })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::messages::RequestMsg;
    use base_crypto::{Authenticator, Signature};

    fn pp(view: u64, seq: u64) -> PrePrepareMsg {
        PrePrepareMsg::new(view, seq, vec![RequestMsg::new(9, 1, false, 0, b"x".to_vec())], Vec::new())
    }


    fn prep(view: u64, seq: u64, digest: Digest, replica: u32) -> PrepareMsg {
        PrepareMsg { view, seq, digest, replica, auth: Authenticator::default(), sig: Signature([0; 32]) }
    }

    fn com(view: u64, seq: u64, digest: Digest, replica: u32) -> CommitMsg {
        CommitMsg { view, seq, digest, replica, auth: Authenticator::default() }
    }

    #[test]
    fn prepared_needs_preprepare_and_2f_prepares() {
        let f = 1;
        let mut e = SeqEntry::default();
        let p = pp(0, 1);
        let d = p.batch_digest();
        assert!(!e.prepared(0, f));
        e.pre_prepare = Some(p);
        assert!(!e.prepared(0, f));
        e.prepares.insert(1, prep(0, 1, d, 1));
        assert!(!e.prepared(0, f));
        e.prepares.insert(2, prep(0, 1, d, 2));
        assert!(e.prepared(0, f));
    }

    #[test]
    fn mismatched_digest_prepares_do_not_count() {
        let f = 1;
        let mut e = SeqEntry { pre_prepare: Some(pp(0, 1)), ..Default::default() };
        e.prepares.insert(1, prep(0, 1, Digest::of(b"other"), 1));
        e.prepares.insert(2, prep(0, 1, Digest::of(b"other"), 2));
        assert!(!e.prepared(0, f));
    }

    #[test]
    fn wrong_view_prepares_do_not_count() {
        let f = 1;
        let mut e = SeqEntry::default();
        let p = pp(0, 1);
        let d = p.batch_digest();
        e.pre_prepare = Some(p);
        e.prepares.insert(1, prep(1, 1, d, 1));
        e.prepares.insert(2, prep(1, 1, d, 2));
        assert!(!e.prepared(0, f));
    }

    #[test]
    fn committed_needs_quorum_commits() {
        let f = 1;
        let mut e = SeqEntry::default();
        let p = pp(0, 1);
        let d = p.batch_digest();
        e.pre_prepare = Some(p);
        e.prepares.insert(1, prep(0, 1, d, 1));
        e.prepares.insert(2, prep(0, 1, d, 2));
        e.commits.insert(0, com(0, 1, d, 0));
        e.commits.insert(1, com(0, 1, d, 1));
        assert!(!e.committed(0, f));
        e.commits.insert(2, com(0, 1, d, 2));
        assert!(e.committed(0, f));
    }

    #[test]
    fn log_gc_drops_old_entries() {
        let mut log = Log::default();
        for seq in 1..=10 {
            log.entry_mut(seq);
        }
        log.gc_up_to(7);
        assert_eq!(log.low, 7);
        assert!(log.entry(7).is_none());
        assert!(log.entry(8).is_some());
        assert_eq!(log.len(), 3);
    }

    #[test]
    fn checkpoint_collector_builds_certificate() {
        let mut c = CheckpointCollector::default();
        let d = Digest::of(b"state");
        let msg = |replica| CheckpointMsg { seq: 128, digest: d, replica, sig: Signature([0; 32]) };
        assert!(c.add(msg(0), 3).is_none());
        assert!(c.add(msg(1), 3).is_none());
        // A divergent digest does not help the quorum.
        assert!(c
            .add(CheckpointMsg { seq: 128, digest: Digest::of(b"bad"), replica: 3, sig: Signature([0; 32]) }, 3)
            .is_none());
        let cert = c.add(msg(2), 3).expect("quorum reached");
        assert_eq!(cert.len(), 3);
        assert_eq!(c.highest_with(3), Some((128, d)));
    }

    #[test]
    fn checkpoint_collector_dedups_senders() {
        let mut c = CheckpointCollector::default();
        let d = Digest::of(b"state");
        let msg = CheckpointMsg { seq: 128, digest: d, replica: 0, sig: Signature([0; 32]) };
        assert!(c.add(msg.clone(), 2).is_none());
        assert!(c.add(msg, 2).is_none(), "duplicate sender must not complete a quorum");
    }

    #[test]
    fn reply_cache_semantics() {
        let mut cache = ReplyCache::default();
        assert!(cache.is_new(5, 1));
        cache.record(5, 1, b"r".to_vec());
        assert!(!cache.is_new(5, 1));
        assert!(cache.is_new(5, 2));
        assert_eq!(cache.cached_result(5, 1), Some(&b"r"[..]));
        assert!(cache.cached_result(5, 2).is_none());
        assert!(cache.is_new(6, 1), "other clients unaffected");
    }

    #[test]
    fn reply_cache_blob_round_trip() {
        let mut cache = ReplyCache::default();
        cache.record(5, 1, b"r1".to_vec());
        cache.record(3, 9, b"r2".to_vec());
        let blob = cache.to_blob();
        assert_eq!(ReplyCache::from_blob(&blob).unwrap(), cache);
        assert!(ReplyCache::from_blob(&[1, 2, 3]).is_none());
    }

    #[test]
    fn slot_table_tracks_stages_and_floor() {
        let mut t = SlotTable::default();
        assert_eq!(t.committed_floor(0), 0);
        assert!(!t.has_backlog(0));

        t.observe_proposed(1);
        t.observe_proposed(2);
        t.observe_proposed(3);
        t.observe_prepared(1);
        assert_eq!(t.committed_floor(0), 0, "prepared is not committed");

        t.mark_committed(2);
        assert_eq!(t.committed_floor(0), 0, "slot 1 gaps the committed prefix");
        assert!(t.has_backlog(0), "slot 2 is committed but unexecuted");

        t.mark_committed(1);
        assert_eq!(t.committed_floor(0), 2, "prefix closes through the gap fill");

        t.mark_executed(1);
        t.mark_executed(2);
        assert!(!t.has_backlog(2));
        assert_eq!(t.committed_floor(2), 2);
        assert_eq!(t.stage(3), Some(SlotStage::Proposed));
    }

    #[test]
    fn slot_table_stage_never_downgrades() {
        let mut t = SlotTable::default();
        t.mark_committed(5);
        t.observe_proposed(5);
        t.observe_prepared(5);
        assert_eq!(t.stage(5), Some(SlotStage::Committed));
    }

    #[test]
    fn slot_table_quorum_trace_dedup_and_rearm() {
        let mut t = SlotTable::default();
        t.mark_committed(4);
        assert!(t.first_quorum_trace(4));
        assert!(!t.first_quorum_trace(4), "second quorum completion is deduped");
        // A rebuild (state install, reboot) preserves the dedup flag.
        t.rebuild([(4, SlotStage::Committed)]);
        assert!(!t.first_quorum_trace(4));
        // A view change re-arms it: re-agreement traces a fresh quorum.
        t.reset_traced();
        assert!(t.first_quorum_trace(4));
        assert!(!t.first_quorum_trace(9), "unknown slots never trace");
    }

    #[test]
    fn slot_table_gc_drops_stable_prefix() {
        let mut t = SlotTable::default();
        for seq in 1..=8 {
            t.mark_committed(seq);
        }
        t.gc_up_to(4);
        assert_eq!(t.stage(4), None);
        assert_eq!(t.stage(5), Some(SlotStage::Committed));
        assert_eq!(t.committed_floor(4), 8);
    }

    #[test]
    fn reply_cache_blob_is_insertion_order_independent() {
        let mut a = ReplyCache::default();
        a.record(5, 1, b"x".to_vec());
        a.record(3, 2, b"y".to_vec());
        let mut b = ReplyCache::default();
        b.record(3, 2, b"y".to_vec());
        b.record(5, 1, b"x".to_vec());
        assert_eq!(a.to_blob(), b.to_blob());
    }
}
