//! The XDR encoder.

use crate::padded_len;

/// Serializes values into an XDR byte stream.
///
/// All writes are infallible; the encoder owns a growable buffer that is
/// handed back by [`XdrEncoder::finish`].
///
/// # Examples
///
/// ```
/// let mut enc = base_xdr::XdrEncoder::new();
/// enc.put_u64(42);
/// assert_eq!(enc.finish(), vec![0, 0, 0, 0, 0, 0, 0, 42]);
/// ```
#[derive(Debug, Default, Clone)]
pub struct XdrEncoder {
    buf: Vec<u8>,
}

impl XdrEncoder {
    /// Creates an empty encoder.
    pub fn new() -> Self {
        Self { buf: Vec::new() }
    }

    /// Creates an encoder with `cap` bytes of pre-allocated space.
    pub fn with_capacity(cap: usize) -> Self {
        Self { buf: Vec::with_capacity(cap) }
    }

    /// Number of bytes encoded so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Returns `true` if nothing has been encoded yet.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Consumes the encoder and returns the encoded bytes.
    pub fn finish(self) -> Vec<u8> {
        self.buf
    }

    /// Borrows the bytes encoded so far.
    pub fn as_bytes(&self) -> &[u8] {
        &self.buf
    }

    /// Appends an unsigned 32-bit integer (big-endian).
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }

    /// Appends a signed 32-bit integer.
    pub fn put_i32(&mut self, v: i32) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }

    /// Appends an unsigned 64-bit "hyper" integer.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }

    /// Appends a signed 64-bit "hyper" integer.
    pub fn put_i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }

    /// Appends a boolean as a 32-bit 0/1 value.
    pub fn put_bool(&mut self, v: bool) {
        self.put_u32(u32::from(v));
    }

    /// Appends fixed-length opaque data (no length prefix), zero-padded to a
    /// four-byte boundary.
    pub fn put_opaque_fixed(&mut self, data: &[u8]) {
        self.buf.extend_from_slice(data);
        self.pad(data.len());
    }

    /// Appends variable-length opaque data: a `u32` length prefix, the
    /// bytes, and zero padding to a four-byte boundary.
    ///
    /// # Panics
    ///
    /// Panics if `data.len()` exceeds `u32::MAX`, which cannot be
    /// represented in the length prefix.
    pub fn put_opaque(&mut self, data: &[u8]) {
        let len = u32::try_from(data.len()).expect("opaque data longer than u32::MAX");
        self.put_u32(len);
        self.put_opaque_fixed(data);
    }

    /// Appends a UTF-8 string as variable-length opaque data.
    pub fn put_string(&mut self, s: &str) {
        self.put_opaque(s.as_bytes());
    }

    /// Appends an already-encoded XDR fragment verbatim.
    ///
    /// The caller must ensure `raw` is itself a well-formed, four-byte
    /// aligned XDR stream; this is checked only by a debug assertion.
    pub fn put_raw(&mut self, raw: &[u8]) {
        debug_assert_eq!(raw.len() % 4, 0, "raw XDR fragment must be 4-byte aligned");
        self.buf.extend_from_slice(raw);
    }

    fn pad(&mut self, written: usize) {
        for _ in written..padded_len(written) {
            self.buf.push(0);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn integers_are_big_endian() {
        let mut enc = XdrEncoder::new();
        enc.put_u32(0x0102_0304);
        enc.put_i32(-1);
        assert_eq!(enc.finish(), vec![1, 2, 3, 4, 0xff, 0xff, 0xff, 0xff]);
    }

    #[test]
    fn opaque_is_length_prefixed_and_padded() {
        let mut enc = XdrEncoder::new();
        enc.put_opaque(&[0xaa, 0xbb, 0xcc, 0xdd, 0xee]);
        assert_eq!(
            enc.finish(),
            vec![0, 0, 0, 5, 0xaa, 0xbb, 0xcc, 0xdd, 0xee, 0, 0, 0]
        );
    }

    #[test]
    fn fixed_opaque_has_no_prefix() {
        let mut enc = XdrEncoder::new();
        enc.put_opaque_fixed(&[1, 2]);
        assert_eq!(enc.finish(), vec![1, 2, 0, 0]);
    }

    #[test]
    fn string_round_trips_as_bytes() {
        let mut enc = XdrEncoder::new();
        enc.put_string("hi");
        assert_eq!(enc.finish(), vec![0, 0, 0, 2, b'h', b'i', 0, 0]);
    }

    #[test]
    fn bool_encodes_as_word() {
        let mut enc = XdrEncoder::new();
        enc.put_bool(true);
        enc.put_bool(false);
        assert_eq!(enc.finish(), vec![0, 0, 0, 1, 0, 0, 0, 0]);
    }
}
