//! XDR — External Data Representation (RFC 1014).
//!
//! The BASE paper encodes every entry of the abstract file-service state
//! using XDR, and this reproduction additionally uses XDR as the wire codec
//! for all replication-protocol messages. The format is simple and strict:
//! every item occupies a multiple of four bytes, integers are big-endian,
//! and variable-length data carries an explicit length prefix followed by
//! zero padding to the next four-byte boundary.
//!
//! Because protocol messages may arrive from Byzantine replicas, decoding is
//! hardened: all lengths are bounds-checked against the remaining input and
//! against a configurable allocation cap, padding bytes are required to be
//! zero, and booleans/enum discriminants are validated.
//!
//! # Examples
//!
//! ```
//! use base_xdr::{XdrDecode, XdrEncode, XdrEncoder, XdrDecoder};
//!
//! let mut enc = XdrEncoder::new();
//! enc.put_u32(7);
//! enc.put_string("hello");
//! enc.put_opaque(&[1, 2, 3]);
//! let bytes = enc.finish();
//!
//! let mut dec = XdrDecoder::new(&bytes);
//! assert_eq!(dec.get_u32().unwrap(), 7);
//! assert_eq!(dec.get_string().unwrap(), "hello");
//! assert_eq!(dec.get_opaque().unwrap(), vec![1, 2, 3]);
//! dec.finish().unwrap();
//! ```

#![warn(missing_docs)]

mod decode;
mod encode;
mod error;
mod traits;

pub use decode::XdrDecoder;
pub use encode::XdrEncoder;
pub use error::XdrError;
pub use traits::{decode_vec, encode_vec, from_bytes, to_bytes, XdrDecode, XdrEncode};

/// Pads `len` up to the next multiple of four, per RFC 1014.
#[inline]
pub fn padded_len(len: usize) -> usize {
    (len + 3) & !3
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn padded_len_rounds_to_four() {
        assert_eq!(padded_len(0), 0);
        assert_eq!(padded_len(1), 4);
        assert_eq!(padded_len(3), 4);
        assert_eq!(padded_len(4), 4);
        assert_eq!(padded_len(5), 8);
        assert_eq!(padded_len(8), 8);
    }
}
