//! Encode/decode traits and implementations for common types.

use crate::{XdrDecoder, XdrEncoder, XdrError};

/// A type that can be serialized to XDR.
pub trait XdrEncode {
    /// Appends this value's XDR encoding to `enc`.
    fn encode(&self, enc: &mut XdrEncoder);
}

/// A type that can be deserialized from XDR.
pub trait XdrDecode: Sized {
    /// Reads one value of this type from `dec`.
    fn decode(dec: &mut XdrDecoder<'_>) -> Result<Self, XdrError>;
}

/// Encodes `value` into a fresh byte vector.
pub fn to_bytes<T: XdrEncode>(value: &T) -> Vec<u8> {
    let mut enc = XdrEncoder::new();
    value.encode(&mut enc);
    enc.finish()
}

/// Decodes a single value of type `T`, requiring the input to be fully
/// consumed.
pub fn from_bytes<T: XdrDecode>(bytes: &[u8]) -> Result<T, XdrError> {
    let mut dec = XdrDecoder::new(bytes);
    let value = T::decode(&mut dec)?;
    dec.finish()?;
    Ok(value)
}

impl XdrEncode for u32 {
    fn encode(&self, enc: &mut XdrEncoder) {
        enc.put_u32(*self);
    }
}

impl XdrDecode for u32 {
    fn decode(dec: &mut XdrDecoder<'_>) -> Result<Self, XdrError> {
        dec.get_u32()
    }
}

impl XdrEncode for i32 {
    fn encode(&self, enc: &mut XdrEncoder) {
        enc.put_i32(*self);
    }
}

impl XdrDecode for i32 {
    fn decode(dec: &mut XdrDecoder<'_>) -> Result<Self, XdrError> {
        dec.get_i32()
    }
}

impl XdrEncode for u64 {
    fn encode(&self, enc: &mut XdrEncoder) {
        enc.put_u64(*self);
    }
}

impl XdrDecode for u64 {
    fn decode(dec: &mut XdrDecoder<'_>) -> Result<Self, XdrError> {
        dec.get_u64()
    }
}

impl XdrEncode for i64 {
    fn encode(&self, enc: &mut XdrEncoder) {
        enc.put_i64(*self);
    }
}

impl XdrDecode for i64 {
    fn decode(dec: &mut XdrDecoder<'_>) -> Result<Self, XdrError> {
        dec.get_i64()
    }
}

impl XdrEncode for bool {
    fn encode(&self, enc: &mut XdrEncoder) {
        enc.put_bool(*self);
    }
}

impl XdrDecode for bool {
    fn decode(dec: &mut XdrDecoder<'_>) -> Result<Self, XdrError> {
        dec.get_bool()
    }
}

impl XdrEncode for String {
    fn encode(&self, enc: &mut XdrEncoder) {
        enc.put_string(self);
    }
}

impl XdrDecode for String {
    fn decode(dec: &mut XdrDecoder<'_>) -> Result<Self, XdrError> {
        dec.get_string()
    }
}

impl XdrEncode for Vec<u8> {
    fn encode(&self, enc: &mut XdrEncoder) {
        enc.put_opaque(self);
    }
}

impl XdrDecode for Vec<u8> {
    fn decode(dec: &mut XdrDecoder<'_>) -> Result<Self, XdrError> {
        dec.get_opaque()
    }
}

/// Encodes a slice of values as a counted XDR array.
pub fn encode_vec<T: XdrEncode>(items: &[T], enc: &mut XdrEncoder) {
    let len = u32::try_from(items.len()).expect("array longer than u32::MAX");
    enc.put_u32(len);
    for item in items {
        item.encode(enc);
    }
}

/// Decodes a counted XDR array of values.
pub fn decode_vec<T: XdrDecode>(dec: &mut XdrDecoder<'_>) -> Result<Vec<T>, XdrError> {
    let n = dec.get_count(4)?;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        out.push(T::decode(dec)?);
    }
    Ok(out)
}

impl<T: XdrEncode> XdrEncode for Option<T> {
    fn encode(&self, enc: &mut XdrEncoder) {
        match self {
            Some(v) => {
                enc.put_bool(true);
                v.encode(enc);
            }
            None => enc.put_bool(false),
        }
    }
}

impl<T: XdrDecode> XdrDecode for Option<T> {
    fn decode(dec: &mut XdrDecoder<'_>) -> Result<Self, XdrError> {
        if dec.get_bool()? {
            Ok(Some(T::decode(dec)?))
        } else {
            Ok(None)
        }
    }
}

impl<A: XdrEncode, B: XdrEncode> XdrEncode for (A, B) {
    fn encode(&self, enc: &mut XdrEncoder) {
        self.0.encode(enc);
        self.1.encode(enc);
    }
}

impl<A: XdrDecode, B: XdrDecode> XdrDecode for (A, B) {
    fn decode(dec: &mut XdrDecoder<'_>) -> Result<Self, XdrError> {
        Ok((A::decode(dec)?, B::decode(dec)?))
    }
}

impl<const N: usize> XdrEncode for [u8; N] {
    fn encode(&self, enc: &mut XdrEncoder) {
        enc.put_opaque_fixed(self);
    }
}

impl<const N: usize> XdrDecode for [u8; N] {
    fn decode(dec: &mut XdrDecoder<'_>) -> Result<Self, XdrError> {
        let bytes = dec.get_opaque_fixed(N)?;
        let mut out = [0u8; N];
        out.copy_from_slice(bytes);
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn option_round_trip() {
        let some: Option<u32> = Some(9);
        let none: Option<u32> = None;
        assert_eq!(from_bytes::<Option<u32>>(&to_bytes(&some)).unwrap(), some);
        assert_eq!(from_bytes::<Option<u32>>(&to_bytes(&none)).unwrap(), none);
    }

    #[test]
    fn tuple_round_trip() {
        let v = (3u32, String::from("x"));
        assert_eq!(from_bytes::<(u32, String)>(&to_bytes(&v)).unwrap(), v);
    }

    #[test]
    fn fixed_array_round_trip() {
        let v = [1u8, 2, 3, 4, 5, 6, 7, 8];
        assert_eq!(from_bytes::<[u8; 8]>(&to_bytes(&v)).unwrap(), v);
    }

    #[test]
    fn counted_vec_round_trip() {
        let v = vec![1u64, 2, 3];
        let mut enc = XdrEncoder::new();
        encode_vec(&v, &mut enc);
        let bytes = enc.finish();
        let mut dec = XdrDecoder::new(&bytes);
        assert_eq!(decode_vec::<u64>(&mut dec).unwrap(), v);
        dec.finish().unwrap();
    }

    #[test]
    fn from_bytes_rejects_trailing_garbage() {
        let mut bytes = to_bytes(&7u32);
        bytes.extend_from_slice(&[0, 0, 0, 0]);
        assert!(from_bytes::<u32>(&bytes).is_err());
    }
}
