//! The XDR decoder, hardened against hostile input.

use crate::{padded_len, XdrError};

/// Default cap on any single variable-length item (16 MiB).
///
/// Replication-protocol messages are far smaller; the cap prevents a
/// Byzantine sender from forcing a huge allocation with a forged length
/// prefix before the real bounds check against the input runs.
pub const DEFAULT_MAX_ITEM_LEN: usize = 16 * 1024 * 1024;

/// Deserializes values from an XDR byte stream.
///
/// Every read is bounds-checked; declared lengths are validated both against
/// the remaining input and against an allocation cap, and padding bytes are
/// required to be zero.
#[derive(Debug, Clone)]
pub struct XdrDecoder<'a> {
    buf: &'a [u8],
    pos: usize,
    max_item_len: usize,
}

impl<'a> XdrDecoder<'a> {
    /// Creates a decoder over `buf` with the default allocation cap.
    pub fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0, max_item_len: DEFAULT_MAX_ITEM_LEN }
    }

    /// Creates a decoder with a custom per-item allocation cap.
    pub fn with_max_item_len(buf: &'a [u8], max_item_len: usize) -> Self {
        Self { buf, pos: 0, max_item_len }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Current read offset from the start of the input.
    pub fn position(&self) -> usize {
        self.pos
    }

    /// Succeeds only if the entire input has been consumed.
    pub fn finish(&self) -> Result<(), XdrError> {
        if self.remaining() == 0 {
            Ok(())
        } else {
            Err(XdrError::TrailingBytes(self.remaining()))
        }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], XdrError> {
        if self.remaining() < n {
            return Err(XdrError::UnexpectedEof { needed: n, remaining: self.remaining() });
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    /// Reads an unsigned 32-bit integer.
    pub fn get_u32(&mut self) -> Result<u32, XdrError> {
        let b = self.take(4)?;
        Ok(u32::from_be_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Reads a signed 32-bit integer.
    pub fn get_i32(&mut self) -> Result<i32, XdrError> {
        Ok(self.get_u32()? as i32)
    }

    /// Reads an unsigned 64-bit "hyper" integer.
    pub fn get_u64(&mut self) -> Result<u64, XdrError> {
        let b = self.take(8)?;
        Ok(u64::from_be_bytes([b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7]]))
    }

    /// Reads a signed 64-bit "hyper" integer.
    pub fn get_i64(&mut self) -> Result<i64, XdrError> {
        Ok(self.get_u64()? as i64)
    }

    /// Reads a boolean, rejecting any value other than 0 or 1.
    pub fn get_bool(&mut self) -> Result<bool, XdrError> {
        match self.get_u32()? {
            0 => Ok(false),
            1 => Ok(true),
            v => Err(XdrError::InvalidBool(v)),
        }
    }

    /// Reads `len` bytes of fixed-length opaque data plus padding.
    pub fn get_opaque_fixed(&mut self, len: usize) -> Result<&'a [u8], XdrError> {
        let data = self.take(len)?;
        let pad = self.take(padded_len(len) - len)?;
        if pad.iter().any(|&b| b != 0) {
            return Err(XdrError::NonZeroPadding);
        }
        Ok(data)
    }

    /// Reads variable-length opaque data as a borrowed slice.
    pub fn get_opaque_ref(&mut self) -> Result<&'a [u8], XdrError> {
        let len = self.get_u32()? as usize;
        if len > self.max_item_len {
            return Err(XdrError::LengthTooLarge { declared: len, max: self.max_item_len });
        }
        self.get_opaque_fixed(len)
    }

    /// Reads variable-length opaque data into an owned vector.
    pub fn get_opaque(&mut self) -> Result<Vec<u8>, XdrError> {
        Ok(self.get_opaque_ref()?.to_vec())
    }

    /// Reads a UTF-8 string.
    pub fn get_string(&mut self) -> Result<String, XdrError> {
        let bytes = self.get_opaque_ref()?;
        std::str::from_utf8(bytes).map(str::to_owned).map_err(|_| XdrError::InvalidUtf8)
    }

    /// Reads a `u32` element count for an array, validating it against the
    /// remaining input so a forged count cannot trigger a huge
    /// pre-allocation.
    ///
    /// `min_elem_size` is the smallest possible encoding of one element
    /// (four bytes for anything in XDR).
    pub fn get_count(&mut self, min_elem_size: usize) -> Result<usize, XdrError> {
        let n = self.get_u32()? as usize;
        let floor = n.saturating_mul(min_elem_size.max(1));
        if floor > self.remaining() {
            return Err(XdrError::UnexpectedEof { needed: floor, remaining: self.remaining() });
        }
        Ok(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::XdrEncoder;

    #[test]
    fn round_trip_all_primitives() {
        let mut enc = XdrEncoder::new();
        enc.put_u32(u32::MAX);
        enc.put_i32(i32::MIN);
        enc.put_u64(u64::MAX);
        enc.put_i64(i64::MIN);
        enc.put_bool(true);
        let bytes = enc.finish();
        let mut dec = XdrDecoder::new(&bytes);
        assert_eq!(dec.get_u32().unwrap(), u32::MAX);
        assert_eq!(dec.get_i32().unwrap(), i32::MIN);
        assert_eq!(dec.get_u64().unwrap(), u64::MAX);
        assert_eq!(dec.get_i64().unwrap(), i64::MIN);
        assert!(dec.get_bool().unwrap());
        dec.finish().unwrap();
    }

    #[test]
    fn eof_is_detected() {
        let mut dec = XdrDecoder::new(&[0, 0]);
        assert!(matches!(dec.get_u32(), Err(XdrError::UnexpectedEof { .. })));
    }

    #[test]
    fn forged_length_is_rejected_before_allocation() {
        // Length prefix claims 4 GiB with only 4 bytes of payload behind it.
        let bytes = [0xff, 0xff, 0xff, 0xff, 1, 2, 3, 4];
        let mut dec = XdrDecoder::new(&bytes);
        assert!(matches!(dec.get_opaque(), Err(XdrError::LengthTooLarge { .. })));
    }

    #[test]
    fn nonzero_padding_is_rejected() {
        // "A" encoded with a corrupted padding byte.
        let bytes = [0, 0, 0, 1, b'A', 0, 1, 0];
        let mut dec = XdrDecoder::new(&bytes);
        assert_eq!(dec.get_opaque(), Err(XdrError::NonZeroPadding));
    }

    #[test]
    fn invalid_bool_is_rejected() {
        let bytes = [0, 0, 0, 2];
        let mut dec = XdrDecoder::new(&bytes);
        assert_eq!(dec.get_bool(), Err(XdrError::InvalidBool(2)));
    }

    #[test]
    fn invalid_utf8_is_rejected() {
        let mut enc = XdrEncoder::new();
        enc.put_opaque(&[0xff, 0xfe]);
        let bytes = enc.finish();
        let mut dec = XdrDecoder::new(&bytes);
        assert_eq!(dec.get_string(), Err(XdrError::InvalidUtf8));
    }

    #[test]
    fn trailing_bytes_are_reported() {
        let bytes = [0, 0, 0, 1, 0, 0, 0, 2];
        let mut dec = XdrDecoder::new(&bytes);
        dec.get_u32().unwrap();
        assert_eq!(dec.finish(), Err(XdrError::TrailingBytes(4)));
    }

    #[test]
    fn forged_array_count_is_rejected() {
        let bytes = [0x7f, 0xff, 0xff, 0xff];
        let mut dec = XdrDecoder::new(&bytes);
        assert!(matches!(dec.get_count(4), Err(XdrError::UnexpectedEof { .. })));
    }
}
