//! Decoding error type.

use std::fmt;

/// An error produced while decoding XDR data.
///
/// Encoding is infallible (it only appends to a growable buffer); every
/// variant here describes malformed or hostile input encountered by
/// [`crate::XdrDecoder`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum XdrError {
    /// The input ended before the requested item could be read.
    UnexpectedEof {
        /// Bytes needed to satisfy the read.
        needed: usize,
        /// Bytes remaining in the input.
        remaining: usize,
    },
    /// A padding byte required to be zero was not zero.
    NonZeroPadding,
    /// A boolean field held a value other than 0 or 1.
    InvalidBool(u32),
    /// An enum discriminant did not match any known variant.
    InvalidDiscriminant {
        /// Name of the type being decoded.
        type_name: &'static str,
        /// The unrecognized discriminant value.
        value: u32,
    },
    /// A length prefix exceeded the decoder's allocation cap.
    LengthTooLarge {
        /// The declared length.
        declared: usize,
        /// The maximum the decoder allows.
        max: usize,
    },
    /// A string field contained invalid UTF-8.
    InvalidUtf8,
    /// `finish` was called with unread bytes left in the input.
    TrailingBytes(usize),
    /// A fixed-size opaque field had an unexpected length.
    FixedLengthMismatch {
        /// Length expected by the caller.
        expected: usize,
        /// Length found in the input.
        found: usize,
    },
}

impl fmt::Display for XdrError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            XdrError::UnexpectedEof { needed, remaining } => {
                write!(f, "unexpected end of input: needed {needed} bytes, {remaining} remain")
            }
            XdrError::NonZeroPadding => write!(f, "non-zero XDR padding byte"),
            XdrError::InvalidBool(v) => write!(f, "invalid boolean value {v}"),
            XdrError::InvalidDiscriminant { type_name, value } => {
                write!(f, "invalid discriminant {value} for {type_name}")
            }
            XdrError::LengthTooLarge { declared, max } => {
                write!(f, "declared length {declared} exceeds cap {max}")
            }
            XdrError::InvalidUtf8 => write!(f, "string field is not valid UTF-8"),
            XdrError::TrailingBytes(n) => write!(f, "{n} trailing bytes after decode"),
            XdrError::FixedLengthMismatch { expected, found } => {
                write!(f, "fixed opaque length mismatch: expected {expected}, found {found}")
            }
        }
    }
}

impl std::error::Error for XdrError {}
