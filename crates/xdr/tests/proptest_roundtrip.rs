//! Property tests: XDR round-trips for arbitrary values, and decoder
//! robustness on arbitrary byte soup.

use base_xdr::{from_bytes, to_bytes, XdrDecoder, XdrEncoder};
use proptest::prelude::*;

proptest! {
    #[test]
    fn u32_round_trip(v: u32) {
        prop_assert_eq!(from_bytes::<u32>(&to_bytes(&v)).unwrap(), v);
    }

    #[test]
    fn i64_round_trip(v: i64) {
        prop_assert_eq!(from_bytes::<i64>(&to_bytes(&v)).unwrap(), v);
    }

    #[test]
    fn opaque_round_trip(v: Vec<u8>) {
        prop_assert_eq!(from_bytes::<Vec<u8>>(&to_bytes(&v)).unwrap(), v);
    }

    #[test]
    fn string_round_trip(s in "\\PC*") {
        prop_assert_eq!(from_bytes::<String>(&to_bytes(&s.clone())).unwrap(), s);
    }

    #[test]
    fn option_round_trip(v: Option<u64>) {
        prop_assert_eq!(from_bytes::<Option<u64>>(&to_bytes(&v)).unwrap(), v);
    }

    /// Encoded length is always a multiple of four.
    #[test]
    fn encoding_is_word_aligned(v: Vec<u8>, s in "\\PC*", n: u32) {
        let mut enc = XdrEncoder::new();
        enc.put_opaque(&v);
        enc.put_string(&s);
        enc.put_u32(n);
        prop_assert_eq!(enc.len() % 4, 0);
    }

    /// The decoder never panics on arbitrary input; it either yields a value
    /// or a structured error.
    #[test]
    fn decoder_never_panics(bytes: Vec<u8>) {
        let mut dec = XdrDecoder::new(&bytes);
        let _ = dec.get_u32();
        let _ = dec.get_opaque();
        let _ = dec.get_string();
        let _ = dec.get_bool();
        let _ = dec.finish();
    }

    /// A mixed record round-trips through a single buffer.
    #[test]
    fn mixed_record_round_trip(a: u32, b: bool, data: Vec<u8>, s in "[a-z]{0,32}") {
        let mut enc = XdrEncoder::new();
        enc.put_u32(a);
        enc.put_bool(b);
        enc.put_opaque(&data);
        enc.put_string(&s);
        let bytes = enc.finish();

        let mut dec = XdrDecoder::new(&bytes);
        prop_assert_eq!(dec.get_u32().unwrap(), a);
        prop_assert_eq!(dec.get_bool().unwrap(), b);
        prop_assert_eq!(dec.get_opaque().unwrap(), data);
        prop_assert_eq!(dec.get_string().unwrap(), s);
        dec.finish().unwrap();
    }
}
