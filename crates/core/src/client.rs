//! The BASE client: the `invoke` entry point of the paper's Figure 1.

use base_pbft::{ClientCore, ClientEvent, Config};
use base_crypto::NodeKeys;
use base_simnet::{Actor, Context, NodeId, SimDuration};

const TOKEN_PUMP: u64 = (1 << 63) | 1;

/// A client of a BASE-replicated service.
///
/// `invoke` queues an operation; the client carries out the client side of
/// the replication protocol and records the result once enough replicas
/// have responded (f+1 matching replies; 2f+1 for read-only operations).
/// For request/reply pipelines embedded in other actors (like the NFS
/// relay), use [`base_pbft::ClientCore`] directly.
pub struct BaseClient {
    core: ClientCore,
    pace: SimDuration,
    /// Completed operations as `(invocation id, result)` pairs, in order.
    pub completed: Vec<(u64, Vec<u8>)>,
}

impl BaseClient {
    /// Creates a client. Its node id (from `keys`) must be `>= n`.
    pub fn new(cfg: Config, keys: NodeKeys) -> Self {
        Self {
            core: ClientCore::new(cfg, keys),
            pace: SimDuration::from_millis(1),
            completed: Vec::new(),
        }
    }

    /// Spaces submissions at least `gap` apart instead of firing the next
    /// queued operation the moment one completes (chaos campaigns use this
    /// to spread the workload across a fault schedule).
    pub fn set_pace(&mut self, gap: SimDuration) {
        self.pace = gap;
        self.core.auto_pump = false;
    }

    /// Invokes an operation on the replicated service (paper Figure 1:
    /// `invoke(req, rep, read_only)`). Returns immediately; the result
    /// appears in [`BaseClient::completed`] once the reply quorum arrives.
    pub fn invoke(&mut self, op: Vec<u8>, read_only: bool) {
        self.core.submit(op, read_only);
    }

    /// True when nothing is queued or in flight.
    pub fn idle(&self) -> bool {
        !self.core.busy() && self.core.queued() == 0
    }

    /// Access to the protocol core (latency statistics etc.).
    pub fn core(&self) -> &ClientCore {
        &self.core
    }

    /// Mutable access to the protocol core (cost-model overrides).
    pub fn core_mut(&mut self) -> &mut ClientCore {
        &mut self.core
    }
}

impl Actor for BaseClient {
    fn on_start(&mut self, ctx: &mut Context<'_>) {
        self.core.pump(ctx);
        ctx.set_timer(self.pace, TOKEN_PUMP);
    }

    fn on_message(&mut self, from: NodeId, payload: &[u8], ctx: &mut Context<'_>) {
        if let Some(ClientEvent::Completed { timestamp, result }) =
            self.core.on_message(from, payload, ctx)
        {
            self.completed.push((timestamp, result));
        }
    }

    fn on_timer(&mut self, token: u64, ctx: &mut Context<'_>) {
        if token == TOKEN_PUMP {
            self.core.pump(ctx);
            ctx.set_timer(self.pace, TOKEN_PUMP);
            return;
        }
        self.core.on_timer(token, ctx);
    }
}
