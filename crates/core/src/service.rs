//! [`BaseService`]: the abstraction layer between the replication protocol
//! and a conformance wrapper.

use crate::wrapper::{Footprint, ModifyLog, Wrapper};
use base_crypto::Digest;
use base_pbft::tree::{chunk_digest, chunked_leaf_from_digests, leaf_digest};
use base_pbft::{CostModel, ExecEnv, PartitionTree, Service};
use base_simnet::{lane_makespan, MetricsRegistry};
use std::collections::{BTreeMap, BTreeSet, HashMap};

/// Branching factor of the abstract-state partition tree.
const BRANCHING: u32 = 16;

/// Counters exposed for the checkpoint/state-transfer experiments.
#[derive(Debug, Default, Clone)]
pub struct BaseStats {
    /// Checkpoints taken.
    pub checkpoints: u64,
    /// `get_obj` calls made to digest modified objects at checkpoints.
    pub objects_digested: u64,
    /// Internal partition-tree nodes rehashed by batched digest updates.
    /// Grows with *distinct touched nodes*, not dirty-leaves × depth.
    pub node_hashes: u64,
    /// Pre-image copies captured by the `modify` upcall.
    pub preimage_copies: u64,
    /// Objects written through `put_objs` during installs.
    pub objects_installed: u64,
    /// Full abstraction-function scans (warm reboots).
    pub rebuild_scans: u64,
    /// Chunk digests recomputed by chunked digest passes (chunked mode
    /// only; the chunk's bytes changed since the previous pass).
    pub chunks_rehashed: u64,
    /// Chunk digests reused from the snapshot cache (chunked mode only;
    /// the chunk's bytes were unchanged, so only a memcmp was paid).
    pub chunks_reused: u64,
}

/// Per-object snapshot kept by chunked digesting: the value bytes and
/// per-chunk digests as of the last digest pass over that object. A chunk
/// whose bytes are unchanged (a memcmp) reuses its cached digest instead of
/// re-hashing — the "re-hash only what changed" half of the chunked-Merkle
/// optimization. Bounded to multi-chunk objects, so the cache holds at most
/// one extra copy of each *large* object.
#[derive(Debug, Clone)]
struct ChunkSnapshot {
    value: Vec<u8>,
    digests: Vec<Digest>,
}

/// Result of digesting one `(index, value)` pair in a digest pass.
struct DigestOutcome {
    digest: Digest,
    /// Replacement snapshot for the chunk cache: `Some(Some(_))` = store,
    /// `Some(None)` = evict (value gone or no longer multi-chunk), `None` =
    /// leave the cache untouched (legacy mode).
    snapshot: Option<Option<ChunkSnapshot>>,
    /// Bytes actually pushed through SHA-256 (chunk data plus the leaf
    /// fold input), for CPU charges in chunked mode.
    hashed_bytes: u64,
    chunks_reused: u64,
    chunks_rehashed: u64,
}

/// Digests one value, reusing cached chunk digests where the bytes match.
fn digest_one_chunked(
    idx: u64,
    value: &Option<Vec<u8>>,
    chunk_size: usize,
    cache: &HashMap<u64, ChunkSnapshot>,
) -> DigestOutcome {
    if chunk_size == 0 {
        // Legacy whole-object digests: byte-identical to the pre-chunking
        // behaviour, cache untouched.
        let (digest, hashed) = match value {
            Some(v) => (leaf_digest(idx, v), v.len() as u64),
            None => (Digest::ZERO, 0),
        };
        return DigestOutcome {
            digest,
            snapshot: None,
            hashed_bytes: hashed,
            chunks_reused: 0,
            chunks_rehashed: 0,
        };
    }
    let Some(v) = value else {
        return DigestOutcome {
            digest: Digest::ZERO,
            snapshot: Some(None),
            hashed_bytes: 0,
            chunks_reused: 0,
            chunks_rehashed: 0,
        };
    };
    let prev = cache.get(&idx);
    let mut reused = 0u64;
    let mut rehashed = 0u64;
    let mut hashed_bytes = 0u64;
    let digests: Vec<Digest> = v
        .chunks(chunk_size)
        .enumerate()
        .map(|(c, data)| {
            if let Some(p) = prev {
                if let (Some(d), Some(old)) = (p.digests.get(c), p.value.chunks(chunk_size).nth(c))
                {
                    if old == data {
                        reused += 1;
                        return *d;
                    }
                }
            }
            rehashed += 1;
            hashed_bytes += data.len() as u64;
            chunk_digest(idx, c as u32, data)
        })
        .collect();
    let digest = chunked_leaf_from_digests(idx, v.len() as u64, &digests);
    hashed_bytes += digests.len() as u64 * 32 + 28; // the leaf fold input
    let snapshot = if digests.len() >= 2 {
        Some(Some(ChunkSnapshot { value: v.clone(), digests }))
    } else {
        Some(None)
    };
    DigestOutcome { digest, snapshot, hashed_bytes, chunks_reused: reused, chunks_rehashed: rehashed }
}

/// Computes the leaf digest of every `(index, value)` pair, fanning the
/// hashing over `workers` scoped threads when it pays.
///
/// Output slot `i` always holds the outcome for `values[i]` — workers claim
/// items through an atomic cursor but write results by index, so the fold
/// the caller performs over the returned vector is identical at any worker
/// count (the same discipline as `run_campaign_parallel` / parallel ddmin).
/// The chunk cache is only *read* here; the caller applies the returned
/// snapshots in index order.
fn digest_values(
    values: &[(u64, Option<Vec<u8>>)],
    chunk_size: usize,
    cache: &HashMap<u64, ChunkSnapshot>,
    workers: usize,
) -> Vec<DigestOutcome> {
    let digest_one = |&(idx, ref value): &(u64, Option<Vec<u8>>)| {
        digest_one_chunked(idx, value, chunk_size, cache)
    };
    if workers <= 1 || values.len() < 2 {
        return values.iter().map(digest_one).collect();
    }
    let workers = workers.min(values.len());
    let next = std::sync::atomic::AtomicUsize::new(0);
    let slots: std::sync::Mutex<Vec<Option<DigestOutcome>>> = std::sync::Mutex::new(
        std::iter::repeat_with(|| None).take(values.len()).collect(),
    );
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let idx = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                if idx >= values.len() {
                    break;
                }
                let d = digest_one(&values[idx]);
                slots.lock().expect("digest worker panicked")[idx] = Some(d);
            });
        }
    });
    slots
        .into_inner()
        .expect("digest worker panicked")
        .into_iter()
        .map(|d| d.expect("every value digested"))
        .collect()
}

/// Collects the abstract value of every index in `indices`, fanning the
/// (pure, `&self`) abstraction function over `workers` scoped threads.
///
/// Same atomic-cursor / index-slot discipline as [`digest_values`]: output
/// slot `i` always holds `(indices[i], get_obj(indices[i]))`, so the result
/// is byte-identical at any worker count.
fn collect_values<W: Wrapper>(
    wrapper: &W,
    indices: &[u64],
    workers: usize,
) -> Vec<(u64, Option<Vec<u8>>)> {
    if workers <= 1 || indices.len() < 2 {
        return indices.iter().map(|&idx| (idx, wrapper.get_obj(idx))).collect();
    }
    let workers = workers.min(indices.len());
    let next = std::sync::atomic::AtomicUsize::new(0);
    let slots: std::sync::Mutex<Vec<Option<(u64, Option<Vec<u8>>)>>> = std::sync::Mutex::new(
        std::iter::repeat_with(|| None).take(indices.len()).collect(),
    );
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                if i >= indices.len() {
                    break;
                }
                let idx = indices[i];
                let v = (idx, wrapper.get_obj(idx));
                slots.lock().expect("collect worker panicked")[i] = Some(v);
            });
        }
    });
    slots
        .into_inner()
        .expect("collect worker panicked")
        .into_iter()
        .map(|v| v.expect("every index collected"))
        .collect()
}

/// Computes the footprint of every operation in a batch, fanning the
/// (pure, `&self`) analysis over `workers` scoped threads when it pays.
///
/// Output slot `i` always holds the footprint of `ops[i]` — workers claim
/// items through an atomic cursor but write results by index, the same
/// discipline as [`digest_values`], so the partition the caller derives is
/// identical at any worker count.
fn compute_footprints<W: Wrapper>(
    wrapper: &W,
    ops: &[(&[u8], u32)],
    workers: usize,
) -> Vec<Option<Footprint>> {
    if workers <= 1 || ops.len() < 2 {
        return ops.iter().map(|(op, _)| wrapper.footprint(op)).collect();
    }
    let workers = workers.min(ops.len());
    let next = std::sync::atomic::AtomicUsize::new(0);
    let slots: std::sync::Mutex<Vec<Option<Option<Footprint>>>> =
        std::sync::Mutex::new(vec![None; ops.len()]);
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let idx = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                if idx >= ops.len() {
                    break;
                }
                let fp = wrapper.footprint(ops[idx].0);
                slots.lock().expect("footprint worker panicked")[idx] = Some(fp);
            });
        }
    });
    slots
        .into_inner()
        .expect("footprint worker panicked")
        .into_iter()
        .map(|fp| fp.expect("every op analyzed"))
        .collect()
}

/// Partitions a batch into conflict groups from per-operation footprints.
///
/// Two operations land in the same group when they (transitively) conflict:
/// either's writes intersect the other's reads or writes, or either has no
/// declared footprint (`None` conflicts with everything, so a batch of
/// footprint-less operations degenerates to one group — sequential
/// batch-order execution, the pre-pipelining behaviour).
///
/// The result is a deterministic function of the footprints alone: groups
/// are ordered by their smallest member index and each group lists its
/// members in ascending batch order. Non-conflicting groups touch disjoint
/// abstract objects by construction, so executing them in any interleaving
/// yields the same abstract state and replies as sequential batch order —
/// which is exactly what the conflict-partition proptests assert.
pub fn conflict_groups(footprints: &[Option<Footprint>]) -> Vec<Vec<usize>> {
    let n = footprints.len();
    // Union-find with the invariant that a root is its set's minimum index,
    // so group identity (and thus order) never depends on union order.
    let mut parent: Vec<usize> = (0..n).collect();
    fn find(parent: &mut [usize], mut x: usize) -> usize {
        while parent[x] != x {
            parent[x] = parent[parent[x]];
            x = parent[x];
        }
        x
    }
    for i in 0..n {
        for j in 0..i {
            let conflict = match (&footprints[i], &footprints[j]) {
                (Some(a), Some(b)) => a.conflicts_with(b),
                _ => true,
            };
            if conflict {
                let (ri, rj) = (find(&mut parent, i), find(&mut parent, j));
                if ri != rj {
                    parent[ri.max(rj)] = ri.min(rj);
                }
            }
        }
    }
    let mut groups: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
    for i in 0..n {
        groups.entry(find(&mut parent, i)).or_default().push(i);
    }
    groups.into_values().collect()
}

/// Implements the replication library's [`Service`] interface on top of a
/// conformance [`Wrapper`], adding copy-on-write incremental checkpoints of
/// the abstract state and abstraction-aware proactive recovery.
///
/// Checkpoint storage follows the paper (§2.2): the service keeps only the
/// *current* concrete state plus, per retained checkpoint, reverse-delta
/// copies of the abstract objects modified after it (captured lazily by the
/// [`ModifyLog`]), and a copy-on-write snapshot of the digest tree.
pub struct BaseService<W: Wrapper> {
    wrapper: W,
    /// Digests of the current abstract state. Leaves of dirty objects are
    /// refreshed at checkpoint time (and before state transfer).
    tree: PartitionTree,
    mods: ModifyLog,
    /// Finalized reverse-delta records: checkpoint seq → (object → value
    /// *at that checkpoint*, captured at its first later modification).
    records: BTreeMap<u64, HashMap<u64, Option<Vec<u8>>>>,
    /// Per-object index over `records`: object → sorted checkpoint seqs of
    /// the records containing a pre-image of it. Lets `checkpoint_object`
    /// resolve a fetch in O(log retained-ckpts) instead of scanning every
    /// retained record.
    record_seqs: HashMap<u64, BTreeSet<u64>>,
    /// Digest-tree snapshots per retained checkpoint (O(1) clones).
    ckpt_trees: BTreeMap<u64, PartitionTree>,
    last_ckpt: Option<u64>,
    /// Chunked-digest granularity: 0 = legacy whole-object leaf digests;
    /// otherwise leaves fold fixed-size chunk digests
    /// ([`base_pbft::tree::chunked_leaf_digest`]), so a small write to a
    /// big object re-hashes only the touched chunks.
    chunk_size: usize,
    /// Previous value + chunk digests per multi-chunk object, as of the
    /// last digest pass (the reuse cache chunked digesting diffs against).
    chunk_cache: HashMap<u64, ChunkSnapshot>,
    /// Worker threads used to digest abstract objects at checkpoint flushes
    /// and warm-reboot rescans (1 = sequential; results are byte-identical
    /// at any count).
    digest_workers: usize,
    /// Worker lanes of the conflict-partitioned execution stage: fans the
    /// footprint analysis across scoped threads and sets the lane count of
    /// the modelled parallel makespan. Charge-neutral — results, charges
    /// and tree roots are byte-identical at any count.
    exec_workers: usize,
    cost: CostModel,
    /// Experiment counters.
    pub stats: BaseStats,
    /// Abstraction-layer metrics (`base.*` names): checkpoint dirty-set
    /// sizes, pre-image copies, install/rebuild activity.
    pub metrics: MetricsRegistry,
}

impl<W: Wrapper> BaseService<W> {
    /// Wraps `wrapper` into a replicable service.
    ///
    /// The digest worker pool defaults to the host's available parallelism
    /// (results are byte-identical at any count, so this is purely a
    /// wall-clock choice); [`BaseService::set_digest_workers`] overrides.
    pub fn new(wrapper: W) -> Self {
        let n = wrapper.n_objects();
        let digest_workers =
            std::thread::available_parallelism().map(std::num::NonZeroUsize::get).unwrap_or(1);
        Self {
            wrapper,
            tree: PartitionTree::new(n, BRANCHING),
            mods: ModifyLog::new(),
            records: BTreeMap::new(),
            record_seqs: HashMap::new(),
            ckpt_trees: BTreeMap::new(),
            last_ckpt: None,
            chunk_size: 0,
            chunk_cache: HashMap::new(),
            digest_workers,
            exec_workers: 1,
            cost: CostModel::default(),
            stats: BaseStats::default(),
            metrics: MetricsRegistry::new(),
        }
    }

    /// Read access to the wrapped implementation (test inspection).
    pub fn wrapper(&self) -> &W {
        &self.wrapper
    }

    /// Mutable access to the wrapped implementation (fault injection).
    pub fn wrapper_mut(&mut self) -> &mut W {
        &mut self.wrapper
    }

    /// Number of abstract objects modified since the last checkpoint.
    pub fn dirty_objects(&self) -> usize {
        self.mods.dirty_count()
    }

    /// Sets the number of worker threads used to digest abstract state at
    /// checkpoint flushes and warm-reboot rescans. Roots, stats and metrics
    /// are byte-identical at any count; only wall-clock changes.
    pub fn set_digest_workers(&mut self, workers: usize) {
        self.digest_workers = workers.max(1);
    }

    /// Runs one digest pass over `values` (in parallel across
    /// `digest_workers`), applying the chunk-cache updates and chunk-reuse
    /// stats in ascending slot order — a deterministic function of the
    /// values alone, independent of the worker count.
    fn digest_pass(&mut self, values: &[(u64, Option<Vec<u8>>)]) -> Vec<DigestOutcome> {
        let outcomes = digest_values(values, self.chunk_size, &self.chunk_cache, self.digest_workers);
        if self.chunk_size > 0 {
            let (mut reused, mut rehashed) = (0u64, 0u64);
            for ((idx, _), outcome) in values.iter().zip(&outcomes) {
                reused += outcome.chunks_reused;
                rehashed += outcome.chunks_rehashed;
                match &outcome.snapshot {
                    Some(Some(snap)) => {
                        self.chunk_cache.insert(*idx, snap.clone());
                    }
                    Some(None) => {
                        self.chunk_cache.remove(idx);
                    }
                    None => {}
                }
            }
            self.stats.chunks_reused += reused;
            self.stats.chunks_rehashed += rehashed;
            self.metrics.add("base.chunks_reused", reused);
            self.metrics.add("base.chunks_rehashed", rehashed);
        }
        outcomes
    }

    /// Digests `values` (in parallel across `digest_workers`) and applies
    /// them to the tree as one batch. Charges and stats fold in ascending
    /// index order, independent of the worker count. `count_digested`
    /// selects whether the pass counts toward `stats.objects_digested`
    /// (checkpoint flushes do; warm-reboot rescans historically have not).
    fn digest_into_tree(
        &mut self,
        values: Vec<(u64, Option<Vec<u8>>)>,
        count_digested: bool,
        env: &mut ExecEnv<'_>,
    ) {
        let outcomes = self.digest_pass(&values);
        let mut updates = Vec::with_capacity(values.len());
        for ((idx, value), outcome) in values.iter().zip(&outcomes) {
            if count_digested {
                self.stats.objects_digested += 1;
            }
            if self.chunk_size == 0 {
                // Legacy charge: the whole object's bytes (byte-identical
                // to the pre-chunking behaviour).
                if let Some(v) = value {
                    env.charge(self.cost.digest(v.len()));
                }
            } else if value.is_some() {
                // Chunked charge: only the bytes actually hashed — reused
                // chunks cost a memcmp, which the digest cost model treats
                // as free next to SHA-256.
                env.charge(self.cost.digest(outcome.hashed_bytes as usize));
            }
            updates.push((*idx, outcome.digest));
        }
        let batch = self.tree.set_leaves(updates);
        self.stats.node_hashes += batch.internal_hashes;
        self.metrics.add("base.tree_node_hashes", batch.internal_hashes);
    }

    /// Refreshes the digest-tree leaves of all dirty objects so `tree`
    /// reflects the true current abstract state. One batched tree update:
    /// each internal node above the dirty set is rehashed exactly once.
    /// Value collection fans the (pure, `&self`) abstraction function over
    /// the digest worker pool.
    fn flush_tree(&mut self, env: &mut ExecEnv<'_>) {
        let mut dirty: Vec<u64> = self.mods.dirty_indices().collect();
        dirty.sort_unstable();
        let values = collect_values(&self.wrapper, &dirty, self.digest_workers);
        self.digest_into_tree(values, true, env);
    }
}

impl<W: Wrapper> Service for BaseService<W> {
    fn execute(
        &mut self,
        op: &[u8],
        client: u32,
        nondet: &[u8],
        read_only: bool,
        env: &mut ExecEnv<'_>,
    ) -> Vec<u8> {
        let before = self.mods.dirty_count();
        let result = self.wrapper.execute(op, client, nondet, read_only, &mut self.mods, env);
        let copies = (self.mods.dirty_count() - before) as u64;
        self.stats.preimage_copies += copies;
        self.metrics.add("base.preimage_copies", copies);
        result
    }

    fn execute_batch(
        &mut self,
        ops: &[(&[u8], u32)],
        nondet: &[u8],
        env: &mut ExecEnv<'_>,
    ) -> Vec<Vec<u8>> {
        if ops.is_empty() {
            return Vec::new();
        }
        // Pure parallel pass: per-op abstract footprints, then the conflict
        // partition. Both are deterministic functions of the batch, so all
        // replicas derive the same schedule.
        let fps = compute_footprints(&self.wrapper, ops, self.exec_workers);
        let groups = conflict_groups(&fps);
        // Mutation stays on this thread: groups run in deterministic order
        // (smallest member first), results merge back by batch index.
        let mut results: Vec<Option<Vec<u8>>> = vec![None; ops.len()];
        let mut costs: Vec<u64> = Vec::with_capacity(groups.len());
        for group in &groups {
            let before = env.charged().as_nanos();
            for &i in group {
                let (op, client) = ops[i];
                results[i] = Some(self.execute(op, client, nondet, false, env));
            }
            costs.push(env.charged().as_nanos() - before);
        }
        // Charge-neutral parallelism model: the makespan of scheduling the
        // group costs onto `exec_workers` lanes is reported for the bench
        // tables, but the simulator keeps the serial charge — worker count
        // must never move simulated time.
        self.metrics.observe("base.exec_groups", groups.len() as u64);
        self.metrics.observe("base.exec_serial_ns", lane_makespan(&costs, 1));
        self.metrics.observe("base.exec_makespan_ns", lane_makespan(&costs, self.exec_workers));
        results.into_iter().map(|r| r.expect("every group member executed")).collect()
    }

    fn set_exec_workers(&mut self, workers: usize) {
        self.exec_workers = workers.max(1);
    }

    fn set_chunk_size(&mut self, chunk_size: usize) {
        if self.chunk_size != chunk_size {
            self.chunk_size = chunk_size;
            self.chunk_cache.clear();
        }
    }

    fn transfer_object(&mut self, index: u64) -> Option<Vec<u8>> {
        self.wrapper.get_obj(index)
    }

    fn propose_nondet(&mut self, env: &mut ExecEnv<'_>) -> Vec<u8> {
        self.wrapper.propose_nondet(env)
    }

    fn check_nondet(&self, nondet: &[u8], env: &mut ExecEnv<'_>) -> bool {
        self.wrapper.check_nondet(nondet, env)
    }

    fn take_checkpoint(&mut self, seq: u64, env: &mut ExecEnv<'_>) -> Digest {
        self.flush_tree(env);
        // Finalize the epoch's pre-images as the previous checkpoint's
        // reverse-delta record. Before the first checkpoint there is no
        // retained checkpoint to attach them to.
        let copies = self.mods.drain();
        self.metrics.observe("base.checkpoint_dirty_objects", copies.len() as u64);
        if let Some(prev) = self.last_ckpt {
            for &idx in copies.keys() {
                self.record_seqs.entry(idx).or_default().insert(prev);
            }
            self.records.insert(prev, copies);
        }
        self.ckpt_trees.insert(seq, self.tree.clone());
        self.last_ckpt = Some(seq);
        self.stats.checkpoints += 1;
        self.metrics.inc("base.checkpoints");
        self.tree.root_digest()
    }

    fn discard_checkpoints_below(&mut self, seq: u64) {
        self.ckpt_trees = self.ckpt_trees.split_off(&seq);
        // A record keyed `k` only answers queries for checkpoints `<= k`;
        // with every retained checkpoint now `>= seq`, records below `seq`
        // are unreachable.
        let kept = self.records.split_off(&seq);
        let dropped = std::mem::replace(&mut self.records, kept);
        for (s, record) in dropped {
            for idx in record.keys() {
                if let Some(seqs) = self.record_seqs.get_mut(idx) {
                    seqs.remove(&s);
                    if seqs.is_empty() {
                        self.record_seqs.remove(idx);
                    }
                }
            }
        }
    }

    fn checkpoint_meta(&self, seq: u64, level: u32, index: u64) -> Option<Vec<Digest>> {
        self.ckpt_trees.get(&seq)?.children_digests(level, index)
    }

    fn checkpoint_object(&mut self, seq: u64, index: u64) -> Option<Vec<u8>> {
        if !self.ckpt_trees.contains_key(&seq) {
            return None;
        }
        // Value at checkpoint `seq` = the pre-image in the first record at
        // or after `seq` that contains the object (the object was unchanged
        // between `seq` and that record's checkpoint). The per-object seq
        // index resolves that record in O(log retained-ckpts) instead of a
        // scan over every retained record.
        if let Some(seqs) = self.record_seqs.get(&index) {
            if let Some(s) = seqs.range(seq..).next() {
                let value = self
                    .records
                    .get(s)
                    .and_then(|record| record.get(&index))
                    .expect("record_seqs entries mirror records");
                return value.clone();
            }
        }
        // ... or the pre-image of the open epoch if it was modified since
        // the newest checkpoint ...
        if let Some(copy) = self.mods.copy_of(index) {
            return copy.clone();
        }
        // ... or the current value (unmodified since `seq`).
        self.wrapper.get_obj(index)
    }

    fn current_tree(&self) -> &PartitionTree {
        &self.tree
    }

    fn prepare_for_transfer(&mut self, env: &mut ExecEnv<'_>) {
        // The fetcher diffs against `tree`; make it reflect reality.
        self.flush_tree(env);
    }

    fn install_checkpoint(
        &mut self,
        seq: u64,
        root: Digest,
        objs: Vec<(u64, Option<Vec<u8>>)>,
        env: &mut ExecEnv<'_>,
    ) {
        self.stats.objects_installed += objs.len() as u64;
        self.metrics.add("base.objects_installed", objs.len() as u64);
        self.wrapper.put_objs(&objs, env);
        let outcomes = self.digest_pass(&objs);
        let batch = self
            .tree
            .set_leaves(objs.iter().map(|(idx, _)| *idx).zip(outcomes.iter().map(|o| o.digest)));
        self.stats.node_hashes += batch.internal_hashes;
        self.metrics.add("base.tree_node_hashes", batch.internal_hashes);
        debug_assert_eq!(
            self.tree.root_digest(),
            root,
            "verified fetch must reproduce the checkpoint root"
        );
        // The current state *is* the checkpoint now.
        let _ = self.mods.drain();
        self.records.clear();
        self.record_seqs.clear();
        self.ckpt_trees.insert(seq, self.tree.clone());
        self.last_ckpt = Some(seq);
    }

    fn reboot(&mut self, clean: bool, env: &mut ExecEnv<'_>) {
        if clean {
            // Paper §2.2: restart the implementation from a clean initial
            // concrete state; the abstract state is then brought up to date
            // from the group, which hides corrupt concrete state entirely.
            self.wrapper.reset(env);
            self.tree = PartitionTree::new(self.wrapper.n_objects(), BRANCHING);
            let _ = self.mods.drain();
            self.records.clear();
            self.record_seqs.clear();
            self.ckpt_trees.clear();
            self.last_ckpt = None;
            // The concrete state is gone, so cached chunk snapshots no
            // longer describe anything.
            self.chunk_cache.clear();
        } else {
            // Warm reboot (§3.4): the concrete state survived; rebuild the
            // conformance rep and recompute the abstraction function over
            // every object so corrupt or stale objects show up as digest
            // mismatches and get repaired by the fetch. The full rescan is
            // the heaviest digest pass in the system, so it fans across the
            // digest workers and lands as a single batched tree update.
            self.wrapper.rebuild_rep(env);
            self.stats.rebuild_scans += 1;
            self.metrics.inc("base.rebuild_scans");
            let indices: Vec<u64> = (0..self.wrapper.n_objects()).collect();
            let values = collect_values(&self.wrapper, &indices, self.digest_workers);
            self.digest_into_tree(values, false, env);
        }
    }

    fn corrupt_state(&mut self, seed: u64) {
        // Straight through to the implementation: the abstraction layer is
        // deliberately not told, so the digests in `tree` stay stale until
        // a warm reboot's rescan (above) re-derives them.
        self.wrapper.corrupt_state(seed);
    }
}
