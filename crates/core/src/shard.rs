//! Sharded multi-group BASE: the abstract object space is partitioned
//! across several *independent* replica groups, each running the full
//! unmodified agreement/checkpoint/recovery stack, with a deterministic
//! client-side router splitting requests by abstract-object footprint.
//!
//! The pieces:
//!
//! - [`ShardMap`]: a total, stable mapping from abstract object index to
//!   shard id — contiguous balanced ranges aligned with partition-tree
//!   subtree boundaries, so per-shard checkpoints stay hierarchical.
//! - [`ShardLockService`]: a service veneer adding the deterministic
//!   cross-shard commit protocol (`xprep`/`xcommit`/`xabort`) on top of
//!   any [`Service`]. Locks are ordinary replicated operations, so every
//!   correct replica of a shard holds the same lock table at the same
//!   sequence number — no extra agreement machinery is needed.
//! - [`ShardedClient`]: the router. Single-shard operations go directly
//!   to their group; cross-shard operations run a two-phase ordered
//!   commit (lock shards in ascending shard-id order, then commit on all;
//!   on conflict, release in reverse order, back off, retry).
//! - [`build_sharded_group`]: lays out `K` groups plus router clients on
//!   one deterministic simulation so the existing chaos/trace/bench
//!   tooling works unmodified.
//!
//! With `shards = 1` every path below degenerates to the unsharded
//! deployment *byte for byte*: shard 0 uses the untagged wire encoding,
//! the default node layout, the default retransmission-timer token and the
//! same key-directory seed, so event-for-event the simulation is the one
//! an unsharded [`crate::BaseClient`]/[`base_pbft::ClientActor`] run
//! produces (`tests/shard_equivalence.rs` enforces this).
//!
//! Consistency notes (also in `docs/DESIGN.md` §17): lock tables are
//! *conformance rep*, not abstract state — they are deliberately excluded
//! from checkpoints and cleared on checkpoint install and clean reboot. A
//! replica that state-transfers while locks are held may therefore briefly
//! disagree with its group about `xbusy` answers; at most `f` replicas can
//! be in that state at once (more would mean the group lost its quorum
//! entirely), so reply quorums of `f+1` mask the divergence and the next
//! state transfer repairs the replica. No conflicting `2f+1` checkpoint
//! certificate can form because lock state is never digested.

use crate::wrapper::Footprint;
use base_crypto::{KeyDirectory, NodeKeys};
use base_pbft::client::TOKEN_CLIENT_RETRANS;
use base_pbft::testing::COUNTER_REGS;
use base_pbft::{ClientCore, ClientEvent, Config, ExecEnv, PartitionTree, Replica, Service};
use base_simnet::{Actor, Context, MetricsRegistry, NodeId, SimDuration, Simulation};
use std::collections::{BTreeMap, VecDeque};

/// Timer token for the [`ShardedClient`] pump (same value as the
/// standalone client actors so the `shards = 1` schedule is identical).
const TOKEN_PUMP: u64 = (1 << 63) | 1;
/// Timer token for cross-shard commit retry backoff. Distinct from every
/// per-core retransmission token (those keep bit 63 set).
const TOKEN_XRETRY: u64 = 1 << 62;

/// A total, deterministic, balanced mapping from abstract object indices
/// to shard ids.
///
/// Shard `s` owns the contiguous index range [`ShardMap::range_of`]; the
/// ranges partition `0..n_objects` and differ in size by at most one.
/// Contiguity keeps each shard's objects inside whole partition-tree
/// subtrees, so per-shard hierarchical state transfer never straddles a
/// shard boundary.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardMap {
    n_objects: u64,
    shards: u32,
}

impl ShardMap {
    /// A map of `n_objects` abstract objects onto `shards` groups.
    pub fn new(n_objects: u64, shards: u32) -> Self {
        assert!(shards >= 1, "at least one shard");
        assert!(
            n_objects >= u64::from(shards),
            "need at least one object per shard"
        );
        Self { n_objects, shards }
    }

    /// Number of shards.
    pub fn shards(&self) -> u32 {
        self.shards
    }

    /// Number of abstract objects.
    pub fn n_objects(&self) -> u64 {
        self.n_objects
    }

    /// The shard owning abstract object `index`.
    pub fn shard_of(&self, index: u64) -> u32 {
        assert!(index < self.n_objects, "object index out of range");
        ((u128::from(index) * u128::from(self.shards)) / u128::from(self.n_objects)) as u32
    }

    /// The contiguous object-index range owned by `shard`.
    pub fn range_of(&self, shard: u32) -> std::ops::Range<u64> {
        assert!(shard < self.shards, "shard id out of range");
        let k = u128::from(self.shards);
        let n = u128::from(self.n_objects);
        let ceil = |a: u128| -> u64 { ((a + k - 1) / k) as u64 };
        ceil(u128::from(shard) * n)..ceil(u128::from(shard + 1) * n)
    }

    /// The sorted, deduplicated set of shards a footprint touches.
    pub fn shards_of(&self, fp: &Footprint) -> Vec<u32> {
        let mut out: Vec<u32> = fp
            .reads
            .iter()
            .chain(fp.writes.iter())
            .map(|&i| self.shard_of(i))
            .collect();
        out.sort_unstable();
        out.dedup();
        out
    }
}

/// Builds an `xprep` operation: lock `inner`'s footprint under `txid`.
pub fn op_xprep(txid: &str, inner: &[u8]) -> Vec<u8> {
    let mut op = format!("xprep {txid} ").into_bytes();
    op.extend_from_slice(inner);
    op
}

/// Builds an `xcommit` operation: execute `inner` and release `txid`.
pub fn op_xcommit(txid: &str, inner: &[u8]) -> Vec<u8> {
    let mut op = format!("xcommit {txid} ").into_bytes();
    op.extend_from_slice(inner);
    op
}

/// Builds an `xabort` operation: release `txid` without executing.
pub fn op_xabort(txid: &str) -> Vec<u8> {
    format!("xabort {txid}").into_bytes()
}

/// Splits `op` as `<verb> <txid>[ <inner>]`, returning the transaction id
/// and the (possibly empty) inner operation bytes. Byte-exact: the inner
/// operation is passed through untouched, so non-UTF-8 payloads survive.
fn split_tx<'a>(op: &'a [u8], verb: &[u8]) -> Option<(String, &'a [u8])> {
    let rest = op.strip_prefix(verb)?;
    match rest.iter().position(|&b| b == b' ') {
        Some(i) => Some((
            String::from_utf8_lossy(&rest[..i]).into_owned(),
            &rest[i + 1..],
        )),
        None if rest.is_empty() => None,
        None => Some((String::from_utf8_lossy(rest).into_owned(), &[][..])),
    }
}

/// A [`Service`] veneer adding the cross-shard commit protocol on top of
/// any inner service.
///
/// Protocol operations (UTF-8 prefix, inner operation bytes verbatim):
///
/// - `xprep <txid> <inner>` — acquire a lock on `inner`'s footprint for
///   `txid`. Replies `xok` (granted, or already held by `txid` — the
///   re-grant makes retried preparations idempotent) or `xbusy`.
/// - `xcommit <txid> <inner>` — execute `inner` through the inner service
///   and release `txid`'s lock. Executes *unconditionally*: the commit
///   decision was already made by the router once every touched shard
///   granted its lock, and a replica whose lock table was cleared by a
///   checkpoint install must still apply the committed operation.
/// - `xabort <txid>` — release `txid`'s lock; replies `xok`.
/// - `xchaos <reg> <count>` — chaos campaigns only: arm `count` injected
///   lock refusals, consistently on every replica (the operation is
///   agreed like any other, so the refusals hit the same preparations
///   group-wide).
///
/// Ordinary operations that conflict with any held lock answer `xbusy`
/// without executing, so no client observes a cross-shard transaction's
/// partial effects. An operation with an unknown footprint (`None`)
/// conflicts with everything while any lock is held.
pub struct ShardLockService<S: Service> {
    inner: S,
    footprint_of: fn(&[u8]) -> Option<Footprint>,
    /// txid → locked footprint (`None` = whole-state lock).
    locks: BTreeMap<String, Option<Footprint>>,
    /// **Fault injection (chaos only):** the next `inject_busy` lock
    /// acquisitions are refused with `xbusy`, driving the router's
    /// abort/retry path on demand. Inject on a reply quorum of a shard's
    /// replicas, or `f+1` matching `xok` replies mask the refusals.
    pub inject_busy: u32,
    /// Locks granted (tests/metrics).
    pub prepares_granted: u64,
    /// Lock acquisitions refused with `xbusy`.
    pub prepares_refused: u64,
    /// Transactions committed here.
    pub commits: u64,
    /// Transactions aborted here.
    pub aborts: u64,
    /// Ordinary operations refused because they conflicted with a lock.
    pub blocked_ops: u64,
}

impl<S: Service> ShardLockService<S> {
    /// Wraps `inner`, classifying operations with `footprint_of` (a pure
    /// function so every replica classifies identically).
    pub fn new(inner: S, footprint_of: fn(&[u8]) -> Option<Footprint>) -> Self {
        Self {
            inner,
            footprint_of,
            locks: BTreeMap::new(),
            inject_busy: 0,
            prepares_granted: 0,
            prepares_refused: 0,
            commits: 0,
            aborts: 0,
            blocked_ops: 0,
        }
    }

    /// The wrapped service.
    pub fn inner(&self) -> &S {
        &self.inner
    }

    /// Mutable access to the wrapped service.
    pub fn inner_mut(&mut self) -> &mut S {
        &mut self.inner
    }

    /// Number of transactions currently holding locks.
    pub fn held_locks(&self) -> usize {
        self.locks.len()
    }

    fn conflicts_with_held(&self, fp: Option<&Footprint>) -> bool {
        self.locks.values().any(|held| match (held, fp) {
            (None, _) | (_, None) => true,
            (Some(h), Some(f)) => h.conflicts_with(f),
        })
    }
}

impl<S: Service> Service for ShardLockService<S> {
    fn execute(
        &mut self,
        op: &[u8],
        client: u32,
        nondet: &[u8],
        read_only: bool,
        env: &mut ExecEnv<'_>,
    ) -> Vec<u8> {
        if let Some((txid, inner_op)) = split_tx(op, b"xprep ") {
            if read_only {
                return b"err".to_vec();
            }
            if self.locks.contains_key(&txid) {
                // Idempotent re-grant: a retried preparation (client
                // retransmission racing its own abort) is not a conflict.
                return b"xok".to_vec();
            }
            if self.inject_busy > 0 {
                self.inject_busy -= 1;
                self.prepares_refused += 1;
                return b"xbusy".to_vec();
            }
            let fp = (self.footprint_of)(inner_op);
            if self.conflicts_with_held(fp.as_ref()) {
                self.prepares_refused += 1;
                return b"xbusy".to_vec();
            }
            self.locks.insert(txid, fp);
            self.prepares_granted += 1;
            return b"xok".to_vec();
        }
        if let Some((txid, inner_op)) = split_tx(op, b"xcommit ") {
            if read_only {
                return b"err".to_vec();
            }
            self.locks.remove(&txid);
            self.commits += 1;
            return self.inner.execute(inner_op, client, nondet, false, env);
        }
        if let Some((txid, _)) = split_tx(op, b"xabort ") {
            if read_only {
                return b"err".to_vec();
            }
            self.locks.remove(&txid);
            self.aborts += 1;
            return b"xok".to_vec();
        }
        if let Some(rest) = op.strip_prefix(b"xchaos " as &[u8]) {
            // Agreed fault injection: `xchaos <reg> <count>` arms `count`
            // lock refusals. Riding the replicated operation stream means
            // every replica arms the same count at the same sequence
            // number, so the injected aborts are consistent across the
            // group — unlike poking `inject_busy` on live replicas at
            // wall-clock instants, which lands between different
            // operations on different replicas. The register argument only
            // routes the operation to the target shard.
            if read_only {
                return b"err".to_vec();
            }
            let mut parts = std::str::from_utf8(rest).unwrap_or("").split_whitespace();
            let _routing_reg = parts.next();
            if let Some(count) = parts.next().and_then(|t| t.parse::<u32>().ok()) {
                self.inject_busy += count;
                return b"xok".to_vec();
            }
            return b"err".to_vec();
        }
        if !self.locks.is_empty() {
            let fp = (self.footprint_of)(op);
            if self.conflicts_with_held(fp.as_ref()) {
                self.blocked_ops += 1;
                return b"xbusy".to_vec();
            }
        }
        self.inner.execute(op, client, nondet, read_only, env)
    }

    // `execute_batch` deliberately uses the trait default (sequential
    // through `execute`): every operation must pass the lock check. The
    // inner service's conflict-group parallel executor is bypassed, which
    // is charge-neutral — exec parallelism is reported through metrics,
    // never booked into simulated time.

    fn set_exec_workers(&mut self, workers: usize) {
        self.inner.set_exec_workers(workers);
    }

    fn set_chunk_size(&mut self, chunk_size: usize) {
        self.inner.set_chunk_size(chunk_size);
    }

    fn transfer_object(&mut self, index: u64) -> Option<Vec<u8>> {
        self.inner.transfer_object(index)
    }

    fn propose_nondet(&mut self, env: &mut ExecEnv<'_>) -> Vec<u8> {
        self.inner.propose_nondet(env)
    }

    fn check_nondet(&self, nondet: &[u8], env: &mut ExecEnv<'_>) -> bool {
        self.inner.check_nondet(nondet, env)
    }

    fn take_checkpoint(&mut self, seq: u64, env: &mut ExecEnv<'_>) -> base_crypto::Digest {
        // Locks are conformance rep, not abstract state: they are not
        // digested, so shards with different in-flight transactions still
        // agree on checkpoint roots for the same abstract state.
        self.inner.take_checkpoint(seq, env)
    }

    fn discard_checkpoints_below(&mut self, seq: u64) {
        self.inner.discard_checkpoints_below(seq);
    }

    fn checkpoint_meta(&self, seq: u64, level: u32, index: u64) -> Option<Vec<base_crypto::Digest>> {
        self.inner.checkpoint_meta(seq, level, index)
    }

    fn checkpoint_object(&mut self, seq: u64, index: u64) -> Option<Vec<u8>> {
        self.inner.checkpoint_object(seq, index)
    }

    fn current_tree(&self) -> &PartitionTree {
        self.inner.current_tree()
    }

    fn prepare_for_transfer(&mut self, env: &mut ExecEnv<'_>) {
        self.inner.prepare_for_transfer(env);
    }

    fn install_checkpoint(
        &mut self,
        seq: u64,
        root: base_crypto::Digest,
        objs: Vec<(u64, Option<Vec<u8>>)>,
        env: &mut ExecEnv<'_>,
    ) {
        // Conservative release: a replica jumping to a checkpoint cannot
        // know which locks were live at that sequence number. Dropping
        // them can make this replica answer `xok`/execute where its peers
        // say `xbusy`, but at most f replicas recover at once, so reply
        // quorums mask the divergence and state transfer repairs it.
        self.locks.clear();
        self.inner.install_checkpoint(seq, root, objs, env);
    }

    fn reboot(&mut self, clean: bool, env: &mut ExecEnv<'_>) {
        if clean {
            self.locks.clear();
        }
        self.inner.reboot(clean, env);
    }

    fn corrupt_state(&mut self, seed: u64) {
        self.inner.corrupt_state(seed);
    }
}

/// The abstract-object footprint of a [`base_pbft::testing::CounterService`]
/// text operation, for routing counter workloads across shards.
pub fn counter_footprint(op: &[u8]) -> Option<Footprint> {
    let text = std::str::from_utf8(op).ok()?;
    let mut parts = text.split_whitespace();
    match parts.next()? {
        "add" => {
            let reg: u64 = parts.next()?.parse().ok()?;
            (reg < COUNTER_REGS).then(|| Footprint::writes(vec![reg]))
        }
        "get" => {
            let reg: u64 = parts.next()?.parse().ok()?;
            (reg < COUNTER_REGS).then(|| Footprint::reads(vec![reg]))
        }
        "noop" => Some(Footprint::default()),
        // Chaos-only agreed injection (see [`ShardLockService`]): classified
        // as a write on its register argument so the router sends it to the
        // shard under test.
        "xchaos" => {
            let reg: u64 = parts.next()?.parse().ok()?;
            (reg < COUNTER_REGS).then(|| Footprint::writes(vec![reg]))
        }
        _ => None,
    }
}

#[derive(Debug)]
enum SubKind {
    /// A directly routed single-shard operation.
    Single { job: u64, op: Vec<u8>, read_only: bool },
    /// An `xprep` of the active cross-shard transaction.
    Prep { job: u64 },
    /// An `xcommit`; `pos` indexes the transaction's sub-operation list.
    Commit { job: u64, pos: usize },
    /// An `xabort` (fire-and-forget; the reply only drains the queue).
    Abort,
}

#[derive(Debug)]
struct CrossJob {
    job: u64,
    txid: String,
    /// `(shard, inner op)` pairs in ascending shard order — the global
    /// lock order that makes concurrent cross-shard transactions
    /// deadlock-free.
    subs: Vec<(u32, Vec<u8>)>,
    /// How many locks (a prefix of `subs`) are currently held.
    acquired: usize,
    replies: Vec<Option<Vec<u8>>>,
    attempts: u32,
}

/// The client-side shard router.
///
/// Hosts one [`ClientCore`] per replica group in a single actor — each
/// core runs its own closed loop with a distinct retransmission-timer
/// token, so requests to different shards proceed concurrently while this
/// actor stays single-threaded and deterministic.
///
/// [`ShardedClient::invoke`] routes an operation to the shard owning its
/// footprint. [`ShardedClient::invoke_cross`] runs a deterministic
/// two-phase ordered commit: `xprep` each touched shard in ascending
/// shard-id order; once all grant, `xcommit` on every shard concurrently
/// and merge the replies (ascending shard order, `;`-separated); on any
/// `xbusy`, `xabort` the acquired prefix in reverse order, back off with
/// deterministic jitter, and retry under the same transaction id.
pub struct ShardedClient {
    map: ShardMap,
    footprint_of: fn(&[u8]) -> Option<Footprint>,
    id: u32,
    cores: Vec<ClientCore>,
    /// Per-shard FIFO of submitted sub-operations; each core completes
    /// strictly in submission order, so the front entry labels the next
    /// completion.
    inflight: Vec<VecDeque<SubKind>>,
    cross: Option<CrossJob>,
    cross_queue: VecDeque<(u64, Vec<Vec<u8>>)>,
    next_job: u64,
    pace: SimDuration,
    retry_base: SimDuration,
    /// Completed invocations as `(invocation id, result)` pairs, in
    /// completion order. With one shard this is byte-identical to
    /// [`base_pbft::ClientActor::completed`].
    pub completed: Vec<(u64, Vec<u8>)>,
    /// Cross-shard lock rounds that hit `xbusy` and were rolled back.
    pub cross_aborts: u64,
    /// Single-shard operations refused by a lock and resubmitted.
    pub single_busy_retries: u64,
}

impl ShardedClient {
    /// Creates a router over `cfgs.len()` shards. `cfgs[s]` must be shard
    /// `s`'s configuration and `keys[s]` this client's identity in shard
    /// `s`'s key directory (the same local id in each).
    pub fn new(
        cfgs: Vec<Config>,
        keys: Vec<NodeKeys>,
        map: ShardMap,
        footprint_of: fn(&[u8]) -> Option<Footprint>,
    ) -> Self {
        assert_eq!(cfgs.len(), keys.len(), "one key set per shard");
        assert_eq!(cfgs.len(), map.shards() as usize, "one config per shard");
        let id = keys[0].id() as u32;
        let mut cores = Vec::with_capacity(cfgs.len());
        for (s, (cfg, k)) in cfgs.into_iter().zip(keys).enumerate() {
            assert_eq!(cfg.shard as usize, s, "configs must be in shard order");
            assert_eq!(k.id() as u32, id, "same local client id in every shard");
            let mut core = ClientCore::new(cfg, k);
            // Shard 0 keeps the default token, so a one-shard router's
            // timer schedule is identical to the standalone client's.
            core.set_retrans_token(TOKEN_CLIENT_RETRANS | ((s as u64) << 8));
            cores.push(core);
        }
        let shards = cores.len();
        Self {
            map,
            footprint_of,
            id,
            cores,
            inflight: (0..shards).map(|_| VecDeque::new()).collect(),
            cross: None,
            cross_queue: VecDeque::new(),
            next_job: 0,
            pace: SimDuration::from_millis(1),
            retry_base: SimDuration::from_millis(2),
            completed: Vec::new(),
            cross_aborts: 0,
            single_busy_retries: 0,
        }
    }

    /// Spaces pump ticks `gap` apart and disables auto-pumping (chaos
    /// campaigns spread the workload across the fault schedule this way).
    pub fn set_pace(&mut self, gap: SimDuration) {
        self.pace = gap;
        for core in &mut self.cores {
            core.auto_pump = false;
        }
    }

    /// The shard map in use.
    pub fn map(&self) -> &ShardMap {
        &self.map
    }

    /// The protocol core talking to `shard`.
    pub fn core(&self, shard: u32) -> &ClientCore {
        &self.cores[shard as usize]
    }

    /// Mutable access to `shard`'s protocol core.
    pub fn core_mut(&mut self, shard: u32) -> &mut ClientCore {
        &mut self.cores[shard as usize]
    }

    /// True when nothing is queued or in flight anywhere.
    pub fn idle(&self) -> bool {
        self.cross.is_none()
            && self.cross_queue.is_empty()
            && self.cores.iter().all(|c| !c.busy() && c.queued() == 0)
    }

    /// Invokes a single-shard operation. The operation's footprint must
    /// resolve (`Some`) and fall entirely inside one shard; operations
    /// with an empty footprint go to shard 0.
    pub fn invoke(&mut self, op: Vec<u8>, read_only: bool) {
        self.next_job += 1;
        let job = self.next_job;
        let shard = self.route_single(&op);
        self.submit_single(shard, job, op, read_only);
    }

    /// Invokes an atomic cross-shard transaction of write sub-operations,
    /// at most one per shard. The merged reply (inner replies in ascending
    /// shard order, `;`-separated) lands in [`ShardedClient::completed`].
    pub fn invoke_cross(&mut self, ops: Vec<Vec<u8>>) {
        assert!(!ops.is_empty(), "empty transaction");
        self.next_job += 1;
        let job = self.next_job;
        if self.cross.is_none() {
            self.start_cross(job, ops);
        } else {
            self.cross_queue.push_back((job, ops));
        }
    }

    fn route_single(&self, op: &[u8]) -> u32 {
        if self.map.shards() == 1 {
            return 0;
        }
        let fp = (self.footprint_of)(op)
            .expect("single-shard invoke needs a resolvable footprint");
        let shards = self.map.shards_of(&fp);
        assert!(
            shards.len() <= 1,
            "operation touches several shards; use invoke_cross"
        );
        shards.first().copied().unwrap_or(0)
    }

    fn submit_single(&mut self, shard: u32, job: u64, op: Vec<u8>, read_only: bool) {
        self.inflight[shard as usize].push_back(SubKind::Single {
            job,
            op: op.clone(),
            read_only,
        });
        self.cores[shard as usize].submit(op, read_only);
    }

    fn start_cross(&mut self, job: u64, ops: Vec<Vec<u8>>) {
        let mut subs: Vec<(u32, Vec<u8>)> = ops
            .into_iter()
            .map(|op| {
                let fp = (self.footprint_of)(&op)
                    .expect("cross-shard sub-operations need resolvable footprints");
                let shards = self.map.shards_of(&fp);
                assert!(
                    shards.len() <= 1,
                    "each sub-operation must live on a single shard"
                );
                (shards.first().copied().unwrap_or(0), op)
            })
            .collect();
        subs.sort_by_key(|(s, _)| *s);
        for w in subs.windows(2) {
            assert_ne!(w[0].0, w[1].0, "at most one sub-operation per shard");
        }
        let txid = format!("c{}.{}", self.id, job);
        let n_subs = subs.len();
        let (shard, op) = (subs[0].0, subs[0].1.clone());
        self.cross = Some(CrossJob {
            job,
            txid: txid.clone(),
            subs,
            acquired: 0,
            replies: vec![None; n_subs],
            attempts: 0,
        });
        self.inflight[shard as usize].push_back(SubKind::Prep { job });
        self.cores[shard as usize].submit(op_xprep(&txid, &op), false);
    }

    fn on_completion(&mut self, shard: usize, result: Vec<u8>, ctx: &mut Context<'_>) {
        let kind = self.inflight[shard]
            .pop_front()
            .expect("completion matches a tracked submission");
        match kind {
            SubKind::Single { job, op, read_only } => {
                if result == b"xbusy" {
                    // Refused by a cross-shard lock; resubmit (with a
                    // fresh timestamp) behind whatever is queued — by
                    // then the transaction has usually released it.
                    self.single_busy_retries += 1;
                    self.submit_single(shard as u32, job, op, read_only);
                } else {
                    self.completed.push((job, result));
                }
            }
            SubKind::Prep { job } => self.on_prep_reply(job, result, ctx),
            SubKind::Commit { job, pos } => self.on_commit_reply(job, pos, result),
            SubKind::Abort => {}
        }
    }

    fn on_prep_reply(&mut self, job: u64, result: Vec<u8>, ctx: &mut Context<'_>) {
        let Some(cross) = self.cross.as_mut() else { return };
        if cross.job != job {
            return;
        }
        if result == b"xok" {
            cross.acquired += 1;
            if cross.acquired == cross.subs.len() {
                // Every touched shard holds our lock: commit everywhere,
                // concurrently — commits cannot be refused.
                let txid = cross.txid.clone();
                let subs = cross.subs.clone();
                for (pos, (shard, op)) in subs.iter().enumerate() {
                    self.inflight[*shard as usize].push_back(SubKind::Commit { job, pos });
                    self.cores[*shard as usize].submit(op_xcommit(&txid, op), false);
                }
            } else {
                let i = cross.acquired;
                let (shard, op) = (cross.subs[i].0, cross.subs[i].1.clone());
                let txid = cross.txid.clone();
                self.inflight[shard as usize].push_back(SubKind::Prep { job });
                self.cores[shard as usize].submit(op_xprep(&txid, &op), false);
            }
        } else {
            // `xbusy`: release the acquired prefix in reverse order, then
            // back off and retry the whole lock round.
            self.cross_aborts += 1;
            cross.attempts += 1;
            let txid = cross.txid.clone();
            let held: Vec<u32> = cross.subs[..cross.acquired]
                .iter()
                .map(|(s, _)| *s)
                .rev()
                .collect();
            let attempts = cross.attempts;
            cross.acquired = 0;
            for shard in held {
                self.inflight[shard as usize].push_back(SubKind::Abort);
                self.cores[shard as usize].submit(op_xabort(&txid), false);
            }
            // Deterministic backoff with seeded jitter: routers contending
            // for the same locks de-synchronize without consuming the
            // simulator RNG.
            let base = self.retry_base.as_nanos();
            let shift = u64::from(attempts.min(5));
            let mut h = (u64::from(self.id) << 32) ^ job ^ (u64::from(attempts) << 17);
            h ^= h >> 33;
            h = h.wrapping_mul(0xff51_afd7_ed55_8ccd);
            h ^= h >> 33;
            let delay = (base << shift) + h % (base / 2 + 1);
            ctx.set_timer(SimDuration::from_nanos(delay), TOKEN_XRETRY);
        }
    }

    fn retry_cross(&mut self) {
        let Some(cross) = self.cross.as_ref() else { return };
        debug_assert_eq!(cross.acquired, 0, "retry starts from a clean slate");
        let job = cross.job;
        let txid = cross.txid.clone();
        let (shard, op) = (cross.subs[0].0, cross.subs[0].1.clone());
        // Same txid: if a queued abort has not executed yet, the re-prep
        // lands behind it in the shard's FIFO; if it somehow raced ahead,
        // the idempotent re-grant makes the retry safe.
        self.inflight[shard as usize].push_back(SubKind::Prep { job });
        self.cores[shard as usize].submit(op_xprep(&txid, &op), false);
    }

    fn on_commit_reply(&mut self, job: u64, pos: usize, result: Vec<u8>) {
        let Some(cross) = self.cross.as_mut() else { return };
        if cross.job != job {
            return;
        }
        cross.replies[pos] = Some(result);
        if cross.replies.iter().all(Option::is_some) {
            let mut merged = Vec::new();
            for (i, r) in cross.replies.iter().enumerate() {
                if i > 0 {
                    merged.push(b';');
                }
                merged.extend_from_slice(r.as_ref().expect("all replies present"));
            }
            self.completed.push((job, merged));
            self.cross = None;
            if let Some((job, ops)) = self.cross_queue.pop_front() {
                self.start_cross(job, ops);
            }
        }
    }
}

impl Actor for ShardedClient {
    fn on_start(&mut self, ctx: &mut Context<'_>) {
        for core in &mut self.cores {
            core.pump(ctx);
        }
        ctx.set_timer(self.pace, TOKEN_PUMP);
    }

    fn on_message(&mut self, from: NodeId, payload: &[u8], ctx: &mut Context<'_>) {
        // Each core ignores other shards' traffic (the shard tag check),
        // so exactly one core can claim any given reply.
        for s in 0..self.cores.len() {
            if let Some(ClientEvent::Completed { result, .. }) =
                self.cores[s].on_message(from, payload, ctx)
            {
                self.on_completion(s, result, ctx);
                return;
            }
        }
    }

    fn on_timer(&mut self, token: u64, ctx: &mut Context<'_>) {
        if token == TOKEN_PUMP {
            for core in &mut self.cores {
                core.pump(ctx);
            }
            ctx.set_timer(self.pace, TOKEN_PUMP);
            return;
        }
        if token == TOKEN_XRETRY {
            self.retry_cross();
            return;
        }
        for core in &mut self.cores {
            if core.on_timer(token, ctx) {
                return;
            }
        }
    }
}

/// A freshly built sharded deployment on a simulation.
pub struct ShardedGroup {
    /// Per-shard configurations (shard `s` at index `s`).
    pub cfgs: Vec<Config>,
    /// Per-shard key directories.
    pub dirs: Vec<KeyDirectory>,
    /// Replica node ids, `replicas[shard][replica]`.
    pub replicas: Vec<Vec<NodeId>>,
    /// Router client node ids.
    pub clients: Vec<NodeId>,
    /// The object→shard map shared by every router.
    pub map: ShardMap,
}

impl ShardedGroup {
    /// All replica metrics merged into one registry under
    /// `s<shard>.replica<idx>.` prefixes (order-insensitive).
    pub fn merged_metrics<S: Service>(&self, sim: &Simulation) -> MetricsRegistry {
        let mut out = MetricsRegistry::new();
        for (s, nodes) in self.replicas.iter().enumerate() {
            for (r, id) in nodes.iter().enumerate() {
                if let Some(rep) = sim.actor_as::<Replica<S>>(*id) {
                    out.merge_prefixed(&format!("s{s}.replica{r}."), rep.metrics());
                }
            }
        }
        out
    }
}

/// Builds `map.shards()` independent replica groups of `cfg.n` replicas
/// each, plus `c` router clients, on one deterministic simulation.
///
/// Layout: shard `s`'s replicas occupy node ids `s*n .. s*n+n` (in shard
/// order), routers follow at `K*n ..`. Shard `s` gets its own key
/// directory seeded from `seed` (shard 0 uses `seed` itself, so a
/// one-shard build is byte-identical to [`base_pbft::testing::build_group`]
/// with the same seed); router `j` has local id `n+j` in every directory.
pub fn build_sharded_group<S: Service>(
    sim: &mut Simulation,
    cfg: Config,
    map: ShardMap,
    c: usize,
    seed: u64,
    footprint_of: fn(&[u8]) -> Option<Footprint>,
    mut service: impl FnMut(u32, usize) -> S,
) -> ShardedGroup {
    let n = cfg.n;
    let shards = map.shards();
    let mut cfgs = Vec::with_capacity(shards as usize);
    let mut dirs = Vec::with_capacity(shards as usize);
    let mut replicas = Vec::with_capacity(shards as usize);
    for s in 0..shards {
        let scfg = cfg
            .clone()
            .with_shard(s, s as usize * n, shards as usize * n);
        let dir = KeyDirectory::generate(
            n + c,
            seed.wrapping_add(u64::from(s).wrapping_mul(0x9e37_79b9_7f4a_7c15)),
        );
        let mut ids = Vec::with_capacity(n);
        for i in 0..n {
            let keys = NodeKeys::new(dir.clone(), i);
            ids.push(sim.add_node(Box::new(Replica::new(scfg.clone(), keys, service(s, i)))));
        }
        cfgs.push(scfg);
        dirs.push(dir);
        replicas.push(ids);
    }
    let mut clients = Vec::with_capacity(c);
    for j in 0..c {
        let keys: Vec<NodeKeys> = dirs.iter().map(|d| NodeKeys::new(d.clone(), n + j)).collect();
        let router = ShardedClient::new(cfgs.clone(), keys, map.clone(), footprint_of);
        clients.push(sim.add_node(Box::new(router)));
    }
    ShardedGroup { cfgs, dirs, replicas, clients, map }
}

#[cfg(test)]
mod tests {
    use super::*;
    use base_pbft::testing::{op_add, op_get, CounterService};
    use rand::SeedableRng;

    type LockedCounter = ShardLockService<CounterService>;

    fn env_rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(0)
    }

    #[test]
    fn shard_map_is_total_balanced_and_contiguous() {
        for shards in [1u32, 2, 3, 4, 7] {
            let map = ShardMap::new(64, shards);
            let mut sizes = vec![0u64; shards as usize];
            let mut last = 0;
            for idx in 0..64 {
                let s = map.shard_of(idx);
                assert!(s < shards);
                assert!(s >= last, "shard assignment must be monotone");
                assert!(map.range_of(s).contains(&idx));
                sizes[s as usize] += 1;
                last = s;
            }
            let (min, max) = (sizes.iter().min().unwrap(), sizes.iter().max().unwrap());
            assert!(max - min <= 1, "balanced within one: {sizes:?}");
            assert_eq!(sizes.iter().sum::<u64>(), 64);
        }
    }

    #[test]
    fn shard_map_footprint_routing() {
        let map = ShardMap::new(64, 4);
        let fp = Footprint { reads: vec![0], writes: vec![63] };
        assert_eq!(map.shards_of(&fp), vec![0, 3]);
        assert_eq!(map.shards_of(&Footprint::default()), Vec::<u32>::new());
    }

    #[test]
    fn lock_service_grants_conflicts_and_releases() {
        let mut s = LockedCounter::new(CounterService::default(), counter_footprint);
        let mut rng = env_rng();
        let mut env = ExecEnv::new(0, &mut rng);
        let prep = op_xprep("t1", &op_add(3, 5));
        assert_eq!(s.execute(&prep, 9, &[], false, &mut env), b"xok");
        // Idempotent re-grant for the same transaction.
        assert_eq!(s.execute(&prep, 9, &[], false, &mut env), b"xok");
        // A conflicting transaction is refused...
        let prep2 = op_xprep("t2", &op_add(3, 1));
        assert_eq!(s.execute(&prep2, 9, &[], false, &mut env), b"xbusy");
        // ...a disjoint one is granted.
        let prep3 = op_xprep("t3", &op_add(7, 1));
        assert_eq!(s.execute(&prep3, 9, &[], false, &mut env), b"xok");
        // Ordinary ops respect the locks: reg 3 blocked, reg 5 free.
        assert_eq!(s.execute(&op_add(3, 1), 9, &[], false, &mut env), b"xbusy");
        assert_eq!(s.execute(&op_get(3), 9, &[], true, &mut env), b"xbusy");
        assert_eq!(s.execute(&op_add(5, 2), 9, &[], false, &mut env), b"2");
        // Commit executes the inner op and releases.
        let commit = op_xcommit("t1", &op_add(3, 5));
        assert_eq!(s.execute(&commit, 9, &[], false, &mut env), b"5");
        assert_eq!(s.execute(&op_get(3), 9, &[], true, &mut env), b"5");
        // Abort releases without executing.
        assert_eq!(s.execute(&op_xabort("t3"), 9, &[], false, &mut env), b"xok");
        assert_eq!(s.held_locks(), 0);
        assert_eq!(s.execute(&op_get(7), 9, &[], true, &mut env), b"0");
    }

    #[test]
    fn unknown_footprint_conflicts_with_everything() {
        let mut s = LockedCounter::new(CounterService::default(), counter_footprint);
        let mut rng = env_rng();
        let mut env = ExecEnv::new(0, &mut rng);
        assert_eq!(
            s.execute(&op_xprep("t1", &op_add(0, 1)), 9, &[], false, &mut env),
            b"xok"
        );
        // "noop" parses to an empty footprint: no conflict.
        assert_eq!(s.execute(b"noop", 9, &[], false, &mut env), b"ok");
        // An unparseable op conflicts with any held lock.
        assert_eq!(s.execute(b"bogus", 9, &[], false, &mut env), b"xbusy");
        // Locking an unparseable op takes a whole-state lock.
        assert_eq!(
            s.execute(&op_xabort("t1"), 9, &[], false, &mut env),
            b"xok"
        );
        assert_eq!(
            s.execute(&op_xprep("t2", b"bogus"), 9, &[], false, &mut env),
            b"xok"
        );
        assert_eq!(s.execute(&op_add(9, 1), 9, &[], false, &mut env), b"xbusy");
    }

    #[test]
    fn inject_busy_forces_refusals() {
        let mut s = LockedCounter::new(CounterService::default(), counter_footprint);
        let mut rng = env_rng();
        let mut env = ExecEnv::new(0, &mut rng);
        s.inject_busy = 1;
        assert_eq!(
            s.execute(&op_xprep("t1", &op_add(0, 1)), 9, &[], false, &mut env),
            b"xbusy"
        );
        assert_eq!(
            s.execute(&op_xprep("t1", &op_add(0, 1)), 9, &[], false, &mut env),
            b"xok"
        );
    }

    #[test]
    fn checkpoint_install_clears_locks() {
        let mut s = LockedCounter::new(CounterService::default(), counter_footprint);
        let mut rng = env_rng();
        let mut env = ExecEnv::new(0, &mut rng);
        assert_eq!(
            s.execute(&op_xprep("t1", &op_add(0, 1)), 9, &[], false, &mut env),
            b"xok"
        );
        let root = s.take_checkpoint(8, &mut env);
        s.install_checkpoint(8, root, Vec::new(), &mut env);
        assert_eq!(s.held_locks(), 0);
        // Commit after install still executes (unconditional by design).
        assert_eq!(
            s.execute(&op_xcommit("t1", &op_add(0, 1)), 9, &[], false, &mut env),
            b"1"
        );
    }

    #[test]
    fn locks_do_not_change_checkpoint_roots() {
        let mut a = LockedCounter::new(CounterService::default(), counter_footprint);
        let mut b = LockedCounter::new(CounterService::default(), counter_footprint);
        let mut rng = env_rng();
        let mut env = ExecEnv::new(0, &mut rng);
        a.execute(&op_add(1, 4), 9, &[], false, &mut env);
        b.execute(&op_add(1, 4), 9, &[], false, &mut env);
        assert_eq!(
            a.execute(&op_xprep("t9", &op_add(2, 1)), 9, &[], false, &mut env),
            b"xok"
        );
        assert_eq!(
            a.take_checkpoint(4, &mut env),
            b.take_checkpoint(4, &mut env),
            "lock tables are conformance rep, never digested"
        );
    }

    #[test]
    fn two_shard_group_serves_disjoint_and_cross_shard_work() {
        let mut sim = Simulation::new(4242);
        let map = ShardMap::new(COUNTER_REGS, 2);
        let group = build_sharded_group(
            &mut sim,
            Config::new(4),
            map.clone(),
            1,
            7,
            counter_footprint,
            |_, _| LockedCounter::new(CounterService::default(), counter_footprint),
        );
        assert_eq!(group.replicas.len(), 2);
        assert_eq!(group.replicas[1][0], NodeId(4));
        assert_eq!(group.clients[0], NodeId(8));
        {
            let router = sim
                .actor_as_mut::<ShardedClient>(group.clients[0])
                .unwrap();
            // Reg 1 lives on shard 0, reg 12 on shard 1.
            assert_eq!(map.shard_of(1), 0);
            assert_eq!(map.shard_of(12), 1);
            router.invoke(op_add(1, 10), false);
            router.invoke(op_add(12, 30), false);
            // Atomic cross-shard transfer-like transaction.
            router.invoke_cross(vec![op_add(1, 5), op_add(12, 5)]);
            router.invoke(op_get(1), true);
            router.invoke(op_get(12), true);
        }
        sim.run_for(SimDuration::from_secs(3));
        let router = sim.actor_as::<ShardedClient>(group.clients[0]).unwrap();
        assert!(router.idle(), "all invocations must finish");
        let by_job: BTreeMap<u64, Vec<u8>> = router.completed.iter().cloned().collect();
        assert_eq!(by_job[&1], b"10");
        assert_eq!(by_job[&2], b"30");
        assert_eq!(by_job[&3], b"15;35", "merged commit replies, shard order");
        // The read-only gets are concurrent with the cross-shard
        // transaction; either serialization is linearizable, but a torn
        // read (one pre-, one post-commit per shard in the *wrong*
        // direction) can never happen because reads respect the locks.
        assert!(by_job[&4] == b"10" || by_job[&4] == b"15", "{:?}", by_job[&4]);
        assert!(by_job[&5] == b"30" || by_job[&5] == b"35", "{:?}", by_job[&5]);
        // Both shards executed agreement independently.
        for s in 0..2 {
            let rep = sim
                .actor_as::<Replica<LockedCounter>>(group.replicas[s][0])
                .unwrap();
            assert!(rep.service().inner().executed > 0, "shard {s} executed");
            assert_eq!(rep.service().held_locks(), 0, "no lock leaked");
        }
    }

    #[test]
    fn contending_cross_shard_transactions_retry_to_completion() {
        let mut sim = Simulation::new(991);
        let map = ShardMap::new(COUNTER_REGS, 2);
        let group = build_sharded_group(
            &mut sim,
            Config::new(4),
            map,
            2,
            11,
            counter_footprint,
            |_, _| LockedCounter::new(CounterService::default(), counter_footprint),
        );
        // Both routers hit the same two registers from opposite sides.
        for &cl in &group.clients {
            let router = sim.actor_as_mut::<ShardedClient>(cl).unwrap();
            for _ in 0..3 {
                router.invoke_cross(vec![op_add(0, 1), op_add(15, 1)]);
            }
        }
        sim.run_for(SimDuration::from_secs(10));
        let mut aborts = 0;
        for &cl in &group.clients {
            let router = sim.actor_as::<ShardedClient>(cl).unwrap();
            assert!(router.idle(), "contended transactions must all commit");
            assert_eq!(router.completed.len(), 3);
            aborts += router.cross_aborts;
        }
        let _ = aborts; // contention may or may not materialize; both fine
        // Every transaction committed exactly once on each shard: 6 adds.
        let rep = sim
            .actor_as::<Replica<LockedCounter>>(group.replicas[0][1])
            .unwrap();
        assert_eq!(rep.service().inner().value(0), 6);
        let rep = sim
            .actor_as::<Replica<LockedCounter>>(group.replicas[1][1])
            .unwrap();
        assert_eq!(rep.service().inner().value(15), 6);
    }

    #[test]
    fn merged_metrics_namespace_per_shard() {
        let mut sim = Simulation::new(5);
        let map = ShardMap::new(COUNTER_REGS, 2);
        let group = build_sharded_group(
            &mut sim,
            Config::new(4),
            map,
            1,
            3,
            counter_footprint,
            |_, _| LockedCounter::new(CounterService::default(), counter_footprint),
        );
        sim.actor_as_mut::<ShardedClient>(group.clients[0])
            .unwrap()
            .invoke(op_add(1, 1), false);
        sim.actor_as_mut::<ShardedClient>(group.clients[0])
            .unwrap()
            .invoke(op_add(12, 1), false);
        sim.run_for(SimDuration::from_secs(2));
        let merged = group.merged_metrics::<LockedCounter>(&sim);
        assert!(
            merged.histograms().any(|(k, _)| k.starts_with("s0.replica")),
            "shard-0 metrics present"
        );
        assert!(
            merged.histograms().any(|(k, _)| k.starts_with("s1.replica")),
            "shard-1 metrics present"
        );
    }
}
