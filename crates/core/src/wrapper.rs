//! The conformance-wrapper interface and the `modify` upcall.

use base_pbft::ExecEnv;
use std::collections::{HashMap, HashSet};

/// How far (in ns) a proposed timestamp may differ from a backup's local
/// clock before the backup rejects the pre-prepare (paper §2.2: backups
/// validate the primary's non-deterministic choices).
pub const NONDET_SKEW_TOLERANCE_NS: u64 = 10_000_000_000;

/// Registry of abstract objects modified since the last checkpoint, with
/// their pre-images.
///
/// This realizes the paper's `modify` upcall: *"Each time the execute
/// upcall is about to modify an object in the abstract state it is required
/// to invoke a modify procedure"*. In the C library, `modify(i)` made the
/// library call `get_obj(i)` re-entrantly to snapshot the old value; in
/// Rust the wrapper passes a closure producing the old value instead, which
/// the log invokes only when a copy is actually needed (at most once per
/// object per checkpoint epoch).
#[derive(Debug, Default)]
pub struct ModifyLog {
    dirty: HashSet<u64>,
    /// Pre-images captured this epoch: the object's value as of the last
    /// checkpoint (`None` = the object was absent).
    copies: HashMap<u64, Option<Vec<u8>>>,
}

impl ModifyLog {
    /// Creates an empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Declares that object `index` is about to be modified. `old` is
    /// invoked to capture the object's current (pre-modification) abstract
    /// value if this is the first modification since the last checkpoint.
    ///
    /// The wrapper **must** call this before mutating anything that affects
    /// object `index`'s abstract value.
    pub fn modify(&mut self, index: u64, old: impl FnOnce() -> Option<Vec<u8>>) {
        if self.dirty.insert(index) {
            self.copies.insert(index, old());
        }
    }

    /// True if `index` was modified since the last checkpoint.
    pub fn is_dirty(&self, index: u64) -> bool {
        self.dirty.contains(&index)
    }

    /// Number of distinct objects modified since the last checkpoint.
    pub fn dirty_count(&self) -> usize {
        self.dirty.len()
    }

    /// Iterates over the dirty object indices.
    pub fn dirty_indices(&self) -> impl Iterator<Item = u64> + '_ {
        self.dirty.iter().copied()
    }

    /// Drains the log, returning the captured pre-images. Called by the
    /// checkpoint machinery at checkpoint time.
    pub(crate) fn drain(&mut self) -> HashMap<u64, Option<Vec<u8>>> {
        self.dirty.clear();
        std::mem::take(&mut self.copies)
    }

    /// The captured pre-image for `index`, if it was modified this epoch.
    pub fn copy_of(&self, index: u64) -> Option<&Option<Vec<u8>>> {
        self.copies.get(&index)
    }
}

/// The abstract-object read/write footprint of one operation, used by the
/// execution stage to partition a committed batch into conflict groups.
///
/// Two operations *conflict* when either writes an object the other reads
/// or writes. Non-conflicting operations commute on the abstract state and
/// produce order-independent replies, so the executor may group them
/// freely; conflicting operations always stay in batch order.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Footprint {
    /// Abstract object indices the operation may read.
    pub reads: Vec<u64>,
    /// Abstract object indices the operation may create, modify or delete.
    pub writes: Vec<u64>,
}

impl Footprint {
    /// A read-only footprint over `indices`.
    pub fn reads(indices: impl Into<Vec<u64>>) -> Self {
        Self { reads: indices.into(), writes: Vec::new() }
    }

    /// A write footprint over `indices` (writes imply reads for conflict
    /// purposes, so no separate read set is needed).
    pub fn writes(indices: impl Into<Vec<u64>>) -> Self {
        Self { reads: Vec::new(), writes: indices.into() }
    }

    /// True if the two footprints conflict (either's writes intersect the
    /// other's reads or writes).
    pub fn conflicts_with(&self, other: &Footprint) -> bool {
        let hits = |xs: &[u64], ys: &[u64]| xs.iter().any(|x| ys.contains(x));
        hits(&self.writes, &other.writes)
            || hits(&self.writes, &other.reads)
            || hits(&other.writes, &self.reads)
    }
}

/// A conformance wrapper: makes one concrete service implementation behave
/// according to the common abstract specification.
///
/// The abstract state is an array of `n_objects` variable-sized objects;
/// an object may be *absent* (`None`), which encodes the paper's null
/// objects without reserving a concrete encoding for them.
///
/// Implementations may be non-deterministic internally (clocks, RNGs,
/// allocation order): determinism is only required of the *abstract*
/// behaviour given the same operations and `nondet` values.
///
/// Wrappers are `Sync` so the execution stage's worker pool can share a
/// reference across threads for pure passes (footprint analysis); all
/// mutation still happens behind `&mut self` on one thread.
pub trait Wrapper: Sync + 'static {
    /// Executes one operation against the wrapped implementation,
    /// translating between abstract identifiers in the request/reply and
    /// whatever the implementation uses internally.
    ///
    /// Must call [`ModifyLog::modify`] for every abstract object it is
    /// about to change, *before* changing it. Must not change any abstract
    /// object when `read_only` is true.
    fn execute(
        &mut self,
        op: &[u8],
        client: u32,
        nondet: &[u8],
        read_only: bool,
        mods: &mut ModifyLog,
        env: &mut ExecEnv<'_>,
    ) -> Vec<u8>;

    /// The abstraction function, restricted to object `index`: computes the
    /// object's abstract value from the concrete state. `None` = absent.
    ///
    /// Takes `&self`: the abstraction function is a pure *reading* of the
    /// concrete state (it must not perturb what it abstracts), which lets
    /// the checkpoint machinery fan value collection over the digest worker
    /// pool. Implementations needing bookkeeping (statistics) must use
    /// interior mutability with thread-safe primitives.
    fn get_obj(&self, index: u64) -> Option<Vec<u8>>;

    /// One inverse of the abstraction function: updates the concrete state
    /// so that the listed abstract objects take the given values
    /// (`None` = become absent). Called with a complete, consistent
    /// checkpoint delta (the paper's `put_objs` guarantee), so encodings
    /// may have inter-object dependencies.
    fn put_objs(&mut self, objs: &[(u64, Option<Vec<u8>>)], env: &mut ExecEnv<'_>);

    /// Size of the abstract object array.
    fn n_objects(&self) -> u64;

    /// Chooses non-deterministic values for a batch (primary only); the
    /// default proposes the local clock as an 8-byte timestamp, forced
    /// monotone past the last agreed value.
    fn propose_nondet(&mut self, env: &mut ExecEnv<'_>) -> Vec<u8> {
        env.local_clock_ns.max(self.last_nondet_ns() + 1).to_be_bytes().to_vec()
    }

    /// Validates the primary's proposal; the default accepts an 8-byte
    /// timestamp that is newer than the last executed one and within
    /// [`NONDET_SKEW_TOLERANCE_NS`] of this replica's local clock — a
    /// Byzantine primary cannot push wildly wrong times into the abstract
    /// state.
    fn check_nondet(&self, nondet: &[u8], env: &mut ExecEnv<'_>) -> bool {
        let Ok(bytes) = <[u8; 8]>::try_from(nondet) else { return false };
        let ts = u64::from_be_bytes(bytes);
        if ts <= self.last_nondet_ns() {
            return false;
        }
        let clock = env.local_clock_ns;
        ts.abs_diff(clock) <= NONDET_SKEW_TOLERANCE_NS
    }

    /// The abstract-object footprint of `op`, or `None` when it cannot be
    /// determined without executing (the conservative default): a `None`
    /// footprint conflicts with everything, so the batch degenerates to
    /// sequential batch-order execution and existing wrappers stay correct
    /// unchanged.
    ///
    /// Must be a pure function of `op` and the wrapper's current state
    /// (`&self`), and must *over*-approximate: every object `execute` might
    /// read must appear in `reads` or `writes`, every object it might
    /// change in `writes`. Under-approximation breaks the equivalence to
    /// sequential execution that the differential suite checks.
    fn footprint(&self, op: &[u8]) -> Option<Footprint> {
        let _ = op;
        None
    }

    /// The newest agreed timestamp this wrapper has executed (0 if none).
    /// Implementations that use the default timestamp agreement should
    /// track it from `execute`'s `nondet` argument.
    fn last_nondet_ns(&self) -> u64 {
        0
    }

    /// Restarts the implementation from a clean initial concrete state
    /// (proactive recovery, paper §2.2/§3.4).
    fn reset(&mut self, env: &mut ExecEnv<'_>);

    /// Reconstructs the conformance rep after a warm reboot (the concrete
    /// state survived on disk; volatile bookkeeping like file-handle maps
    /// must be rebuilt, paper §3.4). The default does nothing.
    fn rebuild_rep(&mut self, env: &mut ExecEnv<'_>) {
        let _ = env;
    }

    /// Fault-injection hook: silently corrupts some concrete state derived
    /// from `seed`, *without* telling the abstraction layer (no `ModifyLog`
    /// entry). The damage stays latent until a warm reboot's abstraction
    /// rescan re-derives the abstract objects, at which point state
    /// transfer repairs them. The default is a no-op.
    fn corrupt_state(&mut self, seed: u64) {
        let _ = seed;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn modify_captures_preimage_once() {
        let mut log = ModifyLog::new();
        let mut calls = 0;
        log.modify(3, || {
            calls += 1;
            Some(b"old".to_vec())
        });
        log.modify(3, || {
            calls += 1;
            Some(b"newer".to_vec())
        });
        assert_eq!(calls, 1, "pre-image captured only on first modify");
        assert!(log.is_dirty(3));
        assert_eq!(log.dirty_count(), 1);
        assert_eq!(log.copy_of(3), Some(&Some(b"old".to_vec())));
    }

    #[test]
    fn drain_resets_epoch() {
        let mut log = ModifyLog::new();
        log.modify(1, || None);
        log.modify(2, || Some(vec![9]));
        let copies = log.drain();
        assert_eq!(copies.len(), 2);
        assert_eq!(copies[&1], None);
        assert_eq!(copies[&2], Some(vec![9]));
        assert_eq!(log.dirty_count(), 0);
        // A new epoch captures fresh pre-images.
        let mut called = false;
        log.modify(1, || {
            called = true;
            Some(vec![1])
        });
        assert!(called);
    }
}
