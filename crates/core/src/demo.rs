//! A self-contained demonstration of the BASE methodology: a
//! non-deterministic "off-the-shelf" key-value store ([`TinyKv`]) and its
//! conformance wrapper ([`KvWrapper`]).
//!
//! `TinyKv` misbehaves in exactly the ways the paper says real
//! implementations do:
//!
//! - it assigns **random internal ids** to entries (like NFS servers
//!   choosing arbitrary file handles);
//! - it stamps entries with the **local clock** (which differs across
//!   replicas);
//! - its iteration order depends on the random ids.
//!
//! The wrapper hides all of this behind a common abstract specification:
//! the abstract state is an array of [`N_SLOTS`] objects, where object `s`
//! is the XDR encoding of the key-sorted list of `(key, value, mtime)`
//! triples whose key hashes to slot `s`, and `mtime` is the *agreed*
//! timestamp from the protocol's non-determinism agreement rather than the
//! local clock. Replicas running differently-seeded `TinyKv` instances
//! therefore produce identical abstract states.

use crate::wrapper::{Footprint, ModifyLog, Wrapper};
use base_pbft::ExecEnv;
use base_xdr::{XdrDecoder, XdrEncoder};
use rand::Rng;
use std::collections::HashMap;

/// Number of abstract objects (hash slots) in the KV specification.
pub const N_SLOTS: u64 = 64;

/// FNV-1a hash, used to map keys to abstract slots deterministically.
fn slot_of(key: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in key.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h % N_SLOTS
}

/// The abstract-object footprint of a KV text operation — a pure function
/// so shard routers and replica-side lock services classify identically.
///
/// Mirrors [`KvWrapper`]'s `execute` parse exactly: a `put`/`del` touches
/// only the key's slot, `get`/`mtime` only reads it. Anything `execute`
/// would answer with `err` (unknown verb, missing key) gets a conservative
/// `None` — whole-state conflict — rather than a guess.
pub fn kv_footprint(op: &[u8]) -> Option<Footprint> {
    let text = String::from_utf8_lossy(op).into_owned();
    let mut parts = text.splitn(3, ' ');
    let verb = parts.next().unwrap_or("");
    let key = parts.next().unwrap_or("");
    if key.is_empty() {
        return None;
    }
    match verb {
        "put" | "del" => Some(Footprint::writes(vec![slot_of(key)])),
        "get" | "mtime" => Some(Footprint::reads(vec![slot_of(key)])),
        _ => None,
    }
}

#[derive(Debug, Clone)]
struct KvEntry {
    value: Vec<u8>,
    /// Concrete timestamp from the local clock — non-deterministic, never
    /// exposed through the abstract state.
    mtime_local_ns: u64,
}

/// The "off-the-shelf" implementation: a key-value store with random
/// internal ids and local-clock timestamps.
#[derive(Debug, Default)]
pub struct TinyKv {
    entries: HashMap<u64, KvEntry>,
    index: HashMap<String, u64>,
    /// Entries leaked by deletions when `leaky` is set (simulates a memory
    /// leak that clean-reboot recovery hides).
    pub leaky: bool,
    leaked: usize,
}

impl TinyKv {
    /// Inserts or updates `key`. Internal id and timestamp are
    /// non-deterministic.
    pub fn put(&mut self, key: &str, value: Vec<u8>, clock_ns: u64, rng: &mut rand::rngs::StdRng) {
        if let Some(id) = self.index.get(key) {
            let e = self.entries.get_mut(id).expect("index consistent");
            e.value = value;
            e.mtime_local_ns = clock_ns;
            return;
        }
        let mut id: u64 = rng.gen();
        while self.entries.contains_key(&id) {
            id = rng.gen();
        }
        self.entries.insert(
            id,
            KvEntry { value, mtime_local_ns: clock_ns },
        );
        self.index.insert(key.to_owned(), id);
    }

    /// Looks up `key`.
    pub fn get(&self, key: &str) -> Option<&[u8]> {
        let id = self.index.get(key)?;
        Some(&self.entries[id].value)
    }

    /// Removes `key`; returns true if it existed.
    pub fn delete(&mut self, key: &str) -> bool {
        match self.index.remove(key) {
            Some(id) => {
                if self.leaky {
                    // The entry stays allocated — a classic leak.
                    self.leaked += 1;
                } else {
                    self.entries.remove(&id);
                }
                true
            }
            None => false,
        }
    }

    /// Keys currently reachable.
    pub fn keys(&self) -> impl Iterator<Item = &str> {
        self.index.keys().map(String::as_str)
    }

    /// Number of live (reachable) entries.
    pub fn len(&self) -> usize {
        self.index.len()
    }

    /// True if no entries are reachable.
    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }

    /// Bytes of storage held, including leaked entries.
    pub fn footprint(&self) -> usize {
        self.entries.len()
    }

    /// Number of leaked (unreachable but allocated) entries.
    pub fn leaked(&self) -> usize {
        self.leaked
    }

    /// Restarts from the clean initial state (reclaims leaks).
    pub fn reset(&mut self) {
        self.entries.clear();
        self.index.clear();
        self.leaked = 0;
    }

    /// Test hook: silently corrupts the stored value of `key` (simulates a
    /// software error damaging the concrete state).
    pub fn corrupt(&mut self, key: &str) -> bool {
        match self.index.get(key) {
            Some(id) => {
                let e = self.entries.get_mut(id).expect("index consistent");
                for b in &mut e.value {
                    *b = !*b;
                }
                e.value.push(0xbd);
                true
            }
            None => false,
        }
    }
}

/// Conformance wrapper for [`TinyKv`].
///
/// Operations (UTF-8 text): `put <key> <value>`, `get <key>`,
/// `del <key>`. Replies: `ok`, the value bytes, or `missing`.
pub struct KvWrapper {
    kv: TinyKv,
    /// Conformance rep: the *abstract* (agreed) timestamp per key.
    abs_mtimes: HashMap<String, u64>,
    /// Simulated CPU cost charged per operation (0 by default; experiments
    /// calibrate it).
    pub op_cost: base_simnet::SimDuration,
    /// Newest agreed timestamp executed (for nondet validation).
    last_nondet: u64,
}

impl KvWrapper {
    /// Wraps a `TinyKv` instance.
    pub fn new(kv: TinyKv) -> Self {
        Self {
            kv,
            abs_mtimes: HashMap::new(),
            op_cost: base_simnet::SimDuration::ZERO,
            last_nondet: 0,
        }
    }

    /// Access to the wrapped implementation (test inspection / injection).
    pub fn kv(&self) -> &TinyKv {
        &self.kv
    }

    /// Mutable access to the wrapped implementation.
    pub fn kv_mut(&mut self) -> &mut TinyKv {
        &mut self.kv
    }

    fn encode_slot(&self, slot: u64) -> Option<Vec<u8>> {
        let mut items: Vec<(&str, &[u8], u64)> = self
            .kv
            .index
            .keys()
            .filter(|k| slot_of(k) == slot)
            .map(|k| {
                let v = self.kv.get(k).expect("indexed key present");
                (k.as_str(), v, self.abs_mtimes.get(k).copied().unwrap_or(0))
            })
            .collect();
        if items.is_empty() {
            return None;
        }
        items.sort_by(|a, b| a.0.cmp(b.0));
        let mut enc = XdrEncoder::new();
        enc.put_u32(items.len() as u32);
        for (k, v, mt) in items {
            enc.put_string(k);
            enc.put_opaque(v);
            enc.put_u64(mt);
        }
        Some(enc.finish())
    }

    fn decode_slot(data: &[u8]) -> Option<Vec<(String, Vec<u8>, u64)>> {
        let mut dec = XdrDecoder::new(data);
        let n = dec.get_count(16).ok()?;
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            let k = dec.get_string().ok()?;
            let v = dec.get_opaque().ok()?;
            let mt = dec.get_u64().ok()?;
            out.push((k, v, mt));
        }
        dec.finish().ok()?;
        Some(out)
    }
}

impl Wrapper for KvWrapper {
    fn execute(
        &mut self,
        op: &[u8],
        _client: u32,
        nondet: &[u8],
        read_only: bool,
        mods: &mut ModifyLog,
        env: &mut ExecEnv<'_>,
    ) -> Vec<u8> {
        env.charge(self.op_cost);
        let text = String::from_utf8_lossy(op).into_owned();
        let mut parts = text.splitn(3, ' ');
        let verb = parts.next().unwrap_or("");
        let key = parts.next().unwrap_or("");
        let agreed_ts = if nondet.len() == 8 {
            u64::from_be_bytes(nondet.try_into().expect("checked length"))
        } else {
            0
        };
        self.last_nondet = self.last_nondet.max(agreed_ts);
        match verb {
            "put" if !read_only && !key.is_empty() => {
                let value = parts.next().unwrap_or("").as_bytes().to_vec();
                let slot = slot_of(key);
                mods.modify(slot, || self.encode_slot(slot));
                self.kv.put(key, value, env.local_clock_ns, env.rng);
                self.abs_mtimes.insert(key.to_owned(), agreed_ts);
                b"ok".to_vec()
            }
            "get" => match self.kv.get(key) {
                Some(v) => v.to_vec(),
                None => b"missing".to_vec(),
            },
            "mtime" => match self.abs_mtimes.get(key) {
                Some(mt) => mt.to_string().into_bytes(),
                None => b"missing".to_vec(),
            },
            "del" if !read_only && !key.is_empty() => {
                let slot = slot_of(key);
                mods.modify(slot, || self.encode_slot(slot));
                let existed = self.kv.delete(key);
                self.abs_mtimes.remove(key);
                if existed {
                    b"ok".to_vec()
                } else {
                    b"missing".to_vec()
                }
            }
            _ => b"err".to_vec(),
        }
    }

    fn footprint(&self, op: &[u8]) -> Option<Footprint> {
        kv_footprint(op)
    }

    fn get_obj(&self, index: u64) -> Option<Vec<u8>> {
        self.encode_slot(index)
    }

    fn put_objs(&mut self, objs: &[(u64, Option<Vec<u8>>)], env: &mut ExecEnv<'_>) {
        for (slot, data) in objs {
            let desired = match data {
                Some(bytes) => Self::decode_slot(bytes).unwrap_or_default(),
                None => Vec::new(),
            };
            // Remove keys in this slot that the checkpoint does not have.
            let current: Vec<String> = self
                .kv
                .index
                .keys()
                .filter(|k| slot_of(k) == *slot)
                .cloned()
                .collect();
            for k in current {
                if !desired.iter().any(|(dk, _, _)| *dk == k) {
                    self.kv.delete(&k);
                    self.abs_mtimes.remove(&k);
                }
            }
            // Upsert the checkpoint's entries. Concrete timestamps and ids
            // remain non-deterministic; the abstract mtime goes in the rep.
            for (k, v, mt) in desired {
                self.kv.put(&k, v, env.local_clock_ns, env.rng);
                self.abs_mtimes.insert(k, mt);
            }
        }
    }

    fn n_objects(&self) -> u64 {
        N_SLOTS
    }

    fn last_nondet_ns(&self) -> u64 {
        self.last_nondet
    }

    fn reset(&mut self, _env: &mut ExecEnv<'_>) {
        self.kv.reset();
        self.abs_mtimes.clear();
    }

    fn corrupt_state(&mut self, seed: u64) {
        // Mangle one stored value, chosen deterministically from the seed.
        // The slot digest in the abstraction layer stays stale until the
        // next warm-reboot rescan.
        let mut keys: Vec<String> = self.kv.keys().map(str::to_owned).collect();
        keys.sort();
        if keys.is_empty() {
            return;
        }
        let victim = keys[(seed % keys.len() as u64) as usize].clone();
        self.kv.corrupt(&victim);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn env<'a>(rng: &'a mut rand::rngs::StdRng, clock: u64) -> ExecEnv<'a> {
        ExecEnv::new(clock, rng)
    }

    fn ts(v: u64) -> Vec<u8> {
        v.to_be_bytes().to_vec()
    }

    #[test]
    fn divergent_implementations_same_abstract_state() {
        // Two replicas with different RNG seeds and different clocks.
        let mut rng_a = rand::rngs::StdRng::seed_from_u64(1);
        let mut rng_b = rand::rngs::StdRng::seed_from_u64(999);
        let mut a = KvWrapper::new(TinyKv::default());
        let mut b = KvWrapper::new(TinyKv::default());
        let mut mods_a = ModifyLog::new();
        let mut mods_b = ModifyLog::new();

        let script: Vec<&[u8]> = vec![b"put x 1", b"put y 2", b"del x", b"put z 33"];
        for (i, op) in script.iter().enumerate() {
            let nd = ts(1000 + i as u64);
            let ra = a.execute(op, 7, &nd, false, &mut mods_a, &mut env(&mut rng_a, 11111));
            let rb = b.execute(op, 7, &nd, false, &mut mods_b, &mut env(&mut rng_b, 99999));
            assert_eq!(ra, rb, "client-visible replies must match");
        }
        // Concrete states differ (ids/timestamps) but every abstract object
        // is identical.
        for slot in 0..N_SLOTS {
            assert_eq!(a.get_obj(slot), b.get_obj(slot), "slot {slot}");
        }
    }

    #[test]
    fn modify_is_called_before_mutation() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let mut w = KvWrapper::new(TinyKv::default());
        let mut mods = ModifyLog::new();
        w.execute(b"put k v", 1, &ts(5), false, &mut mods, &mut env(&mut rng, 0));
        let slot = slot_of("k");
        assert!(mods.is_dirty(slot));
        // The captured pre-image is the pre-mutation value: absent.
        assert_eq!(mods.copy_of(slot), Some(&None));
    }

    #[test]
    fn put_objs_inverts_get_obj() {
        let mut rng_a = rand::rngs::StdRng::seed_from_u64(1);
        let mut rng_b = rand::rngs::StdRng::seed_from_u64(2);
        let mut a = KvWrapper::new(TinyKv::default());
        let mut b = KvWrapper::new(TinyKv::default());
        let mut mods = ModifyLog::new();
        for op in [b"put k1 v1".as_slice(), b"put k2 v2", b"put longerkey somevalue"] {
            a.execute(op, 1, &ts(7), false, &mut mods, &mut env(&mut rng_a, 0));
        }
        // Transfer every non-empty slot into b.
        let objs: Vec<(u64, Option<Vec<u8>>)> =
            (0..N_SLOTS).map(|s| (s, a.get_obj(s))).collect();
        b.put_objs(&objs, &mut env(&mut rng_b, 0));
        for slot in 0..N_SLOTS {
            assert_eq!(a.get_obj(slot), b.get_obj(slot));
        }
        assert_eq!(b.kv().get("k1"), Some(&b"v1"[..]));
    }

    #[test]
    fn put_objs_removes_stale_keys() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let mut w = KvWrapper::new(TinyKv::default());
        let mut mods = ModifyLog::new();
        w.execute(b"put dead beef", 1, &ts(1), false, &mut mods, &mut env(&mut rng, 0));
        let slot = slot_of("dead");
        // The checkpoint says this slot is empty.
        w.put_objs(&[(slot, None)], &mut env(&mut rng, 0));
        assert_eq!(w.kv().get("dead"), None);
        assert_eq!(w.get_obj(slot), None);
    }

    #[test]
    fn read_only_put_is_refused() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(4);
        let mut w = KvWrapper::new(TinyKv::default());
        let mut mods = ModifyLog::new();
        let r = w.execute(b"put k v", 1, &ts(1), true, &mut mods, &mut env(&mut rng, 0));
        assert_eq!(r, b"err");
        assert_eq!(mods.dirty_count(), 0);
    }

    #[test]
    fn corruption_changes_abstract_object() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let mut w = KvWrapper::new(TinyKv::default());
        let mut mods = ModifyLog::new();
        w.execute(b"put k v", 1, &ts(1), false, &mut mods, &mut env(&mut rng, 0));
        let slot = slot_of("k");
        let before = w.get_obj(slot);
        assert!(w.kv_mut().corrupt("k"));
        assert_ne!(w.get_obj(slot), before, "corruption must be visible to the abstraction fn");
    }

    #[test]
    fn leak_is_reclaimed_by_reset() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(6);
        let mut w = KvWrapper::new(TinyKv::default());
        w.kv_mut().leaky = true;
        let mut mods = ModifyLog::new();
        w.execute(b"put k v", 1, &ts(1), false, &mut mods, &mut env(&mut rng, 0));
        w.execute(b"del k", 1, &ts(2), false, &mut mods, &mut env(&mut rng, 0));
        assert_eq!(w.kv().len(), 0);
        assert_eq!(w.kv().footprint(), 1, "deleted entry leaked");
        let mut e = env(&mut rng, 0);
        w.reset(&mut e);
        assert_eq!(w.kv().footprint(), 0, "clean restart reclaims the leak");
    }

    #[test]
    fn abstract_mtime_uses_agreed_value_not_local_clock() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let mut w = KvWrapper::new(TinyKv::default());
        let mut mods = ModifyLog::new();
        // Local clock says 123456789, agreed timestamp says 42.
        w.execute(b"put k v", 1, &ts(42), false, &mut mods, &mut env(&mut rng, 123_456_789));
        let r = w.execute(b"mtime k", 1, &[], true, &mut mods, &mut env(&mut rng, 0));
        assert_eq!(r, b"42");
    }
}
