//! BASE — BFT state machine replication with Abstraction.
//!
//! Reproduction of *Castro, Rodrigues, Liskov: "Using Abstraction To
//! Improve Fault Tolerance"* (HotOS VIII, 2001; the library is called BFTA
//! in the HotOS text and BASE in the follow-up work).
//!
//! The BFT library (crate `base-pbft`) requires every replica to run the
//! same deterministic implementation. BASE removes that restriction with
//! three ideas from data abstraction:
//!
//! 1. A **common abstract specification**: the service state is an array
//!    of variable-sized abstract objects, and every operation is specified
//!    against that abstract state.
//! 2. A **conformance wrapper** per implementation (the [`Wrapper`] trait):
//!    a veneer that makes an off-the-shelf, possibly non-deterministic
//!    implementation behave per the common specification, keeping whatever
//!    *conformance rep* bookkeeping the translation needs.
//! 3. An **abstraction function** ([`Wrapper::get_obj`]) and one of its
//!    inverses ([`Wrapper::put_objs`]) that convert between concrete and
//!    abstract state, used for checkpointing, state transfer and repair.
//!
//! The [`BaseService`] in this crate implements the `base-pbft`
//! [`base_pbft::Service`] interface on top of any [`Wrapper`], providing:
//!
//! - copy-on-write **incremental checkpoints** of the abstract state
//!   (the [`ModifyLog`] realizes the paper's `modify` upcall);
//! - the hierarchical **partition tree** over abstract objects for
//!   efficient state transfer;
//! - **proactive recovery** where the concrete implementation is restarted
//!   from a clean initial state and brought up to date from the abstract
//!   state of the replica group — which can *hide corrupt concrete state*
//!   (memory leaks, broken internal structures);
//! - agreement on **non-deterministic values** (timestamps) proposed by
//!   the primary and validated by backups.
//!
//! Correspondence to the BFTA interface of the paper's Figure 1:
//!
//! | Paper                   | This crate                                 |
//! |-------------------------|--------------------------------------------|
//! | `invoke(req, rep, ro)`  | [`BaseClient::invoke`] / `ClientCore`      |
//! | `execute(...)` upcall   | [`Wrapper::execute`]                       |
//! | `modify(nobjs, objs)`   | [`ModifyLog::modify`]                      |
//! | `get_obj(i, obj)`       | [`Wrapper::get_obj`]                       |
//! | `put_objs(...)`         | [`Wrapper::put_objs`]                      |
//!
//! # Examples
//!
//! Replicating the demo key-value store, where every replica runs a
//! *non-deterministic* off-the-shelf implementation:
//!
//! ```
//! use base::demo::{KvWrapper, TinyKv};
//! use base::{BaseClient, BaseReplica, Config};
//! use base_simnet::{SimDuration, Simulation};
//!
//! let cfg = Config::new(4);
//! let mut sim = Simulation::new(1);
//! let dir = base_crypto::KeyDirectory::generate(5, 1);
//! for i in 0..4 {
//!     let keys = base_crypto::NodeKeys::new(dir.clone(), i);
//!     let service = base::BaseService::new(KvWrapper::new(TinyKv::default()));
//!     sim.add_node(Box::new(BaseReplica::new(cfg.clone(), keys, service)));
//! }
//! let keys = base_crypto::NodeKeys::new(dir, 4);
//! let client = sim.add_node(Box::new(BaseClient::new(cfg, keys)));
//!
//! sim.actor_as_mut::<BaseClient>(client).unwrap().invoke(b"put lang rust".to_vec(), false);
//! sim.actor_as_mut::<BaseClient>(client).unwrap().invoke(b"get lang".to_vec(), true);
//! sim.run_for(SimDuration::from_millis(300));
//! let done = &sim.actor_as::<BaseClient>(client).unwrap().completed;
//! assert_eq!(done[1].1, b"rust".to_vec());
//! ```

#![warn(missing_docs)]

pub mod client;
pub mod demo;
pub mod service;
pub mod shard;
pub mod shard_chaos;
pub mod wrapper;

pub use base_pbft::{ByzMode, Config, CostModel, PartitionTree};
pub use client::BaseClient;
pub use service::BaseService;
pub use shard::{build_sharded_group, ShardLockService, ShardMap, ShardedClient, ShardedGroup};
pub use shard_chaos::{ShardedChaosHarness, APP_XBUSY};
pub use wrapper::{Footprint, ModifyLog, Wrapper};

/// A BASE replica: the PBFT replica driving a [`BaseService`].
pub type BaseReplica<W> = base_pbft::Replica<BaseService<W>>;
