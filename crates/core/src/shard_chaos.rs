//! Chaos harness for the sharded multi-group deployment.
//!
//! Reuses the generic campaign engine of [`base_simnet::chaos`] against a
//! multi-shard counter deployment built with [`build_sharded_group`]: every
//! shard is a full PBFT replica group wrapped in a [`ShardLockService`],
//! and the clients are [`ShardedClient`] routers driving both single-shard
//! operations and cross-shard transactions.
//!
//! On top of the replica-level fault vocabulary shared with
//! [`base_pbft::chaos::CounterChaosHarness`] (Byzantine mode flips, latent
//! state corruption, proactive recovery), the harness adds a sharding-
//! specific fault: [`APP_XBUSY`] arms injected cross-shard lock refusals on
//! the shard owning the targeted node, forcing the routers down the
//! abort/release/back-off/retry path of the ordered commit protocol. The
//! injection is carried by the agreed `xchaos` operation, so it is
//! deterministic, consistent across the shard's replicas, and — like every
//! other fault here — flows through [`generate_schedule`] and shrinks
//! through `minimize`/ddmin.
//!
//! ## What the audits can and cannot compare
//!
//! Client-observed results are always auditable: every accepted reply is
//! backed by a reply quorum, so the per-register subset-chain check and
//! the torn-commit check on merged cross-shard replies are sound under any
//! schedule. Certificate-backed state (stable checkpoint digests) is also
//! always comparable: a certificate needs `2f+1` matching digests, which a
//! minority divergence cannot forge.
//!
//! *Uncertified per-replica state is only compared on fault-free runs.*
//! Lock tables are conformance rep: a replica that installs a checkpoint
//! clears its locks, after which it may execute an operation its peers
//! refuse with `xbusy` (or vice versa). The divergence is bounded by `f`,
//! masked by reply quorums and repaired by the next state transfer — but
//! it means a mid-run snapshot of an individual replica's uncertified
//! digests or registers is not evidence of a protocol fork. On runs with
//! an empty fault schedule no such divergence can arise, and the audit
//! tightens to exact pairwise agreement: retained checkpoint digests,
//! final register values (the union of every delta ever added) and empty
//! lock tables on every replica of every shard.

use std::collections::HashMap;

use base_pbft::chaos::{APP_BYZ, APP_CORRUPT_STATE, APP_RECOVER};
use base_pbft::testing::{op_add, op_get, CounterService, COUNTER_REGS};
use base_pbft::{ByzMode, Config, Replica};
use base_simnet::chaos::{
    AppFaultSpec, ChaosHarness, HealSpec, LivenessBounds, ScheduleGenConfig,
};
use base_simnet::{NodeId, SimDuration, Simulation};

use crate::shard::{
    build_sharded_group, counter_footprint, ShardLockService, ShardMap, ShardedClient,
    ShardedGroup,
};

/// App-fault tag: arm `1 + arg` injected cross-shard lock refusals on the
/// shard owning the targeted node. The harness submits the agreed
/// `xchaos` operation through a router (picked from the node id), so the
/// refusals land at one sequence number on every replica of the shard and
/// the subsequent abort/retry rounds are deterministic.
pub const APP_XBUSY: u32 = 10;

type LockedCounter = ShardLockService<CounterService>;
type ShardReplica = Replica<LockedCounter>;

/// What a completed router invocation is expected to be, for the audit.
enum XKind {
    /// Single-shard write of a distinct delta bit to `reg`.
    Add { reg: u64, delta: u64 },
    /// Single-shard read of `reg`.
    Get { reg: u64 },
    /// Cross-shard transaction: one `(reg, delta)` write per shard, in
    /// ascending shard order (the order of the merged reply).
    Cross { parts: Vec<(u64, u64)> },
    /// An injected `xchaos` arming operation (replies `xok`).
    Chaos,
}

/// Chaos harness for a `shards × n` sharded counter deployment driven by
/// [`ShardedClient`] routers.
pub struct ShardedChaosHarness {
    /// Replicas per shard.
    pub n: usize,
    /// Number of independent replica groups.
    pub shards: u32,
    /// Number of router clients (each talks to every shard).
    pub routers: usize,
    /// Single-shard operations per router, spread round-robin over the
    /// shards' designated registers (every third one a read).
    pub singles_per_router: usize,
    /// Cross-shard transactions per router (one write per shard each).
    pub cross_per_router: usize,
    /// Enables the deliberate client bug (accept the first full reply
    /// without a quorum) on every router core, so tests can demonstrate
    /// the auditor catching it through the sharded path.
    pub inject_router_bug: bool,
    /// Gap between a router's pump ticks, stretching the workload across
    /// the fault schedule.
    pub pace: SimDuration,
    /// Extra settle time after the last event.
    pub settle: SimDuration,
    // Per-run state, reset by `build`.
    group: Option<ShardedGroup>,
    /// `(router index, job id)` → expected operation kind.
    expected: HashMap<(usize, u64), XKind>,
    /// Jobs issued per router (router `i`'s completions must reach this).
    jobs: Vec<u64>,
    /// Per-register union of every delta bit any write added.
    reg_deltas: HashMap<u64, u64>,
}

/// Allocates the next distinct delta bit for `reg`.
fn fresh_bit(
    next_bit: &mut HashMap<u64, u32>,
    reg_deltas: &mut HashMap<u64, u64>,
    reg: u64,
) -> u64 {
    let bit = next_bit.entry(reg).or_insert(0);
    assert!(*bit < 64, "workload too large for distinct delta bits on reg {reg}");
    let delta = 1u64 << *bit;
    *bit += 1;
    *reg_deltas.entry(reg).or_insert(0) |= delta;
    delta
}

impl ShardedChaosHarness {
    /// Creates a harness with `shards` groups of `n` replicas and a
    /// default workload of two routers mixing single-shard operations
    /// with cross-shard transactions.
    pub fn new(n: usize, shards: u32) -> Self {
        Self {
            n,
            shards,
            routers: 2,
            singles_per_router: 6,
            cross_per_router: 2,
            inject_router_bug: false,
            pace: SimDuration::from_millis(250),
            settle: SimDuration::from_secs(30),
            group: None,
            expected: HashMap::new(),
            jobs: Vec::new(),
            reg_deltas: HashMap::new(),
        }
    }

    /// The per-shard group configuration: frequent checkpoints so
    /// campaigns exercise garbage collection and state transfer, and a
    /// short reboot so triggered recoveries finish within the run.
    pub fn config(&self) -> Config {
        let mut cfg = Config::new(self.n);
        cfg.checkpoint_interval = 4;
        cfg.log_window = 32;
        cfg.reboot_time = SimDuration::from_millis(100);
        cfg
    }

    /// A schedule-generation config matching this harness: faults target
    /// every shard's replicas, at most `f` nodes are impaired at once
    /// (conservative — the budget is global, so no single shard ever
    /// exceeds its own `f`), and the app-fault vocabulary adds injected
    /// cross-shard lock refusals to the Byzantine/corruption faults.
    pub fn gen_config(&self, events: usize, horizon: SimDuration) -> ScheduleGenConfig {
        let cfg = self.config();
        ScheduleGenConfig {
            nodes: (0..self.shards as usize * self.n).map(NodeId).collect(),
            max_impaired: cfg.f(),
            horizon,
            events,
            app_faults: vec![
                AppFaultSpec {
                    tag: APP_BYZ,
                    arg_max: 7,
                    impairs: true,
                    heal: Some(HealSpec { tag: APP_BYZ, after: SimDuration::from_secs(2) }),
                },
                AppFaultSpec {
                    tag: APP_CORRUPT_STATE,
                    arg_max: 1 << 32,
                    impairs: true,
                    heal: Some(HealSpec { tag: APP_RECOVER, after: SimDuration::from_secs(2) }),
                },
                AppFaultSpec {
                    // Injected refusals only delay the routers' commit
                    // rounds; the shard keeps serving, so the fault does
                    // not count against the impairment budget.
                    tag: APP_XBUSY,
                    arg_max: 3,
                    impairs: false,
                    heal: None,
                },
            ],
            net_faults: true,
        }
    }

    /// The designated register of each shard (the first index it owns);
    /// the workload concentrates on these so locks actually contend.
    fn designated_regs(map: &ShardMap) -> Vec<u64> {
        (0..map.shards()).map(|s| map.range_of(s).start).collect()
    }

    fn replica<'a>(&self, sim: &'a Simulation, node: NodeId) -> &'a ShardReplica {
        sim.actor_as::<ShardReplica>(node).expect("replica actor")
    }

    /// Replicas of shard `s` that are honest *now*.
    fn honest_in_shard(&self, sim: &Simulation, s: usize) -> Vec<NodeId> {
        let group = self.group.as_ref().expect("run built");
        group.replicas[s]
            .iter()
            .copied()
            .filter(|&r| self.replica(sim, r).byzantine() == ByzMode::Honest)
            .collect()
    }

    fn audit_liveness(&self, sim: &Simulation) -> Result<(), String> {
        let group = self.group.as_ref().expect("run built");
        for (i, &c) in group.clients.iter().enumerate() {
            let router = sim.actor_as::<ShardedClient>(c).expect("router actor");
            if router.completed.len() as u64 != self.jobs[i] {
                return Err(format!(
                    "liveness: router {i} completed {}/{} invocations",
                    router.completed.len(),
                    self.jobs[i]
                ));
            }
        }
        Ok(())
    }

    fn parse_value(&self, who: &str, reg: u64, result: &[u8]) -> Result<u64, String> {
        let value: u64 = std::str::from_utf8(result)
            .ok()
            .and_then(|t| t.parse().ok())
            .ok_or_else(|| {
                format!(
                    "linearizability: {who} accepted a corrupt reply {:?} for reg {reg}",
                    String::from_utf8_lossy(result)
                )
            })?;
        let known = self.reg_deltas.get(&reg).copied().unwrap_or(0);
        if value & !known != 0 {
            return Err(format!(
                "linearizability: {who} result {value:#x} for reg {reg} contains bits \
                 no write ever added"
            ));
        }
        Ok(value)
    }

    /// Per-register linearizability: every write returns the register
    /// value after it executed and contributes a distinct bit, so the
    /// results on each register must form a strict subset chain; reads
    /// must observe a state on that chain. Cross-shard replies are torn
    /// apart into their per-shard pieces first — a merged reply missing a
    /// piece, or a piece missing its own delta, is a torn commit.
    fn audit_linearizability(&self, sim: &Simulation) -> Result<(), String> {
        let group = self.group.as_ref().expect("run built");
        let mut adds: HashMap<u64, Vec<u64>> = HashMap::new();
        let mut gets: Vec<(String, u64, u64)> = Vec::new();

        for (i, &c) in group.clients.iter().enumerate() {
            let router = sim.actor_as::<ShardedClient>(c).expect("router actor");
            for (job, result) in &router.completed {
                let who = format!("router {i} job {job}");
                let kind = self
                    .expected
                    .get(&(i, *job))
                    .ok_or_else(|| format!("{who} completed but was never issued"))?;
                match kind {
                    XKind::Chaos => {
                        if result.as_slice() != b"xok" {
                            return Err(format!(
                                "{who}: xchaos arming returned {:?}",
                                String::from_utf8_lossy(result)
                            ));
                        }
                    }
                    XKind::Add { reg, delta } => {
                        let value = self.parse_value(&who, *reg, result)?;
                        if value & delta == 0 {
                            return Err(format!(
                                "linearizability: {who} add result {value:#x} is missing \
                                 its own delta {delta:#x}"
                            ));
                        }
                        adds.entry(*reg).or_default().push(value);
                    }
                    XKind::Get { reg } => {
                        let value = self.parse_value(&who, *reg, result)?;
                        gets.push((who, *reg, value));
                    }
                    XKind::Cross { parts } => {
                        let pieces: Vec<&[u8]> = result.split(|&b| b == b';').collect();
                        if pieces.len() != parts.len() {
                            return Err(format!(
                                "torn commit: {who} merged reply has {} pieces, \
                                 transaction touched {} shards",
                                pieces.len(),
                                parts.len()
                            ));
                        }
                        for ((reg, delta), piece) in parts.iter().zip(pieces) {
                            let value = self.parse_value(&who, *reg, piece)?;
                            if value & delta == 0 {
                                return Err(format!(
                                    "torn commit: {who} committed on reg {reg} but the \
                                     reply {value:#x} is missing its delta {delta:#x}"
                                ));
                            }
                            adds.entry(*reg).or_default().push(value);
                        }
                    }
                }
            }
        }

        for (reg, results) in &mut adds {
            results.sort_by_key(|v| (v.count_ones(), *v));
            for pair in results.windows(2) {
                let (a, b) = (pair[0], pair[1]);
                if a & !b != 0 || a == b {
                    return Err(format!(
                        "linearizability: reg {reg} write results {a:#x} and {b:#x} are \
                         not a subset chain — no sequential execution produces both"
                    ));
                }
            }
        }
        for (who, reg, value) in gets {
            if value != 0 && !adds.get(&reg).is_some_and(|chain| chain.contains(&value)) {
                return Err(format!(
                    "linearizability: {who} read {value:#x} from reg {reg}, a state no \
                     sequential execution passes through"
                ));
            }
        }
        Ok(())
    }

    /// Per-shard convergence: after the settle window each shard's honest
    /// replicas agree on one view, and certificate-backed stable digests
    /// at equal stable sequence numbers are identical (a certificate
    /// cannot be assembled for a minority digest).
    fn audit_per_shard_agreement(&self, sim: &Simulation) -> Result<(), String> {
        let group = self.group.as_ref().expect("run built");
        for s in 0..group.replicas.len() {
            let honest = self.honest_in_shard(sim, s);
            let mut views: Vec<(NodeId, u64)> =
                honest.iter().map(|&r| (r, self.replica(sim, r).view())).collect();
            views.sort_by_key(|&(_, v)| v);
            if let (Some(&(lo_node, lo)), Some(&(hi_node, hi))) = (views.first(), views.last())
            {
                if lo != hi {
                    return Err(format!(
                        "view agreement: shard {s} replicas settled in different views \
                         (replica {} in view {lo}, replica {} in view {hi})",
                        lo_node.0, hi_node.0
                    ));
                }
            }
            for (i, &a) in honest.iter().enumerate() {
                let ra = self.replica(sim, a);
                for &b in honest.iter().skip(i + 1) {
                    let rb = self.replica(sim, b);
                    if ra.stable_seq() == rb.stable_seq() && ra.stable_seq() > 0 {
                        if let (Some(da), Some(db)) = (ra.stable_digest(), rb.stable_digest())
                        {
                            if da != db {
                                return Err(format!(
                                    "checkpoint fork: shard {s} stable digests diverge \
                                     at seq {} between replicas {} and {}",
                                    ra.stable_seq(),
                                    a.0,
                                    b.0
                                ));
                            }
                        }
                    }
                }
            }
        }
        Ok(())
    }

    /// Fault-free runs only (see the module docs): exact pairwise retained
    /// checkpoint agreement, all-deltas final register values, and no
    /// leaked locks anywhere.
    fn audit_quiescent_exact(&self, sim: &Simulation) -> Result<(), String> {
        let group = self.group.as_ref().expect("run built");
        let regs = Self::designated_regs(&group.map);
        for (s, nodes) in group.replicas.iter().enumerate() {
            for (i, &a) in nodes.iter().enumerate() {
                let da: HashMap<u64, _> =
                    self.replica(sim, a).checkpoint_digests().into_iter().collect();
                for &b in nodes.iter().skip(i + 1) {
                    for (seq, db) in self.replica(sim, b).checkpoint_digests() {
                        if da.get(&seq).is_some_and(|daq| *daq != db) {
                            return Err(format!(
                                "checkpoint fork: shard {s} replicas {} and {} disagree \
                                 at seq {seq} on a fault-free run",
                                a.0, b.0
                            ));
                        }
                    }
                }
            }
            let reg = regs[s];
            let want = self.reg_deltas.get(&reg).copied().unwrap_or(0);
            for &r in nodes {
                let rep = self.replica(sim, r);
                let got = rep.service().inner().value(reg as usize);
                if got != want {
                    return Err(format!(
                        "state: shard {s} replica {} reg {reg} ended at {got:#x}, \
                         expected the union of all deltas {want:#x}",
                        r.0
                    ));
                }
                let held = rep.service().held_locks();
                if held != 0 {
                    return Err(format!(
                        "lock leak: shard {s} replica {} still holds {held} lock(s) \
                         after a fault-free run",
                        r.0
                    ));
                }
            }
        }
        Ok(())
    }
}

impl ChaosHarness for ShardedChaosHarness {
    fn build(&mut self, seed: u64) -> Simulation {
        self.expected.clear();
        self.jobs = vec![0; self.routers];
        self.reg_deltas.clear();
        let mut next_bit: HashMap<u64, u32> = HashMap::new();

        let mut sim = Simulation::new(seed);
        let map = ShardMap::new(COUNTER_REGS, self.shards);
        let group = build_sharded_group(
            &mut sim,
            self.config(),
            map,
            self.routers,
            seed,
            counter_footprint,
            |_, _| ShardLockService::new(CounterService::default(), counter_footprint),
        );
        for nodes in &group.replicas {
            for &r in nodes {
                // Warm reboots: recovery repairs state instead of
                // rebuilding it, which is what surfaces latent corruption.
                sim.actor_as_mut::<ShardReplica>(r)
                    .expect("replica actor")
                    .set_recovery_clean(false);
            }
        }

        let regs = Self::designated_regs(&group.map);
        for (i, &c) in group.clients.iter().enumerate() {
            let router = sim.actor_as_mut::<ShardedClient>(c).expect("router actor");
            for s in 0..self.shards {
                router.core_mut(s).bug_accept_first_reply = self.inject_router_bug;
            }
            router.set_pace(self.pace);
            let mut job = 0u64;
            let mut singles = 0usize;
            let mut crosses = 0usize;
            // Interleave: an early cross-shard transaction meets early
            // scheduled faults; the rest are spread through the singles.
            for slot in 0..self.singles_per_router + self.cross_per_router {
                job += 1;
                let cross_turn = crosses < self.cross_per_router
                    && (slot % 3 == 1 || singles >= self.singles_per_router);
                if cross_turn {
                    crosses += 1;
                    let mut ops = Vec::with_capacity(regs.len());
                    let mut parts = Vec::with_capacity(regs.len());
                    for &reg in &regs {
                        let delta = fresh_bit(&mut next_bit, &mut self.reg_deltas, reg);
                        parts.push((reg, delta));
                        ops.push(op_add(reg, delta));
                    }
                    router.invoke_cross(ops);
                    self.expected.insert((i, job), XKind::Cross { parts });
                } else {
                    singles += 1;
                    let reg = regs[singles % regs.len()];
                    if singles % 3 == 0 {
                        router.invoke(op_get(reg), true);
                        self.expected.insert((i, job), XKind::Get { reg });
                    } else {
                        let delta = fresh_bit(&mut next_bit, &mut self.reg_deltas, reg);
                        router.invoke(op_add(reg, delta), false);
                        self.expected.insert((i, job), XKind::Add { reg, delta });
                    }
                }
            }
            self.jobs[i] = job;
        }
        self.group = Some(group);
        sim
    }

    fn apply_app(
        &mut self,
        sim: &mut Simulation,
        node: NodeId,
        tag: u32,
        arg: u64,
        trace: &mut Vec<String>,
    ) {
        if tag == APP_XBUSY {
            let group = self.group.as_ref().expect("run built");
            let shard = node.0 / self.n;
            if shard >= group.replicas.len() {
                trace.push(format!("xbusy fault at node {} ignored (not a replica)", node.0));
                return;
            }
            let reg = group.map.range_of(shard as u32).start;
            let r = node.0 % self.routers;
            let count = 1 + arg;
            let router_node = group.clients[r];
            let router = sim.actor_as_mut::<ShardedClient>(router_node).expect("router actor");
            router.invoke(format!("xchaos {reg} {count}").into_bytes(), false);
            self.jobs[r] += 1;
            self.expected.insert((r, self.jobs[r]), XKind::Chaos);
            trace.push(format!(
                "shard {shard} arming {count} xbusy refusal(s) via router {r}"
            ));
            return;
        }
        let Some(replica) = sim.actor_as_mut::<ShardReplica>(node) else {
            trace.push(format!("app fault at node {} ignored (not a replica)", node.0));
            return;
        };
        match tag {
            APP_BYZ => {
                let mode = ByzMode::from_code(arg);
                replica.set_byzantine(mode);
                trace.push(format!("node {} byzantine mode -> {mode:?}", node.0));
            }
            APP_CORRUPT_STATE => {
                replica.corrupt_service_state(arg);
                trace.push(format!("node {} concrete state corrupted (seed {arg})", node.0));
            }
            APP_RECOVER => {
                replica.trigger_recovery();
                trace.push(format!("node {} proactive recovery triggered", node.0));
            }
            _ => trace.push(format!("unknown app fault tag {tag} at node {}", node.0)),
        }
    }

    fn settle(&self) -> SimDuration {
        self.settle
    }

    fn liveness_bounds(&self) -> LivenessBounds {
        // Mirrors the single-group harness: well inside the settle window
        // but generous enough for a capped view-change chase plus a state
        // transfer — cross-shard retries add at most a bounded backoff.
        LivenessBounds {
            heal_to_progress: Some(SimDuration::from_secs(25)),
            view_convergence: Some(SimDuration::from_secs(25)),
            recovery_duration: Some(SimDuration::from_secs(25)),
        }
    }

    fn audit(&mut self, sim: &mut Simulation, trace: &mut Vec<String>) -> Result<(), String> {
        // `trace` holds one line per applied event at this point, so an
        // empty trace means the schedule was empty and the exact
        // (uncertified-state) audits are sound.
        let fault_free = trace.is_empty();
        self.audit_liveness(sim)?;
        self.audit_linearizability(sim)?;
        self.audit_per_shard_agreement(sim)?;
        if fault_free {
            self.audit_quiescent_exact(sim)?;
        }
        let group = self.group.as_ref().expect("run built");
        let (mut aborts, mut busy_retries) = (0u64, 0u64);
        for &c in &group.clients {
            let router = sim.actor_as::<ShardedClient>(c).expect("router actor");
            aborts += router.cross_aborts;
            busy_retries += router.single_busy_retries;
        }
        let (mut commits, mut refused) = (0u64, 0u64);
        for nodes in &group.replicas {
            for &r in nodes {
                let svc = self.replica(sim, r).service();
                commits += svc.commits;
                refused += svc.prepares_refused;
            }
        }
        trace.push(format!(
            "sharded audit ok: cross_aborts={aborts} single_busy_retries={busy_retries} \
             replica_commits={commits} replica_refusals={refused}"
        ));
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use base_simnet::chaos::{generate_schedule, minimize, run_one, FaultSchedule, NetFault};
    use base_simnet::SimTime;

    /// Pulls a `name=value` counter out of the audit summary line.
    fn summary_counter(trace: &[String], name: &str) -> u64 {
        let line = trace
            .iter()
            .find(|l| l.starts_with("sharded audit ok:"))
            .expect("audit summary line");
        line.split_whitespace()
            .find_map(|tok| tok.strip_prefix(&format!("{name}=")))
            .and_then(|v| v.parse().ok())
            .expect("summary counter")
    }

    #[test]
    fn fault_free_sharded_run_passes_audit() {
        let mut h = ShardedChaosHarness::new(4, 2);
        let (outcome, verdict) = run_one(&mut h, 7, &FaultSchedule::new());
        assert_eq!(verdict, Ok(()), "trace:\n{}", outcome.trace.join("\n"));
        // The workload really exercised the commit protocol: every router
        // ran cross-shard transactions, committed on every shard's quorum.
        assert!(summary_counter(&outcome.trace, "replica_commits") > 0);
    }

    #[test]
    fn injected_refusals_drive_abort_and_retry_to_completion() {
        let mut h = ShardedChaosHarness::new(4, 2);
        let mut schedule = FaultSchedule::new();
        // Arm refusals on both shards while the early transactions'
        // lock rounds are in flight; the routers must abort, release in
        // reverse order, back off and retry to completion.
        schedule
            .app(SimTime::from_millis(300), NodeId(0), APP_XBUSY, 2)
            .app(SimTime::from_millis(500), NodeId(4), APP_XBUSY, 2)
            .app(SimTime::from_millis(2_000), NodeId(1), APP_XBUSY, 1);
        let (outcome, verdict) = run_one(&mut h, 21, &schedule);
        assert_eq!(verdict, Ok(()), "trace:\n{}", outcome.trace.join("\n"));
        assert!(
            outcome.trace.iter().any(|l| l.contains("arming")),
            "trace records the injection:\n{}",
            outcome.trace.join("\n")
        );
        assert!(
            summary_counter(&outcome.trace, "replica_refusals") > 0,
            "refusals reached a shard's replicas:\n{}",
            outcome.trace.join("\n")
        );
        assert!(
            summary_counter(&outcome.trace, "cross_aborts") > 0,
            "a router rolled back and retried:\n{}",
            outcome.trace.join("\n")
        );
    }

    #[test]
    fn storm_on_one_shard_leaves_both_shards_live() {
        let mut h = ShardedChaosHarness::new(4, 2);
        let mut schedule = FaultSchedule::new();
        // Shard 0 takes a partition, a crash and a Byzantine window in
        // sequence (each within its own f budget); shard 1 is untouched.
        // Every router must still finish all work on both shards —
        // including the cross-shard transactions that need shard 0 back.
        schedule
            .net(
                SimTime::from_millis(500),
                NetFault::Partition { nodes: vec![NodeId(0)] },
                SimDuration::from_millis(1_500),
            )
            .crash(SimTime::from_millis(2_500), NodeId(1), SimDuration::from_millis(1_200))
            .app(SimTime::from_millis(4_200), NodeId(2), APP_BYZ, ByzMode::CorruptReplies.code())
            .app(SimTime::from_millis(5_500), NodeId(2), APP_BYZ, 0);
        let (outcome, verdict) = run_one(&mut h, 5, &schedule);
        assert_eq!(verdict, Ok(()), "trace:\n{}", outcome.trace.join("\n"));
    }

    #[test]
    fn generated_campaign_with_sharded_vocabulary_finds_no_violations() {
        let mut h = ShardedChaosHarness::new(4, 2);
        for seed in 0..3u64 {
            let schedule = generate_schedule(
                &h.gen_config(6, SimDuration::from_secs(8)),
                0xBA5E_0000 + seed,
            );
            let (outcome, verdict) = run_one(&mut h, seed, &schedule);
            assert_eq!(
                verdict,
                Ok(()),
                "seed {seed} schedule:\n{}\ntrace:\n{}",
                schedule.describe(),
                outcome.trace.join("\n")
            );
        }
    }

    #[test]
    fn ddmin_shrinks_sharded_failure_to_the_byzantine_trigger() {
        let mut h = ShardedChaosHarness::new(4, 2);
        h.inject_router_bug = true;
        let mut schedule = FaultSchedule::new();
        // Noise the minimizer should discard…
        schedule
            .app(SimTime::from_millis(300), NodeId(0), APP_XBUSY, 1)
            .app(SimTime::from_millis(700), NodeId(5), APP_XBUSY, 2)
            .crash(SimTime::from_millis(1_500), NodeId(3), SimDuration::from_millis(800));
        // …and the actual trigger: one corrupt replier feeds the
        // quorum-skipping router a fabricated reply.
        schedule.app(
            SimTime::from_millis(10),
            NodeId(1),
            APP_BYZ,
            ByzMode::CorruptReplies.code(),
        );
        let (outcome, verdict) = run_one(&mut h, 3, &schedule);
        assert!(verdict.is_err(), "expected failure; trace:\n{}", outcome.trace.join("\n"));

        let minimal = minimize(&mut h, 3, &schedule);
        assert!(
            minimal.len() < schedule.len(),
            "minimizer kept everything:\n{}",
            minimal.describe()
        );
        assert!(
            minimal
                .events
                .iter()
                .any(|e| matches!(
                    e.event,
                    base_simnet::chaos::ChaosEvent::App { tag: APP_BYZ, .. }
                )),
            "the Byzantine trigger must survive minimization:\n{}",
            minimal.describe()
        );
    }
}
