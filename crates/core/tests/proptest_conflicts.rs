//! Property tests for the conflict-footprint partitioner that feeds the
//! parallel execution stage: grouped execution must be indistinguishable
//! from sequential execution (same replies, same abstract state), groups
//! must never share a declared object, and the grouping itself must be
//! deterministic — the scheduler can never become a nondeterminism source.

use base::demo::{KvWrapper, TinyKv};
use base::service::conflict_groups;
use base::{BaseService, Footprint, Wrapper};
use base_pbft::{ExecEnv, Service};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// One generated KV operation, rendered to the wrapper's text format.
#[derive(Debug, Clone)]
enum Op {
    Put(u8, u8),
    Get(u8),
    Del(u8),
    Mtime(u8),
}

impl Op {
    fn render(&self) -> Vec<u8> {
        match self {
            Op::Put(k, v) => format!("put k{k} v{v}").into_bytes(),
            Op::Get(k) => format!("get k{k}").into_bytes(),
            Op::Del(k) => format!("del k{k}").into_bytes(),
            Op::Mtime(k) => format!("mtime k{k}").into_bytes(),
        }
    }
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u8..12, any::<u8>()).prop_map(|(k, v)| Op::Put(k, v)),
        (0u8..12).prop_map(Op::Get),
        (0u8..12).prop_map(Op::Del),
        (0u8..12).prop_map(Op::Mtime),
    ]
}

fn arb_batch() -> impl Strategy<Value = Vec<Op>> {
    proptest::collection::vec(arb_op(), 1..24)
}

/// Runs `ops` as one batch through [`Service::execute_batch`] with the
/// given worker count; returns (replies, checkpoint root).
fn run_batched(ops: &[Op], nondet: &[u8], workers: usize) -> (Vec<Vec<u8>>, base_crypto::Digest) {
    let mut svc = BaseService::new(KvWrapper::new(TinyKv::default()));
    svc.set_exec_workers(workers);
    let rendered: Vec<Vec<u8>> = ops.iter().map(Op::render).collect();
    let batch: Vec<(&[u8], u32)> = rendered.iter().map(|o| (o.as_slice(), 7u32)).collect();
    let mut rng = StdRng::seed_from_u64(42);
    let mut env = ExecEnv::new(1_000, &mut rng);
    let replies = svc.execute_batch(&batch, nondet, &mut env);
    let root = svc.take_checkpoint(8, &mut env);
    (replies, root)
}

/// Runs `ops` one at a time in order (the sequential baseline).
fn run_sequential(ops: &[Op], nondet: &[u8]) -> (Vec<Vec<u8>>, base_crypto::Digest) {
    let mut svc = BaseService::new(KvWrapper::new(TinyKv::default()));
    let mut rng = StdRng::seed_from_u64(42);
    let mut env = ExecEnv::new(1_000, &mut rng);
    let replies: Vec<Vec<u8>> =
        ops.iter().map(|op| svc.execute(&op.render(), 7, nondet, false, &mut env)).collect();
    let root = svc.take_checkpoint(8, &mut env);
    (replies, root)
}

fn footprints_of(ops: &[Op]) -> Vec<Option<Footprint>> {
    let w = KvWrapper::new(TinyKv::default());
    ops.iter().map(|op| w.footprint(&op.render())).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Conflict-grouped batch execution produces exactly the replies and
    /// abstract state of sequential in-order execution, at every worker
    /// count.
    #[test]
    fn grouped_execution_matches_sequential(ops in arb_batch()) {
        let nondet = 5_000u64.to_be_bytes();
        let (seq_replies, seq_root) = run_sequential(&ops, &nondet);
        for workers in [1usize, 2, 8] {
            let (replies, root) = run_batched(&ops, &nondet, workers);
            prop_assert_eq!(&replies, &seq_replies, "replies diverged at workers={}", workers);
            prop_assert_eq!(root, seq_root, "abstract state diverged at workers={}", workers);
        }
    }

    /// Two operations placed in different groups never share a declared
    /// object with a write on either side — and an op with no declared
    /// footprint (the conservative default) is never separated from
    /// anything.
    #[test]
    fn groups_never_share_objects(ops in arb_batch()) {
        let fps = footprints_of(&ops);
        let groups = conflict_groups(&fps);
        // Every index appears exactly once.
        let mut seen: Vec<usize> = groups.iter().flatten().copied().collect();
        seen.sort_unstable();
        prop_assert_eq!(seen, (0..ops.len()).collect::<Vec<_>>());
        for (gi, ga) in groups.iter().enumerate() {
            for gb in groups.iter().skip(gi + 1) {
                for &i in ga {
                    for &j in gb {
                        match (&fps[i], &fps[j]) {
                            (Some(a), Some(b)) => prop_assert!(
                                !a.conflicts_with(b),
                                "ops {} and {} conflict but were separated",
                                i,
                                j
                            ),
                            _ => prop_assert!(
                                false,
                                "op without a footprint must conflict with everything"
                            ),
                        }
                    }
                }
            }
        }
    }

    /// The grouping is a pure function of the footprints: recomputing it
    /// (and recomputing the footprints themselves) yields the identical
    /// partition, and members stay in batch order.
    #[test]
    fn grouping_is_deterministic(ops in arb_batch()) {
        let fps = footprints_of(&ops);
        let a = conflict_groups(&fps);
        let b = conflict_groups(&footprints_of(&ops));
        prop_assert_eq!(&a, &b);
        for group in &a {
            prop_assert!(group.windows(2).all(|w| w[0] < w[1]), "batch order inside a group");
        }
        // Groups are ordered by their smallest member.
        let heads: Vec<usize> = a.iter().map(|g| g[0]).collect();
        prop_assert!(heads.windows(2).all(|w| w[0] < w[1]), "groups ordered by first member");
    }
}
