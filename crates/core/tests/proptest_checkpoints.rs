//! Property tests for the BASE checkpoint machinery: copy-on-write
//! reverse-delta records must reproduce exactly the abstract state that
//! existed at every retained checkpoint, for arbitrary operation schedules.

use base::demo::{KvWrapper, TinyKv, N_SLOTS};
use base::{BaseService, Wrapper as _};
use base_pbft::tree::leaf_digest;
use base_pbft::{ExecEnv, Service};
use base_crypto::Digest;
use proptest::prelude::*;
use rand::SeedableRng;

/// One scripted operation.
#[derive(Debug, Clone)]
enum Op {
    Put(u8, u8),
    Del(u8),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u8..20, any::<u8>()).prop_map(|(k, v)| Op::Put(k, v)),
        (0u8..20).prop_map(Op::Del),
    ]
}

fn apply(svc: &mut BaseService<KvWrapper>, op: &Op, rng: &mut rand::rngs::StdRng, i: u64) {
    let op_bytes = match op {
        Op::Put(k, v) => format!("put key{k} value{v}"),
        Op::Del(k) => format!("del key{k}"),
    };
    let nondet = (1000 + i).to_be_bytes().to_vec();
    let mut env = ExecEnv::new(7777, rng);
    svc.execute(op_bytes.as_bytes(), 1, &nondet, false, &mut env);
}

/// Reads the full abstract state (slot values) a service would serve for
/// checkpoint `seq`.
fn checkpoint_state(svc: &mut BaseService<KvWrapper>, seq: u64) -> Vec<Option<Vec<u8>>> {
    (0..N_SLOTS)
        .map(|s| {
            // Serve the object the way state transfer would: via digests
            // first (absent objects are never requested), falling back to
            // checkpoint_object.
            svc.checkpoint_object(seq, s)
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Whatever the operation schedule and checkpoint positions, the values
    /// served for an old checkpoint equal the state that existed when the
    /// checkpoint was taken.
    #[test]
    fn reverse_deltas_reproduce_history(
        ops in proptest::collection::vec(op_strategy(), 1..60),
        ckpt_every in 3usize..10,
        seed: u64,
    ) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut svc = BaseService::new(KvWrapper::new(TinyKv::default()));

        // Expected snapshots: full abstract state captured eagerly at each
        // checkpoint (the expensive strategy the COW records replace).
        let mut expected: Vec<(u64, Vec<Option<Vec<u8>>>)> = Vec::new();
        let mut roots: Vec<(u64, Digest)> = Vec::new();

        for (i, op) in ops.iter().enumerate() {
            apply(&mut svc, op, &mut rng, i as u64);
            if (i + 1) % ckpt_every == 0 {
                let seq = (i + 1) as u64;
                // Capture ground truth BEFORE taking the checkpoint.
                let truth: Vec<Option<Vec<u8>>> = {
                    let w = svc.wrapper_mut();
                    (0..N_SLOTS).map(|s| w.get_obj(s)).collect()
                };
                let mut env = ExecEnv::new(0, &mut rng);
                let root = svc.take_checkpoint(seq, &mut env);
                expected.push((seq, truth));
                roots.push((seq, root));
            }
        }

        // Every retained checkpoint must be reproducible.
        for (seq, truth) in &expected {
            let served = checkpoint_state(&mut svc, *seq);
            prop_assert_eq!(&served, truth, "checkpoint {} diverged", seq);
        }

        // The tree snapshots must be consistent with the served objects.
        for (seq, root) in &roots {
            let mut leaves = base_pbft::PartitionTree::new(N_SLOTS, 16);
            for (s, value) in checkpoint_state(&mut svc, *seq).iter().enumerate() {
                if let Some(v) = value {
                    leaves.set_leaf(s as u64, leaf_digest(s as u64, v));
                }
            }
            prop_assert_eq!(leaves.root_digest(), *root, "tree for checkpoint {} diverged", seq);
        }
    }

    /// Discarding old checkpoints never affects newer ones.
    #[test]
    fn discard_preserves_newer_checkpoints(
        ops in proptest::collection::vec(op_strategy(), 20..50),
        seed: u64,
    ) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut svc = BaseService::new(KvWrapper::new(TinyKv::default()));
        let mut truths = Vec::new();
        for (i, op) in ops.iter().enumerate() {
            apply(&mut svc, op, &mut rng, i as u64);
            if (i + 1) % 5 == 0 {
                let truth: Vec<Option<Vec<u8>>> = {
                    let w = svc.wrapper_mut();
                    (0..N_SLOTS).map(|s| w.get_obj(s)).collect()
                };
                let mut env = ExecEnv::new(0, &mut rng);
                svc.take_checkpoint((i + 1) as u64, &mut env);
                truths.push(((i + 1) as u64, truth));
            }
        }
        prop_assume!(truths.len() >= 2);
        let cut = truths[truths.len() / 2].0;
        svc.discard_checkpoints_below(cut);
        for (seq, truth) in truths.iter().filter(|(s, _)| *s >= cut) {
            prop_assert_eq!(&checkpoint_state(&mut svc, *seq), truth);
        }
        // Discarded checkpoints are gone.
        for (seq, _) in truths.iter().filter(|(s, _)| *s < cut) {
            prop_assert!(svc.checkpoint_meta(*seq, 1, 0).is_none());
        }
    }
}
