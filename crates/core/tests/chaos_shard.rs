//! Chaos campaigns over the sharded multi-group deployment: seeded runs
//! composing crash windows, partitions, Byzantine flips, latent state
//! corruption and injected cross-shard lock refusals against two
//! independent replica groups driven by cross-shard routers — each run
//! audited for per-register linearizability, torn cross-shard commits,
//! per-shard view and stable-checkpoint agreement, and liveness.

use base::shard_chaos::{ShardedChaosHarness, APP_XBUSY};
use base_pbft::chaos::APP_BYZ;
use base_simnet::chaos::{
    generate_schedule, run_campaign, run_campaign_mode, run_one, CampaignMode, CampaignReport,
    ChaosEvent, NetFault,
};
use base_simnet::{NodeId, SimDuration};

const SEEDS: std::ops::Range<u64> = 0..10;

/// Writes the campaign's coverage JSON under `target/chaos-coverage/` so CI
/// can upload it as an artifact next to the single-group campaigns'.
fn write_coverage_artifact(name: &str, report: &CampaignReport) {
    let dir =
        std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../target/chaos-coverage");
    if std::fs::create_dir_all(&dir).is_ok() {
        let _ = std::fs::write(dir.join(format!("{name}.json")), report.coverage_json());
    }
}

#[test]
fn sharded_campaign_composes_faults_and_passes_auditor() {
    let mut h = ShardedChaosHarness::new(4, 2);
    // Stretch the workload across the fault horizon: faults that land on
    // an idle deployment (no outstanding requests) can never force a view
    // change, and the coverage gate requires the campaign to exercise one.
    h.singles_per_router = 18;
    h.cross_per_router = 6;
    let cfg = h.gen_config(6, SimDuration::from_secs(8));

    // The generated schedules must collectively exercise the sharding
    // vocabulary: injected lock refusals alongside the generic faults,
    // spread over the replicas of *both* groups.
    let (mut xbusy, mut byz, mut shard0, mut shard1) = (0, 0, 0, 0);
    for seed in SEEDS {
        for ev in &generate_schedule(&cfg, seed).events {
            match &ev.event {
                ChaosEvent::App { tag, node, .. } => {
                    if *tag == APP_XBUSY {
                        xbusy += 1;
                    }
                    if *tag == APP_BYZ {
                        byz += 1;
                    }
                    if node.0 < 4 {
                        shard0 += 1;
                    } else {
                        shard1 += 1;
                    }
                }
                ChaosEvent::Crash { node, .. } => {
                    if node.0 < 4 {
                        shard0 += 1;
                    } else {
                        shard1 += 1;
                    }
                }
                _ => {}
            }
        }
    }
    assert!(
        xbusy > 0 && byz > 0 && shard0 > 0 && shard1 > 0,
        "campaign must compose sharded faults across both groups \
         (xbusy={xbusy} byz={byz} shard0={shard0} shard1={shard1})"
    );

    let report = run_campaign(&mut h, &cfg, SEEDS);
    assert_eq!(report.runs, SEEDS.end as usize);
    assert!(report.events_executed > 0, "campaign generated no events");
    if let Some(f) = report.failures.first() {
        panic!("sharded campaign failed:\n{f}");
    }
    println!("{}", report.summary());
    write_coverage_artifact("shard_mixed", &report);
    assert_eq!(report.seed_coverage.len(), report.runs);
    assert!(
        report.coverage.view_changes_started > 0,
        "mixed sharded campaign forced no view changes:\n{}",
        report.coverage
    );
    assert!(
        report.coverage.state_transfers_completed > 0,
        "mixed sharded campaign completed no state transfers:\n{}",
        report.coverage
    );
}

/// A view-change storm confined to shard 0's replicas: the generator
/// chases that group's primary rotation while shard 1 never sees a fault.
/// Every router still finishes all of its work — shard 1 keeps serving
/// throughout, and the cross-shard transactions complete once shard 0
/// converges.
#[test]
fn storm_on_shard_zero_leaves_shard_one_serving() {
    let mut h = ShardedChaosHarness::new(4, 2);
    let mut cfg = h.gen_config(5, SimDuration::from_secs(8));
    cfg.nodes = (0..4).map(NodeId).collect();
    let report = run_campaign_mode(&mut h, CampaignMode::Storm, &cfg, 0..6u64);
    if let Some(f) = report.failures.first() {
        panic!("shard-0 storm campaign failed:\n{f}");
    }
    println!("{}", report.summary());
    write_coverage_artifact("shard_storm", &report);
    assert!(
        report.coverage.view_changes_started > 0,
        "storm must force view changes in shard 0:\n{}",
        report.coverage
    );
}

#[test]
fn sharded_chaos_runs_are_deterministic() {
    let mut h = ShardedChaosHarness::new(4, 2);
    let cfg = h.gen_config(6, SimDuration::from_secs(8));
    let schedule = generate_schedule(&cfg, 42);
    // The generated schedule must be replayable byte-for-byte: trace,
    // network statistics and verdict — the property ddmin relies on.
    let (a, va) = run_one(&mut h, 42, &schedule);
    let (b, vb) = run_one(&mut h, 42, &schedule);
    assert_eq!(a.trace, b.trace, "same seed + schedule must replay the same trace");
    assert_eq!(a.stats, b.stats);
    assert_eq!(va, vb);
}

/// A partition isolating one replica of each shard in turn must heal into
/// full progress: every router's pending single- and cross-shard work
/// completes within the engine's heal-to-progress bound.
#[test]
fn partition_of_each_shard_heals_to_progress() {
    use base_simnet::chaos::FaultSchedule;
    use base_simnet::SimTime;

    let mut h = ShardedChaosHarness::new(4, 2);
    let mut schedule = FaultSchedule::new();
    schedule
        .net(
            SimTime::from_millis(500),
            NetFault::Partition { nodes: vec![NodeId(0)] },
            SimDuration::from_secs(2),
        )
        .net(
            SimTime::from_secs(3),
            NetFault::Partition { nodes: vec![NodeId(4)] },
            SimDuration::from_secs(2),
        );
    for seed in 0..3u64 {
        let (outcome, verdict) = run_one(&mut h, seed, &schedule);
        assert_eq!(
            verdict,
            Ok(()),
            "heal-to-progress failed (seed {seed}):\n{}",
            outcome.trace.join("\n")
        );
        assert_eq!(outcome.coverage.liveness_violations, 0);
    }
}
