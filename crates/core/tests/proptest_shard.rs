//! Property tests for the shard router's building blocks.
//!
//! - [`ShardMap`] is total, deterministic, monotone and balanced: every
//!   object index maps to exactly one shard, the per-shard ranges
//!   partition the index space, and shard sizes differ by at most one.
//! - Footprint-based splitting never loses or duplicates an operation:
//!   partitioning a batch by owning shard is a permutation of the batch,
//!   and every sub-operation lands on the shard that owns its footprint.

use base::demo::{kv_footprint, N_SLOTS};
use base::shard::{counter_footprint, ShardMap};
use base::Footprint;
use proptest::prelude::*;

proptest! {
    #[test]
    fn shard_map_total_deterministic_balanced(
        n_objects in 1u64..=4096,
        shards in 1u32..=64,
    ) {
        prop_assume!(u64::from(shards) <= n_objects);
        let map = ShardMap::new(n_objects, shards);
        let again = ShardMap::new(n_objects, shards);
        let mut sizes = vec![0u64; shards as usize];
        let mut last = 0u32;
        for idx in 0..n_objects {
            let s = map.shard_of(idx);
            // Total and in range.
            prop_assert!(s < shards);
            // Deterministic: a second map agrees on every index.
            prop_assert_eq!(s, again.shard_of(idx));
            // Monotone: contiguous ranges.
            prop_assert!(s >= last);
            last = s;
            sizes[s as usize] += 1;
        }
        // Balanced within one object, and every shard non-empty.
        let min = *sizes.iter().min().unwrap();
        let max = *sizes.iter().max().unwrap();
        prop_assert!(min >= 1, "empty shard: {:?}", sizes);
        prop_assert!(max - min <= 1, "unbalanced: {:?}", sizes);
        prop_assert_eq!(sizes.iter().sum::<u64>(), n_objects);
    }

    #[test]
    fn shard_ranges_partition_the_index_space(
        n_objects in 1u64..=4096,
        shards in 1u32..=64,
    ) {
        prop_assume!(u64::from(shards) <= n_objects);
        let map = ShardMap::new(n_objects, shards);
        let mut next = 0u64;
        for s in 0..shards {
            let range = map.range_of(s);
            // Ranges tile 0..n_objects exactly, in order, without gaps.
            prop_assert_eq!(range.start, next);
            prop_assert!(range.end > range.start);
            for idx in range.clone() {
                prop_assert_eq!(map.shard_of(idx), s);
            }
            next = range.end;
        }
        prop_assert_eq!(next, n_objects);
    }

    #[test]
    fn footprint_shards_are_sorted_unique_and_complete(
        reads in proptest::collection::vec(0u64..256, 0..8),
        writes in proptest::collection::vec(0u64..256, 0..8),
        shards in 1u32..=16,
    ) {
        let map = ShardMap::new(256, shards);
        let fp = Footprint { reads: reads.clone(), writes: writes.clone() };
        let touched = map.shards_of(&fp);
        // Sorted, deduplicated.
        prop_assert!(touched.windows(2).all(|w| w[0] < w[1]));
        // Complete: exactly the owners of the touched indices.
        for idx in reads.iter().chain(writes.iter()) {
            prop_assert!(touched.contains(&map.shard_of(*idx)));
        }
        for s in &touched {
            prop_assert!(
                reads.iter().chain(writes.iter()).any(|i| map.shard_of(*i) == *s),
                "shard {} claimed but no index maps to it", s
            );
        }
    }

    /// Splitting a batch of single-shard operations by owning shard is a
    /// permutation: no operation is lost, duplicated, or misrouted.
    #[test]
    fn splitting_a_batch_neither_loses_nor_duplicates_ops(
        ops in proptest::collection::vec((0u64..16, 0u64..100, any::<bool>()), 1..64),
        shards in 1u32..=8,
    ) {
        let map = ShardMap::new(16, shards);
        let batch: Vec<Vec<u8>> = ops
            .iter()
            .map(|(reg, delta, ro)| {
                if *ro {
                    format!("get {reg}").into_bytes()
                } else {
                    format!("add {reg} {delta}").into_bytes()
                }
            })
            .collect();
        // Route the way the ShardedClient does: by footprint.
        let mut per_shard: Vec<Vec<&Vec<u8>>> = vec![Vec::new(); shards as usize];
        for op in &batch {
            let fp = counter_footprint(op).expect("counter ops parse");
            let touched = map.shards_of(&fp);
            prop_assert_eq!(touched.len(), 1, "single-register op spans one shard");
            per_shard[touched[0] as usize].push(op);
        }
        // Nothing lost, nothing duplicated.
        let total: usize = per_shard.iter().map(Vec::len).sum();
        prop_assert_eq!(total, batch.len());
        // Every op landed on the shard owning its register.
        for (s, sub) in per_shard.iter().enumerate() {
            for op in sub {
                let fp = counter_footprint(op).unwrap();
                let idx = *fp.reads.first().or_else(|| fp.writes.first()).unwrap();
                prop_assert_eq!(map.shard_of(idx) as usize, s);
            }
        }
    }

    /// The KV footprint function is stable (pure) and always single-slot,
    /// so any KV operation routes to exactly one shard.
    #[test]
    fn kv_footprint_routes_every_op_to_one_shard(
        key in "[a-z]{1,8}",
        value in "[a-z0-9]{0,8}",
        verb_idx in 0usize..4,
        shards in 1u32..=8,
    ) {
        let verb = ["put", "get", "del", "mtime"][verb_idx];
        let op = if verb == "put" {
            format!("{verb} {key} {value}").into_bytes()
        } else {
            format!("{verb} {key}").into_bytes()
        };
        let fp = kv_footprint(&op).expect("well-formed kv op");
        prop_assert_eq!(kv_footprint(&op), Some(fp.clone()), "pure");
        let map = ShardMap::new(N_SLOTS, shards);
        let touched = map.shards_of(&fp);
        prop_assert_eq!(touched.len(), 1);
    }
}
