//! Chaos campaign over the BASE-replicated demo key-value store: seeded
//! runs composing crashes, healing partitions, Byzantine flips and latent
//! concrete-state corruption, audited for result correctness, replica
//! agreement and liveness. Also demonstrates end-to-end that proactive
//! recovery repairs corrupted concrete state through the abstraction.

use base::demo::{KvWrapper, TinyKv};
use base::{BaseClient, BaseReplica, BaseService, ByzMode, Config};
use base_pbft::chaos::{APP_BYZ, APP_CORRUPT_STATE, APP_RECOVER};
use base_simnet::chaos::{run_campaign, run_one, ChaosHarness, FaultSchedule, ScheduleGenConfig};
use base_simnet::{NodeId, SimDuration, SimTime, Simulation};
use std::collections::{HashMap, HashSet};

type Replica = BaseReplica<KvWrapper>;

/// Campaign harness for the replicated KV service. Each client owns a
/// disjoint key space and writes each of its keys exactly once, then reads
/// some back, so the expected final store contents and every read result
/// are known exactly.
struct KvChaosHarness {
    n: usize,
    clients: usize,
    ops_per_client: usize,
    pace: SimDuration,
    client_nodes: Vec<NodeId>,
    replica_nodes: Vec<NodeId>,
    /// (client index, ts) → expected result bytes.
    expected: HashMap<(usize, u64), Vec<u8>>,
    /// key → final value the converged store must hold.
    final_kv: HashMap<String, Vec<u8>>,
    tainted: HashSet<NodeId>,
}

impl KvChaosHarness {
    fn new(n: usize) -> Self {
        Self {
            n,
            clients: 2,
            ops_per_client: 12,
            pace: SimDuration::from_millis(250),
            client_nodes: Vec::new(),
            replica_nodes: Vec::new(),
            expected: HashMap::new(),
            final_kv: HashMap::new(),
            tainted: HashSet::new(),
        }
    }

    fn config(&self) -> Config {
        let mut cfg = Config::new(self.n);
        cfg.checkpoint_interval = 4;
        cfg.log_window = 32;
        cfg.reboot_time = SimDuration::from_millis(100);
        cfg
    }

    fn gen_config(&self, events: usize, horizon: SimDuration) -> ScheduleGenConfig {
        use base_simnet::chaos::{AppFaultSpec, HealSpec};
        ScheduleGenConfig {
            nodes: (0..self.n).map(NodeId).collect(),
            max_impaired: self.config().f(),
            horizon,
            events,
            app_faults: vec![
                AppFaultSpec {
                    tag: APP_BYZ,
                    arg_max: 7,
                    impairs: true,
                    heal: Some(HealSpec { tag: APP_BYZ, after: SimDuration::from_secs(2) }),
                },
                AppFaultSpec {
                    tag: APP_CORRUPT_STATE,
                    arg_max: 1 << 32,
                    impairs: true,
                    heal: Some(HealSpec { tag: APP_RECOVER, after: SimDuration::from_secs(2) }),
                },
            ],
            net_faults: true,
        }
    }

    fn clean_replicas<'a>(&self, sim: &'a Simulation) -> Vec<&'a Replica> {
        self.replica_nodes
            .iter()
            .filter(|r| !self.tainted.contains(r))
            .filter_map(|&r| sim.actor_as::<Replica>(r))
            .filter(|r| r.byzantine() == ByzMode::Honest)
            .collect()
    }
}

impl ChaosHarness for KvChaosHarness {
    fn build(&mut self, seed: u64) -> Simulation {
        self.expected.clear();
        self.final_kv.clear();
        self.tainted.clear();

        let cfg = self.config();
        let mut sim = Simulation::new(seed);
        let dir = base_crypto::KeyDirectory::generate(self.n + self.clients, seed);
        self.replica_nodes = (0..self.n)
            .map(|i| {
                let keys = base_crypto::NodeKeys::new(dir.clone(), i);
                let service = BaseService::new(KvWrapper::new(TinyKv::default()));
                let node = sim.add_node(Box::new(Replica::new(cfg.clone(), keys, service)));
                sim.actor_as_mut::<Replica>(node).expect("replica").set_recovery_clean(false);
                node
            })
            .collect();

        self.client_nodes = (0..self.clients)
            .map(|i| {
                let keys = base_crypto::NodeKeys::new(dir.clone(), self.n + i);
                sim.add_node(Box::new(BaseClient::new(cfg.clone(), keys)))
            })
            .collect();

        for (i, &c) in self.client_nodes.clone().iter().enumerate() {
            let client = sim.actor_as_mut::<BaseClient>(c).expect("client");
            client.set_pace(self.pace);
            for j in 0..self.ops_per_client {
                let ts = (j + 1) as u64;
                if j % 4 == 3 {
                    // Read back a key this client wrote two ops ago; the
                    // write completed before this was submitted, so the
                    // read must observe it.
                    let key = format!("c{i}k{}", j - 2);
                    let value = self.final_kv[&key].clone();
                    client.invoke(format!("get {key}").into_bytes(), true);
                    self.expected.insert((i, ts), value);
                } else {
                    let key = format!("c{i}k{j}");
                    let value = format!("v{i}-{j}");
                    client.invoke(format!("put {key} {value}").into_bytes(), false);
                    self.expected.insert((i, ts), b"ok".to_vec());
                    self.final_kv.insert(key, value.into_bytes());
                }
            }
        }
        sim
    }

    fn apply_app(
        &mut self,
        sim: &mut Simulation,
        node: NodeId,
        tag: u32,
        arg: u64,
        trace: &mut Vec<String>,
    ) {
        let Some(replica) = sim.actor_as_mut::<Replica>(node) else {
            trace.push(format!("app fault at node {} ignored (not a replica)", node.0));
            return;
        };
        match tag {
            APP_BYZ => {
                let mode = ByzMode::from_code(arg);
                replica.set_byzantine(mode);
                if mode.is_faulty() {
                    self.tainted.insert(node);
                }
                trace.push(format!("node {} byzantine mode -> {mode:?}", node.0));
            }
            APP_CORRUPT_STATE => {
                replica.corrupt_service_state(arg);
                self.tainted.insert(node);
                trace.push(format!("node {} concrete kv state corrupted", node.0));
            }
            APP_RECOVER => {
                replica.trigger_recovery();
                trace.push(format!("node {} proactive recovery triggered", node.0));
            }
            _ => trace.push(format!("unknown app fault tag {tag} at node {}", node.0)),
        }
    }

    fn settle(&self) -> SimDuration {
        SimDuration::from_secs(30)
    }

    fn audit(&mut self, sim: &mut Simulation, trace: &mut Vec<String>) -> Result<(), String> {
        // Liveness + exact result check (single writer per key, reads
        // submitted after their write completed).
        for (i, &c) in self.client_nodes.iter().enumerate() {
            let client = sim.actor_as::<BaseClient>(c).expect("client");
            if client.completed.len() != self.ops_per_client {
                return Err(format!(
                    "liveness: client {i} completed {}/{} ops",
                    client.completed.len(),
                    self.ops_per_client
                ));
            }
            for (ts, result) in &client.completed {
                let want = &self.expected[&(i, *ts)];
                if result != want {
                    return Err(format!(
                        "wrong result: client {i} ts={ts} got {:?}, want {:?}",
                        String::from_utf8_lossy(result),
                        String::from_utf8_lossy(want)
                    ));
                }
            }
        }

        // Replica agreement: every clean replica that reached the final
        // stable checkpoint must hold exactly the expected store contents
        // (the abstract state fully determines them).
        let clean = self.clean_replicas(sim);
        if clean.is_empty() {
            return Err("no clean replicas left to audit".into());
        }
        let max_stable = clean.iter().map(|r| r.stable_seq()).max().unwrap_or(0);
        let mut converged = 0usize;
        for r in &clean {
            if r.stable_seq() != max_stable {
                continue;
            }
            converged += 1;
            let kv = r.service().wrapper();
            for (key, want) in &self.final_kv {
                match kv.kv().get(key) {
                    Some(v) if v == want.as_slice() => {}
                    other => {
                        return Err(format!(
                            "state divergence: clean replica holds {:?} for {key}, want {:?}",
                            other.map(String::from_utf8_lossy),
                            String::from_utf8_lossy(want)
                        ));
                    }
                }
            }
        }
        if converged == 0 {
            return Err("no clean replica reached the final stable checkpoint".into());
        }
        trace.push(format!("audit ok: {converged}/{} clean replicas converged", clean.len()));
        Ok(())
    }
}

#[test]
fn kv_campaign_passes_auditor() {
    let mut h = KvChaosHarness::new(4);
    let cfg = h.gen_config(5, SimDuration::from_secs(8));
    let report = run_campaign(&mut h, &cfg, 100..120);
    assert_eq!(report.runs, 20);
    assert!(report.events_executed > 0);
    if let Some(f) = report.failures.first() {
        panic!("kv campaign failed:\n{f}");
    }

    // Trace-derived coverage: the campaign must actually drive the
    // recovery machinery on the abstraction-wrapped service.
    println!("{}", report.summary());
    assert!(
        report.coverage.recoveries_completed > 0,
        "kv campaign completed no proactive recoveries:\n{}",
        report.coverage
    );
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../../target/chaos-coverage");
    if std::fs::create_dir_all(&dir).is_ok() {
        let _ = std::fs::write(dir.join("kv_mixed.json"), report.coverage_json());
    }
}

#[test]
fn recovery_repairs_corrupted_kv_through_abstraction() {
    let mut h = KvChaosHarness::new(4);
    let mut schedule = FaultSchedule::new();
    schedule
        .app(SimTime::from_millis(1500), NodeId(2), APP_CORRUPT_STATE, 3)
        .app(SimTime::from_millis(2500), NodeId(2), APP_RECOVER, 0);
    let (outcome, verdict) = run_one(&mut h, 9, &schedule);
    assert_eq!(verdict, Ok(()), "trace:\n{}", outcome.trace.join("\n"));

    // Replay and inspect the repaired replica directly: despite being
    // corrupted mid-run, after recovery its store must match the expected
    // final contents exactly (state transfer repaired the damaged slot).
    let mut sim = h.build(9);
    sim.run_until(SimTime::from_millis(1500));
    sim.actor_as_mut::<Replica>(NodeId(2)).unwrap().corrupt_service_state(3);
    sim.run_until(SimTime::from_millis(2500));
    sim.actor_as_mut::<Replica>(NodeId(2)).unwrap().trigger_recovery();
    sim.run_until(SimTime::from_secs(40));
    let replica = sim.actor_as::<Replica>(NodeId(2)).unwrap();
    assert_eq!(replica.byzantine(), ByzMode::Honest, "repair must clear CorruptState");
    let kv = replica.service().wrapper();
    for (key, want) in &h.final_kv {
        assert_eq!(
            kv.kv().get(key),
            Some(want.as_slice()),
            "recovered replica must hold the repaired value for {key}"
        );
    }
}
