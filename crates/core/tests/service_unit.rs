//! Unit tests for [`BaseService`]'s checkpoint machinery, exercised
//! through the [`Service`] trait with a purpose-built array wrapper whose
//! abstract indices are chosen directly by the operations (no hashing),
//! so every copy-on-write case is addressable.

use base::{BaseService, ModifyLog, Wrapper};
use base_crypto::Digest;
use base_pbft::{ExecEnv, Service};
use rand::rngs::StdRng;
use rand::SeedableRng;

const N: u64 = 16;

/// A trivially-correct array service: `set <i> <val>`, `del <i>`,
/// `get <i>`. Abstract object `i` is the value's bytes.
#[derive(Default)]
struct VecWrapper {
    vals: Vec<Option<Vec<u8>>>,
}

impl VecWrapper {
    fn new() -> Self {
        Self { vals: vec![None; N as usize] }
    }
}

impl Wrapper for VecWrapper {
    fn execute(
        &mut self,
        op: &[u8],
        _client: u32,
        _nondet: &[u8],
        read_only: bool,
        mods: &mut ModifyLog,
        _env: &mut ExecEnv<'_>,
    ) -> Vec<u8> {
        let text = String::from_utf8_lossy(op);
        let mut parts = text.split_whitespace();
        match parts.next() {
            Some("set") if !read_only => {
                let i: usize = parts.next().unwrap().parse().unwrap();
                let v = parts.next().unwrap().as_bytes().to_vec();
                mods.modify(i as u64, || self.vals[i].clone());
                self.vals[i] = Some(v);
                b"ok".to_vec()
            }
            Some("del") if !read_only => {
                let i: usize = parts.next().unwrap().parse().unwrap();
                mods.modify(i as u64, || self.vals[i].clone());
                self.vals[i] = None;
                b"ok".to_vec()
            }
            Some("get") => {
                let i: usize = parts.next().unwrap().parse().unwrap();
                self.vals[i].clone().unwrap_or_default()
            }
            _ => b"err".to_vec(),
        }
    }

    fn get_obj(&self, index: u64) -> Option<Vec<u8>> {
        self.vals[index as usize].clone()
    }

    fn put_objs(&mut self, objs: &[(u64, Option<Vec<u8>>)], _env: &mut ExecEnv<'_>) {
        for (i, v) in objs {
            self.vals[*i as usize] = v.clone();
        }
    }

    fn n_objects(&self) -> u64 {
        N
    }

    fn propose_nondet(&mut self, _env: &mut ExecEnv<'_>) -> Vec<u8> {
        Vec::new()
    }

    fn check_nondet(&self, nondet: &[u8], _env: &mut ExecEnv<'_>) -> bool {
        nondet.is_empty()
    }

    fn reset(&mut self, _env: &mut ExecEnv<'_>) {
        self.vals = vec![None; N as usize];
    }
}

struct Rig {
    svc: BaseService<VecWrapper>,
    rng: StdRng,
}

impl Rig {
    fn new() -> Self {
        Self { svc: BaseService::new(VecWrapper::new()), rng: StdRng::seed_from_u64(1) }
    }

    fn set(&mut self, i: u64, v: &str) {
        let mut env = ExecEnv::new(1, &mut self.rng);
        let r = self.svc.execute(format!("set {i} {v}").as_bytes(), 1, &[], false, &mut env);
        assert_eq!(r, b"ok");
    }

    fn del(&mut self, i: u64) {
        let mut env = ExecEnv::new(1, &mut self.rng);
        let r = self.svc.execute(format!("del {i}").as_bytes(), 1, &[], false, &mut env);
        assert_eq!(r, b"ok");
    }

    fn ckpt(&mut self, seq: u64) -> Digest {
        let mut env = ExecEnv::new(1, &mut self.rng);
        self.svc.take_checkpoint(seq, &mut env)
    }
}

fn some(v: &str) -> Option<Vec<u8>> {
    Some(v.as_bytes().to_vec())
}

#[test]
fn checkpoint_object_reads_current_open_epoch_and_records() {
    let mut r = Rig::new();
    r.set(0, "a");
    let _c8 = r.ckpt(8);
    // Case 1: object untouched since the checkpoint → current value.
    assert_eq!(r.svc.checkpoint_object(8, 0), Some(some("a").unwrap()));

    // Case 2: modified in the open epoch → the pre-image from the modify
    // log, not the current value.
    r.set(0, "b");
    assert_eq!(r.svc.checkpoint_object(8, 0), Some(some("a").unwrap()));

    // Case 3: a later checkpoint freezes the epoch into reverse-delta
    // records; the older checkpoint still reads its own value.
    let _c16 = r.ckpt(16);
    r.set(0, "c");
    assert_eq!(r.svc.checkpoint_object(8, 0), Some(some("a").unwrap()));
    assert_eq!(r.svc.checkpoint_object(16, 0), Some(some("b").unwrap()));
}

#[test]
fn absent_objects_round_trip_through_checkpoints() {
    let mut r = Rig::new();
    r.set(3, "gone-soon");
    let _c8 = r.ckpt(8);
    r.del(3);
    let _c16 = r.ckpt(16);
    // At 8 the object existed; at 16 it is absent. `checkpoint_object`
    // returning the *encoded* value vs. absence must distinguish these.
    assert_eq!(r.svc.checkpoint_object(8, 3), Some(b"gone-soon".to_vec()));
    assert_eq!(r.svc.checkpoint_object(16, 3), None);
}

#[test]
fn discard_drops_old_checkpoints_only() {
    let mut r = Rig::new();
    r.set(1, "v8");
    let _ = r.ckpt(8);
    r.set(1, "v16");
    let _ = r.ckpt(16);
    r.set(1, "v24");
    let _ = r.ckpt(24);
    assert_eq!(r.svc.checkpoint_object(8, 1), Some(b"v8".to_vec()));
    r.svc.discard_checkpoints_below(16);
    // 16 and 24 survive; 8's meta is gone.
    assert_eq!(r.svc.checkpoint_object(16, 1), Some(b"v16".to_vec()));
    assert_eq!(r.svc.checkpoint_object(24, 1), Some(b"v24".to_vec()));
    assert!(r.svc.checkpoint_meta(8, r.svc.current_tree().depth(), 0).is_none());
}

#[test]
fn roots_depend_only_on_content() {
    let mut a = Rig::new();
    let mut b = Rig::new();
    // Different operation orders, same final content.
    a.set(2, "x");
    a.set(5, "y");
    b.set(5, "y");
    b.set(2, "wrong");
    b.set(2, "x");
    let ra = a.ckpt(8);
    let rb = b.ckpt(8);
    assert_eq!(ra, rb, "same abstract content must give the same root");
    b.set(6, "z");
    assert_ne!(b.ckpt(16), rb, "new content must change the root");
}

#[test]
fn install_checkpoint_overwrites_and_resets_history() {
    let mut r = Rig::new();
    r.set(0, "local");
    r.set(1, "junk");
    let _ = r.ckpt(8);

    // Build the authoritative state on another service and capture its
    // root.
    let mut donor = Rig::new();
    donor.set(0, "agreed");
    donor.set(2, "extra");
    let root = donor.ckpt(32);

    // Install the full delta: object 0 changes, 1 disappears, 2 appears.
    let mut env = ExecEnv::new(1, &mut r.rng);
    r.svc.install_checkpoint(
        32,
        root,
        vec![(0, some("agreed")), (1, None), (2, some("extra"))],
        &mut env,
    );
    assert_eq!(r.svc.wrapper_mut().get_obj(0), some("agreed"));
    assert_eq!(r.svc.wrapper_mut().get_obj(1), None);
    assert_eq!(r.svc.wrapper_mut().get_obj(2), some("extra"));
    assert_eq!(r.svc.current_tree().root_digest(), root, "tree must match the donor's root");
    // The installed checkpoint serves reads.
    assert_eq!(r.svc.checkpoint_object(32, 0), Some(b"agreed".to_vec()));
    assert_eq!(r.svc.stats.objects_installed, 3);
}

#[test]
fn clean_reboot_wipes_warm_reboot_rescans() {
    let mut r = Rig::new();
    r.set(4, "persistent");
    let root = r.ckpt(8);

    // Warm reboot: concrete state survives; the rep is rebuilt by a full
    // abstraction-function scan and the tree still matches.
    let mut env = ExecEnv::new(1, &mut r.rng);
    r.svc.reboot(false, &mut env);
    assert_eq!(r.svc.wrapper_mut().get_obj(4), some("persistent"));
    assert_eq!(r.svc.current_tree().root_digest(), root);
    assert_eq!(r.svc.stats.rebuild_scans, 1);

    // Clean reboot: restart from the initial concrete state.
    let mut env = ExecEnv::new(1, &mut r.rng);
    r.svc.reboot(true, &mut env);
    assert_eq!(r.svc.wrapper_mut().get_obj(4), None);
    assert_ne!(r.svc.current_tree().root_digest(), root);
}

#[test]
fn preimage_copy_counted_once_per_epoch() {
    let mut r = Rig::new();
    r.set(7, "one");
    r.set(7, "two");
    r.set(7, "three");
    let copies_first_epoch = r.svc.stats.preimage_copies;
    assert_eq!(copies_first_epoch, 1, "one pre-image per object per epoch");
    let _ = r.ckpt(8);
    r.set(7, "four");
    assert_eq!(r.svc.stats.preimage_copies, copies_first_epoch + 1);
}

#[test]
fn parallel_digesting_is_worker_count_invariant() {
    // Same workload at 1, 2 and 8 digest workers: roots, stats, charged
    // simulated CPU and the metrics JSON must be byte-identical — the
    // worker pool only changes wall-clock.
    let run = |workers: usize| {
        let mut r = Rig::new();
        r.svc.set_digest_workers(workers);
        for i in 0..N {
            r.set(i, &format!("v{i}"));
        }
        let c8 = r.ckpt(8);
        for i in (0..N).step_by(3) {
            r.set(i, &format!("w{i}"));
        }
        let c16 = r.ckpt(16);
        // Warm reboot: full abstraction-function rescan through the pool.
        let mut env = ExecEnv::new(1, &mut r.rng);
        r.svc.reboot(false, &mut env);
        let charged = env.charged();
        (
            c8,
            c16,
            r.svc.current_tree().root_digest(),
            r.svc.stats.objects_digested,
            r.svc.stats.node_hashes,
            charged,
            r.svc.metrics.to_json(),
        )
    };
    let base = run(1);
    assert_eq!(run(2), base, "2 workers must match sequential");
    assert_eq!(run(8), base, "8 workers must match sequential");
}

#[test]
fn chunked_incremental_digests_match_from_scratch() {
    // A small edit to the tail of a big object must re-hash only the
    // touched chunk, and the cache-reusing incremental pass must produce
    // exactly the digests a from-scratch pass over the same content does.
    let big = "x".repeat(64); // 9 chunks at chunk_size 8 (64 + suffix)
    let mut a = Rig::new();
    a.svc.set_chunk_size(8);
    for i in 0..N {
        a.set(i, &format!("{big}{i}"));
    }
    let _c8 = a.ckpt(8);
    let (reused_before, rehashed_before) = (a.svc.stats.chunks_reused, a.svc.stats.chunks_rehashed);
    a.set(3, &format!("{big}X")); // same length, only the tail chunk changes
    let c16 = a.ckpt(16);
    let reused = a.svc.stats.chunks_reused - reused_before;
    let rehashed = a.svc.stats.chunks_rehashed - rehashed_before;
    assert!(reused >= 8, "untouched chunks must be reused, got {reused}");
    assert!(rehashed < reused, "a tail edit must re-hash fewer chunks ({rehashed}) than it reuses");

    let mut b = Rig::new();
    b.svc.set_chunk_size(8);
    for i in 0..N {
        if i == 3 {
            b.set(i, &format!("{big}X"));
        } else {
            b.set(i, &format!("{big}{i}"));
        }
    }
    assert_eq!(c16, b.ckpt(16), "incremental pass must equal from-scratch");
}

#[test]
fn chunked_digesting_is_worker_count_invariant() {
    // The chunk cache and per-chunk hashing must stay byte-identical at
    // any worker count, exactly like the legacy scheme.
    let run = |workers: usize| {
        let mut r = Rig::new();
        r.svc.set_chunk_size(4);
        r.svc.set_digest_workers(workers);
        for i in 0..N {
            r.set(i, &format!("obj-{i}-{}", "y".repeat(20)));
        }
        let c8 = r.ckpt(8);
        for i in (0..N).step_by(3) {
            r.set(i, &format!("obj-{i}-{}", "z".repeat(20)));
        }
        let c16 = r.ckpt(16);
        let mut env = ExecEnv::new(1, &mut r.rng);
        r.svc.reboot(false, &mut env);
        let charged = env.charged();
        (
            c8,
            c16,
            r.svc.current_tree().root_digest(),
            r.svc.stats.chunks_reused,
            r.svc.stats.chunks_rehashed,
            charged,
            r.svc.metrics.to_json(),
        )
    };
    let base = run(1);
    assert_eq!(run(2), base, "2 workers must match sequential");
    assert_eq!(run(8), base, "8 workers must match sequential");
}

#[test]
fn chunk_scheme_is_consensus_visible() {
    // Changing the chunk size changes every present leaf digest: replicas
    // disagreeing on chunk_size would never certify a common root, which
    // is exactly why it lives in the shared Config.
    let mut legacy = Rig::new();
    legacy.set(0, "hello-world-0123");
    let mut chunked = Rig::new();
    chunked.svc.set_chunk_size(4);
    chunked.set(0, "hello-world-0123");
    assert_ne!(legacy.ckpt(8), chunked.ckpt(8));

    // chunk_size = 0 is exactly the legacy scheme.
    let mut zero = Rig::new();
    zero.svc.set_chunk_size(0);
    zero.set(0, "hello-world-0123");
    assert_eq!(legacy.ckpt(16), zero.ckpt(16));
}

#[test]
fn chunked_install_checkpoint_matches_donor_root() {
    let mut donor = Rig::new();
    donor.svc.set_chunk_size(4);
    donor.set(0, "agreed-value-with-chunks");
    donor.set(2, "extra");
    let root = donor.ckpt(32);

    let mut r = Rig::new();
    r.svc.set_chunk_size(4);
    r.set(0, "stale");
    r.set(1, "junk");
    let _ = r.ckpt(8);
    let mut env = ExecEnv::new(1, &mut r.rng);
    r.svc.install_checkpoint(
        32,
        root,
        vec![(0, some("agreed-value-with-chunks")), (1, None), (2, some("extra"))],
        &mut env,
    );
    assert_eq!(r.svc.current_tree().root_digest(), root, "chunked install must match the donor");
}

#[test]
fn node_hash_counter_grows_sublinearly_on_sparse_dirty_sets() {
    // 16 objects, branching 16: depth 1, so this rig can't show the
    // effect; measure directly on a deeper tree instead. 4096 leaves at
    // branching 16 give depth 3; 64 clustered dirty leaves share their
    // level-1 parents, so batching must rehash far fewer than the
    // dirty × depth nodes the per-leaf path would.
    use base_pbft::tree::leaf_digest as ld;
    let mut t = base_pbft::PartitionTree::new(4096, 16);
    t.set_leaves((0..4096u64).map(|i| (i, ld(i, b"init"))));
    let stats = t.set_leaves((0..64u64).map(|i| (i, ld(i, b"dirty"))));
    assert_eq!(stats.leaves_updated, 64);
    let naive = 64 * 3; // dirty × depth root-path rehashes
    assert!(
        stats.internal_hashes < naive / 10,
        "expected sub-linear internal hashing, got {} vs naive {naive}",
        stats.internal_hashes
    );
}

#[test]
fn checkpoint_object_pins_values_across_epochs_and_discards() {
    // Object 5 changes value in several epochs; every retained checkpoint
    // must keep answering with its own frozen value, including after
    // discard_checkpoints_below drops older records — the behaviour the
    // per-object seq index must preserve from the old linear scan.
    let mut r = Rig::new();
    r.set(5, "e1");
    r.set(9, "stable");
    let _c8 = r.ckpt(8);
    r.set(5, "e2");
    let _c16 = r.ckpt(16);
    // Epoch with no change to object 5.
    r.set(9, "stable2");
    let _c24 = r.ckpt(24);
    r.set(5, "e4");
    let _c32 = r.ckpt(32);
    r.set(5, "open");

    assert_eq!(r.svc.checkpoint_object(8, 5), Some(b"e1".to_vec()));
    assert_eq!(r.svc.checkpoint_object(16, 5), Some(b"e2".to_vec()));
    assert_eq!(r.svc.checkpoint_object(24, 5), Some(b"e2".to_vec()));
    assert_eq!(r.svc.checkpoint_object(32, 5), Some(b"e4".to_vec()));
    // Object untouched since 24 resolves through the open-epoch pre-image.
    assert_eq!(r.svc.checkpoint_object(24, 9), Some(b"stable2".to_vec()));
    assert_eq!(r.svc.checkpoint_object(8, 9), Some(b"stable".to_vec()));

    r.svc.discard_checkpoints_below(24);
    assert_eq!(r.svc.checkpoint_object(8, 5), None, "discarded checkpoint");
    assert_eq!(r.svc.checkpoint_object(16, 5), None, "discarded checkpoint");
    assert_eq!(r.svc.checkpoint_object(24, 5), Some(b"e2".to_vec()));
    assert_eq!(r.svc.checkpoint_object(32, 5), Some(b"e4".to_vec()));
    assert_eq!(r.svc.checkpoint_object(24, 9), Some(b"stable2".to_vec()));

    // A fresh checkpoint freezes the open epoch; earlier answers hold.
    let _c40 = r.ckpt(40);
    assert_eq!(r.svc.checkpoint_object(32, 5), Some(b"e4".to_vec()));
    assert_eq!(r.svc.checkpoint_object(40, 5), Some(b"open".to_vec()));
}
