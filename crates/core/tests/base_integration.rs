//! End-to-end tests of the BASE abstraction layer: non-deterministic
//! implementations replicated consistently, abstract state transfer,
//! software rejuvenation (clean reboots reclaiming leaks), and repair of
//! corrupt concrete state (abstraction hiding software errors).

use base::demo::{KvWrapper, TinyKv};
use base::{BaseClient, BaseReplica, BaseService, Config};
use base_pbft::Service as _;
use base_simnet::{SimDuration, Simulation};

type KvReplica = BaseReplica<KvWrapper>;

struct Group {
    replicas: Vec<base_simnet::NodeId>,
    client: base_simnet::NodeId,
}

fn build(sim: &mut Simulation, mut cfg: Config, seed: u64, leaky: bool) -> Group {
    cfg.checkpoint_interval = 8;
    cfg.log_window = 32;
    let dir = base_crypto::KeyDirectory::generate(cfg.n + 1, seed);
    let mut replicas = Vec::new();
    for i in 0..cfg.n {
        let keys = base_crypto::NodeKeys::new(dir.clone(), i);
        let mut kv = TinyKv::default();
        kv.leaky = leaky;
        let service = BaseService::new(KvWrapper::new(kv));
        replicas.push(sim.add_node(Box::new(KvReplica::new(cfg.clone(), keys, service))));
        // Give each replica a different local clock skew: their concrete
        // timestamps diverge, and the abstraction must mask it.
        sim.config_mut().set_clock_skew(
            base_simnet::NodeId(i),
            SimDuration::from_millis(17 * i as u64),
        );
    }
    let keys = base_crypto::NodeKeys::new(dir, cfg.n);
    let client = sim.add_node(Box::new(BaseClient::new(cfg.clone(), keys)));
    Group { replicas, client }
}

fn invoke(sim: &mut Simulation, g: &Group, op: &[u8], ro: bool) {
    sim.actor_as_mut::<BaseClient>(g.client).unwrap().invoke(op.to_vec(), ro);
}

fn results(sim: &Simulation, g: &Group) -> Vec<Vec<u8>> {
    sim.actor_as::<BaseClient>(g.client).unwrap().completed.iter().map(|(_, r)| r.clone()).collect()
}

fn abstract_state_of(sim: &Simulation, g: &Group, i: usize) -> Vec<Option<Vec<u8>>> {
    // get_obj needs &mut; clone via actor_as_mut is not available on &sim,
    // so compare through a read-only reconstruction: encode via the
    // wrapper's kv directly is concrete. Instead use the digest tree.
    let r = sim.actor_as::<KvReplica>(g.replicas[i]).unwrap();
    let tree = r.service().current_tree();
    (0..base::demo::N_SLOTS).map(|s| Some(tree.leaf_digest_at(s).0.to_vec())).collect()
}

#[test]
fn nondeterministic_replicas_stay_consistent() {
    let mut sim = Simulation::new(21);
    let g = build(&mut sim, Config::new(4), 21, false);
    for i in 0..20 {
        invoke(&mut sim, &g, format!("put key{i} value{i}").as_bytes(), false);
    }
    invoke(&mut sim, &g, b"get key7", true);
    sim.run_for(SimDuration::from_secs(3));

    let rs = results(&sim, &g);
    assert_eq!(rs.len(), 21);
    assert_eq!(rs[20], b"value7");

    // Internal ids diverge across replicas, but the abstract timestamps
    // (agreed through the protocol) are identical: querying mtime through
    // the replicated service returns a quorum-agreed answer.
    invoke(&mut sim, &g, b"mtime key7", true);
    sim.run_for(SimDuration::from_secs(1));
    let rs = results(&sim, &g);
    assert_eq!(rs.len(), 22);
    assert_ne!(rs[21], b"missing");
}

#[test]
fn abstract_trees_converge_after_checkpoint() {
    let mut sim = Simulation::new(22);
    let g = build(&mut sim, Config::new(4), 22, false);
    for i in 0..16 {
        invoke(&mut sim, &g, format!("put k{i} v{i}").as_bytes(), false);
    }
    sim.run_for(SimDuration::from_secs(3));
    // 16 requests with checkpoint interval 8: all replicas checkpointed
    // and their digest trees agree even though concrete states differ.
    let a = abstract_state_of(&sim, &g, 0);
    for i in 1..4 {
        assert_eq!(abstract_state_of(&sim, &g, i), a, "replica {i} diverged");
    }
    for i in 0..4 {
        let r = sim.actor_as::<KvReplica>(g.replicas[i]).unwrap();
        assert!(r.service().stats.checkpoints >= 1);
    }
}

#[test]
fn lagging_replica_repairs_through_abstract_state() {
    let mut sim = Simulation::new(23);
    let g = build(&mut sim, Config::new(4), 23, false);

    sim.crash(g.replicas[3], SimDuration::from_secs(4));
    for i in 0..24 {
        invoke(&mut sim, &g, format!("put k{i} v{i}").as_bytes(), false);
    }
    sim.run_for(SimDuration::from_secs(4));
    for i in 24..30 {
        invoke(&mut sim, &g, format!("put k{i} v{i}").as_bytes(), false);
    }
    sim.run_for(SimDuration::from_secs(10));

    assert_eq!(results(&sim, &g).len(), 30);
    let r3 = sim.actor_as::<KvReplica>(g.replicas[3]).unwrap();
    assert!(r3.stats.state_transfers >= 1);
    // Its concrete implementation now holds every key, installed through
    // put_objs (the inverse abstraction function).
    assert_eq!(r3.service().wrapper().kv().get("k0"), Some(&b"v0"[..]));
    assert_eq!(abstract_state_of(&sim, &g, 3), abstract_state_of(&sim, &g, 0));
}

#[test]
fn software_rejuvenation_reclaims_leaks() {
    let mut sim = Simulation::new(24);
    let mut cfg = Config::new(4);
    cfg.recovery_period = Some(SimDuration::from_secs(40));
    cfg.reboot_time = SimDuration::from_millis(200);
    let g = build(&mut sim, cfg, 24, true); // Leaky implementation.

    // Churn: put + del leaves leaked entries behind in every replica.
    for i in 0..12 {
        invoke(&mut sim, &g, format!("put tmp{i} x").as_bytes(), false);
        invoke(&mut sim, &g, format!("del tmp{i}").as_bytes(), false);
    }
    invoke(&mut sim, &g, b"put keeper gold", false);
    // Measure before the first staggered watchdog fires (at 10 s).
    sim.run_for(SimDuration::from_secs(5));

    // Before recovery: footprints exceed live entries (the leak).
    let leaked_before: usize = (0..4)
        .map(|i| sim.actor_as::<KvReplica>(g.replicas[i]).unwrap().service().wrapper().kv().leaked())
        .sum();
    assert!(leaked_before >= 4 * 12, "expected leaks, found {leaked_before}");

    // A full proactive-recovery rotation rejuvenates every replica.
    sim.run_for(SimDuration::from_secs(45));
    for i in 0..4 {
        let r = sim.actor_as::<KvReplica>(g.replicas[i]).unwrap();
        assert!(r.stats.recoveries >= 1, "replica {i} never recovered");
        assert_eq!(r.service().wrapper().kv().leaked(), 0, "replica {i} still leaks");
        // The live state survived rejuvenation via the abstract state.
        assert_eq!(r.service().wrapper().kv().get("keeper"), Some(&b"gold"[..]));
    }
    // And the service stayed available throughout.
    invoke(&mut sim, &g, b"get keeper", true);
    sim.run_for(SimDuration::from_secs(1));
    assert_eq!(results(&sim, &g).last().unwrap(), b"gold");
}

#[test]
fn corrupt_concrete_state_is_repaired_by_warm_recovery() {
    let mut sim = Simulation::new(25);
    let mut cfg = Config::new(4);
    cfg.recovery_period = Some(SimDuration::from_secs(30));
    cfg.reboot_time = SimDuration::from_millis(200);
    let g = build(&mut sim, cfg, 25, false);
    // Use warm reboots: concrete state survives, corruption must be found
    // by recomputing the abstraction function and repaired by fetching.
    for i in 0..4 {
        sim.actor_as_mut::<KvReplica>(g.replicas[i]).unwrap().set_recovery_clean(false);
    }

    for i in 0..12 {
        invoke(&mut sim, &g, format!("put k{i} v{i}").as_bytes(), false);
    }
    sim.run_for(SimDuration::from_secs(3));

    // A software error corrupts k3's value inside replica 2's concrete
    // state. The replicated service keeps answering correctly (f=1 masks
    // it), and replica 2's next proactive recovery repairs it.
    assert!(sim
        .actor_as_mut::<KvReplica>(g.replicas[2])
        .unwrap()
        .service_mut()
        .wrapper_mut()
        .kv_mut()
        .corrupt("k3"));

    invoke(&mut sim, &g, b"get k3", true);
    sim.run_for(SimDuration::from_secs(1));
    assert_eq!(results(&sim, &g).last().unwrap(), b"v3", "corruption must be masked");

    // Run past replica 2's watchdog (staggered at 3/4 * 30s ≈ 22.5s).
    sim.run_for(SimDuration::from_secs(40));
    let r2 = sim.actor_as::<KvReplica>(g.replicas[2]).unwrap();
    assert!(r2.stats.recoveries >= 1, "replica 2 never recovered");
    assert_eq!(
        r2.service().wrapper().kv().get("k3"),
        Some(&b"v3"[..]),
        "warm recovery must repair the corrupt object from the group's abstract state"
    );
}

#[test]
fn byzantine_replica_with_divergent_impl_is_masked() {
    let mut sim = Simulation::new(26);
    let g = build(&mut sim, Config::new(4), 26, false);
    sim.actor_as_mut::<KvReplica>(g.replicas[1]).unwrap().set_byzantine(base::ByzMode::CorruptReplies);
    for i in 0..10 {
        invoke(&mut sim, &g, format!("put k{i} v{i}").as_bytes(), false);
    }
    invoke(&mut sim, &g, b"get k9", true);
    sim.run_for(SimDuration::from_secs(3));
    let rs = results(&sim, &g);
    assert_eq!(rs.len(), 11);
    assert_eq!(rs[10], b"v9");
}

#[test]
fn byzantine_timestamps_are_rejected_and_primary_deposed() {
    let mut sim = Simulation::new(28);
    let g = build(&mut sim, Config::new(4), 28, false);
    // The view-0 primary proposes timestamps a century off; honest backups
    // must refuse the pre-prepares, time out, and elect a new primary.
    sim.actor_as_mut::<KvReplica>(g.replicas[0]).unwrap().set_byzantine(base::ByzMode::BadTimestamps);
    for i in 0..6 {
        invoke(&mut sim, &g, format!("put k{i} v{i}").as_bytes(), false);
    }
    sim.run_for(SimDuration::from_secs(20));
    let rs = results(&sim, &g);
    assert_eq!(rs.len(), 6, "service must make progress under a new primary");
    for i in 1..4 {
        let r = sim.actor_as::<KvReplica>(g.replicas[i]).unwrap();
        assert!(r.view() >= 1, "replica {i} never left view 0");
        // No wild timestamp made it into the abstract state.
        assert_eq!(r.service().wrapper().kv().get("k0"), Some(&b"v0"[..]));
    }
    // The recorded mtimes are sane (close to the simulation clock, not a
    // century ahead).
    invoke(&mut sim, &g, b"mtime k0", true);
    sim.run_for(SimDuration::from_secs(1));
    let rs = results(&sim, &g);
    let mtime: u64 = String::from_utf8_lossy(rs.last().unwrap()).parse().expect("decimal mtime");
    assert!(mtime < 3_600_000_000_000, "mtime {mtime} is not within the first hour of sim time");
}

#[test]
fn seven_replica_group_masks_two_faults() {
    let mut sim = Simulation::new(27);
    let mut cfg = Config::new(7);
    cfg.checkpoint_interval = 8;
    let g = build(&mut sim, cfg, 27, false);
    sim.crash_forever(g.replicas[5]);
    sim.actor_as_mut::<KvReplica>(g.replicas[6]).unwrap().set_byzantine(base::ByzMode::CorruptReplies);
    for i in 0..10 {
        invoke(&mut sim, &g, format!("put k{i} v{i}").as_bytes(), false);
    }
    invoke(&mut sim, &g, b"get k0", true);
    sim.run_for(SimDuration::from_secs(5));
    let rs = results(&sim, &g);
    assert_eq!(rs.len(), 11);
    assert_eq!(rs[10], b"v0");
}
