//! Tier-1 sharding equivalence gate.
//!
//! A `shards = 1` sharded deployment must be **byte-identical** to the
//! unsharded deployment it generalizes: same replies in the same order,
//! same client-observed latencies (virtual-time identity), same replica
//! state roots and protocol progress. Shard 0 keeps the untagged wire
//! encoding, the default node layout, the default key-directory seed and
//! the default retransmission-timer token, so the two simulations must
//! produce the same event schedule tick for tick — any divergence means
//! the sharding layer leaked into the unsharded fast path.
//!
//! On divergence both fingerprints are written under
//! `target/tmp/equivalence/` (CI uploads the directory as an artifact)
//! before the assertion fires.

use base::demo::{kv_footprint, KvWrapper, TinyKv};
use base::shard::{build_sharded_group, ShardLockService, ShardMap, ShardedClient};
use base::{BaseClient, BaseReplica, BaseService, Config};
use base_crypto::{KeyDirectory, NodeKeys};
use base_pbft::{Replica, Service as _};
use base_simnet::{NodeId, SimDuration, Simulation};

type KvReplica = BaseReplica<KvWrapper>;
type ShardedKvService = ShardLockService<BaseService<KvWrapper>>;
type ShardedKvReplica = Replica<ShardedKvService>;

const SEED: u64 = 20_260_809;
const N: usize = 4;
const CLIENTS: usize = 2;
const OPS: usize = 14;

/// Asserts two fingerprints are identical; on divergence writes both to
/// `target/tmp/equivalence/<cell>.{want,got}` so CI can upload the diff.
fn assert_fp_eq(cell: &str, want: &[String], got: &[String]) {
    if want == got {
        return;
    }
    let dir = std::path::Path::new(env!("CARGO_TARGET_TMPDIR")).join("equivalence");
    std::fs::create_dir_all(&dir).expect("create equivalence dir");
    std::fs::write(dir.join(format!("{cell}.want")), want.join("\n")).expect("write want");
    std::fs::write(dir.join(format!("{cell}.got")), got.join("\n")).expect("write got");
    let first = want
        .iter()
        .zip(got.iter())
        .position(|(a, b)| a != b)
        .unwrap_or_else(|| want.len().min(got.len()));
    panic!(
        "sharding equivalence cell `{cell}` diverged at line {first} \
         (want {} lines, got {}):\n  want: {}\n  got:  {}\n\
         full fingerprints written to {}",
        want.len(),
        got.len(),
        want.get(first).map(String::as_str).unwrap_or("<end>"),
        got.get(first).map(String::as_str).unwrap_or("<end>"),
        dir.display(),
    );
}

fn gate_config() -> Config {
    let mut cfg = Config::new(N);
    // Small checkpoint interval so the gate also covers checkpoint and
    // garbage-collection traffic, not just the request/reply fast path.
    cfg.checkpoint_interval = 4;
    cfg.log_window = 32;
    cfg
}

/// The shared workload: per-client disjoint keys, writes before reads,
/// some read-only operations for the fast path.
fn workload(client: usize) -> Vec<(Vec<u8>, bool)> {
    (0..OPS)
        .map(|j| match j % 5 {
            3 => (format!("get c{client}k{}", j - 2).into_bytes(), true),
            4 => (format!("mtime c{client}k{}", j - 3).into_bytes(), false),
            _ => (format!("put c{client}k{j} v{client}-{j}").into_bytes(), false),
        })
        .collect()
}

fn run_unsharded() -> Vec<String> {
    let cfg = gate_config();
    let mut sim = Simulation::new(SEED);
    let dir = KeyDirectory::generate(N + CLIENTS, SEED);
    let replicas: Vec<NodeId> = (0..N)
        .map(|i| {
            let keys = NodeKeys::new(dir.clone(), i);
            let service = BaseService::new(KvWrapper::new(TinyKv::default()));
            sim.add_node(Box::new(KvReplica::new(cfg.clone(), keys, service)))
        })
        .collect();
    let clients: Vec<NodeId> = (0..CLIENTS)
        .map(|i| {
            let keys = NodeKeys::new(dir.clone(), N + i);
            sim.add_node(Box::new(BaseClient::new(cfg.clone(), keys)))
        })
        .collect();
    for (i, &c) in clients.iter().enumerate() {
        let client = sim.actor_as_mut::<BaseClient>(c).expect("client");
        for (op, ro) in workload(i) {
            client.invoke(op, ro);
        }
    }
    sim.run_for(SimDuration::from_secs(20));

    let mut fp = Vec::new();
    for (i, &c) in clients.iter().enumerate() {
        let client = sim.actor_as::<BaseClient>(c).expect("client");
        assert_eq!(client.completed.len(), OPS, "liveness: unsharded client {i}");
        for (ts, result) in &client.completed {
            fp.push(format!("client {i} ts={ts} -> {}", String::from_utf8_lossy(result)));
        }
        fp.push(format!("client {i} latencies={:?}", client.core().latencies_ns));
    }
    for (i, &r) in replicas.iter().enumerate() {
        let rep = sim.actor_as::<KvReplica>(r).expect("replica");
        fp.push(format!("replica {i} root={}", rep.service().current_tree().root_digest()));
        fp.push(format!("replica {i} last_exec={} stable={}", rep.last_exec(), rep.stable_seq()));
    }
    fp
}

fn run_sharded_single() -> Vec<String> {
    let mut sim = Simulation::new(SEED);
    let map = ShardMap::new(base::demo::N_SLOTS, 1);
    let group = build_sharded_group(
        &mut sim,
        gate_config(),
        map,
        CLIENTS,
        SEED,
        kv_footprint,
        |_, _| ShardLockService::new(BaseService::new(KvWrapper::new(TinyKv::default())), kv_footprint),
    );
    for (i, &c) in group.clients.iter().enumerate() {
        let router = sim.actor_as_mut::<ShardedClient>(c).expect("router");
        for (op, ro) in workload(i) {
            router.invoke(op, ro);
        }
    }
    sim.run_for(SimDuration::from_secs(20));

    let mut fp = Vec::new();
    for (i, &c) in group.clients.iter().enumerate() {
        let router = sim.actor_as::<ShardedClient>(c).expect("router");
        assert_eq!(router.completed.len(), OPS, "liveness: sharded client {i}");
        for (job, result) in &router.completed {
            fp.push(format!("client {i} ts={job} -> {}", String::from_utf8_lossy(result)));
        }
        fp.push(format!("client {i} latencies={:?}", router.core(0).latencies_ns));
    }
    for (i, &r) in group.replicas[0].iter().enumerate() {
        let rep = sim.actor_as::<ShardedKvReplica>(r).expect("replica");
        fp.push(format!("replica {i} root={}", rep.service().current_tree().root_digest()));
        fp.push(format!("replica {i} last_exec={} stable={}", rep.last_exec(), rep.stable_seq()));
    }
    fp
}

/// The gate itself: `shards = 1` is the unsharded deployment, byte for
/// byte — replies, latencies, roots and protocol progress all identical.
#[test]
fn one_shard_is_byte_identical_to_unsharded() {
    let oracle = run_unsharded();
    let sharded = run_sharded_single();
    assert_fp_eq("shard1-vs-unsharded", &oracle, &sharded);
}

/// Rerun determinism of the sharded deployment at `shards = 2`: the whole
/// multi-group simulation (both groups plus routers) is one deterministic
/// event schedule.
#[test]
fn two_shard_run_is_deterministic() {
    let run = |_: u32| -> Vec<String> {
        let mut sim = Simulation::new(SEED ^ 7);
        let map = ShardMap::new(base::demo::N_SLOTS, 2);
        let group = build_sharded_group(
            &mut sim,
            gate_config(),
            map,
            CLIENTS,
            SEED ^ 7,
            kv_footprint,
            |_, _| {
                ShardLockService::new(BaseService::new(KvWrapper::new(TinyKv::default())), kv_footprint)
            },
        );
        for (i, &c) in group.clients.iter().enumerate() {
            let router = sim.actor_as_mut::<ShardedClient>(c).expect("router");
            for (op, ro) in workload(i) {
                router.invoke(op, ro);
            }
        }
        sim.run_for(SimDuration::from_secs(20));
        let mut fp = Vec::new();
        for (i, &c) in group.clients.iter().enumerate() {
            let router = sim.actor_as::<ShardedClient>(c).expect("router");
            assert_eq!(router.completed.len(), OPS, "liveness: client {i}");
            for (job, result) in &router.completed {
                fp.push(format!("client {i} job={job} -> {}", String::from_utf8_lossy(result)));
            }
            for s in 0..2 {
                fp.push(format!("client {i} s{s} latencies={:?}", router.core(s).latencies_ns));
            }
        }
        for (s, nodes) in group.replicas.iter().enumerate() {
            for (i, &r) in nodes.iter().enumerate() {
                let rep = sim.actor_as::<ShardedKvReplica>(r).expect("replica");
                fp.push(format!(
                    "s{s} replica {i} root={} last_exec={} stable={}",
                    rep.service().current_tree().root_digest(),
                    rep.last_exec(),
                    rep.stable_seq()
                ));
            }
        }
        fp
    };
    let a = run(0);
    let b = run(1);
    assert_fp_eq("shard2-rerun", &a, &b);

    // Per-shard agreement: every group's replicas converge on one root.
    for s in 0..2 {
        let roots: Vec<&String> =
            a.iter().filter(|l| l.starts_with(&format!("s{s} replica"))).collect();
        assert_eq!(roots.len(), N);
        let first_root = roots[0].split("root=").nth(1).unwrap().split(' ').next().unwrap();
        for r in &roots {
            assert!(r.contains(first_root), "shard {s} replicas disagree: {roots:?}");
        }
    }
}
