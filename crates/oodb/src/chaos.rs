//! Chaos-campaign harness and auditor for the replicated OODB.
//!
//! The OODB is the paper's sharpest demonstration of abstraction: every
//! replica runs the *same* non-deterministic implementation ([`ObjStore`]
//! randomizes addresses and garbage-collects at load-dependent moments), so
//! the concrete heaps diverge immediately while the abstract state must
//! stay identical. The auditor checks exactly that invariant under
//! composed crashes, partitions, Byzantine flips and latent corruption:
//!
//! 1. **Liveness** — every client finishes its workload once faults heal.
//! 2. **Exact results** for the mutator client: it is the only writer, so
//!    each of its replies (object handles, put/ref acknowledgements,
//!    traversal counts) is known in advance.
//! 3. **Plausible results** for the prober client: its read-only probes
//!    race the mutator, so each reply must be one of the states a
//!    sequential interleaving passes through.
//! 4. **Abstract-state agreement** — clean replicas that reached the final
//!    stable checkpoint hold byte-identical abstract objects, despite
//!    their divergent concrete stores.

use crate::store::ObjStore;
use crate::wrapper::{err, Oid, OodbOp, OodbReply, OodbWrapper};
use base::{BaseClient, BaseReplica, BaseService, ByzMode, Config, Wrapper as _};
use base_pbft::chaos::{APP_BYZ, APP_CORRUPT_STATE, APP_RECOVER};
use base_simnet::chaos::{AppFaultSpec, ChaosHarness, HealSpec, ScheduleGenConfig};
use base_simnet::{NodeId, SimDuration, Simulation};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::HashSet;

type Replica = BaseReplica<OodbWrapper>;

/// Objects the mutator client allocates (and chains with references).
const OBJS: u32 = 6;
/// Traversal depth bound, comfortably above the chain length.
const DEPTH: u32 = 16;
/// Read-only probes issued by the prober client.
const PROBES: usize = 12;

fn oid(index: u32) -> Oid {
    // Fresh allocations on an empty store take indices 0,1,2,... with
    // generation 1 (abstract allocation is deterministic even though the
    // concrete addresses are random).
    Oid { index, gen: 1 }
}

fn field_data(index: u32) -> Vec<u8> {
    format!("obj{index}").into_bytes()
}

/// What the auditor expects of one completed operation.
enum Expect {
    /// Byte-exact reply (mutator client).
    Exact(OodbReply),
    /// `Get` probe on object `index`: stale, still-empty, or written.
    ProbeGet(u32),
    /// `Traverse` probe from the chain root: stale or a prefix count.
    ProbeTraverse,
}

/// A campaign harness replicating the OODB behind the BASE abstraction.
pub struct OodbChaosHarness {
    /// Number of replicas.
    pub n: usize,
    /// Gap between a client's submissions (stretches the workload across
    /// the fault schedule).
    pub pace: SimDuration,
    /// Extra settle time after the last scheduled event.
    pub settle: SimDuration,
    /// Consensus pipeline depth ([`Config::pipeline_depth`]).
    pub pipeline_depth: u64,
    /// Execution worker count ([`Config::exec_workers`]).
    pub exec_workers: usize,
    // Per-run state, reset by `build`.
    client_nodes: Vec<NodeId>,
    replica_nodes: Vec<NodeId>,
    expected: Vec<Vec<(u64, Expect)>>,
    tainted: HashSet<NodeId>,
}

impl OodbChaosHarness {
    /// Creates a harness with `n` replicas, a mutator client and a prober
    /// client.
    pub fn new(n: usize) -> Self {
        Self {
            n,
            pace: SimDuration::from_millis(250),
            settle: SimDuration::from_secs(30),
            pipeline_depth: 16,
            exec_workers: 1,
            client_nodes: Vec::new(),
            replica_nodes: Vec::new(),
            expected: Vec::new(),
            tainted: HashSet::new(),
        }
    }

    /// The group configuration: frequent checkpoints so campaigns exercise
    /// garbage collection and state transfer, short reboots so recoveries
    /// finish within the run.
    pub fn config(&self) -> Config {
        let mut cfg = Config::new(self.n);
        cfg.checkpoint_interval = 4;
        cfg.log_window = 32;
        cfg.reboot_time = SimDuration::from_millis(100);
        cfg.pipeline_depth = self.pipeline_depth;
        cfg.exec_workers = self.exec_workers;
        cfg
    }

    /// Schedule-generation config: replica-targeted faults, at most `f`
    /// impaired at once, Byzantine flips and latent corruption both healed.
    pub fn gen_config(&self, events: usize, horizon: SimDuration) -> ScheduleGenConfig {
        ScheduleGenConfig {
            nodes: (0..self.n).map(NodeId).collect(),
            max_impaired: self.config().f(),
            horizon,
            events,
            app_faults: vec![
                AppFaultSpec {
                    tag: APP_BYZ,
                    arg_max: 7,
                    impairs: true,
                    heal: Some(HealSpec { tag: APP_BYZ, after: SimDuration::from_secs(2) }),
                },
                AppFaultSpec {
                    tag: APP_CORRUPT_STATE,
                    arg_max: 1 << 32,
                    impairs: true,
                    heal: Some(HealSpec { tag: APP_RECOVER, after: SimDuration::from_secs(2) }),
                },
            ],
            net_faults: true,
        }
    }

    fn clean_replicas<'a>(&self, sim: &'a Simulation) -> Vec<(NodeId, &'a Replica)> {
        self.replica_nodes
            .iter()
            .filter(|r| !self.tainted.contains(r))
            .filter_map(|&r| sim.actor_as::<Replica>(r).map(|a| (r, a)))
            .filter(|(_, a)| a.byzantine() == ByzMode::Honest)
            .collect()
    }

    fn check_reply(
        &self,
        client: usize,
        ts: u64,
        expect: &Expect,
        result: &[u8],
    ) -> Result<(), String> {
        let reply = OodbReply::from_bytes(result)
            .ok_or_else(|| format!("client {client} ts={ts} reply does not parse"))?;
        match expect {
            Expect::Exact(want) => {
                if &reply != want {
                    return Err(format!(
                        "client {client} ts={ts} got {reply:?}, want {want:?}"
                    ));
                }
            }
            Expect::ProbeGet(index) => {
                let ok = match &reply {
                    // The probe may run before the mutator allocated the
                    // object, after allocation but before the field write,
                    // or after the write — nothing else.
                    OodbReply::Err(code) => *code == err::STALE,
                    OodbReply::Data(d) => d.is_empty() || *d == field_data(*index),
                    _ => false,
                };
                if !ok {
                    return Err(format!(
                        "client {client} ts={ts} probe get({index}) returned {reply:?}, \
                         a state no sequential execution passes through"
                    ));
                }
            }
            Expect::ProbeTraverse => {
                let ok = match &reply {
                    OodbReply::Err(code) => *code == err::STALE,
                    // The chain grows one link at a time, so any prefix
                    // count is linearizable.
                    OodbReply::Count(c) => (1..=u64::from(OBJS)).contains(c),
                    _ => false,
                };
                if !ok {
                    return Err(format!(
                        "client {client} ts={ts} probe traverse returned {reply:?}, \
                         a state no sequential execution passes through"
                    ));
                }
            }
        }
        Ok(())
    }
}

impl ChaosHarness for OodbChaosHarness {
    fn build(&mut self, seed: u64) -> Simulation {
        self.expected.clear();
        self.tainted.clear();

        let cfg = self.config();
        let clients = 2usize;
        let mut sim = Simulation::new(seed);
        let dir = base_crypto::KeyDirectory::generate(self.n + clients, seed);
        self.replica_nodes = (0..self.n)
            .map(|i| {
                let keys = base_crypto::NodeKeys::new(dir.clone(), i);
                // Per-replica store RNGs differ on purpose: the concrete
                // heaps (addresses, GC moments) must diverge while the
                // abstract state stays identical.
                let mut rng = StdRng::seed_from_u64(seed ^ (0xb0de ^ i as u64).rotate_left(17));
                let service = BaseService::new(OodbWrapper::new(ObjStore::new(&mut rng)));
                let node = sim.add_node(Box::new(Replica::new(cfg.clone(), keys, service)));
                sim.actor_as_mut::<Replica>(node).expect("replica").set_recovery_clean(false);
                node
            })
            .collect();
        self.client_nodes = (0..clients)
            .map(|i| {
                let keys = base_crypto::NodeKeys::new(dir.clone(), self.n + i);
                sim.add_node(Box::new(BaseClient::new(cfg.clone(), keys)))
            })
            .collect();

        // Client 0, the mutator: allocate a chain of objects, write each
        // one's first field, link them, then read its own work back. It is
        // the only writer, so every reply is exact.
        let mut mutator = Vec::new();
        {
            let client = sim.actor_as_mut::<BaseClient>(self.client_nodes[0]).expect("client");
            client.set_pace(self.pace);
            let mut ts = 0u64;
            let mut push = |client: &mut BaseClient, op: OodbOp, want: OodbReply| {
                ts += 1;
                let ro = op.is_read_only();
                client.invoke(op.to_bytes(), ro);
                mutator.push((ts, Expect::Exact(want)));
            };
            for j in 0..OBJS {
                push(client, OodbOp::New, OodbReply::Handle(oid(j)));
            }
            for j in 0..OBJS {
                push(
                    client,
                    OodbOp::Put { oid: oid(j), field: 0, data: field_data(j) },
                    OodbReply::Ok,
                );
            }
            for j in 0..OBJS - 1 {
                push(
                    client,
                    OodbOp::SetRef { from: oid(j), slot: 0, to: Some(oid(j + 1)) },
                    OodbReply::Ok,
                );
            }
            push(
                client,
                OodbOp::Traverse { root: oid(0), depth: DEPTH },
                OodbReply::Count(u64::from(OBJS)),
            );
            push(
                client,
                OodbOp::Get { oid: oid(3), field: 0 },
                OodbReply::Data(field_data(3)),
            );
        }

        // Client 1, the prober: read-only gets and traversals racing the
        // mutator; every reply must be a state some interleaving visits.
        let mut prober = Vec::new();
        {
            let client = sim.actor_as_mut::<BaseClient>(self.client_nodes[1]).expect("client");
            client.set_pace(self.pace);
            for p in 0..PROBES {
                let ts = (p + 1) as u64;
                if p % 2 == 0 {
                    let index = (p as u32 / 2) % OBJS;
                    client.invoke(OodbOp::Get { oid: oid(index), field: 0 }.to_bytes(), true);
                    prober.push((ts, Expect::ProbeGet(index)));
                } else {
                    client
                        .invoke(OodbOp::Traverse { root: oid(0), depth: DEPTH }.to_bytes(), true);
                    prober.push((ts, Expect::ProbeTraverse));
                }
            }
        }
        self.expected = vec![mutator, prober];
        sim
    }

    fn apply_app(
        &mut self,
        sim: &mut Simulation,
        node: NodeId,
        tag: u32,
        arg: u64,
        trace: &mut Vec<String>,
    ) {
        let Some(replica) = sim.actor_as_mut::<Replica>(node) else {
            trace.push(format!("app fault at node {} ignored (not a replica)", node.0));
            return;
        };
        match tag {
            APP_BYZ => {
                let mode = ByzMode::from_code(arg);
                replica.set_byzantine(mode);
                if mode.is_faulty() {
                    self.tainted.insert(node);
                }
                trace.push(format!("node {} byzantine mode -> {mode:?}", node.0));
            }
            APP_CORRUPT_STATE => {
                replica.corrupt_service_state(arg);
                self.tainted.insert(node);
                trace.push(format!("node {} concrete heap corrupted (seed {arg})", node.0));
            }
            APP_RECOVER => {
                replica.trigger_recovery();
                trace.push(format!("node {} proactive recovery triggered", node.0));
            }
            _ => trace.push(format!("unknown app fault tag {tag} at node {}", node.0)),
        }
    }

    fn settle(&self) -> SimDuration {
        self.settle
    }

    fn audit(&mut self, sim: &mut Simulation, trace: &mut Vec<String>) -> Result<(), String> {
        // Liveness and reply correctness.
        for (i, &c) in self.client_nodes.iter().enumerate() {
            let client = sim.actor_as::<BaseClient>(c).expect("client");
            let want = &self.expected[i];
            if client.completed.len() != want.len() {
                return Err(format!(
                    "liveness: client {i} completed {}/{} ops",
                    client.completed.len(),
                    want.len()
                ));
            }
            for ((ts, result), (want_ts, expect)) in client.completed.iter().zip(want) {
                if ts != want_ts {
                    return Err(format!(
                        "client {i} completed ts={ts} out of order (expected ts={want_ts})"
                    ));
                }
                self.check_reply(i, *ts, expect, result)?;
            }
        }

        // Abstract-state agreement among clean replicas that reached the
        // final stable checkpoint: identical abstract objects, whatever
        // their concrete heaps look like.
        let clean: Vec<NodeId> =
            self.clean_replicas(sim).into_iter().map(|(id, _)| id).collect();
        if clean.is_empty() {
            return Err("no clean replicas left to audit".into());
        }
        let max_stable = clean
            .iter()
            .filter_map(|&r| sim.actor_as::<Replica>(r).map(|a| a.stable_seq()))
            .max()
            .unwrap_or(0);
        let mut snapshots: Vec<(NodeId, u64, Vec<Option<Vec<u8>>>)> = Vec::new();
        for &r in &clean {
            let replica = sim.actor_as_mut::<Replica>(r).expect("replica");
            if replica.stable_seq() != max_stable {
                continue;
            }
            let wrapper = replica.service_mut().wrapper_mut();
            let allocated = wrapper.allocated();
            let objs = (0..u64::from(OBJS)).map(|i| wrapper.get_obj(i)).collect();
            snapshots.push((r, allocated, objs));
        }
        let Some((first, allocated, reference)) = snapshots.first() else {
            return Err("no clean replica reached the final stable checkpoint".into());
        };
        if *allocated != u64::from(OBJS) {
            return Err(format!(
                "replica {} holds {allocated} abstract objects, want {OBJS}",
                first.0
            ));
        }
        for (r, alloc, objs) in &snapshots[1..] {
            if alloc != allocated || objs != reference {
                return Err(format!(
                    "abstract-state divergence between replicas {} and {} \
                     (concrete heaps may differ; abstract objects must not)",
                    first.0, r.0
                ));
            }
        }
        trace.push(format!(
            "audit ok: {} converged / {} clean replicas, {allocated} abstract objects agree",
            snapshots.len(),
            clean.len()
        ));
        Ok(())
    }
}
