//! An OO7-flavoured workload for the replicated OODB.
//!
//! OO7 (Carey, DeWitt, Naughton) is the classic OODB benchmark: a design
//! hierarchy of modules, composite parts, and atomic-part graphs, with
//! traversal (T1), update-traversal (T2) and query workloads. This is a
//! scaled-down generator producing the operation stream for the replicated
//! database; because oid allocation is deterministic, the generator can
//! precompute every handle.

use crate::wrapper::{Oid, OodbOp};

/// Workload scale parameters.
#[derive(Debug, Clone, Copy)]
pub struct Oo7Workload {
    /// Number of composite parts.
    pub composites: u32,
    /// Atomic parts per composite.
    pub atomics_per_composite: u32,
    /// T1 (read) traversals to run.
    pub t1_traversals: u32,
    /// T2 (update) traversals to run.
    pub t2_traversals: u32,
}

impl Oo7Workload {
    /// The "tiny" configuration used by tests.
    pub fn tiny() -> Self {
        Self { composites: 3, atomics_per_composite: 4, t1_traversals: 2, t2_traversals: 1 }
    }

    /// The "small" configuration used by the experiment tables.
    pub fn small() -> Self {
        Self { composites: 10, atomics_per_composite: 8, t1_traversals: 10, t2_traversals: 5 }
    }

    /// Total objects created (module root + composites + atomics).
    pub fn total_objects(&self) -> u32 {
        1 + self.composites * (1 + self.atomics_per_composite)
    }

    /// Generates the full operation stream: `(op bytes, read_only)`.
    ///
    /// Layout of the deterministic oid space: index 0 is the module root
    /// (gen 1); composite `c` gets index `1 + c*(1+A)`; its atomic parts
    /// follow it contiguously. Composites link from the root's ref slots
    /// (chained), atomic parts form a ring per composite.
    pub fn build_ops(&self) -> Vec<(Vec<u8>, bool)> {
        let a = self.atomics_per_composite;
        let oid = |index: u32| Oid { index, gen: 1 };
        let composite_root = |c: u32| oid(1 + c * (1 + a));
        let atomic = |c: u32, k: u32| oid(1 + c * (1 + a) + 1 + k);

        let mut ops: Vec<(Vec<u8>, bool)> = Vec::new();
        let mut push = |op: OodbOp, ro: bool| ops.push((op.to_bytes(), ro));

        // Build phase.
        push(OodbOp::New, false); // Module root: index 0.
        for c in 0..self.composites {
            push(OodbOp::New, false); // Composite root.
            push(
                OodbOp::Put {
                    oid: composite_root(c),
                    field: 0,
                    data: format!("composite-{c}").into_bytes(),
                },
                false,
            );
            for k in 0..a {
                push(OodbOp::New, false);
                push(
                    OodbOp::Put { oid: atomic(c, k), field: 0, data: vec![k as u8; 64] },
                    false,
                );
            }
            // Ring of atomic parts.
            for k in 0..a {
                push(
                    OodbOp::SetRef {
                        from: atomic(c, k),
                        slot: 0,
                        to: Some(atomic(c, (k + 1) % a)),
                    },
                    false,
                );
            }
            // Composite root points at its first atomic part.
            push(OodbOp::SetRef { from: composite_root(c), slot: 0, to: Some(atomic(c, 0)) }, false);
            // Chain composites from the module root (slot 1 chain).
            if c == 0 {
                push(OodbOp::SetRef { from: oid(0), slot: 0, to: Some(composite_root(0)) }, false);
            } else {
                push(
                    OodbOp::SetRef {
                        from: composite_root(c - 1),
                        slot: 1,
                        to: Some(composite_root(c)),
                    },
                    false,
                );
            }
        }

        // T1: read traversals over the whole hierarchy.
        for _ in 0..self.t1_traversals {
            push(OodbOp::Traverse { root: oid(0), depth: 64 }, true);
        }

        // T2: update traversals — touch one atomic part per composite.
        for t in 0..self.t2_traversals {
            for c in 0..self.composites {
                push(
                    OodbOp::Put {
                        oid: atomic(c, t % a),
                        field: 2,
                        data: format!("updated-{t}").into_bytes(),
                    },
                    false,
                );
            }
            push(OodbOp::Traverse { root: oid(0), depth: 64 }, true);
        }
        ops
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::ObjStore;
    use crate::wrapper::{OodbReply, OodbWrapper};
    use base::{ModifyLog, Wrapper};
    use base_pbft::ExecEnv;
    use rand::SeedableRng;

    #[test]
    fn workload_runs_cleanly_on_the_wrapper() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let mut w = OodbWrapper::new(ObjStore::new(&mut rng));
        let mut mods = ModifyLog::new();
        let wl = Oo7Workload::tiny();
        let ops = wl.build_ops();
        let mut last_count = 0;
        for (i, (op, _ro)) in ops.iter().enumerate() {
            let mut env = ExecEnv::new(i as u64, &mut rng);
            let bytes = w.execute(op, 1, &(i as u64).to_be_bytes(), false, &mut mods, &mut env);
            match OodbReply::from_bytes(&bytes).expect("reply") {
                OodbReply::Err(code) => panic!("op {i} failed with {code}"),
                OodbReply::Count(n) => last_count = n,
                _ => {}
            }
        }
        // The final traversal reaches the full hierarchy.
        assert_eq!(last_count, u64::from(wl.total_objects()));
        assert_eq!(w.allocated(), u64::from(wl.total_objects()));
    }
}
