//! The replicated object-oriented database — the BASE paper's second
//! example (from the abstract: *"an object-oriented database where the
//! replicas ran the same, non-deterministic implementation"*).
//!
//! [`ObjStore`] is the "off-the-shelf" implementation: an in-memory object
//! heap whose object *addresses* are random, whose garbage collector runs
//! at load-dependent moments and **relocates objects** (changing all
//! addresses), and whose iteration order follows the volatile addresses.
//! Running the same implementation on every replica still yields divergent
//! concrete states — the scenario where classic BFT's identical-state
//! requirement breaks down and BASE's abstract state shines.
//!
//! [`OodbWrapper`] is the conformance wrapper: stable abstract oids are
//! array indices, references are stored abstractly as oids, and the
//! conformance rep tracks the volatile oid → address mapping across GC
//! relocations.

#![warn(missing_docs)]

pub mod chaos;
pub mod oo7;
pub mod store;
pub mod wrapper;

pub use oo7::Oo7Workload;
pub use store::{ObjStore, FIELDS, REF_SLOTS};
pub use wrapper::{err, Oid, OodbOp, OodbReply, OodbWrapper, N_OBJECTS};
