//! The non-deterministic object store ("off-the-shelf" OODB).

use rand::rngs::StdRng;
use rand::Rng;
use std::collections::HashMap;

/// Number of reference slots per object.
pub const REF_SLOTS: usize = 4;
/// Number of scalar fields per object.
pub const FIELDS: usize = 4;

/// One heap object.
#[derive(Debug, Clone, Default)]
pub struct HeapObject {
    /// Scalar fields.
    pub fields: [Vec<u8>; FIELDS],
    /// References to other objects by *volatile address*.
    pub refs: [Option<u64>; REF_SLOTS],
    /// Concrete modification time (local clock — non-deterministic).
    pub mtime_local_ns: u64,
}

/// An in-memory object database with volatile random addresses and a
/// relocating garbage collector.
pub struct ObjStore {
    heap: HashMap<u64, HeapObject>,
    /// Pinned roots (the wrapper pins everything it names).
    pins: HashMap<u64, u64>, // pin token -> address
    next_pin: u64,
    /// Allocations since the last collection.
    allocs_since_gc: u32,
    /// Collection threshold, re-randomized after each collection.
    gc_threshold: u32,
    /// Dead bytes awaiting collection (footprint effect).
    garbage_bytes: u64,
    /// Total collections run (visible for tests).
    pub collections: u64,
}

impl ObjStore {
    /// Creates an empty store.
    pub fn new(rng: &mut StdRng) -> Self {
        Self {
            heap: HashMap::new(),
            pins: HashMap::new(),
            next_pin: 1,
            allocs_since_gc: 0,
            gc_threshold: 16 + (rng.gen::<u32>() % 48),
            garbage_bytes: 0,
            collections: 0,
        }
    }

    /// Allocates an object; returns its (volatile) address. May trigger a
    /// relocating collection first — the returned map lists every object
    /// that moved (old address → new address).
    pub fn alloc(
        &mut self,
        clock_ns: u64,
        rng: &mut StdRng,
    ) -> (u64, Option<HashMap<u64, u64>>) {
        let relocations = if self.allocs_since_gc >= self.gc_threshold {
            Some(self.collect(rng))
        } else {
            None
        };
        self.allocs_since_gc += 1;
        let addr = self.fresh_addr(rng);
        self.heap.insert(addr, HeapObject { mtime_local_ns: clock_ns, ..Default::default() });
        (addr, relocations)
    }

    fn fresh_addr(&self, rng: &mut StdRng) -> u64 {
        loop {
            let a: u64 = rng.gen();
            if !self.heap.contains_key(&a) {
                return a;
            }
        }
    }

    /// Pins `addr` so collections keep it alive; returns a pin token.
    pub fn pin(&mut self, addr: u64) -> u64 {
        let token = self.next_pin;
        self.next_pin += 1;
        self.pins.insert(token, addr);
        token
    }

    /// Releases a pin; the object becomes garbage unless referenced.
    pub fn unpin(&mut self, token: u64) {
        if let Some(addr) = self.pins.remove(&token) {
            if let Some(o) = self.heap.get(&addr) {
                self.garbage_bytes +=
                    o.fields.iter().map(|f| f.len() as u64).sum::<u64>() + 64;
            }
        }
    }

    /// Reads an object.
    pub fn get(&self, addr: u64) -> Option<&HeapObject> {
        self.heap.get(&addr)
    }

    /// Writes an object field.
    pub fn set_field(&mut self, addr: u64, idx: usize, data: Vec<u8>, clock_ns: u64) -> bool {
        match self.heap.get_mut(&addr) {
            Some(o) if idx < FIELDS => {
                o.fields[idx] = data;
                o.mtime_local_ns = clock_ns;
                true
            }
            _ => false,
        }
    }

    /// Sets a reference slot.
    pub fn set_ref(&mut self, addr: u64, slot: usize, target: Option<u64>, clock_ns: u64) -> bool {
        match self.heap.get_mut(&addr) {
            Some(o) if slot < REF_SLOTS => {
                o.refs[slot] = target;
                o.mtime_local_ns = clock_ns;
                true
            }
            _ => false,
        }
    }

    /// Mark-sweep-compact: relocates every live object to a fresh random
    /// address and drops unreachable ones. Returns old→new addresses.
    pub fn collect(&mut self, rng: &mut StdRng) -> HashMap<u64, u64> {
        self.collections += 1;
        self.allocs_since_gc = 0;
        self.gc_threshold = 16 + (rng.gen::<u32>() % 48);
        self.garbage_bytes = 0;

        // Mark from pins.
        let mut live: Vec<u64> = Vec::new();
        let mut seen: std::collections::HashSet<u64> = std::collections::HashSet::new();
        let mut stack: Vec<u64> = self.pins.values().copied().collect();
        while let Some(a) = stack.pop() {
            if !seen.insert(a) {
                continue;
            }
            if let Some(o) = self.heap.get(&a) {
                live.push(a);
                stack.extend(o.refs.iter().flatten().copied());
            }
        }

        // Relocate: new random address per live object.
        let mut moves: HashMap<u64, u64> = HashMap::new();
        let mut new_heap: HashMap<u64, HeapObject> = HashMap::with_capacity(live.len());
        for old in live {
            let mut new_addr: u64 = rng.gen();
            while new_heap.contains_key(&new_addr) {
                new_addr = rng.gen();
            }
            let obj = self.heap.remove(&old).expect("marked live");
            new_heap.insert(new_addr, obj);
            moves.insert(old, new_addr);
        }
        // Rewrite references and pins.
        for o in new_heap.values_mut() {
            for r in o.refs.iter_mut() {
                if let Some(t) = r {
                    if let Some(n) = moves.get(t) {
                        *r = Some(*n);
                    } else {
                        *r = None; // Dangling into collected garbage.
                    }
                }
            }
        }
        for addr in self.pins.values_mut() {
            if let Some(n) = moves.get(addr) {
                *addr = *n;
            }
        }
        self.heap = new_heap;
        moves
    }

    /// Live object count.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True if no objects are live.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Approximate bytes held, including garbage not yet collected.
    pub fn footprint_bytes(&self) -> u64 {
        self.heap
            .values()
            .map(|o| o.fields.iter().map(|f| f.len() as u64).sum::<u64>() + 64)
            .sum::<u64>()
            + self.garbage_bytes
    }

    /// Restarts from the clean initial state.
    pub fn reset(&mut self, rng: &mut StdRng) {
        *self = ObjStore::new(rng);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(9)
    }

    #[test]
    fn alloc_pin_get() {
        let mut r = rng();
        let mut s = ObjStore::new(&mut r);
        let (a, _) = s.alloc(100, &mut r);
        s.pin(a);
        assert!(s.set_field(a, 0, b"data".to_vec(), 200));
        assert_eq!(s.get(a).unwrap().fields[0], b"data");
        assert_eq!(s.get(a).unwrap().mtime_local_ns, 200);
    }

    #[test]
    fn gc_relocates_live_objects_and_drops_garbage() {
        let mut r = rng();
        let mut s = ObjStore::new(&mut r);
        let (a, _) = s.alloc(1, &mut r);
        let pin_a = s.pin(a);
        let (b, _) = s.alloc(1, &mut r);
        s.pin(b);
        s.set_ref(b, 0, Some(a), 2);
        let (dead, _) = s.alloc(1, &mut r);
        let pin_dead = s.pin(dead);
        s.unpin(pin_dead);
        let _ = pin_a;

        s.set_field(a, 1, b"keep".to_vec(), 3);
        let moves = s.collect(&mut r);
        assert_eq!(s.len(), 2, "dead object collected");
        let new_a = moves[&a];
        assert_ne!(new_a, a, "addresses are volatile across GC");
        assert_eq!(s.get(new_a).unwrap().fields[1], b"keep");
        // b's reference was rewritten to a's new address.
        let new_b = moves[&b];
        assert_eq!(s.get(new_b).unwrap().refs[0], Some(new_a));
    }

    #[test]
    fn gc_triggers_automatically() {
        let mut r = rng();
        let mut s = ObjStore::new(&mut r);
        let mut relocated = false;
        for i in 0..200 {
            let (a, moves) = s.alloc(i, &mut r);
            s.pin(a);
            relocated |= moves.is_some();
        }
        assert!(relocated, "automatic collections must have run");
        assert!(s.collections >= 1);
        assert_eq!(s.len(), 200, "pinned objects survive");
    }

    #[test]
    fn two_stores_same_ops_different_addresses() {
        let mut r1 = StdRng::seed_from_u64(1);
        let mut r2 = StdRng::seed_from_u64(2);
        let mut s1 = ObjStore::new(&mut r1);
        let mut s2 = ObjStore::new(&mut r2);
        let (a1, _) = s1.alloc(1, &mut r1);
        let (a2, _) = s2.alloc(1, &mut r2);
        assert_ne!(a1, a2, "same logical op, different concrete address");
    }
}
