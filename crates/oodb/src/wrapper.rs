//! Conformance wrapper for the object store.
//!
//! Abstract specification: a fixed array of [`N_OBJECTS`] entries; each
//! non-null entry is `(generation, fields[4], refs[4], mtime)` XDR-encoded,
//! where refs are *abstract oids* and `mtime` is the agreed timestamp. The
//! wrapper's conformance rep maps oids to the store's volatile addresses,
//! chasing the garbage collector's relocations, and maintains deterministic
//! reference counts so deletion semantics never depend on when the
//! collector happens to run.

use crate::store::{ObjStore, FIELDS, REF_SLOTS};
use base::{ModifyLog, Wrapper};
use base_pbft::ExecEnv;
use base_xdr::{XdrDecoder, XdrEncoder};
use std::collections::{BTreeSet, HashMap};

/// Capacity of the abstract object array.
pub const N_OBJECTS: u64 = 4096;

/// An abstract oid: index + generation packed like the NFS example.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub struct Oid {
    /// Array index.
    pub index: u32,
    /// Generation.
    pub gen: u32,
}

/// Operations on the replicated OODB.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum OodbOp {
    /// Allocates a new object; replies `Handle`.
    New,
    /// Writes a scalar field.
    Put {
        /// Target object.
        oid: Oid,
        /// Field index (`< FIELDS`).
        field: u32,
        /// New contents.
        data: Vec<u8>,
    },
    /// Reads a scalar field; replies `Data`.
    Get {
        /// Target object.
        oid: Oid,
        /// Field index.
        field: u32,
    },
    /// Sets a reference slot (increments/decrements abstract refcounts).
    SetRef {
        /// Source object.
        from: Oid,
        /// Slot index (`< REF_SLOTS`).
        slot: u32,
        /// New target (`None` clears).
        to: Option<Oid>,
    },
    /// Reads a reference slot; replies `Ref`.
    GetRef {
        /// Source object.
        from: Oid,
        /// Slot index.
        slot: u32,
    },
    /// Deletes an unreferenced object.
    Delete {
        /// Target object.
        oid: Oid,
    },
    /// Depth-bounded traversal from `root`; replies `Count` with the
    /// number of distinct objects visited (read-only, deterministic).
    Traverse {
        /// Start object.
        root: Oid,
        /// Maximum depth.
        depth: u32,
    },
}

/// Replies.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum OodbReply {
    /// A new object's oid.
    Handle(Oid),
    /// Field contents.
    Data(Vec<u8>),
    /// A reference slot's target.
    Ref(Option<Oid>),
    /// Traversal result.
    Count(u64),
    /// Success.
    Ok,
    /// Failure: stale oid, bad index, still referenced, out of space.
    Err(u32),
}

/// Error codes for [`OodbReply::Err`].
pub mod err {
    /// Stale or unknown oid.
    pub const STALE: u32 = 1;
    /// Field/slot out of range.
    pub const RANGE: u32 = 2;
    /// Object still referenced.
    pub const IN_USE: u32 = 3;
    /// Abstract array exhausted.
    pub const NO_SPACE: u32 = 4;
    /// Malformed operation.
    pub const INVAL: u32 = 5;
}

impl OodbOp {
    /// Encodes to op bytes.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut enc = XdrEncoder::new();
        let put_oid = |enc: &mut XdrEncoder, o: &Oid| {
            enc.put_u32(o.index);
            enc.put_u32(o.gen);
        };
        match self {
            OodbOp::New => enc.put_u32(0),
            OodbOp::Put { oid, field, data } => {
                enc.put_u32(1);
                put_oid(&mut enc, oid);
                enc.put_u32(*field);
                enc.put_opaque(data);
            }
            OodbOp::Get { oid, field } => {
                enc.put_u32(2);
                put_oid(&mut enc, oid);
                enc.put_u32(*field);
            }
            OodbOp::SetRef { from, slot, to } => {
                enc.put_u32(3);
                put_oid(&mut enc, from);
                enc.put_u32(*slot);
                match to {
                    Some(t) => {
                        enc.put_bool(true);
                        put_oid(&mut enc, t);
                    }
                    None => enc.put_bool(false),
                }
            }
            OodbOp::GetRef { from, slot } => {
                enc.put_u32(4);
                put_oid(&mut enc, from);
                enc.put_u32(*slot);
            }
            OodbOp::Delete { oid } => {
                enc.put_u32(5);
                put_oid(&mut enc, oid);
            }
            OodbOp::Traverse { root, depth } => {
                enc.put_u32(6);
                put_oid(&mut enc, root);
                enc.put_u32(*depth);
            }
        }
        enc.finish()
    }

    /// Decodes from op bytes.
    pub fn from_bytes(bytes: &[u8]) -> Option<OodbOp> {
        let mut dec = XdrDecoder::new(bytes);
        let get_oid = |dec: &mut XdrDecoder<'_>| -> Option<Oid> {
            Some(Oid { index: dec.get_u32().ok()?, gen: dec.get_u32().ok()? })
        };
        let op = match dec.get_u32().ok()? {
            0 => OodbOp::New,
            1 => OodbOp::Put {
                oid: get_oid(&mut dec)?,
                field: dec.get_u32().ok()?,
                data: dec.get_opaque().ok()?,
            },
            2 => OodbOp::Get { oid: get_oid(&mut dec)?, field: dec.get_u32().ok()? },
            3 => OodbOp::SetRef {
                from: get_oid(&mut dec)?,
                slot: dec.get_u32().ok()?,
                to: if dec.get_bool().ok()? { Some(get_oid(&mut dec)?) } else { None },
            },
            4 => OodbOp::GetRef { from: get_oid(&mut dec)?, slot: dec.get_u32().ok()? },
            5 => OodbOp::Delete { oid: get_oid(&mut dec)? },
            6 => OodbOp::Traverse { root: get_oid(&mut dec)?, depth: dec.get_u32().ok()? },
            _ => return None,
        };
        dec.finish().ok()?;
        Some(op)
    }

    /// True for operations eligible for the read-only optimization.
    pub fn is_read_only(&self) -> bool {
        matches!(self, OodbOp::Get { .. } | OodbOp::GetRef { .. } | OodbOp::Traverse { .. })
    }
}

impl OodbReply {
    /// Encodes to reply bytes.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut enc = XdrEncoder::new();
        match self {
            OodbReply::Handle(o) => {
                enc.put_u32(0);
                enc.put_u32(o.index);
                enc.put_u32(o.gen);
            }
            OodbReply::Data(d) => {
                enc.put_u32(1);
                enc.put_opaque(d);
            }
            OodbReply::Ref(Some(o)) => {
                enc.put_u32(2);
                enc.put_bool(true);
                enc.put_u32(o.index);
                enc.put_u32(o.gen);
            }
            OodbReply::Ref(None) => {
                enc.put_u32(2);
                enc.put_bool(false);
            }
            OodbReply::Count(n) => {
                enc.put_u32(3);
                enc.put_u64(*n);
            }
            OodbReply::Ok => enc.put_u32(4),
            OodbReply::Err(code) => {
                enc.put_u32(5);
                enc.put_u32(*code);
            }
        }
        enc.finish()
    }

    /// Decodes from reply bytes.
    pub fn from_bytes(bytes: &[u8]) -> Option<OodbReply> {
        let mut dec = XdrDecoder::new(bytes);
        let r = match dec.get_u32().ok()? {
            0 => OodbReply::Handle(Oid { index: dec.get_u32().ok()?, gen: dec.get_u32().ok()? }),
            1 => OodbReply::Data(dec.get_opaque().ok()?),
            2 => {
                if dec.get_bool().ok()? {
                    OodbReply::Ref(Some(Oid {
                        index: dec.get_u32().ok()?,
                        gen: dec.get_u32().ok()?,
                    }))
                } else {
                    OodbReply::Ref(None)
                }
            }
            3 => OodbReply::Count(dec.get_u64().ok()?),
            4 => OodbReply::Ok,
            5 => OodbReply::Err(dec.get_u32().ok()?),
            _ => return None,
        };
        dec.finish().ok()?;
        Some(r)
    }
}

#[derive(Debug, Clone, Default)]
struct RepEntry {
    gen: u32,
    addr: Option<u64>,
    pin: u64,
    /// Abstract references pointing at this entry (deterministic).
    refcount: u32,
    abs_mtime: u64,
}

/// The conformance wrapper for [`ObjStore`].
pub struct OodbWrapper {
    store: ObjStore,
    entries: Vec<RepEntry>,
    addr_to_index: HashMap<u64, u32>,
    next_fresh: u32,
    freed: BTreeSet<u32>,
    /// Newest agreed timestamp executed (for nondet validation).
    last_nondet: u64,
    /// Simulated base CPU cost per operation.
    pub op_cost_base: base_simnet::SimDuration,
    /// Simulated cost per object visited by a traversal.
    pub visit_cost: base_simnet::SimDuration,
}

impl OodbWrapper {
    /// Wraps a store.
    pub fn new(store: ObjStore) -> Self {
        Self {
            store,
            entries: vec![RepEntry::default(); N_OBJECTS as usize],
            addr_to_index: HashMap::new(),
            next_fresh: 0,
            freed: BTreeSet::new(),
            last_nondet: 0,
            op_cost_base: base_simnet::SimDuration::from_micros(4),
            visit_cost: base_simnet::SimDuration::from_nanos(200),
        }
    }

    /// Access to the wrapped store.
    pub fn store(&self) -> &ObjStore {
        &self.store
    }

    /// Mutable access to the wrapped store (fault injection).
    pub fn store_mut(&mut self) -> &mut ObjStore {
        &mut self.store
    }

    /// Number of allocated abstract objects.
    pub fn allocated(&self) -> u64 {
        self.entries.iter().filter(|e| e.addr.is_some()).count() as u64
    }

    fn apply_moves(&mut self, moves: &HashMap<u64, u64>) {
        if moves.is_empty() {
            return;
        }
        for e in &mut self.entries {
            if let Some(a) = e.addr {
                if let Some(n) = moves.get(&a) {
                    e.addr = Some(*n);
                }
            }
        }
        self.addr_to_index.clear();
        for (i, e) in self.entries.iter().enumerate() {
            if let Some(a) = e.addr {
                self.addr_to_index.insert(a, i as u32);
            }
        }
    }

    fn resolve(&self, oid: Oid) -> Option<u64> {
        let e = self.entries.get(oid.index as usize)?;
        if e.gen == oid.gen {
            e.addr
        } else {
            None
        }
    }

    fn alloc_index(&mut self) -> Option<u32> {
        if let Some(&i) = self.freed.iter().next() {
            self.freed.remove(&i);
            return Some(i);
        }
        if u64::from(self.next_fresh) < N_OBJECTS {
            let i = self.next_fresh;
            self.next_fresh += 1;
            Some(i)
        } else {
            None
        }
    }

    fn note_modify(&mut self, index: u32, mods: &mut ModifyLog) {
        let mut capture = None;
        if !mods.is_dirty(u64::from(index)) {
            capture = Some(self.get_obj(u64::from(index)));
        }
        mods.modify(u64::from(index), || capture.expect("captured when needed"));
    }

    fn run(&mut self, op: OodbOp, now_ns: u64, mods: &mut ModifyLog, env: &mut ExecEnv<'_>) -> OodbReply {
        match op {
            OodbOp::New => {
                let Some(index) = self.alloc_index() else {
                    return OodbReply::Err(err::NO_SPACE);
                };
                self.note_modify(index, mods);
                let (addr, moves) = self.store.alloc(env.local_clock_ns, env.rng);
                if let Some(m) = moves {
                    self.apply_moves(&m);
                }
                let pin = self.store.pin(addr);
                let e = &mut self.entries[index as usize];
                e.gen = e.gen.wrapping_add(1).max(1);
                e.addr = Some(addr);
                e.pin = pin;
                e.refcount = 0;
                e.abs_mtime = now_ns;
                let gen = e.gen;
                self.addr_to_index.insert(addr, index);
                OodbReply::Handle(Oid { index, gen })
            }
            OodbOp::Put { oid, field, data } => {
                if field as usize >= FIELDS {
                    return OodbReply::Err(err::RANGE);
                }
                let Some(addr) = self.resolve(oid) else { return OodbReply::Err(err::STALE) };
                self.note_modify(oid.index, mods);
                self.store.set_field(addr, field as usize, data, env.local_clock_ns);
                self.entries[oid.index as usize].abs_mtime = now_ns;
                OodbReply::Ok
            }
            OodbOp::Get { oid, field } => {
                if field as usize >= FIELDS {
                    return OodbReply::Err(err::RANGE);
                }
                let Some(addr) = self.resolve(oid) else { return OodbReply::Err(err::STALE) };
                OodbReply::Data(
                    self.store.get(addr).expect("pinned").fields[field as usize].clone(),
                )
            }
            OodbOp::SetRef { from, slot, to } => {
                if slot as usize >= REF_SLOTS {
                    return OodbReply::Err(err::RANGE);
                }
                let Some(addr) = self.resolve(from) else { return OodbReply::Err(err::STALE) };
                let target_addr = match to {
                    Some(t) => match self.resolve(t) {
                        Some(a) => Some((t, a)),
                        None => return OodbReply::Err(err::STALE),
                    },
                    None => None,
                };
                self.note_modify(from.index, mods);
                // Adjust deterministic refcounts: old target down, new up.
                let old = self.store.get(addr).expect("pinned").refs[slot as usize];
                if let Some(old_addr) = old {
                    if let Some(&old_idx) = self.addr_to_index.get(&old_addr) {
                        self.entries[old_idx as usize].refcount =
                            self.entries[old_idx as usize].refcount.saturating_sub(1);
                    }
                }
                if let Some((_, ta)) = target_addr {
                    let ti = self.addr_to_index[&ta];
                    self.entries[ti as usize].refcount += 1;
                }
                self.store.set_ref(addr, slot as usize, target_addr.map(|(_, a)| a), env.local_clock_ns);
                self.entries[from.index as usize].abs_mtime = now_ns;
                OodbReply::Ok
            }
            OodbOp::GetRef { from, slot } => {
                if slot as usize >= REF_SLOTS {
                    return OodbReply::Err(err::RANGE);
                }
                let Some(addr) = self.resolve(from) else { return OodbReply::Err(err::STALE) };
                let target = self.store.get(addr).expect("pinned").refs[slot as usize];
                OodbReply::Ref(target.map(|a| {
                    let i = self.addr_to_index[&a];
                    Oid { index: i, gen: self.entries[i as usize].gen }
                }))
            }
            OodbOp::Delete { oid } => {
                let Some(addr) = self.resolve(oid) else { return OodbReply::Err(err::STALE) };
                if self.entries[oid.index as usize].refcount > 0 {
                    return OodbReply::Err(err::IN_USE);
                }
                self.note_modify(oid.index, mods);
                // Drop refcounts of everything this object pointed at.
                let refs = self.store.get(addr).expect("pinned").refs;
                for r in refs.iter().flatten() {
                    if let Some(&ti) = self.addr_to_index.get(r) {
                        self.entries[ti as usize].refcount =
                            self.entries[ti as usize].refcount.saturating_sub(1);
                    }
                }
                let pin = self.entries[oid.index as usize].pin;
                self.store.unpin(pin);
                self.addr_to_index.remove(&addr);
                let e = &mut self.entries[oid.index as usize];
                e.addr = None;
                e.refcount = 0;
                self.freed.insert(oid.index);
                OodbReply::Ok
            }
            OodbOp::Traverse { root, depth } => {
                let Some(addr) = self.resolve(root) else { return OodbReply::Err(err::STALE) };
                let mut seen = std::collections::HashSet::new();
                let mut frontier = vec![(addr, 0u32)];
                while let Some((a, d)) = frontier.pop() {
                    if d >= depth || !seen.insert(a) {
                        continue;
                    }
                    if let Some(o) = self.store.get(a) {
                        for r in o.refs.iter().flatten() {
                            frontier.push((*r, d + 1));
                        }
                    }
                }
                env.charge(self.visit_cost.saturating_mul(seen.len() as u64));
                OodbReply::Count(seen.len() as u64)
            }
        }
    }
}

impl Wrapper for OodbWrapper {
    fn execute(
        &mut self,
        op: &[u8],
        _client: u32,
        nondet: &[u8],
        read_only: bool,
        mods: &mut ModifyLog,
        env: &mut ExecEnv<'_>,
    ) -> Vec<u8> {
        let Some(op) = OodbOp::from_bytes(op) else {
            return OodbReply::Err(err::INVAL).to_bytes();
        };
        if read_only && !op.is_read_only() {
            return OodbReply::Err(err::INVAL).to_bytes();
        }
        let now_ns = if nondet.len() == 8 {
            u64::from_be_bytes(nondet.try_into().expect("checked length"))
        } else {
            0
        };
        self.last_nondet = self.last_nondet.max(now_ns);
        env.charge(self.op_cost_base);
        self.run(op, now_ns, mods, env).to_bytes()
    }

    fn get_obj(&self, index: u64) -> Option<Vec<u8>> {
        let e = self.entries.get(index as usize)?;
        let addr = e.addr?;
        let gen = e.gen;
        let mtime = e.abs_mtime;
        let obj = self.store.get(addr).expect("pinned").clone();
        let mut enc = XdrEncoder::new();
        enc.put_u32(gen);
        for f in &obj.fields {
            enc.put_opaque(f);
        }
        for r in &obj.refs {
            match r.and_then(|a| self.addr_to_index.get(&a).copied()) {
                Some(ti) => {
                    enc.put_bool(true);
                    enc.put_u32(ti);
                    enc.put_u32(self.entries[ti as usize].gen);
                }
                None => enc.put_bool(false),
            }
        }
        enc.put_u64(mtime);
        Some(enc.finish())
    }

    fn put_objs(&mut self, objs: &[(u64, Option<Vec<u8>>)], env: &mut ExecEnv<'_>) {
        // Phase 1: decode, and make every present object exist with the
        // right generation, fields and mtime (refs wired in phase 2).
        struct Decoded {
            index: u32,
            gen: u32,
            fields: Vec<Vec<u8>>,
            refs: Vec<Option<(u32, u32)>>,
            mtime: u64,
        }
        let mut present = Vec::new();
        let mut absent = Vec::new();
        for (index, data) in objs {
            let Some(bytes) = data else {
                absent.push(*index as u32);
                continue;
            };
            let mut dec = XdrDecoder::new(bytes);
            let parse = (|| -> Option<Decoded> {
                let gen = dec.get_u32().ok()?;
                let mut fields = Vec::with_capacity(FIELDS);
                for _ in 0..FIELDS {
                    fields.push(dec.get_opaque().ok()?);
                }
                let mut refs = Vec::with_capacity(REF_SLOTS);
                for _ in 0..REF_SLOTS {
                    if dec.get_bool().ok()? {
                        refs.push(Some((dec.get_u32().ok()?, dec.get_u32().ok()?)));
                    } else {
                        refs.push(None);
                    }
                }
                let mtime = dec.get_u64().ok()?;
                dec.finish().ok()?;
                Some(Decoded { index: *index as u32, gen, fields, refs, mtime })
            })();
            match parse {
                Some(d) => present.push(d),
                None => absent.push(*index as u32),
            }
        }

        for d in &present {
            let needs_alloc = {
                let e = &self.entries[d.index as usize];
                e.addr.is_none() || e.gen != d.gen
            };
            if needs_alloc {
                if let Some(old_addr) = self.entries[d.index as usize].addr.take() {
                    let pin = self.entries[d.index as usize].pin;
                    self.store.unpin(pin);
                    self.addr_to_index.remove(&old_addr);
                }
                let (addr, moves) = self.store.alloc(env.local_clock_ns, env.rng);
                if let Some(m) = moves {
                    self.apply_moves(&m);
                }
                let pin = self.store.pin(addr);
                let e = &mut self.entries[d.index as usize];
                e.addr = Some(addr);
                e.pin = pin;
                e.gen = d.gen;
                self.addr_to_index.insert(addr, d.index);
            }
            let addr = self.entries[d.index as usize].addr.expect("just ensured");
            for (i, f) in d.fields.iter().enumerate() {
                self.store.set_field(addr, i, f.clone(), env.local_clock_ns);
            }
            self.entries[d.index as usize].abs_mtime = d.mtime;
        }

        // Phase 2: wire references (every target now exists).
        for d in &present {
            let addr = self.entries[d.index as usize].addr.expect("phase 1");
            for (slot, r) in d.refs.iter().enumerate() {
                let target = r.and_then(|(ti, _)| self.entries[ti as usize].addr);
                self.store.set_ref(addr, slot, target, env.local_clock_ns);
            }
        }

        // Phase 3: release absent entries.
        for index in absent {
            if let Some(addr) = self.entries[index as usize].addr.take() {
                let pin = self.entries[index as usize].pin;
                self.store.unpin(pin);
                self.addr_to_index.remove(&addr);
            }
            self.entries[index as usize].refcount = 0;
        }

        // Phase 4: recompute the deterministic allocator and refcounts.
        self.freed.clear();
        let mut max_live = 0u32;
        for (i, e) in self.entries.iter().enumerate() {
            if e.addr.is_some() {
                max_live = max_live.max(i as u32);
            }
        }
        self.next_fresh = self.next_fresh.max(max_live + 1);
        for i in 0..self.next_fresh {
            if self.entries[i as usize].addr.is_none() {
                self.freed.insert(i);
            }
        }
        for e in &mut self.entries {
            e.refcount = 0;
        }
        let addrs: Vec<u64> = self.entries.iter().filter_map(|e| e.addr).collect();
        for a in addrs {
            let refs = self.store.get(a).expect("pinned").refs;
            for r in refs.iter().flatten() {
                if let Some(&ti) = self.addr_to_index.get(r) {
                    self.entries[ti as usize].refcount += 1;
                }
            }
        }
    }

    fn n_objects(&self) -> u64 {
        N_OBJECTS
    }

    fn last_nondet_ns(&self) -> u64 {
        self.last_nondet
    }

    fn reset(&mut self, env: &mut ExecEnv<'_>) {
        self.store.reset(env.rng);
        self.entries = vec![RepEntry::default(); N_OBJECTS as usize];
        self.addr_to_index.clear();
        self.next_fresh = 0;
        self.freed.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn wrapper(seed: u64) -> (OodbWrapper, rand::rngs::StdRng) {
        let mut r = rand::rngs::StdRng::seed_from_u64(seed);
        (OodbWrapper::new(ObjStore::new(&mut r)), r)
    }

    fn exec(
        w: &mut OodbWrapper,
        mods: &mut ModifyLog,
        rng: &mut rand::rngs::StdRng,
        op: OodbOp,
        ts: u64,
        clock: u64,
    ) -> OodbReply {
        let mut env = ExecEnv::new(clock, rng);
        let bytes = w.execute(&op.to_bytes(), 1, &ts.to_be_bytes(), false, mods, &mut env);
        OodbReply::from_bytes(&bytes).expect("reply")
    }

    #[test]
    fn basic_lifecycle() {
        let (mut w, mut rng) = wrapper(1);
        let mut mods = ModifyLog::new();
        let h = exec(&mut w, &mut mods, &mut rng, OodbOp::New, 1, 10);
        let OodbReply::Handle(a) = h else { panic!("{h:?}") };
        assert_eq!(a, Oid { index: 0, gen: 1 });
        assert_eq!(
            exec(&mut w, &mut mods, &mut rng, OodbOp::Put { oid: a, field: 0, data: b"x".to_vec() }, 2, 11),
            OodbReply::Ok
        );
        assert_eq!(
            exec(&mut w, &mut mods, &mut rng, OodbOp::Get { oid: a, field: 0 }, 3, 12),
            OodbReply::Data(b"x".to_vec())
        );
        assert_eq!(
            exec(&mut w, &mut mods, &mut rng, OodbOp::Delete { oid: a }, 4, 13),
            OodbReply::Ok
        );
        assert_eq!(
            exec(&mut w, &mut mods, &mut rng, OodbOp::Get { oid: a, field: 0 }, 5, 14),
            OodbReply::Err(err::STALE)
        );
    }

    #[test]
    fn delete_refuses_referenced_objects() {
        let (mut w, mut rng) = wrapper(2);
        let mut mods = ModifyLog::new();
        let OodbReply::Handle(a) = exec(&mut w, &mut mods, &mut rng, OodbOp::New, 1, 1) else {
            panic!()
        };
        let OodbReply::Handle(b) = exec(&mut w, &mut mods, &mut rng, OodbOp::New, 2, 2) else {
            panic!()
        };
        exec(&mut w, &mut mods, &mut rng, OodbOp::SetRef { from: a, slot: 0, to: Some(b) }, 3, 3);
        assert_eq!(
            exec(&mut w, &mut mods, &mut rng, OodbOp::Delete { oid: b }, 4, 4),
            OodbReply::Err(err::IN_USE)
        );
        exec(&mut w, &mut mods, &mut rng, OodbOp::SetRef { from: a, slot: 0, to: None }, 5, 5);
        assert_eq!(
            exec(&mut w, &mut mods, &mut rng, OodbOp::Delete { oid: b }, 6, 6),
            OodbReply::Ok
        );
    }

    #[test]
    fn abstract_state_identical_across_divergent_stores() {
        // Same logical ops on two stores with different seeds; addresses
        // diverge and collections happen at different times, but every
        // abstract object matches.
        let (mut w1, mut rng1) = wrapper(10);
        let (mut w2, mut rng2) = wrapper(20);
        let mut m1 = ModifyLog::new();
        let mut m2 = ModifyLog::new();
        let mut handles = Vec::new();
        for i in 0..240u64 {
            let op = match i % 4 {
                0 | 3 => OodbOp::New,
                1 if !handles.is_empty() => OodbOp::Put {
                    oid: handles[(i as usize / 2) % handles.len()],
                    field: (i % 4) as u32,
                    data: vec![i as u8; 10],
                },
                2 if handles.len() >= 2 => OodbOp::SetRef {
                    from: handles[i as usize % handles.len()],
                    slot: (i % 4) as u32,
                    to: Some(handles[(i as usize + 1) % handles.len()]),
                },
                1 => OodbOp::Traverse {
                    root: handles.first().copied().unwrap_or(Oid { index: 0, gen: 1 }),
                    depth: 4,
                },
                _ => OodbOp::New,
            };
            let r1 = exec(&mut w1, &mut m1, &mut rng1, op.clone(), i, 1000 + i * 7);
            let r2 = exec(&mut w2, &mut m2, &mut rng2, op.clone(), i, 5000 + i * 13);
            assert_eq!(r1, r2, "divergent reply at step {i} for {op:?}");
            if let OodbReply::Handle(h) = r1 {
                handles.push(h);
            }
        }
        // The GC ran at least once somewhere (thresholds are < 64).
        assert!(w1.store().collections + w2.store().collections >= 1);
        for i in 0..N_OBJECTS {
            assert_eq!(w1.get_obj(i), w2.get_obj(i), "object {i}");
        }
    }

    #[test]
    fn put_objs_round_trips_state() {
        let (mut w1, mut rng1) = wrapper(30);
        let mut m1 = ModifyLog::new();
        let mut handles = Vec::new();
        for i in 0..40u64 {
            if let OodbReply::Handle(h) =
                exec(&mut w1, &mut m1, &mut rng1, OodbOp::New, i, i * 3)
            {
                exec(
                    &mut w1,
                    &mut m1,
                    &mut rng1,
                    OodbOp::Put { oid: h, field: 1, data: vec![i as u8; 32] },
                    100 + i,
                    i * 3 + 1,
                );
                handles.push(h);
            }
        }
        for pair in handles.windows(2) {
            exec(
                &mut w1,
                &mut m1,
                &mut rng1,
                OodbOp::SetRef { from: pair[0], slot: 0, to: Some(pair[1]) },
                200,
                999,
            );
        }
        let full: Vec<(u64, Option<Vec<u8>>)> =
            (0..N_OBJECTS).map(|i| (i, w1.get_obj(i))).collect();

        let (mut w2, mut rng2) = wrapper(40);
        {
            let mut env = ExecEnv::new(123, &mut rng2);
            w2.put_objs(&full, &mut env);
        }
        for (i, expected) in full {
            assert_eq!(w2.get_obj(i), expected, "object {i}");
        }
        // The installed wrapper keeps correct semantics (refcounts!).
        let mut m2 = ModifyLog::new();
        assert_eq!(
            exec(&mut w2, &mut m2, &mut rng2, OodbOp::Delete { oid: handles[1] }, 900, 1),
            OodbReply::Err(err::IN_USE),
            "refcounts must be rebuilt after install"
        );
    }

    #[test]
    fn traverse_counts_reachable_objects() {
        let (mut w, mut rng) = wrapper(50);
        let mut mods = ModifyLog::new();
        let mut hs = Vec::new();
        for i in 0..5u64 {
            if let OodbReply::Handle(h) = exec(&mut w, &mut mods, &mut rng, OodbOp::New, i, i) {
                hs.push(h);
            }
        }
        // Chain 0 -> 1 -> 2; 3 and 4 unreachable from 0.
        exec(&mut w, &mut mods, &mut rng, OodbOp::SetRef { from: hs[0], slot: 0, to: Some(hs[1]) }, 10, 10);
        exec(&mut w, &mut mods, &mut rng, OodbOp::SetRef { from: hs[1], slot: 0, to: Some(hs[2]) }, 11, 11);
        assert_eq!(
            exec(&mut w, &mut mods, &mut rng, OodbOp::Traverse { root: hs[0], depth: 10 }, 12, 12),
            OodbReply::Count(3)
        );
        assert_eq!(
            exec(&mut w, &mut mods, &mut rng, OodbOp::Traverse { root: hs[0], depth: 1 }, 13, 13),
            OodbReply::Count(1)
        );
    }
}
