//! Edge-case unit tests for the OODB wrapper: error codes, cycles and
//! self-references, oid generation reuse, traversal bounds, GC survival
//! under live references, and wire-format robustness for ops and replies.

use base::{ModifyLog, Wrapper};
use base_oodb::{err, Oid, OodbOp, OodbReply, OodbWrapper};
use base_pbft::ExecEnv;
use rand::rngs::StdRng;
use rand::SeedableRng;

struct W {
    w: OodbWrapper,
    rng: StdRng,
    mods: ModifyLog,
    ts: u64,
}

impl W {
    fn new(seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let w = OodbWrapper::new(base_oodb::ObjStore::new(&mut rng));
        Self { w, rng, mods: ModifyLog::new(), ts: 0 }
    }

    fn exec(&mut self, op: OodbOp) -> OodbReply {
        self.ts += 1;
        let mut env = ExecEnv::new(self.ts * 7, &mut self.rng);
        let bytes = self.w.execute(
            &op.to_bytes(),
            1,
            &self.ts.to_be_bytes(),
            false,
            &mut self.mods,
            &mut env,
        );
        OodbReply::from_bytes(&bytes).expect("reply decodes")
    }

    fn alloc(&mut self) -> Oid {
        match self.exec(OodbOp::New) {
            OodbReply::Handle(o) => o,
            other => panic!("alloc failed: {other:?}"),
        }
    }
}

#[test]
fn field_and_slot_range_errors() {
    let mut w = W::new(1);
    let a = w.alloc();
    assert_eq!(
        w.exec(OodbOp::Put { oid: a, field: base_oodb::FIELDS as u32, data: vec![1] }),
        OodbReply::Err(err::RANGE)
    );
    assert_eq!(
        w.exec(OodbOp::Get { oid: a, field: 99 }),
        OodbReply::Err(err::RANGE)
    );
    assert_eq!(
        w.exec(OodbOp::SetRef { from: a, slot: base_oodb::REF_SLOTS as u32, to: None }),
        OodbReply::Err(err::RANGE)
    );
    assert_eq!(w.exec(OodbOp::GetRef { from: a, slot: 77 }), OodbReply::Err(err::RANGE));
}

#[test]
fn stale_generation_is_rejected_after_index_reuse() {
    let mut w = W::new(2);
    let a = w.alloc();
    assert_eq!(w.exec(OodbOp::Delete { oid: a }), OodbReply::Ok);
    // The lowest free index is reused with a bumped generation.
    let b = w.alloc();
    assert_eq!(b.index, a.index, "allocator reuses the lowest index");
    assert_ne!(b.gen, a.gen, "generation must be bumped on reuse");
    assert_eq!(
        w.exec(OodbOp::Get { oid: a, field: 0 }),
        OodbReply::Err(err::STALE),
        "the old oid must dangle"
    );
    assert_eq!(w.exec(OodbOp::Get { oid: b, field: 0 }), OodbReply::Data(Vec::new()));
}

#[test]
fn self_reference_pins_and_releases() {
    let mut w = W::new(3);
    let a = w.alloc();
    assert_eq!(w.exec(OodbOp::SetRef { from: a, slot: 0, to: Some(a) }), OodbReply::Ok);
    assert_eq!(
        w.exec(OodbOp::Delete { oid: a }),
        OodbReply::Err(err::IN_USE),
        "a self-referenced object is still referenced"
    );
    assert_eq!(w.exec(OodbOp::SetRef { from: a, slot: 0, to: None }), OodbReply::Ok);
    assert_eq!(w.exec(OodbOp::Delete { oid: a }), OodbReply::Ok);
}

#[test]
fn reference_cycles_traverse_without_looping() {
    let mut w = W::new(4);
    let a = w.alloc();
    let b = w.alloc();
    let c = w.alloc();
    w.exec(OodbOp::SetRef { from: a, slot: 0, to: Some(b) });
    w.exec(OodbOp::SetRef { from: b, slot: 0, to: Some(c) });
    w.exec(OodbOp::SetRef { from: c, slot: 0, to: Some(a) });
    // A cycle of three: traversal must count each distinct object once.
    assert_eq!(w.exec(OodbOp::Traverse { root: a, depth: 100 }), OodbReply::Count(3));
    // Depth counts levels: 0 visits nothing, 1 visits only the root.
    assert_eq!(w.exec(OodbOp::Traverse { root: a, depth: 0 }), OodbReply::Count(0));
    assert_eq!(w.exec(OodbOp::Traverse { root: a, depth: 1 }), OodbReply::Count(1));
    // Diamond: a second path to the same node is not double-counted.
    w.exec(OodbOp::SetRef { from: a, slot: 1, to: Some(c) });
    assert_eq!(w.exec(OodbOp::Traverse { root: a, depth: 100 }), OodbReply::Count(3));
}

#[test]
fn overwriting_a_ref_slot_moves_the_refcount() {
    let mut w = W::new(5);
    let a = w.alloc();
    let b = w.alloc();
    let c = w.alloc();
    w.exec(OodbOp::SetRef { from: a, slot: 0, to: Some(b) });
    // Redirect the same slot from b to c: b's refcount must drop to zero.
    w.exec(OodbOp::SetRef { from: a, slot: 0, to: Some(c) });
    assert_eq!(w.exec(OodbOp::Delete { oid: b }), OodbReply::Ok, "b is unreferenced again");
    assert_eq!(w.exec(OodbOp::Delete { oid: c }), OodbReply::Err(err::IN_USE));
}

#[test]
fn deleted_objects_release_their_outgoing_references() {
    let mut w = W::new(6);
    let a = w.alloc();
    let b = w.alloc();
    w.exec(OodbOp::SetRef { from: a, slot: 2, to: Some(b) });
    assert_eq!(w.exec(OodbOp::Delete { oid: b }), OodbReply::Err(err::IN_USE));
    // Deleting the referrer must release its outgoing edge.
    assert_eq!(w.exec(OodbOp::Delete { oid: a }), OodbReply::Ok);
    assert_eq!(w.exec(OodbOp::Delete { oid: b }), OodbReply::Ok);
}

#[test]
fn data_survives_garbage_collections() {
    // Enough churn to trigger several relocating collections; the live
    // object's contents and identity must survive every move.
    let mut w = W::new(7);
    let keeper = w.alloc();
    w.exec(OodbOp::Put { oid: keeper, field: 1, data: b"survivor".to_vec() });
    for _ in 0..400 {
        let t = w.alloc();
        w.exec(OodbOp::Put { oid: t, field: 0, data: vec![0xaa; 64] });
        w.exec(OodbOp::Delete { oid: t });
    }
    assert_eq!(
        w.exec(OodbOp::Get { oid: keeper, field: 1 }),
        OodbReply::Data(b"survivor".to_vec())
    );
    assert_eq!(w.w.allocated(), 1);
}

#[test]
fn abstract_objects_are_stable_across_gc() {
    // get_obj output must not depend on concrete addresses (which GC
    // changes): snapshot, churn through collections, snapshot again.
    let mut w = W::new(8);
    let a = w.alloc();
    let b = w.alloc();
    w.exec(OodbOp::Put { oid: a, field: 0, data: b"alpha".to_vec() });
    w.exec(OodbOp::SetRef { from: a, slot: 0, to: Some(b) });
    let before_a = w.w.get_obj(a.index as u64);
    let before_b = w.w.get_obj(b.index as u64);
    for _ in 0..300 {
        let t = w.alloc();
        w.exec(OodbOp::Delete { oid: t });
    }
    assert_eq!(w.w.get_obj(a.index as u64), before_a);
    assert_eq!(w.w.get_obj(b.index as u64), before_b);
}

#[test]
fn malformed_op_bytes_reply_inval() {
    let mut w = W::new(9);
    let mut env = ExecEnv::new(1, &mut w.rng);
    let bytes = w.w.execute(b"\xff\xff\xff\xff", 1, &1u64.to_be_bytes(), false, &mut w.mods, &mut env);
    assert_eq!(OodbReply::from_bytes(&bytes), Some(OodbReply::Err(err::INVAL)));
}

#[test]
fn op_and_reply_wire_roundtrip() {
    let oid = Oid { index: 7, gen: 3 };
    let ops = [
        OodbOp::New,
        OodbOp::Put { oid, field: 2, data: b"payload".to_vec() },
        OodbOp::Get { oid, field: 0 },
        OodbOp::SetRef { from: oid, slot: 1, to: Some(Oid { index: 9, gen: 1 }) },
        OodbOp::SetRef { from: oid, slot: 1, to: None },
        OodbOp::GetRef { from: oid, slot: 3 },
        OodbOp::Delete { oid },
        OodbOp::Traverse { root: oid, depth: 5 },
    ];
    for op in ops {
        assert_eq!(OodbOp::from_bytes(&op.to_bytes()), Some(op.clone()), "{op:?}");
    }
    let replies = [
        OodbReply::Handle(oid),
        OodbReply::Data(b"abc".to_vec()),
        OodbReply::Ref(Some(oid)),
        OodbReply::Ref(None),
        OodbReply::Count(42),
        OodbReply::Ok,
        OodbReply::Err(err::STALE),
    ];
    for r in replies {
        assert_eq!(OodbReply::from_bytes(&r.to_bytes()), Some(r.clone()), "{r:?}");
    }
    // Garbage never decodes to Some.
    assert_eq!(OodbOp::from_bytes(b""), None);
    assert_eq!(OodbReply::from_bytes(b"\x01\x02"), None);
}
