//! Property tests: the OODB wrapper produces identical abstract behaviour
//! across differently-seeded (and therefore concretely divergent) stores,
//! for arbitrary operation schedules — including schedules that trigger
//! the relocating collector at different moments on each instance.

use base::{ModifyLog, Wrapper};
use base_oodb::wrapper::{err, Oid, OodbOp, OodbReply};
use base_oodb::{ObjStore, OodbWrapper, N_OBJECTS};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

#[derive(Debug, Clone)]
enum Intent {
    New,
    Put { obj: u8, field: u8, data: Vec<u8> },
    Get { obj: u8, field: u8 },
    SetRef { from: u8, slot: u8, to: Option<u8> },
    GetRef { from: u8, slot: u8 },
    Delete { obj: u8 },
    Traverse { root: u8, depth: u8 },
}

fn intent_strategy() -> impl Strategy<Value = Intent> {
    prop_oneof![
        3 => Just(Intent::New),
        2 => (any::<u8>(), any::<u8>(), proptest::collection::vec(any::<u8>(), 0..40))
            .prop_map(|(obj, field, data)| Intent::Put { obj, field, data }),
        1 => (any::<u8>(), any::<u8>()).prop_map(|(obj, field)| Intent::Get { obj, field }),
        2 => (any::<u8>(), any::<u8>(), proptest::option::of(any::<u8>()))
            .prop_map(|(from, slot, to)| Intent::SetRef { from, slot, to }),
        1 => (any::<u8>(), any::<u8>()).prop_map(|(from, slot)| Intent::GetRef { from, slot }),
        1 => any::<u8>().prop_map(|obj| Intent::Delete { obj }),
        1 => (any::<u8>(), any::<u8>()).prop_map(|(root, depth)| Intent::Traverse { root, depth }),
    ]
}

struct World {
    w: OodbWrapper,
    rng: StdRng,
    clock: u64,
}

impl World {
    fn new(seed: u64, skew: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let w = OodbWrapper::new(ObjStore::new(&mut rng));
        Self { w, rng, clock: skew }
    }

    fn exec(&mut self, op: &OodbOp, ts: u64) -> OodbReply {
        self.clock += 313;
        let mut mods = ModifyLog::new();
        let mut env = base_pbft::ExecEnv::new(self.clock, &mut self.rng);
        let bytes =
            self.w.execute(&op.to_bytes(), 1, &ts.to_be_bytes(), false, &mut mods, &mut env);
        OodbReply::from_bytes(&bytes).expect("well-formed reply")
    }
}

/// Resolves an intent against the live handle set.
fn op_of(intent: &Intent, handles: &[Oid]) -> OodbOp {
    let pick = |sel: u8| {
        if handles.is_empty() {
            Oid { index: 9, gen: 1 } // Probably stale.
        } else {
            handles[sel as usize % handles.len()]
        }
    };
    match intent {
        Intent::New => OodbOp::New,
        Intent::Put { obj, field, data } => {
            OodbOp::Put { oid: pick(*obj), field: u32::from(*field % 5), data: data.clone() }
        }
        Intent::Get { obj, field } => {
            OodbOp::Get { oid: pick(*obj), field: u32::from(*field % 5) }
        }
        Intent::SetRef { from, slot, to } => OodbOp::SetRef {
            from: pick(*from),
            slot: u32::from(*slot % 5),
            to: to.map(pick),
        },
        Intent::GetRef { from, slot } => {
            OodbOp::GetRef { from: pick(*from), slot: u32::from(*slot % 5) }
        }
        Intent::Delete { obj } => OodbOp::Delete { oid: pick(*obj) },
        Intent::Traverse { root, depth } => {
            OodbOp::Traverse { root: pick(*root), depth: u32::from(*depth % 16) }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn divergent_stores_agree_abstractly(
        intents in proptest::collection::vec(intent_strategy(), 1..120),
        seeds: (u64, u64),
    ) {
        let mut a = World::new(seeds.0, 0);
        let mut b = World::new(seeds.1, 5_000_000);
        let mut handles: Vec<Oid> = Vec::new();

        for (i, intent) in intents.iter().enumerate() {
            let op = op_of(intent, &handles);
            let ts = (i as u64 + 1) * 7;
            let ra = a.exec(&op, ts);
            let rb = b.exec(&op, ts);
            prop_assert_eq!(&ra, &rb, "diverged on {:?}", &op);
            match (&op, &ra) {
                (OodbOp::New, OodbReply::Handle(h)) => handles.push(*h),
                (OodbOp::Delete { oid }, OodbReply::Ok) => handles.retain(|h| h != oid),
                _ => {}
            }
        }

        // Abstract objects are identical everywhere, even though the
        // concrete addresses (and collection counts) differ.
        for i in 0..N_OBJECTS.min(300) {
            prop_assert_eq!(a.w.get_obj(i), b.w.get_obj(i), "object {} diverged", i);
        }

        // And the state transfers into a third fresh store.
        let full: Vec<(u64, Option<Vec<u8>>)> =
            (0..N_OBJECTS).map(|i| (i, a.w.get_obj(i))).collect();
        let mut c = World::new(seeds.0 ^ seeds.1, 777);
        {
            let mut env = base_pbft::ExecEnv::new(1, &mut c.rng);
            c.w.put_objs(&full, &mut env);
        }
        for (i, expected) in full.iter().take(300) {
            prop_assert_eq!(&c.w.get_obj(*i), expected, "transfer mismatch at {}", i);
        }
        // Refcount semantics survived the transfer: deleting a referenced
        // object is still refused.
        for h in &handles {
            let del_a = a.exec(&OodbOp::Delete { oid: *h }, 100_000);
            let del_c = c.exec(&OodbOp::Delete { oid: *h }, 100_000);
            prop_assert_eq!(&del_a, &del_c, "post-transfer delete of {:?} diverged", h);
            // Only check the first few to bound runtime.
            if h.index > 8 {
                break;
            }
        }
        let _ = err::STALE;
    }
}
