//! Chaos campaign over the BASE-replicated OODB: the same non-deterministic
//! implementation on every replica, divergent concrete heaps, and an
//! auditor holding the abstract state to byte-identical agreement while
//! crashes, partitions, Byzantine flips and latent corruption compose.

use base_oodb::chaos::OodbChaosHarness;
use base_pbft::chaos::{APP_CORRUPT_STATE, APP_RECOVER};
use base_simnet::chaos::{run_campaign, run_one, FaultSchedule};
use base_simnet::tracediff::{divergence_report, first_divergence};
use base_simnet::{NodeId, SimDuration, SimTime};

/// The trace-diff lab on the OODB testbed: a clean run and a same-seed run
/// with an injected corruption+recovery produce protocol traces whose
/// first divergence names the recovery's impact — deterministically.
#[test]
fn tracediff_localizes_fault_impact() {
    let mut h = OodbChaosHarness::new(4);
    let clean = run_one(&mut h, 23, &FaultSchedule::new()).0;
    let mut schedule = FaultSchedule::new();
    schedule
        .app(SimTime::from_millis(1500), NodeId(2), APP_CORRUPT_STATE, 5)
        .app(SimTime::from_millis(2500), NodeId(2), APP_RECOVER, 0);
    let faulted = run_one(&mut h, 23, &schedule).0;

    let d = first_divergence(&clean.events, &faulted.events).expect("fault must show in trace");
    let report = divergence_report(&clean.events, &faulted.events, 2, "clean", "faulted");
    assert!(
        report.contains(&format!("first divergence at event index {}", d.index)),
        "{report}"
    );
    // The injected fault targets node 2; its recovery must appear in the
    // windowed context.
    assert!(report.contains("recovery_started"), "{report}");

    // Same seeds replayed give the identical report, byte for byte.
    let clean2 = run_one(&mut h, 23, &FaultSchedule::new()).0;
    let faulted2 = run_one(&mut h, 23, &schedule).0;
    assert_eq!(report, divergence_report(&clean2.events, &faulted2.events, 2, "clean", "faulted"));
}

#[test]
fn fault_free_oodb_run_passes_audit() {
    let mut h = OodbChaosHarness::new(4);
    let (outcome, verdict) = run_one(&mut h, 17, &FaultSchedule::new());
    assert_eq!(verdict, Ok(()), "trace:\n{}", outcome.trace.join("\n"));
}

#[test]
fn corrupted_heap_is_repaired_through_abstraction() {
    let mut h = OodbChaosHarness::new(4);
    let mut schedule = FaultSchedule::new();
    schedule
        .app(SimTime::from_millis(1500), NodeId(2), APP_CORRUPT_STATE, 5)
        .app(SimTime::from_millis(2500), NodeId(2), APP_RECOVER, 0);
    let (outcome, verdict) = run_one(&mut h, 23, &schedule);
    assert_eq!(verdict, Ok(()), "trace:\n{}", outcome.trace.join("\n"));
    assert!(
        outcome.coverage.recoveries_completed > 0,
        "recovery must complete: {}",
        outcome.coverage
    );
}

#[test]
fn oodb_campaign_passes_audit_with_coverage() {
    let mut h = OodbChaosHarness::new(4);
    let cfg = h.gen_config(6, SimDuration::from_secs(8));
    let report = run_campaign(&mut h, &cfg, 200..214);
    if let Some(f) = report.failures.first() {
        panic!("oodb campaign failed:\n{f}");
    }
    println!("{}", report.summary());

    // The campaign must actually exercise the paper's mechanisms on the
    // OODB — at least one forced view change and one completed state
    // transfer across the campaign, not merely scheduled faults.
    let cov = report.coverage;
    assert!(cov.view_changes_started > 0, "campaign forced no view changes:\n{cov}");
    assert!(
        cov.state_transfers_completed > 0,
        "campaign completed no state transfers:\n{cov}"
    );

    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../../target/chaos-coverage");
    if std::fs::create_dir_all(&dir).is_ok() {
        let _ = std::fs::write(dir.join("oodb_mixed.json"), report.coverage_json());
    }
}
