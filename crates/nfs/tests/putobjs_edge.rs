//! Edge cases of the inverse abstraction function (§3.3): hard links
//! across directories, generation reuse (case 2 of the paper's algorithm),
//! deep hierarchies built entirely through `put_objs`, and idempotence.

use base::{ModifyLog, Wrapper};
use base_nfs::ops::{NfsOp, NfsReply};
use base_nfs::spec::Oid;
use base_nfs::{FlatFs, InodeFs, LogFs, NfsServer, NfsWrapper};
use base_pbft::ExecEnv;
use rand::rngs::StdRng;
use rand::SeedableRng;

const CAP: u64 = 256;

struct W<S: NfsServer> {
    w: NfsWrapper<S>,
    rng: StdRng,
    steps: u64,
}

impl<S: NfsServer> W<S> {
    fn exec(&mut self, op: NfsOp) -> NfsReply {
        self.steps += 1;
        let mut mods = ModifyLog::new();
        let mut env = ExecEnv::new(self.steps * 131, &mut self.rng);
        let bytes = self.w.execute(
            &op.to_bytes(),
            1,
            &(self.steps * 10).to_be_bytes(),
            false,
            &mut mods,
            &mut env,
        );
        NfsReply::from_bytes(&bytes).expect("reply")
    }

    fn full_state(&mut self) -> Vec<(u64, Option<Vec<u8>>)> {
        (0..CAP).map(|i| (i, self.w.get_obj(i))).collect()
    }

    fn put(&mut self, objs: &[(u64, Option<Vec<u8>>)]) {
        let mut env = ExecEnv::new(999, &mut self.rng);
        self.w.put_objs(objs, &mut env);
    }
}

fn inode() -> W<InodeFs> {
    let mut r = StdRng::seed_from_u64(1);
    W { w: NfsWrapper::with_capacity(InodeFs::new(1, &mut r), CAP), rng: r, steps: 0 }
}

fn logfs() -> W<LogFs> {
    let mut r = StdRng::seed_from_u64(2);
    W { w: NfsWrapper::with_capacity(LogFs::new(2, &mut r), CAP), rng: r, steps: 0 }
}

fn flatfs() -> W<FlatFs> {
    let mut r = StdRng::seed_from_u64(3);
    W { w: NfsWrapper::with_capacity(FlatFs::new(3, &mut r), CAP), rng: r, steps: 0 }
}

fn assert_states_equal<A: NfsServer, B: NfsServer>(a: &mut W<A>, b: &mut W<B>, label: &str) {
    for i in 0..CAP {
        assert_eq!(a.w.get_obj(i), b.w.get_obj(i), "{label}: object {i}");
    }
}

#[test]
fn hard_links_across_directories_transfer() {
    let mut a = inode();
    let root = Oid::ROOT;
    a.exec(NfsOp::Mkdir { dir: root, name: "d1".into(), mode: 0o755 });
    a.exec(NfsOp::Mkdir { dir: root, name: "d2".into(), mode: 0o755 });
    let d1 = Oid { index: 1, gen: 1 };
    let d2 = Oid { index: 2, gen: 1 };
    let f = Oid { index: 3, gen: 1 };
    a.exec(NfsOp::Create { dir: d1, name: "orig".into(), mode: 0o644 });
    a.exec(NfsOp::Write { fh: f, offset: 0, data: b"linked body".to_vec() });
    a.exec(NfsOp::Link { fh: f, dir: d2, name: "alias".into() });

    // Transfer into a fresh LogFs. Both directory entries must point at
    // ONE object with nlink 2.
    let full = a.full_state();
    let mut b = logfs();
    b.put(&full);
    assert_states_equal(&mut a, &mut b, "after hard-link transfer");

    // The link identity is real: writing through one name shows through
    // the other on the target implementation.
    match b.exec(NfsOp::Write { fh: f, offset: 0, data: b"UPDATED body".to_vec() }) {
        NfsReply::Attr(attr) => assert_eq!(attr.nlink, 2, "link count survives transfer"),
        other => panic!("unexpected {other:?}"),
    }
    let r1 = b.exec(NfsOp::Lookup { dir: d1, name: "orig".into() });
    let r2 = b.exec(NfsOp::Lookup { dir: d2, name: "alias".into() });
    match (&r1, &r2) {
        (NfsReply::Handle { fh: h1, .. }, NfsReply::Handle { fh: h2, .. }) => {
            assert_eq!(h1, h2, "both names resolve to the same oid");
        }
        other => panic!("unexpected {other:?}"),
    }
    assert_eq!(
        b.exec(NfsOp::Read { fh: f, offset: 0, count: 64 }),
        NfsReply::Data(b"UPDATED body".to_vec())
    );
}

#[test]
fn generation_replacement_is_case_two() {
    // Build a state where index 1 holds generation-1 "old.txt"; snapshot
    // it into B. Then A deletes it and creates a new file that reuses
    // index 1 with generation 2. The delta install at B must detach the
    // old concrete object and create a fresh one (paper case 2 → 3).
    let mut a = inode();
    let root = Oid::ROOT;
    a.exec(NfsOp::Create { dir: root, name: "old.txt".into(), mode: 0o644 });
    a.exec(NfsOp::Write { fh: Oid { index: 1, gen: 1 }, offset: 0, data: b"old".to_vec() });
    let before = a.full_state();

    let mut b = flatfs();
    b.put(&before);
    assert_states_equal(&mut a, &mut b, "baseline");

    a.exec(NfsOp::Remove { dir: root, name: "old.txt".into() });
    a.exec(NfsOp::Create { dir: root, name: "new.txt".into(), mode: 0o600 });
    a.exec(NfsOp::Write { fh: Oid { index: 1, gen: 2 }, offset: 0, data: b"new".to_vec() });

    // Delta: only the objects that changed.
    let after = a.full_state();
    let delta: Vec<(u64, Option<Vec<u8>>)> = after
        .iter()
        .zip(before.iter())
        .filter(|(n, o)| n.1 != o.1)
        .map(|(n, _)| n.clone())
        .collect();
    b.put(&delta);
    assert_states_equal(&mut a, &mut b, "after generation reuse");

    // The stale generation-1 handle fails, the new one works.
    assert_eq!(
        b.exec(NfsOp::Getattr { fh: Oid { index: 1, gen: 1 } }),
        NfsReply::Error(base_nfs::NfsStatus::Stale)
    );
    assert_eq!(
        b.exec(NfsOp::Read { fh: Oid { index: 1, gen: 2 }, offset: 0, count: 16 }),
        NfsReply::Data(b"new".to_vec())
    );
}

#[test]
fn deep_hierarchy_from_scratch() {
    let mut a = inode();
    let root = Oid::ROOT;
    // /a/b/c/d with files sprinkled at each level.
    let mut parent = root;
    for (i, name) in ["a", "b", "c", "d"].iter().enumerate() {
        a.exec(NfsOp::Mkdir { dir: parent, name: (*name).into(), mode: 0o755 });
        let dir = Oid { index: (2 * i + 1) as u32, gen: 1 };
        a.exec(NfsOp::Create { dir, name: format!("f{i}"), mode: 0o644 });
        a.exec(NfsOp::Write {
            fh: Oid { index: (2 * i + 2) as u32, gen: 1 },
            offset: 0,
            data: format!("level-{i}").into_bytes(),
        });
        parent = dir;
    }
    let full = a.full_state();

    // Everything materializes in a fresh implementation of another family.
    let mut b = logfs();
    b.put(&full);
    assert_states_equal(&mut a, &mut b, "deep hierarchy");

    // Idempotence: re-installing the same state is a no-op.
    let snapshot = b.full_state();
    b.put(&full);
    assert_eq!(b.full_state(), snapshot, "put_objs must be idempotent");

    // Reads work, and mutate only the abstract atime; re-installing the
    // checkpoint rolls that back too (installs are authoritative).
    assert_eq!(
        b.exec(NfsOp::Read { fh: Oid { index: 8, gen: 1 }, offset: 0, count: 32 }),
        NfsReply::Data(b"level-3".to_vec())
    );
    b.put(&full);
    assert_states_equal(&mut a, &mut b, "after read + reinstall");
}

#[test]
fn symlink_target_change_recreates() {
    // Symlink targets cannot be rewritten through NFS; a target change in
    // the abstract state forces the recreate path.
    let mut a = inode();
    let root = Oid::ROOT;
    a.exec(NfsOp::Symlink { dir: root, name: "ptr".into(), target: "/first".into() });
    let before = a.full_state();
    let mut b = flatfs();
    b.put(&before);

    // Manufacture an abstract state whose symlink points elsewhere but
    // keeps the same oid (as a same-generation content change would after
    // a hypothetical retarget op).
    a.exec(NfsOp::Remove { dir: root, name: "ptr".into() });
    a.exec(NfsOp::Symlink { dir: root, name: "ptr".into(), target: "/second".into() });
    let after = a.full_state();
    let delta: Vec<(u64, Option<Vec<u8>>)> = after
        .iter()
        .zip(before.iter())
        .filter(|(n, o)| n.1 != o.1)
        .map(|(n, _)| n.clone())
        .collect();
    b.put(&delta);
    assert_states_equal(&mut a, &mut b, "after retarget");
    let oid = Oid { index: 1, gen: 2 };
    assert_eq!(b.exec(NfsOp::Readlink { fh: oid }), NfsReply::Target("/second".into()));
}
