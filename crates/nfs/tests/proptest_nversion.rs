//! Property test: arbitrary operation schedules keep the three wrapped
//! implementations in perfect abstract agreement, and `put_objs` transfers
//! arbitrary reachable states between implementations.

use base::{ModifyLog, Wrapper};
use base_nfs::ops::{NfsOp, NfsReply, SetAttrs};
use base_nfs::spec::Oid;
use base_nfs::{BtreeFs, FlatFs, InodeFs, LogFs, NfsServer, NfsWrapper};
use base_pbft::ExecEnv;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

const CAP: u64 = 256;

/// A generated intent, resolved against live handles by the interpreter.
#[derive(Debug, Clone)]
enum Intent {
    CreateFile { dir: u8, name: u8 },
    Mkdir { dir: u8, name: u8 },
    Symlink { dir: u8, name: u8 },
    Write { file: u8, data: Vec<u8>, offset: u16 },
    Truncate { file: u8, size: u16 },
    Read { file: u8 },
    RemoveName { dir: u8, name: u8 },
    RmdirName { dir: u8, name: u8 },
    RenameFile { dir: u8, name: u8, to_dir: u8, to_name: u8 },
    Hardlink { file: u8, dir: u8, name: u8 },
    Readdir { dir: u8 },
    Getattr { any: u8 },
}

fn intent_strategy() -> impl Strategy<Value = Intent> {
    prop_oneof![
        (any::<u8>(), any::<u8>()).prop_map(|(dir, name)| Intent::CreateFile { dir, name }),
        (any::<u8>(), any::<u8>()).prop_map(|(dir, name)| Intent::Mkdir { dir, name }),
        (any::<u8>(), any::<u8>()).prop_map(|(dir, name)| Intent::Symlink { dir, name }),
        (any::<u8>(), proptest::collection::vec(any::<u8>(), 0..200), any::<u16>())
            .prop_map(|(file, data, offset)| Intent::Write { file, data, offset }),
        (any::<u8>(), any::<u16>()).prop_map(|(file, size)| Intent::Truncate { file, size }),
        any::<u8>().prop_map(|file| Intent::Read { file }),
        (any::<u8>(), any::<u8>()).prop_map(|(dir, name)| Intent::RemoveName { dir, name }),
        (any::<u8>(), any::<u8>()).prop_map(|(dir, name)| Intent::RmdirName { dir, name }),
        (any::<u8>(), any::<u8>(), any::<u8>(), any::<u8>())
            .prop_map(|(dir, name, to_dir, to_name)| Intent::RenameFile { dir, name, to_dir, to_name }),
        (any::<u8>(), any::<u8>(), any::<u8>())
            .prop_map(|(file, dir, name)| Intent::Hardlink { file, dir, name }),
        any::<u8>().prop_map(|dir| Intent::Readdir { dir }),
        any::<u8>().prop_map(|any| Intent::Getattr { any }),
    ]
}

/// Tracks live handles so intents resolve to mostly-valid operations (error
/// paths still occur via name collisions and stale generations).
#[derive(Default)]
struct Model {
    dirs: Vec<Oid>,
    files: Vec<Oid>,
}

impl Model {
    fn dir(&self, sel: u8) -> Oid {
        if self.dirs.is_empty() {
            Oid::ROOT
        } else {
            self.dirs[sel as usize % self.dirs.len()]
        }
    }

    fn file(&self, sel: u8) -> Oid {
        if self.files.is_empty() {
            Oid { index: 7, gen: 1 } // Probably stale: exercises errors.
        } else {
            self.files[sel as usize % self.files.len()]
        }
    }

    fn name(sel: u8) -> String {
        format!("n{}", sel % 24)
    }

    /// Converts one intent into a concrete NfsOp.
    fn op_of(&self, intent: &Intent) -> NfsOp {
        match intent {
            Intent::CreateFile { dir, name } => {
                NfsOp::Create { dir: self.dir(*dir), name: Self::name(*name), mode: 0o644 }
            }
            Intent::Mkdir { dir, name } => {
                NfsOp::Mkdir { dir: self.dir(*dir), name: Self::name(*name), mode: 0o755 }
            }
            Intent::Symlink { dir, name } => NfsOp::Symlink {
                dir: self.dir(*dir),
                name: Self::name(*name),
                target: format!("/t/{}", name),
            },
            Intent::Write { file, data, offset } => NfsOp::Write {
                fh: self.file(*file),
                offset: u64::from(*offset % 4096),
                data: data.clone(),
            },
            Intent::Truncate { file, size } => NfsOp::Setattr {
                fh: self.file(*file),
                attrs: SetAttrs { size: Some(u64::from(*size % 8192)), ..Default::default() },
            },
            Intent::Read { file } => NfsOp::Read { fh: self.file(*file), offset: 0, count: 4096 },
            Intent::RemoveName { dir, name } => {
                NfsOp::Remove { dir: self.dir(*dir), name: Self::name(*name) }
            }
            Intent::RmdirName { dir, name } => {
                NfsOp::Rmdir { dir: self.dir(*dir), name: Self::name(*name) }
            }
            Intent::RenameFile { dir, name, to_dir, to_name } => NfsOp::Rename {
                from_dir: self.dir(*dir),
                from_name: Self::name(*name),
                to_dir: self.dir(*to_dir),
                to_name: Self::name(*to_name),
            },
            Intent::Hardlink { file, dir, name } => NfsOp::Link {
                fh: self.file(*file),
                dir: self.dir(*dir),
                name: Self::name(*name),
            },
            Intent::Readdir { dir } => NfsOp::Readdir { dir: self.dir(*dir) },
            Intent::Getattr { any } => NfsOp::Getattr {
                fh: if any % 2 == 0 { self.dir(*any) } else { self.file(*any) },
            },
        }
    }

    /// Folds a reply back into the model.
    fn observe(&mut self, op: &NfsOp, reply: &NfsReply) {
        match (op, reply) {
            (NfsOp::Create { .. }, NfsReply::Handle { fh, .. })
            | (NfsOp::Symlink { .. }, NfsReply::Handle { fh, .. }) => self.files.push(*fh),
            (NfsOp::Mkdir { .. }, NfsReply::Handle { fh, .. }) => self.dirs.push(*fh),
            (NfsOp::Remove { .. }, NfsReply::Ok)
            | (NfsOp::Rmdir { .. }, NfsReply::Ok)
            | (NfsOp::Rename { .. }, NfsReply::Ok) => {
                // Conservatively drop nothing: stale handles are legal and
                // must fail identically everywhere.
            }
            _ => {}
        }
    }
}

/// One wrapper with a private rng/clock world.
struct Impl<S: NfsServer> {
    w: NfsWrapper<S>,
    mods: ModifyLog,
    rng: StdRng,
    skew: u64,
    steps: u64,
}

impl<S: NfsServer> Impl<S> {
    fn exec(&mut self, op: &NfsOp, ts: u64) -> NfsReply {
        self.steps += 1;
        let clock = self.skew + self.steps * 997;
        let mut env = ExecEnv::new(clock, &mut self.rng);
        let bytes =
            self.w.execute(&op.to_bytes(), 1, &ts.to_be_bytes(), false, &mut self.mods, &mut env);
        NfsReply::from_bytes(&bytes).expect("well-formed reply")
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn random_schedules_never_diverge(
        intents in proptest::collection::vec(intent_strategy(), 1..80),
        seeds: (u64, u64, u64),
    ) {
        let mut r1 = StdRng::seed_from_u64(seeds.0);
        let mut r2 = StdRng::seed_from_u64(seeds.1);
        let mut r3 = StdRng::seed_from_u64(seeds.2);
        let mut a = Impl {
            w: NfsWrapper::with_capacity(InodeFs::new(1, &mut r1), CAP),
            mods: ModifyLog::new(),
            rng: StdRng::seed_from_u64(seeds.0 ^ 1),
            skew: 0,
            steps: 0,
        };
        let mut b = Impl {
            w: NfsWrapper::with_capacity(LogFs::new(2, &mut r2), CAP),
            mods: ModifyLog::new(),
            rng: StdRng::seed_from_u64(seeds.1 ^ 2),
            skew: 1_000_000,
            steps: 0,
        };
        let mut c = Impl {
            w: NfsWrapper::with_capacity(BtreeFs::new(3, &mut r3), CAP),
            mods: ModifyLog::new(),
            rng: StdRng::seed_from_u64(seeds.2 ^ 3),
            skew: 777,
            steps: 0,
        };
        let mut r4 = StdRng::seed_from_u64(seeds.0 ^ seeds.1);
        let mut e = Impl {
            w: NfsWrapper::with_capacity(FlatFs::new(4, &mut r4), CAP),
            mods: ModifyLog::new(),
            rng: StdRng::seed_from_u64(seeds.1 ^ 77),
            skew: 31_337,
            steps: 0,
        };

        let mut model = Model::default();
        for (i, intent) in intents.iter().enumerate() {
            let op = model.op_of(intent);
            let ts = (i as u64 + 1) * 10;
            let ra = a.exec(&op, ts);
            let rb = b.exec(&op, ts);
            let rc = c.exec(&op, ts);
            let re = e.exec(&op, ts);
            prop_assert_eq!(&ra, &rb, "log-fs diverged on {:?}", &op);
            prop_assert_eq!(&ra, &rc, "btree-fs diverged on {:?}", &op);
            prop_assert_eq!(&ra, &re, "flat-fs diverged on {:?}", &op);
            model.observe(&op, &ra);
        }

        // Abstract states are identical.
        for i in 0..CAP {
            let oa = a.w.get_obj(i);
            prop_assert_eq!(b.w.get_obj(i), oa.clone(), "log-fs object {} diverged", i);
            prop_assert_eq!(c.w.get_obj(i), oa.clone(), "btree-fs object {} diverged", i);
            prop_assert_eq!(e.w.get_obj(i), oa, "flat-fs object {} diverged", i);
        }

        // And the full state transfers into a fresh implementation.
        let full: Vec<(u64, Option<Vec<u8>>)> = (0..CAP).map(|i| (i, a.w.get_obj(i))).collect();
        let mut rf = StdRng::seed_from_u64(99);
        let mut fresh = Impl {
            w: NfsWrapper::with_capacity(BtreeFs::new(9, &mut rf), CAP),
            mods: ModifyLog::new(),
            rng: StdRng::seed_from_u64(100),
            skew: 5,
            steps: 0,
        };
        {
            let mut env = ExecEnv::new(1, &mut fresh.rng);
            fresh.w.put_objs(&full, &mut env);
        }
        for (i, expected) in full {
            prop_assert_eq!(fresh.w.get_obj(i), expected, "transfer mismatch at {}", i);
        }
    }
}
