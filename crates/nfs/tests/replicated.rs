//! End-to-end replicated NFS: four replicas running *different* file-system
//! implementations behind conformance wrappers (opportunistic N-version
//! programming), driven through the relay over the simulated network.

use base::{BaseReplica, BaseService};
use base_nfs::ops::{NfsOp, NfsReply};
use base_nfs::relay::{run_to_completion, RelayActor, ScriptDriver};
use base_nfs::spec::Oid;
use base_nfs::{BtreeFs, InodeFs, LogFs, NfsWrapper};
use base_pbft::{Config, Service};
use base_simnet::{NodeId, SimDuration, Simulation};
use rand::rngs::StdRng;
use rand::SeedableRng;

const CAP: u64 = 1024;

type InodeReplica = BaseReplica<NfsWrapper<InodeFs>>;
type LogReplica = BaseReplica<NfsWrapper<LogFs>>;
type BtreeReplica = BaseReplica<NfsWrapper<BtreeFs>>;

/// Builds a heterogeneous 4-replica NFS service plus one relay client.
/// Replicas 0–1 run InodeFs, replica 2 LogFs, replica 3 BtreeFs.
fn build(sim: &mut Simulation, script: Vec<NfsOp>, seed: u64) -> (Vec<NodeId>, NodeId) {
    let mut cfg = Config::new(4);
    cfg.checkpoint_interval = 8;
    cfg.log_window = 64;
    let dir = base_crypto::KeyDirectory::generate(5, seed);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut nodes = Vec::new();

    for i in 0..4usize {
        let keys = base_crypto::NodeKeys::new(dir.clone(), i);
        let node = match i {
            0 | 1 => sim.add_node(Box::new(InodeReplica::new(
                cfg.clone(),
                keys,
                BaseService::new(NfsWrapper::with_capacity(InodeFs::new(0x10 + i as u64, &mut rng), CAP)),
            ))),
            2 => sim.add_node(Box::new(LogReplica::new(
                cfg.clone(),
                keys,
                BaseService::new(NfsWrapper::with_capacity(LogFs::new(0x22, &mut rng), CAP)),
            ))),
            _ => sim.add_node(Box::new(BtreeReplica::new(
                cfg.clone(),
                keys,
                BaseService::new(NfsWrapper::with_capacity(BtreeFs::new(0x33, &mut rng), CAP)),
            ))),
        };
        // Divergent local clocks.
        sim.config_mut().set_clock_skew(node, SimDuration::from_millis(31 * i as u64));
        nodes.push(node);
    }
    let keys = base_crypto::NodeKeys::new(dir, 4);
    let relay = sim.add_node(Box::new(RelayActor::new(cfg, keys, ScriptDriver::new(script))));
    (nodes, relay)
}

fn roots_agree(sim: &Simulation, nodes: &[NodeId]) {
    let r0 = sim
        .actor_as::<InodeReplica>(nodes[0])
        .unwrap()
        .service()
        .current_tree()
        .root_digest();
    let r1 = sim
        .actor_as::<InodeReplica>(nodes[1])
        .unwrap()
        .service()
        .current_tree()
        .root_digest();
    let r2 =
        sim.actor_as::<LogReplica>(nodes[2]).unwrap().service().current_tree().root_digest();
    let r3 =
        sim.actor_as::<BtreeReplica>(nodes[3]).unwrap().service().current_tree().root_digest();
    assert_eq!(r0, r1, "homogeneous pair diverged");
    assert_eq!(r0, r2, "log-fs replica diverged");
    assert_eq!(r0, r3, "btree-fs replica diverged");
}

#[test]
fn heterogeneous_replicas_serve_a_file_workload() {
    let root = Oid::ROOT;
    // Deterministic oid allocation lets the script name handles upfront:
    // mkdir → index 1, create → index 2.
    let dir = Oid { index: 1, gen: 1 };
    let file = Oid { index: 2, gen: 1 };
    let script = vec![
        NfsOp::Mkdir { dir: root, name: "work".into(), mode: 0o755 },
        NfsOp::Create { dir, name: "notes.txt".into(), mode: 0o644 },
        NfsOp::Write { fh: file, offset: 0, data: b"line one\n".to_vec() },
        NfsOp::Write { fh: file, offset: 9, data: b"line two\n".to_vec() },
        NfsOp::Read { fh: file, offset: 0, count: 64 },
        NfsOp::Readdir { dir: root },
        NfsOp::Readdir { dir },
        NfsOp::Getattr { fh: file },
        NfsOp::Lookup { dir, name: "notes.txt".into() },
        NfsOp::Statfs,
        // Cross a checkpoint boundary with more writes.
        NfsOp::Write { fh: file, offset: 18, data: vec![b'x'; 4000] },
        NfsOp::Setattr {
            fh: file,
            attrs: base_nfs::ops::SetAttrs { size: Some(18), ..Default::default() },
        },
        NfsOp::Read { fh: file, offset: 0, count: 64 },
    ];
    let n_ops = script.len() as u64;

    let mut sim = Simulation::new(31);
    let (nodes, relay) = build(&mut sim, script, 31);
    let finished = run_to_completion(
        &mut sim,
        |s| s.actor_as::<RelayActor<ScriptDriver>>(relay).unwrap().done(),
        SimDuration::from_secs(30),
    );
    assert!(finished, "workload did not finish");

    let actor = sim.actor_as::<RelayActor<ScriptDriver>>(relay).unwrap();
    assert_eq!(actor.stats.ops, n_ops);
    assert_eq!(actor.stats.errors, 0, "no NFS errors expected");

    // Spot-check replies.
    let replies = &actor.driver().replies;
    let read1 = &replies[4];
    assert_eq!(*read1, NfsReply::Data(b"line one\nline two\n".to_vec()));
    let final_read = replies.last().unwrap();
    assert_eq!(*final_read, NfsReply::Data(b"line one\nline two\n".to_vec()));
    match &replies[5] {
        NfsReply::Entries(es) => assert_eq!(es[0].0, "work"),
        other => panic!("unexpected {other:?}"),
    }

    roots_agree(&sim, &nodes);
}

#[test]
fn heterogeneous_replicas_mask_a_byzantine_member() {
    let root = Oid::ROOT;
    let file = Oid { index: 1, gen: 1 };
    let script = vec![
        NfsOp::Create { dir: root, name: "f".into(), mode: 0o644 },
        NfsOp::Write { fh: file, offset: 0, data: b"important".to_vec() },
        NfsOp::Read { fh: file, offset: 0, count: 32 },
        NfsOp::Getattr { fh: file },
    ];
    let mut sim = Simulation::new(32);
    let (nodes, relay) = build(&mut sim, script, 32);
    // The BtreeFs replica turns Byzantine.
    sim.actor_as_mut::<BtreeReplica>(nodes[3])
        .unwrap()
        .set_byzantine(base::ByzMode::CorruptReplies);

    let finished = run_to_completion(
        &mut sim,
        |s| s.actor_as::<RelayActor<ScriptDriver>>(relay).unwrap().done(),
        SimDuration::from_secs(30),
    );
    assert!(finished);
    let actor = sim.actor_as::<RelayActor<ScriptDriver>>(relay).unwrap();
    assert_eq!(actor.stats.errors, 0);
    assert_eq!(actor.driver().replies[2], NfsReply::Data(b"important".to_vec()));
}

#[test]
fn lagging_heterogeneous_replica_repairs_itself() {
    let root = Oid::ROOT;
    let mut script = vec![NfsOp::Mkdir { dir: root, name: "d".into(), mode: 0o755 }];
    let dir = Oid { index: 1, gen: 1 };
    for i in 0..24 {
        script.push(NfsOp::Create { dir, name: format!("f{i}"), mode: 0o644 });
        script.push(NfsOp::Write {
            fh: Oid { index: 2 + i, gen: 1 },
            offset: 0,
            data: format!("data-{i}").into_bytes(),
        });
    }
    let mut sim = Simulation::new(33);
    let (nodes, relay) = build(&mut sim, script, 33);

    // The LogFs replica misses the start of the workload.
    sim.crash(nodes[2], SimDuration::from_secs(3));
    let finished = run_to_completion(
        &mut sim,
        |s| s.actor_as::<RelayActor<ScriptDriver>>(relay).unwrap().done(),
        SimDuration::from_secs(60),
    );
    assert!(finished);
    // Let the recovery traffic settle.
    sim.run_for(SimDuration::from_secs(20));

    let r2 = sim.actor_as::<LogReplica>(nodes[2]).unwrap();
    assert!(r2.stats.state_transfers >= 1, "log-fs replica must have state-transferred");
    roots_agree(&sim, &nodes);
    // The fetched abstract objects were installed through LogFs's own
    // inverse abstraction function: the concrete file exists and reads
    // back correctly.
    let w = sim.actor_as::<LogReplica>(nodes[2]).unwrap().service().wrapper();
    assert!(w.allocated() >= 25, "objects installed: {}", w.allocated());
}
