//! Cross-implementation conformance: the heart of opportunistic N-version
//! programming. The same operation sequence applied to the three wrapped
//! file systems must produce byte-identical replies and byte-identical
//! abstract states, despite wildly different concrete internals.

use base::{ModifyLog, Wrapper};
use base_nfs::ops::{NfsOp, NfsReply, SetAttrs};
use base_nfs::spec::Oid;
use base_nfs::{BtreeFs, FlatFs, InodeFs, LogFs, NfsWrapper};
use base_pbft::ExecEnv;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// One wrapped implementation under test, with its own rng/clock world.
type ExecFn = Box<dyn FnMut(&NfsOp, u64) -> NfsReply>;
type GetFn = Box<dyn FnMut(u64) -> Option<Vec<u8>>>;
type PutFn = Box<dyn FnMut(&[(u64, Option<Vec<u8>>)])>;

struct World {
    name: &'static str,
    exec: ExecFn,
    get: GetFn,
    put: PutFn,
}

const CAP: u64 = 512;

fn make_world<S: base_nfs::NfsServer>(
    server: S,
    seed: u64,
    clock_skew: u64,
    name: &'static str,
) -> World {
    let wrapper = std::rc::Rc::new(std::cell::RefCell::new((
        NfsWrapper::with_capacity(server, CAP),
        ModifyLog::new(),
        StdRng::seed_from_u64(seed),
        0u64,
    )));
    let w1 = wrapper.clone();
    let w2 = wrapper.clone();
    let w3 = wrapper;
    World {
        name,
        exec: Box::new(move |op, ts| {
            let mut g = w1.borrow_mut();
            let (wrap, mods, rng, steps) = &mut *g;
            *steps += 1;
            let clock = clock_skew + *steps * 1000;
            let mut env = ExecEnv::new(clock, rng);
            let bytes = wrap.execute(&op.to_bytes(), 1, &ts.to_be_bytes(), false, mods, &mut env);
            NfsReply::from_bytes(&bytes).expect("well-formed reply")
        }),
        get: Box::new(move |i| w2.borrow_mut().0.get_obj(i)),
        put: Box::new(move |objs| {
            let mut g = w3.borrow_mut();
            let (wrap, _, rng, steps) = &mut *g;
            *steps += 1;
            let clock = clock_skew + *steps * 1000;
            let mut env = ExecEnv::new(clock, rng);
            wrap.put_objs(objs, &mut env);
        }),
    }
}

fn three_worlds() -> Vec<World> {
    let mut r1 = StdRng::seed_from_u64(101);
    let mut r2 = StdRng::seed_from_u64(202);
    let mut r3 = StdRng::seed_from_u64(303);
    let mut r4 = StdRng::seed_from_u64(404);
    vec![
        make_world(InodeFs::new(0x11, &mut r1), 1, 0, "inode-fs"),
        make_world(LogFs::new(0x22, &mut r2), 2, 5_000_000, "log-fs"),
        make_world(BtreeFs::new(0x33, &mut r3), 3, 11_111_111, "btree-fs"),
        make_world(FlatFs::new(0x44, &mut r4), 4, 7_777, "flat-fs"),
    ]
}

/// Runs `op` on every world; asserts identical replies; returns the reply.
fn step(worlds: &mut [World], op: NfsOp, ts: u64) -> NfsReply {
    let first = (worlds[0].exec)(&op, ts);
    for w in &mut worlds[1..] {
        let r = (w.exec)(&op, ts);
        assert_eq!(r, first, "{}: divergent reply for {op:?}", w.name);
    }
    first
}

/// Asserts all worlds have identical abstract states.
fn assert_same_abstract(worlds: &mut [World]) {
    for i in 0..CAP {
        let a = (worlds[0].get)(i);
        for w in &mut worlds[1..] {
            let b = (w.get)(i);
            assert_eq!(b, a, "{}: abstract object {i} diverged", w.name);
        }
    }
}

fn handle(reply: &NfsReply) -> Oid {
    match reply {
        NfsReply::Handle { fh, .. } => *fh,
        other => panic!("expected handle, got {other:?}"),
    }
}

#[test]
fn identical_replies_and_abstract_state_across_implementations() {
    let mut worlds = three_worlds();
    let root = Oid::ROOT;
    let mut ts = 0u64;
    let mut t = || {
        ts += 1;
        ts
    };

    // Build a small tree with every object kind.
    let d1 = handle(&step(&mut worlds, NfsOp::Mkdir { dir: root, name: "src".into(), mode: 0o755 }, t()));
    let d2 = handle(&step(&mut worlds, NfsOp::Mkdir { dir: root, name: "doc".into(), mode: 0o755 }, t()));
    let f1 = handle(&step(&mut worlds, NfsOp::Create { dir: d1, name: "main.rs".into(), mode: 0o644 }, t()));
    step(&mut worlds, NfsOp::Write { fh: f1, offset: 0, data: b"fn main() {}".to_vec() }, t());
    let f2 = handle(&step(&mut worlds, NfsOp::Create { dir: d1, name: "lib.rs".into(), mode: 0o644 }, t()));
    step(&mut worlds, NfsOp::Write { fh: f2, offset: 0, data: vec![7u8; 9000] }, t());
    step(&mut worlds, NfsOp::Symlink { dir: d2, name: "link".into(), target: "../src/main.rs".into() }, t());
    step(&mut worlds, NfsOp::Link { fh: f1, dir: d2, name: "hardlink".into() }, t());

    // Reads, lookups, listings.
    step(&mut worlds, NfsOp::Read { fh: f2, offset: 100, count: 64 }, t());
    step(&mut worlds, NfsOp::Lookup { dir: d1, name: "main.rs".into() }, t());
    step(&mut worlds, NfsOp::Readdir { dir: root }, t());
    step(&mut worlds, NfsOp::Readdir { dir: d1 }, t());
    step(&mut worlds, NfsOp::Getattr { fh: f1 }, t());
    step(&mut worlds, NfsOp::Statfs, t());

    // Mutations: truncate, rename (file and dir), removals.
    step(&mut worlds, NfsOp::Setattr { fh: f2, attrs: SetAttrs { size: Some(100), ..Default::default() } }, t());
    step(&mut worlds, NfsOp::Rename { from_dir: d1, from_name: "lib.rs".into(), to_dir: d2, to_name: "lib.rs".into() }, t());
    step(&mut worlds, NfsOp::Rename { from_dir: root, from_name: "doc".into(), to_dir: root, to_name: "docs".into() }, t());
    step(&mut worlds, NfsOp::Remove { dir: d2, name: "hardlink".into() }, t());

    // Error paths must also be identical.
    step(&mut worlds, NfsOp::Lookup { dir: d1, name: "missing".into() }, t());
    step(&mut worlds, NfsOp::Create { dir: d1, name: "main.rs".into(), mode: 0o644 }, t());
    step(&mut worlds, NfsOp::Rmdir { dir: root, name: "src".into() }, t());
    step(&mut worlds, NfsOp::Remove { dir: root, name: "src".into() }, t());
    step(&mut worlds, NfsOp::Getattr { fh: Oid { index: 99, gen: 1 } }, t());

    assert_same_abstract(&mut worlds);
}

#[test]
fn reuse_and_generation_bumps_match() {
    let mut worlds = three_worlds();
    let root = Oid::ROOT;
    let mut ts = 0u64;
    let mut t = || {
        ts += 1;
        ts
    };
    let a = handle(&step(&mut worlds, NfsOp::Create { dir: root, name: "a".into(), mode: 0o644 }, t()));
    let _b = handle(&step(&mut worlds, NfsOp::Create { dir: root, name: "b".into(), mode: 0o644 }, t()));
    step(&mut worlds, NfsOp::Remove { dir: root, name: "a".into() }, t());
    let c = handle(&step(&mut worlds, NfsOp::Create { dir: root, name: "c".into(), mode: 0o644 }, t()));
    assert_eq!(c.index, a.index, "freed index reused deterministically");
    assert_eq!(c.gen, a.gen + 1, "generation bumped identically everywhere");
    // The stale handle fails identically everywhere.
    step(&mut worlds, NfsOp::Getattr { fh: a }, t());
    assert_same_abstract(&mut worlds);
}

/// Builds a moderately complex state via ops on world A, then installs A's
/// full abstract state into a *fresh* world B of a different implementation
/// through `put_objs`, and checks B now computes the identical abstraction.
#[test]
fn put_objs_transfers_state_across_implementations() {
    let mut worlds = three_worlds();
    let root = Oid::ROOT;
    let mut ts = 0u64;
    let mut t = || {
        ts += 1;
        ts
    };
    let d = handle(&step(&mut worlds, NfsOp::Mkdir { dir: root, name: "dir".into(), mode: 0o755 }, t()));
    let sub = handle(&step(&mut worlds, NfsOp::Mkdir { dir: d, name: "sub".into(), mode: 0o700 }, t()));
    let f = handle(&step(&mut worlds, NfsOp::Create { dir: sub, name: "deep.txt".into(), mode: 0o600 }, t()));
    step(&mut worlds, NfsOp::Write { fh: f, offset: 0, data: b"deep content".to_vec() }, t());
    step(&mut worlds, NfsOp::Symlink { dir: root, name: "s".into(), target: "dir/sub".into() }, t());
    let g = handle(&step(&mut worlds, NfsOp::Create { dir: root, name: "top".into(), mode: 0o644 }, t()));
    step(&mut worlds, NfsOp::Write { fh: g, offset: 0, data: vec![3u8; 5000] }, t());
    step(&mut worlds, NfsOp::Link { fh: g, dir: d, name: "top-link".into() }, t());

    // Collect A's full abstract state.
    let full: Vec<(u64, Option<Vec<u8>>)> = (0..CAP).map(|i| (i, (worlds[0].get)(i))).collect();

    // Install into fresh worlds of each implementation.
    let mut r = StdRng::seed_from_u64(999);
    let fresh: Vec<World> = vec![
        make_world(InodeFs::new(0x44, &mut r), 71, 1, "fresh-inode"),
        make_world(LogFs::new(0x55, &mut r), 72, 2, "fresh-log"),
        make_world(BtreeFs::new(0x66, &mut r), 73, 3, "fresh-btree"),
    ];
    for mut fw in fresh {
        (fw.put)(&full);
        for i in 0..CAP {
            let a = full[i as usize].1.clone();
            let b = (fw.get)(i);
            assert_eq!(b, a, "{}: object {i} after install", fw.name);
        }
        // The installed world keeps working: execute more ops on it.
        let r = (fw.exec)(&NfsOp::Lookup { dir: root, name: "top".into() }, 500);
        assert!(matches!(r, NfsReply::Handle { .. }), "{}: {r:?}", fw.name);
        let r = (fw.exec)(&NfsOp::Read { fh: f, offset: 0, count: 100 }, 501);
        assert_eq!(r, NfsReply::Data(b"deep content".to_vec()), "{}", fw.name);
    }
}

/// Installs a *delta* onto a diverged copy: world B has the same history as
/// A up to a point, then A moves ahead (including deletions, moves and
/// reuse); applying the changed objects to B must reconverge it.
#[test]
fn put_objs_applies_deltas_including_moves_and_deletes() {
    let mut worlds = three_worlds();
    let root = Oid::ROOT;
    let mut ts = 0u64;
    let mut t = || {
        ts += 1;
        ts
    };
    // Shared prefix on all three worlds.
    let d1 = handle(&step(&mut worlds, NfsOp::Mkdir { dir: root, name: "a".into(), mode: 0o755 }, t()));
    let d2 = handle(&step(&mut worlds, NfsOp::Mkdir { dir: root, name: "b".into(), mode: 0o755 }, t()));
    let f = handle(&step(&mut worlds, NfsOp::Create { dir: d1, name: "f".into(), mode: 0o644 }, t()));
    step(&mut worlds, NfsOp::Write { fh: f, offset: 0, data: b"v1".to_vec() }, t());
    let dead = handle(&step(&mut worlds, NfsOp::Create { dir: d2, name: "dead".into(), mode: 0o644 }, t()));
    let _ = dead;

    // Snapshot "before" on world 0 (this is what B still has).
    let before: Vec<(u64, Option<Vec<u8>>)> = (0..CAP).map(|i| (i, (worlds[0].get)(i))).collect();

    // World 0 moves ahead alone: move the file, delete "dead", move dir b
    // into dir a, create something new reusing the dead index.
    let w0 = &mut worlds[0];
    (w0.exec)(&NfsOp::Rename { from_dir: d1, from_name: "f".into(), to_dir: d2, to_name: "g".into() }, 100);
    (w0.exec)(&NfsOp::Remove { dir: d2, name: "dead".into() }, 101);
    (w0.exec)(&NfsOp::Rename { from_dir: root, from_name: "b".into(), to_dir: d1, to_name: "bb".into() }, 102);
    let created = (w0.exec)(&NfsOp::Create { dir: root, name: "new".into(), mode: 0o644 }, 103);
    let new_fh = handle(&created);
    (w0.exec)(&NfsOp::Write { fh: new_fh, offset: 0, data: b"fresh".to_vec() }, 104);

    // Compute the delta (after vs before).
    let mut delta: Vec<(u64, Option<Vec<u8>>)> = Vec::new();
    let mut after: Vec<(u64, Option<Vec<u8>>)> = Vec::new();
    for i in 0..CAP {
        let now = (worlds[0].get)(i);
        if now != before[i as usize].1 {
            delta.push((i, now.clone()));
        }
        after.push((i, now));
    }
    assert!(!delta.is_empty());

    // Apply the delta to every other world; all must match world 0.
    for w in worlds.iter_mut().skip(1) {
        (w.put)(&delta);
        for i in 0..CAP {
            let b = (w.get)(i);
            assert_eq!(b, after[i as usize].1, "{}: object {i} after delta install", w.name);
        }
    }

    // And the reconverged worlds continue to agree on live traffic.
    let r = step(&mut worlds, NfsOp::Readdir { dir: root }, 200);
    assert!(matches!(r, NfsReply::Entries(_)));
    let r = step(&mut worlds, NfsOp::Read { fh: new_fh, offset: 0, count: 10 }, 201);
    assert_eq!(r, NfsReply::Data(b"fresh".to_vec()));
}

#[test]
fn rename_into_own_subtree_is_rejected_everywhere() {
    // POSIX forbids making a directory its own descendant (EINVAL). All
    // four implementations must agree — both on the error and on the
    // untouched state afterwards.
    let mut worlds = three_worlds();
    let root = Oid::ROOT;
    let mut ts = 0u64;
    let mut t = || {
        ts += 1;
        ts
    };
    let a = handle(&step(&mut worlds, NfsOp::Mkdir { dir: root, name: "a".into(), mode: 0o755 }, t()));
    let b = handle(&step(&mut worlds, NfsOp::Mkdir { dir: a, name: "b".into(), mode: 0o755 }, t()));
    let _c = handle(&step(&mut worlds, NfsOp::Mkdir { dir: b, name: "c".into(), mode: 0o755 }, t()));

    // a → a/b/a: direct cycle, two levels deep.
    let r = step(
        &mut worlds,
        NfsOp::Rename { from_dir: root, from_name: "a".into(), to_dir: b, to_name: "a".into() },
        t(),
    );
    assert_eq!(r, NfsReply::Error(base_nfs::NfsStatus::Inval));

    // a → a/a: immediate self-adoption.
    let r = step(
        &mut worlds,
        NfsOp::Rename { from_dir: root, from_name: "a".into(), to_dir: a, to_name: "x".into() },
        t(),
    );
    assert_eq!(r, NfsReply::Error(base_nfs::NfsStatus::Inval));

    // Renaming a directory onto ITSELF within the same parent is a no-op
    // rename to the same name — allowed (it is its own destination, not a
    // descendant). A sibling move still works afterwards.
    let r = step(
        &mut worlds,
        NfsOp::Rename { from_dir: a, from_name: "b".into(), to_dir: a, to_name: "b2".into() },
        t(),
    );
    assert!(matches!(r, NfsReply::Ok | NfsReply::Attr(_)), "sibling rename failed: {r:?}");
    assert_same_abstract(&mut worlds);
}

#[test]
fn warm_rebuild_preserves_abstraction() {
    let mut r = StdRng::seed_from_u64(7);
    let mut wrapper = NfsWrapper::with_capacity(InodeFs::new(0x77, &mut r), CAP);
    let mut mods = ModifyLog::new();
    let mut rng = StdRng::seed_from_u64(8);
    let exec = |w: &mut NfsWrapper<InodeFs>, mods: &mut ModifyLog, rng: &mut StdRng, op: NfsOp, ts: u64| {
        let mut env = ExecEnv::new(ts * 7, rng);
        let bytes = w.execute(&op.to_bytes(), 1, &ts.to_be_bytes(), false, mods, &mut env);
        NfsReply::from_bytes(&bytes).expect("reply")
    };
    let root = Oid::ROOT;
    let d = handle(&exec(&mut wrapper, &mut mods, &mut rng, NfsOp::Mkdir { dir: root, name: "d".into(), mode: 0o755 }, 1));
    let f = handle(&exec(&mut wrapper, &mut mods, &mut rng, NfsOp::Create { dir: d, name: "f".into(), mode: 0o644 }, 2));
    exec(&mut wrapper, &mut mods, &mut rng, NfsOp::Write { fh: f, offset: 0, data: b"survives".to_vec() }, 3);

    let before: Vec<Option<Vec<u8>>> = (0..CAP).map(|i| wrapper.get_obj(i)).collect();

    // Warm reboot: all server handles go stale; the rep is rebuilt from the
    // <fsid,fileid> map by walking the concrete tree (§3.4).
    let mut env = ExecEnv::new(0, &mut rng);
    wrapper.rebuild_rep(&mut env);

    let after: Vec<Option<Vec<u8>>> = (0..CAP).map(|i| wrapper.get_obj(i)).collect();
    assert_eq!(after, before, "abstraction must be unchanged by a warm reboot");

    // And operations still work on the rebuilt handles.
    let r = exec(&mut wrapper, &mut mods, &mut rng, NfsOp::Read { fh: f, offset: 0, count: 100 }, 4);
    assert_eq!(r, NfsReply::Data(b"survives".to_vec()));
}
