//! The POSIX shim over the full replicated stack: the same path-level
//! program runs against the heterogeneous BASE-NFS service and against the
//! unreplicated baseline, and must produce identical path-level results.

use base::{BaseReplica, BaseService};
use base_nfs::posix::{FsCall, FsOut, PosixDriver};
use base_nfs::relay::{run_to_completion, DirectActor, DirectServerActor, RelayActor};
use base_nfs::{BtreeFs, FlatFs, InodeFs, LogFs, NfsWrapper};
use base_pbft::Config;
use base_simnet::{NodeId, SimDuration, Simulation};
use rand::SeedableRng;

const CAP: u64 = 1024;

fn program() -> Vec<FsCall> {
    vec![
        FsCall::MkdirP("/home/alice/projects".into()),
        FsCall::WriteFile("/home/alice/projects/notes.md".into(), b"# plan\n- ship it\n".to_vec()),
        FsCall::WriteFile("/home/alice/todo".into(), vec![0x42; 20_000]),
        FsCall::Symlink("/home/alice/link".into(), "projects/notes.md".into()),
        FsCall::List("/home/alice".into()),
        FsCall::ReadFile("/home/alice/projects/notes.md".into()),
        FsCall::Stat("/home/alice/todo".into()),
        FsCall::Rename("/home/alice/todo".into(), "/home/alice/projects/todo".into()),
        FsCall::List("/home/alice/projects".into()),
        FsCall::ReadFile("/home/alice/projects/todo".into()),
        FsCall::Remove("/home/alice/link".into()),
        FsCall::List("/home/alice".into()),
        FsCall::ReadFile("/does/not/exist".into()),
    ]
}

fn run_replicated() -> Vec<(FsCall, FsOut)> {
    let mut cfg = Config::new(4);
    cfg.checkpoint_interval = 32;
    let mut sim = Simulation::new(91);
    let dir = base_crypto::KeyDirectory::generate(5, 91);
    let mut rng = rand::rngs::StdRng::seed_from_u64(91);
    let keys = |i| base_crypto::NodeKeys::new(dir.clone(), i);
    sim.add_node(Box::new(BaseReplica::new(
        cfg.clone(),
        keys(0),
        BaseService::new(NfsWrapper::with_capacity(InodeFs::new(1, &mut rng), CAP)),
    )));
    sim.add_node(Box::new(BaseReplica::new(
        cfg.clone(),
        keys(1),
        BaseService::new(NfsWrapper::with_capacity(FlatFs::new(2, &mut rng), CAP)),
    )));
    sim.add_node(Box::new(BaseReplica::new(
        cfg.clone(),
        keys(2),
        BaseService::new(NfsWrapper::with_capacity(LogFs::new(3, &mut rng), CAP)),
    )));
    sim.add_node(Box::new(BaseReplica::new(
        cfg.clone(),
        keys(3),
        BaseService::new(NfsWrapper::with_capacity(BtreeFs::new(4, &mut rng), CAP)),
    )));
    for i in 0..4 {
        sim.config_mut().set_clock_skew(NodeId(i), SimDuration::from_millis(9 * i as u64));
    }
    let relay_keys = base_crypto::NodeKeys::new(dir, 4);
    let relay = sim
        .add_node(Box::new(RelayActor::new(cfg, relay_keys, PosixDriver::new(program()))));
    let ok = run_to_completion(
        &mut sim,
        |s| s.actor_as::<RelayActor<PosixDriver>>(relay).unwrap().done(),
        SimDuration::from_secs(60),
    );
    assert!(ok, "replicated posix program did not finish");
    sim.actor_as::<RelayActor<PosixDriver>>(relay).unwrap().driver().results.clone()
}

fn run_direct() -> Vec<(FsCall, FsOut)> {
    let mut sim = Simulation::new(92);
    let mut rng = rand::rngs::StdRng::seed_from_u64(92);
    let server = sim.add_node(Box::new(DirectServerActor::new(InodeFs::new(9, &mut rng))));
    let client = sim.add_node(Box::new(DirectActor::new(server, PosixDriver::new(program()))));
    let ok = run_to_completion(
        &mut sim,
        |s| s.actor_as::<DirectActor<PosixDriver>>(client).unwrap().done(),
        SimDuration::from_secs(60),
    );
    assert!(ok, "direct posix program did not finish");
    sim.actor_as::<DirectActor<PosixDriver>>(client).unwrap().driver().results.clone()
}

#[test]
fn posix_program_replicated_equals_direct() {
    let rep = run_replicated();
    let dir = run_direct();
    assert_eq!(rep.len(), dir.len());
    for ((rc, rout), (_, dout)) in rep.iter().zip(dir.iter()) {
        // Stat attrs include abstract timestamps, which come from agreed
        // protocol values in one run and local clocks in the other —
        // compare only the size there.
        match (rout, dout) {
            (FsOut::Attr(a), FsOut::Attr(b)) => {
                assert_eq!(a.size, b.size, "stat size diverged for {rc:?}")
            }
            _ => assert_eq!(rout, dout, "result diverged for {rc:?}"),
        }
    }
    // Spot-check meaning.
    assert_eq!(rep[5].1, FsOut::Data(b"# plan\n- ship it\n".to_vec()));
    assert_eq!(rep[9].1, FsOut::Data(vec![0x42; 20_000]));
    assert_eq!(
        rep[11].1,
        FsOut::Names(vec!["projects".into()]),
        "link removed, todo moved away"
    );
    assert!(matches!(rep[12].1, FsOut::Err(_)));
}
