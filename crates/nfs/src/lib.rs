//! The replicated NFS file service — the BASE paper's worked example
//! (Section 3).
//!
//! The paper wraps *off-the-shelf NFS daemons running different operating
//! systems*; this reproduction builds three from-scratch file-system
//! implementations with deliberately different internals and
//! non-determinism, exactly the divergences the paper enumerates
//! (file-handle choice, timestamp sources and resolution, directory order,
//! allocation behaviour):
//!
//! | Implementation | Internals | File handles | Readdir order | Quirks |
//! |---|---|---|---|---|
//! | [`InodeFs`] | inode table + free list | `ino + generation + boot cookie` | insertion order | LIFO inode reuse |
//! | [`LogFs`]   | id-keyed node map, log-structured flavour | random 64-bit id + epoch | name-hash order | epoch bumps on reboot |
//! | [`BtreeFs`] | BTree maps | ino ⊕ per-boot mask | lexicographic | µs timestamps, optional deleted-node "trash" leak |
//! | [`FlatFs`]  | flat path table | salted path hash | salted-hash order | dir renames rewrite key ranges |
//!
//! On top of them:
//!
//! - [`spec`]: the common abstract specification (§3.1) — a fixed-size
//!   array of `<object, generation>` pairs holding files, directories
//!   (lexicographically sorted), symlinks, and null objects, XDR-encoded;
//! - [`ops`]: the NFS operation/reply language, with oids as file handles;
//! - [`server`]: the concrete NFS-protocol-style interface the wrappers
//!   program against (black-box, per the paper);
//! - [`wrapper`]: the conformance wrapper + abstraction function and its
//!   inverse (§3.2–3.3), including the `<fsid,fileid>`→oid map used by
//!   proactive recovery (§3.4);
//! - [`relay`]: the user-level relay of Figure 2, plus the unreplicated
//!   direct-mount baseline used by the Andrew-benchmark comparison;
//! - [`posix`]: a path-based client shim (the kernel-NFS-client stand-in)
//!   with a dentry cache, usable against both the replicated service and
//!   the baseline.

#![warn(missing_docs)]

pub mod btree_fs;
pub mod flat_fs;
pub mod inode_fs;
pub mod log_fs;
pub mod ops;
pub mod posix;
pub mod relay;
pub mod server;
pub mod spec;
pub mod wrapper;

pub use btree_fs::BtreeFs;
pub use flat_fs::FlatFs;
pub use inode_fs::{InodeFs, LATENT_BUG_TRIGGER};
pub use log_fs::LogFs;
pub use ops::{NfsOp, NfsReply};
pub use posix::{FsCall, FsOut, PosixDriver};
pub use server::{NfsServer, ServerFh, SrvAttr, SrvError};
pub use spec::{AbstractObject, Fattr, NfsStatus, ObjKind, Oid};
pub use wrapper::NfsWrapper;
