//! The NFS operation/reply language used between clients and the
//! replicated file service. File handles are abstract [`Oid`]s.

use crate::spec::{Fattr, NfsStatus, Oid};
use base_xdr::{
    decode_vec, encode_vec, from_bytes, to_bytes, XdrDecode, XdrDecoder, XdrEncode, XdrEncoder,
    XdrError,
};

/// Attribute updates for `setattr` (unset fields are unchanged).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct SetAttrs {
    /// New permission bits.
    pub mode: Option<u32>,
    /// New owner.
    pub uid: Option<u32>,
    /// New group.
    pub gid: Option<u32>,
    /// New size (truncate / extend with zeros).
    pub size: Option<u64>,
}

impl XdrEncode for SetAttrs {
    fn encode(&self, enc: &mut XdrEncoder) {
        self.mode.encode(enc);
        self.uid.encode(enc);
        self.gid.encode(enc);
        self.size.encode(enc);
    }
}

impl XdrDecode for SetAttrs {
    fn decode(dec: &mut XdrDecoder<'_>) -> Result<Self, XdrError> {
        Ok(SetAttrs {
            mode: Option::decode(dec)?,
            uid: Option::decode(dec)?,
            gid: Option::decode(dec)?,
            size: Option::decode(dec)?,
        })
    }
}

/// An NFS operation (the subset of RFC 1094 the example exercises).
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum NfsOp {
    /// Read attributes.
    Getattr {
        /// Target object.
        fh: Oid,
    },
    /// Update attributes.
    Setattr {
        /// Target object.
        fh: Oid,
        /// Fields to change.
        attrs: SetAttrs,
    },
    /// Look a name up in a directory.
    Lookup {
        /// Directory to search.
        dir: Oid,
        /// Entry name.
        name: String,
    },
    /// Read file data. Updates the abstract atime, so it runs through the
    /// full protocol (not the read-only path).
    Read {
        /// File to read.
        fh: Oid,
        /// Byte offset.
        offset: u64,
        /// Maximum bytes to return.
        count: u32,
    },
    /// Write file data.
    Write {
        /// File to write.
        fh: Oid,
        /// Byte offset.
        offset: u64,
        /// Bytes to store.
        data: Vec<u8>,
    },
    /// Create a regular file.
    Create {
        /// Parent directory.
        dir: Oid,
        /// New entry name.
        name: String,
        /// Permission bits.
        mode: u32,
    },
    /// Remove a file or symlink.
    Remove {
        /// Parent directory.
        dir: Oid,
        /// Entry name to remove.
        name: String,
    },
    /// Rename (moves files, symlinks and directories).
    Rename {
        /// Source directory.
        from_dir: Oid,
        /// Source entry name.
        from_name: String,
        /// Destination directory.
        to_dir: Oid,
        /// Destination entry name.
        to_name: String,
    },
    /// Create a hard link to a file.
    Link {
        /// Existing file.
        fh: Oid,
        /// Directory receiving the new link.
        dir: Oid,
        /// New entry name.
        name: String,
    },
    /// Create a symbolic link.
    Symlink {
        /// Parent directory.
        dir: Oid,
        /// New entry name.
        name: String,
        /// Link target path.
        target: String,
    },
    /// Read a symlink target.
    Readlink {
        /// The symlink.
        fh: Oid,
    },
    /// Create a directory.
    Mkdir {
        /// Parent directory.
        dir: Oid,
        /// New entry name.
        name: String,
        /// Permission bits.
        mode: u32,
    },
    /// Remove an empty directory.
    Rmdir {
        /// Parent directory.
        dir: Oid,
        /// Entry name to remove.
        name: String,
    },
    /// List a directory (lexicographically sorted, per the common spec).
    Readdir {
        /// Directory to list.
        dir: Oid,
    },
    /// File-system statistics (computed over the abstract state).
    Statfs,
}

impl NfsOp {
    /// True for operations that can take the read-only optimization path
    /// (they change no abstract object; note `Read` changes atime).
    pub fn is_read_only(&self) -> bool {
        matches!(
            self,
            NfsOp::Getattr { .. }
                | NfsOp::Lookup { .. }
                | NfsOp::Readlink { .. }
                | NfsOp::Readdir { .. }
                | NfsOp::Statfs
        )
    }

    /// Encodes to protocol op bytes.
    pub fn to_bytes(&self) -> Vec<u8> {
        to_bytes(self)
    }

    /// Decodes from protocol op bytes.
    pub fn from_bytes(bytes: &[u8]) -> Option<NfsOp> {
        from_bytes(bytes).ok()
    }
}

impl XdrEncode for NfsOp {
    fn encode(&self, enc: &mut XdrEncoder) {
        match self {
            NfsOp::Getattr { fh } => {
                enc.put_u32(0);
                fh.encode(enc);
            }
            NfsOp::Setattr { fh, attrs } => {
                enc.put_u32(1);
                fh.encode(enc);
                attrs.encode(enc);
            }
            NfsOp::Lookup { dir, name } => {
                enc.put_u32(2);
                dir.encode(enc);
                enc.put_string(name);
            }
            NfsOp::Read { fh, offset, count } => {
                enc.put_u32(3);
                fh.encode(enc);
                enc.put_u64(*offset);
                enc.put_u32(*count);
            }
            NfsOp::Write { fh, offset, data } => {
                enc.put_u32(4);
                fh.encode(enc);
                enc.put_u64(*offset);
                enc.put_opaque(data);
            }
            NfsOp::Create { dir, name, mode } => {
                enc.put_u32(5);
                dir.encode(enc);
                enc.put_string(name);
                enc.put_u32(*mode);
            }
            NfsOp::Remove { dir, name } => {
                enc.put_u32(6);
                dir.encode(enc);
                enc.put_string(name);
            }
            NfsOp::Rename { from_dir, from_name, to_dir, to_name } => {
                enc.put_u32(7);
                from_dir.encode(enc);
                enc.put_string(from_name);
                to_dir.encode(enc);
                enc.put_string(to_name);
            }
            NfsOp::Link { fh, dir, name } => {
                enc.put_u32(8);
                fh.encode(enc);
                dir.encode(enc);
                enc.put_string(name);
            }
            NfsOp::Symlink { dir, name, target } => {
                enc.put_u32(9);
                dir.encode(enc);
                enc.put_string(name);
                enc.put_string(target);
            }
            NfsOp::Readlink { fh } => {
                enc.put_u32(10);
                fh.encode(enc);
            }
            NfsOp::Mkdir { dir, name, mode } => {
                enc.put_u32(11);
                dir.encode(enc);
                enc.put_string(name);
                enc.put_u32(*mode);
            }
            NfsOp::Rmdir { dir, name } => {
                enc.put_u32(12);
                dir.encode(enc);
                enc.put_string(name);
            }
            NfsOp::Readdir { dir } => {
                enc.put_u32(13);
                dir.encode(enc);
            }
            NfsOp::Statfs => {
                enc.put_u32(14);
            }
        }
    }
}

impl XdrDecode for NfsOp {
    fn decode(dec: &mut XdrDecoder<'_>) -> Result<Self, XdrError> {
        Ok(match dec.get_u32()? {
            0 => NfsOp::Getattr { fh: Oid::decode(dec)? },
            1 => NfsOp::Setattr { fh: Oid::decode(dec)?, attrs: SetAttrs::decode(dec)? },
            2 => NfsOp::Lookup { dir: Oid::decode(dec)?, name: dec.get_string()? },
            3 => NfsOp::Read {
                fh: Oid::decode(dec)?,
                offset: dec.get_u64()?,
                count: dec.get_u32()?,
            },
            4 => NfsOp::Write {
                fh: Oid::decode(dec)?,
                offset: dec.get_u64()?,
                data: dec.get_opaque()?,
            },
            5 => NfsOp::Create {
                dir: Oid::decode(dec)?,
                name: dec.get_string()?,
                mode: dec.get_u32()?,
            },
            6 => NfsOp::Remove { dir: Oid::decode(dec)?, name: dec.get_string()? },
            7 => NfsOp::Rename {
                from_dir: Oid::decode(dec)?,
                from_name: dec.get_string()?,
                to_dir: Oid::decode(dec)?,
                to_name: dec.get_string()?,
            },
            8 => NfsOp::Link {
                fh: Oid::decode(dec)?,
                dir: Oid::decode(dec)?,
                name: dec.get_string()?,
            },
            9 => NfsOp::Symlink {
                dir: Oid::decode(dec)?,
                name: dec.get_string()?,
                target: dec.get_string()?,
            },
            10 => NfsOp::Readlink { fh: Oid::decode(dec)? },
            11 => NfsOp::Mkdir {
                dir: Oid::decode(dec)?,
                name: dec.get_string()?,
                mode: dec.get_u32()?,
            },
            12 => NfsOp::Rmdir { dir: Oid::decode(dec)?, name: dec.get_string()? },
            13 => NfsOp::Readdir { dir: Oid::decode(dec)? },
            14 => NfsOp::Statfs,
            v => return Err(XdrError::InvalidDiscriminant { type_name: "NfsOp", value: v }),
        })
    }
}

/// A reply from the file service.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum NfsReply {
    /// The operation failed.
    Error(NfsStatus),
    /// Attributes (getattr, setattr, write).
    Attr(Fattr),
    /// A handle plus attributes (lookup, create, mkdir, symlink).
    Handle {
        /// The object's oid (its NFS file handle).
        fh: Oid,
        /// The object's abstract attributes.
        attr: Fattr,
    },
    /// File data (read).
    Data(Vec<u8>),
    /// A symlink target (readlink).
    Target(String),
    /// Directory entries, lexicographically sorted (readdir).
    Entries(Vec<(String, Oid)>),
    /// File-system statistics: (capacity, objects in use).
    Stats(u64, u64),
    /// Success with no payload (remove, rename, link, rmdir).
    Ok,
}

impl NfsReply {
    /// Encodes to reply bytes.
    pub fn to_bytes(&self) -> Vec<u8> {
        to_bytes(self)
    }

    /// Decodes from reply bytes.
    pub fn from_bytes(bytes: &[u8]) -> Option<NfsReply> {
        from_bytes(bytes).ok()
    }

    /// True unless this is an [`NfsReply::Error`].
    pub fn is_ok(&self) -> bool {
        !matches!(self, NfsReply::Error(_))
    }
}

impl XdrEncode for NfsReply {
    fn encode(&self, enc: &mut XdrEncoder) {
        match self {
            NfsReply::Error(s) => {
                enc.put_u32(0);
                s.encode(enc);
            }
            NfsReply::Attr(a) => {
                enc.put_u32(1);
                a.encode(enc);
            }
            NfsReply::Handle { fh, attr } => {
                enc.put_u32(2);
                fh.encode(enc);
                attr.encode(enc);
            }
            NfsReply::Data(d) => {
                enc.put_u32(3);
                enc.put_opaque(d);
            }
            NfsReply::Target(t) => {
                enc.put_u32(4);
                enc.put_string(t);
            }
            NfsReply::Entries(e) => {
                enc.put_u32(5);
                encode_vec(e, enc);
            }
            NfsReply::Stats(cap, used) => {
                enc.put_u32(6);
                enc.put_u64(*cap);
                enc.put_u64(*used);
            }
            NfsReply::Ok => {
                enc.put_u32(7);
            }
        }
    }
}

impl XdrDecode for NfsReply {
    fn decode(dec: &mut XdrDecoder<'_>) -> Result<Self, XdrError> {
        Ok(match dec.get_u32()? {
            0 => NfsReply::Error(NfsStatus::decode(dec)?),
            1 => NfsReply::Attr(Fattr::decode(dec)?),
            2 => NfsReply::Handle { fh: Oid::decode(dec)?, attr: Fattr::decode(dec)? },
            3 => NfsReply::Data(dec.get_opaque()?),
            4 => NfsReply::Target(dec.get_string()?),
            5 => NfsReply::Entries(decode_vec(dec)?),
            6 => NfsReply::Stats(dec.get_u64()?, dec.get_u64()?),
            7 => NfsReply::Ok,
            v => return Err(XdrError::InvalidDiscriminant { type_name: "NfsReply", value: v }),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::ObjKind;

    #[test]
    fn ops_round_trip() {
        let oid = Oid { index: 5, gen: 2 };
        let ops = vec![
            NfsOp::Getattr { fh: oid },
            NfsOp::Setattr { fh: oid, attrs: SetAttrs { size: Some(10), ..Default::default() } },
            NfsOp::Lookup { dir: Oid::ROOT, name: "f".into() },
            NfsOp::Read { fh: oid, offset: 4, count: 8 },
            NfsOp::Write { fh: oid, offset: 0, data: vec![1, 2] },
            NfsOp::Create { dir: Oid::ROOT, name: "f".into(), mode: 0o644 },
            NfsOp::Remove { dir: Oid::ROOT, name: "f".into() },
            NfsOp::Rename {
                from_dir: Oid::ROOT,
                from_name: "a".into(),
                to_dir: oid,
                to_name: "b".into(),
            },
            NfsOp::Link { fh: oid, dir: Oid::ROOT, name: "l".into() },
            NfsOp::Symlink { dir: Oid::ROOT, name: "s".into(), target: "/t".into() },
            NfsOp::Readlink { fh: oid },
            NfsOp::Mkdir { dir: Oid::ROOT, name: "d".into(), mode: 0o755 },
            NfsOp::Rmdir { dir: Oid::ROOT, name: "d".into() },
            NfsOp::Readdir { dir: Oid::ROOT },
            NfsOp::Statfs,
        ];
        for op in ops {
            let decoded = NfsOp::from_bytes(&op.to_bytes()).unwrap();
            assert_eq!(decoded, op);
        }
    }

    #[test]
    fn replies_round_trip() {
        let attr = Fattr::new(ObjKind::File, 0o644, 1, 2, 77);
        let replies = vec![
            NfsReply::Error(NfsStatus::NoEnt),
            NfsReply::Attr(attr),
            NfsReply::Handle { fh: Oid { index: 3, gen: 9 }, attr },
            NfsReply::Data(vec![0xde, 0xad]),
            NfsReply::Target("/x".into()),
            NfsReply::Entries(vec![("a".into(), Oid::ROOT)]),
            NfsReply::Stats(65536, 12),
            NfsReply::Ok,
        ];
        for r in replies {
            assert_eq!(NfsReply::from_bytes(&r.to_bytes()).unwrap(), r);
        }
    }

    #[test]
    fn read_only_classification() {
        assert!(NfsOp::Getattr { fh: Oid::ROOT }.is_read_only());
        assert!(NfsOp::Readdir { dir: Oid::ROOT }.is_read_only());
        assert!(NfsOp::Statfs.is_read_only());
        // Read updates the abstract atime: full protocol.
        assert!(!NfsOp::Read { fh: Oid::ROOT, offset: 0, count: 1 }.is_read_only());
        assert!(!NfsOp::Write { fh: Oid::ROOT, offset: 0, data: vec![] }.is_read_only());
    }

    #[test]
    fn malformed_ops_rejected() {
        assert!(NfsOp::from_bytes(&[0, 0, 0, 99]).is_none());
        assert!(NfsOp::from_bytes(&[]).is_none());
    }
}
