//! The common abstract specification of the file service (paper §3.1).
//!
//! The abstract state is a fixed-size array of `<object, generation>`
//! pairs. Each object is identified by an *oid* — the concatenation of its
//! array index and generation number, used as the file handle visible to
//! clients. Objects are files (byte arrays), directories (name → oid
//! pairs, ordered lexicographically), symbolic links (a path string), or
//! null (the entry is free). Non-null objects carry the NFS `fattr`
//! metadata *minus* everything implementation-specific: `fsid`/`fileid`
//! are replaced by the oid, and all timestamps are the *abstract* (agreed)
//! ones. Every entry is XDR-encoded.

use base_xdr::{decode_vec, encode_vec, XdrDecode, XdrDecoder, XdrEncode, XdrEncoder, XdrError};

/// Default capacity of the abstract object array.
pub const DEFAULT_CAPACITY: u64 = 1 << 16;

/// An abstract object identifier: array index + generation number.
///
/// Clients use oids as NFS file handles; the generation number makes
/// handles of reallocated entries stale, exactly like NFS generation
/// numbers — but chosen *deterministically* so all replicas agree.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct Oid {
    /// Index into the abstract object array.
    pub index: u32,
    /// Generation number of the entry.
    pub gen: u32,
}

impl Oid {
    /// The root directory's oid (entry 0, first generation).
    pub const ROOT: Oid = Oid { index: 0, gen: 1 };

    /// Packs the oid into a u64 (`index` in the high half).
    pub fn as_u64(&self) -> u64 {
        (u64::from(self.index) << 32) | u64::from(self.gen)
    }

    /// Unpacks an oid from a u64.
    pub fn from_u64(v: u64) -> Oid {
        Oid { index: (v >> 32) as u32, gen: v as u32 }
    }
}

impl std::fmt::Display for Oid {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}.{}", self.index, self.gen)
    }
}

impl XdrEncode for Oid {
    fn encode(&self, enc: &mut XdrEncoder) {
        enc.put_u32(self.index);
        enc.put_u32(self.gen);
    }
}

impl XdrDecode for Oid {
    fn decode(dec: &mut XdrDecoder<'_>) -> Result<Self, XdrError> {
        Ok(Oid { index: dec.get_u32()?, gen: dec.get_u32()? })
    }
}

/// Object kinds.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ObjKind {
    /// Regular file.
    File,
    /// Directory.
    Dir,
    /// Symbolic link.
    Symlink,
}

impl XdrEncode for ObjKind {
    fn encode(&self, enc: &mut XdrEncoder) {
        enc.put_u32(match self {
            ObjKind::File => 0,
            ObjKind::Dir => 1,
            ObjKind::Symlink => 2,
        });
    }
}

impl XdrDecode for ObjKind {
    fn decode(dec: &mut XdrDecoder<'_>) -> Result<Self, XdrError> {
        match dec.get_u32()? {
            0 => Ok(ObjKind::File),
            1 => Ok(ObjKind::Dir),
            2 => Ok(ObjKind::Symlink),
            v => Err(XdrError::InvalidDiscriminant { type_name: "ObjKind", value: v }),
        }
    }
}

/// Abstract file attributes (the NFS `fattr` with implementation-specific
/// fields removed; timestamps are abstract nanoseconds).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Fattr {
    /// Object kind.
    pub kind: ObjKind,
    /// Permission bits.
    pub mode: u32,
    /// Hard-link count.
    pub nlink: u32,
    /// Owner.
    pub uid: u32,
    /// Group.
    pub gid: u32,
    /// Size in bytes (file data length / directory entry count).
    pub size: u64,
    /// Abstract access time (ns).
    pub atime_ns: u64,
    /// Abstract modification time (ns).
    pub mtime_ns: u64,
    /// Abstract attribute-change time (ns).
    pub ctime_ns: u64,
}

impl Fattr {
    /// A fresh attribute record for a new object.
    pub fn new(kind: ObjKind, mode: u32, uid: u32, gid: u32, now_ns: u64) -> Self {
        Fattr {
            kind,
            mode,
            nlink: 1,
            uid,
            gid,
            size: 0,
            atime_ns: now_ns,
            mtime_ns: now_ns,
            ctime_ns: now_ns,
        }
    }
}

impl XdrEncode for Fattr {
    fn encode(&self, enc: &mut XdrEncoder) {
        self.kind.encode(enc);
        enc.put_u32(self.mode);
        enc.put_u32(self.nlink);
        enc.put_u32(self.uid);
        enc.put_u32(self.gid);
        enc.put_u64(self.size);
        enc.put_u64(self.atime_ns);
        enc.put_u64(self.mtime_ns);
        enc.put_u64(self.ctime_ns);
    }
}

impl XdrDecode for Fattr {
    fn decode(dec: &mut XdrDecoder<'_>) -> Result<Self, XdrError> {
        Ok(Fattr {
            kind: ObjKind::decode(dec)?,
            mode: dec.get_u32()?,
            nlink: dec.get_u32()?,
            uid: dec.get_u32()?,
            gid: dec.get_u32()?,
            size: dec.get_u64()?,
            atime_ns: dec.get_u64()?,
            mtime_ns: dec.get_u64()?,
            ctime_ns: dec.get_u64()?,
        })
    }
}

/// A non-null abstract object.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum AbstractObject {
    /// A regular file: metadata + contents.
    File {
        /// Attributes.
        attr: Fattr,
        /// File contents.
        data: Vec<u8>,
    },
    /// A directory: metadata + entries sorted lexicographically by name.
    Dir {
        /// Attributes.
        attr: Fattr,
        /// `(name, oid)` pairs, strictly sorted by name.
        entries: Vec<(String, Oid)>,
    },
    /// A symbolic link: metadata + target path.
    Symlink {
        /// Attributes.
        attr: Fattr,
        /// Link target.
        target: String,
    },
}

impl AbstractObject {
    /// The object's attributes.
    pub fn attr(&self) -> &Fattr {
        match self {
            AbstractObject::File { attr, .. }
            | AbstractObject::Dir { attr, .. }
            | AbstractObject::Symlink { attr, .. } => attr,
        }
    }

    /// Mutable attributes.
    pub fn attr_mut(&mut self) -> &mut Fattr {
        match self {
            AbstractObject::File { attr, .. }
            | AbstractObject::Dir { attr, .. }
            | AbstractObject::Symlink { attr, .. } => attr,
        }
    }

    /// The object's kind.
    pub fn kind(&self) -> ObjKind {
        self.attr().kind
    }

    /// Encodes the abstract array entry: `(generation, object)` in XDR
    /// (paper: "Each entry in the array is encoded using XDR").
    pub fn encode_entry(&self, gen: u32) -> Vec<u8> {
        let mut enc = XdrEncoder::new();
        enc.put_u32(gen);
        self.encode(&mut enc);
        enc.finish()
    }

    /// Decodes an abstract array entry.
    pub fn decode_entry(bytes: &[u8]) -> Result<(u32, AbstractObject), XdrError> {
        let mut dec = XdrDecoder::new(bytes);
        let gen = dec.get_u32()?;
        let obj = AbstractObject::decode(&mut dec)?;
        dec.finish()?;
        Ok((gen, obj))
    }
}

impl XdrEncode for AbstractObject {
    fn encode(&self, enc: &mut XdrEncoder) {
        match self {
            AbstractObject::File { attr, data } => {
                enc.put_u32(0);
                attr.encode(enc);
                enc.put_opaque(data);
            }
            AbstractObject::Dir { attr, entries } => {
                enc.put_u32(1);
                attr.encode(enc);
                encode_vec(entries, enc);
            }
            AbstractObject::Symlink { attr, target } => {
                enc.put_u32(2);
                attr.encode(enc);
                enc.put_string(target);
            }
        }
    }
}

impl XdrDecode for AbstractObject {
    fn decode(dec: &mut XdrDecoder<'_>) -> Result<Self, XdrError> {
        match dec.get_u32()? {
            0 => Ok(AbstractObject::File {
                attr: Fattr::decode(dec)?,
                data: dec.get_opaque()?,
            }),
            1 => Ok(AbstractObject::Dir {
                attr: Fattr::decode(dec)?,
                entries: decode_vec(dec)?,
            }),
            2 => Ok(AbstractObject::Symlink {
                attr: Fattr::decode(dec)?,
                target: dec.get_string()?,
            }),
            v => Err(XdrError::InvalidDiscriminant { type_name: "AbstractObject", value: v }),
        }
    }
}

/// NFS-style status codes for the abstract operations.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum NfsStatus {
    /// No such file or directory.
    NoEnt,
    /// Name already exists.
    Exist,
    /// Not a directory.
    NotDir,
    /// Is a directory.
    IsDir,
    /// Directory not empty.
    NotEmpty,
    /// Stale file handle (generation mismatch).
    Stale,
    /// Invalid argument.
    Inval,
    /// Name too long.
    NameTooLong,
    /// No space (abstract array exhausted).
    NoSpace,
    /// Generic I/O error.
    Io,
}

impl NfsStatus {
    fn code(&self) -> u32 {
        match self {
            NfsStatus::NoEnt => 2,
            NfsStatus::Io => 5,
            NfsStatus::Exist => 17,
            NfsStatus::NotDir => 20,
            NfsStatus::IsDir => 21,
            NfsStatus::Inval => 22,
            NfsStatus::NoSpace => 28,
            NfsStatus::NameTooLong => 63,
            NfsStatus::NotEmpty => 66,
            NfsStatus::Stale => 70,
        }
    }

    fn from_code(v: u32) -> Result<Self, XdrError> {
        Ok(match v {
            2 => NfsStatus::NoEnt,
            5 => NfsStatus::Io,
            17 => NfsStatus::Exist,
            20 => NfsStatus::NotDir,
            21 => NfsStatus::IsDir,
            22 => NfsStatus::Inval,
            28 => NfsStatus::NoSpace,
            63 => NfsStatus::NameTooLong,
            66 => NfsStatus::NotEmpty,
            70 => NfsStatus::Stale,
            _ => return Err(XdrError::InvalidDiscriminant { type_name: "NfsStatus", value: v }),
        })
    }
}

impl XdrEncode for NfsStatus {
    fn encode(&self, enc: &mut XdrEncoder) {
        enc.put_u32(self.code());
    }
}

impl XdrDecode for NfsStatus {
    fn decode(dec: &mut XdrDecoder<'_>) -> Result<Self, XdrError> {
        NfsStatus::from_code(dec.get_u32()?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use base_xdr::{from_bytes, to_bytes};

    fn attr() -> Fattr {
        Fattr::new(ObjKind::File, 0o644, 10, 20, 1_000)
    }

    #[test]
    fn oid_packs_and_unpacks() {
        let oid = Oid { index: 7, gen: 3 };
        assert_eq!(Oid::from_u64(oid.as_u64()), oid);
        assert_eq!(from_bytes::<Oid>(&to_bytes(&oid)).unwrap(), oid);
    }

    #[test]
    fn objects_round_trip() {
        let objs = vec![
            AbstractObject::File { attr: attr(), data: vec![1, 2, 3] },
            AbstractObject::Dir {
                attr: Fattr::new(ObjKind::Dir, 0o755, 0, 0, 5),
                entries: vec![
                    ("a".to_owned(), Oid { index: 1, gen: 1 }),
                    ("b".to_owned(), Oid { index: 2, gen: 4 }),
                ],
            },
            AbstractObject::Symlink {
                attr: Fattr::new(ObjKind::Symlink, 0o777, 0, 0, 5),
                target: "/somewhere/else".to_owned(),
            },
        ];
        for obj in objs {
            let bytes = obj.encode_entry(9);
            let (gen, decoded) = AbstractObject::decode_entry(&bytes).unwrap();
            assert_eq!(gen, 9);
            assert_eq!(decoded, obj);
        }
    }

    #[test]
    fn entry_encoding_is_deterministic() {
        let d1 = AbstractObject::Dir {
            attr: Fattr::new(ObjKind::Dir, 0o755, 0, 0, 5),
            entries: vec![("x".to_owned(), Oid { index: 3, gen: 1 })],
        };
        assert_eq!(d1.encode_entry(1), d1.clone().encode_entry(1));
    }

    #[test]
    fn status_round_trip() {
        for s in [
            NfsStatus::NoEnt,
            NfsStatus::Exist,
            NfsStatus::NotDir,
            NfsStatus::IsDir,
            NfsStatus::NotEmpty,
            NfsStatus::Stale,
            NfsStatus::Inval,
            NfsStatus::NameTooLong,
            NfsStatus::NoSpace,
            NfsStatus::Io,
        ] {
            assert_eq!(from_bytes::<NfsStatus>(&to_bytes(&s)).unwrap(), s);
        }
    }

    #[test]
    fn malformed_object_rejected() {
        assert!(AbstractObject::decode_entry(&[0, 0, 0, 1, 0, 0, 0, 9]).is_err());
    }
}
