//! `BtreeFs`: a BTree-based file system — sequential inode numbers starting
//! at a random offset, XOR-masked handles, lexicographic directories,
//! microsecond timestamps, and an optional deleted-node "trash" that models
//! a memory leak.
//!
//! Non-determinism: the ino base and handle mask are random per instance,
//! `fileid`s are derived with a quirky formula, and timestamps lose
//! sub-microsecond precision (a *resolution* divergence the other two
//! implementations do not have).

use crate::server::{NfsServer, ObjKind, ServerFh, SrvAttr, SrvError, SrvResult, SrvSetAttr};
use rand::rngs::StdRng;
use rand::Rng;
use std::collections::BTreeMap;

/// Truncates to microsecond resolution.
fn clock_us(clock_ns: u64) -> u64 {
    clock_ns / 1_000 * 1_000
}

#[derive(Debug, Clone)]
enum Content {
    File { data: Vec<u8> },
    Dir { entries: BTreeMap<String, u64> },
    Symlink { target: String },
}

#[derive(Debug, Clone)]
struct Node {
    kind: ObjKind,
    mode: u32,
    uid: u32,
    gid: u32,
    nlink: u32,
    atime_ns: u64,
    mtime_ns: u64,
    ctime_ns: u64,
    content: Content,
}

impl Node {
    fn new(kind: ObjKind, mode: u32, clock_ns: u64, content: Content) -> Self {
        let t = clock_us(clock_ns);
        Node {
            kind,
            mode,
            uid: 0,
            gid: 0,
            nlink: 1,
            atime_ns: t,
            mtime_ns: t,
            ctime_ns: t,
            content,
        }
    }

    fn size(&self) -> u64 {
        match &self.content {
            Content::File { data } => data.len() as u64,
            Content::Dir { entries } => entries.len() as u64,
            Content::Symlink { target } => target.len() as u64,
        }
    }
}

/// The BTree file system.
pub struct BtreeFs {
    fsid: u64,
    nodes: BTreeMap<u64, Node>,
    root_ino: u64,
    next_ino: u64,
    /// Per-boot handle mask (handles are `ino ^ mask`).
    mask: u64,
    /// When set, deleted nodes move to `trash` instead of being freed — a
    /// deliberate leak for the rejuvenation experiments.
    pub leaky: bool,
    trash: BTreeMap<u64, Node>,
}

impl BtreeFs {
    /// Creates an empty file system.
    pub fn new(fsid: u64, rng: &mut StdRng) -> Self {
        let base: u64 = u64::from(rng.gen::<u32>()) + 2;
        let mut nodes = BTreeMap::new();
        nodes.insert(
            base,
            Node::new(ObjKind::Dir, 0o755, 0, Content::Dir { entries: BTreeMap::new() }),
        );
        Self {
            fsid,
            nodes,
            root_ino: base,
            next_ino: base + 1,
            mask: rng.gen(),
            leaky: false,
            trash: BTreeMap::new(),
        }
    }

    fn fh_of(&self, ino: u64) -> ServerFh {
        (ino ^ self.mask).to_be_bytes().to_vec()
    }

    fn resolve(&self, fh: &ServerFh) -> SrvResult<u64> {
        if fh.len() != 8 {
            return Err(SrvError::Stale);
        }
        let ino = u64::from_be_bytes(fh.as_slice().try_into().expect("length checked")) ^ self.mask;
        if self.nodes.contains_key(&ino) {
            Ok(ino)
        } else {
            Err(SrvError::Stale)
        }
    }

    fn node(&self, ino: u64) -> &Node {
        &self.nodes[&ino]
    }

    fn node_mut(&mut self, ino: u64) -> &mut Node {
        self.nodes.get_mut(&ino).expect("resolved node")
    }

    fn alloc(&mut self, node: Node) -> u64 {
        let ino = self.next_ino;
        self.next_ino += 1;
        self.nodes.insert(ino, node);
        ino
    }

    fn attr_of(&self, ino: u64) -> SrvAttr {
        let n = self.node(ino);
        SrvAttr {
            kind: n.kind,
            mode: n.mode,
            nlink: match n.kind {
                ObjKind::Dir => 2,
                _ => n.nlink,
            },
            uid: n.uid,
            gid: n.gid,
            size: n.size(),
            fsid: self.fsid,
            // A quirky fileid derivation, stable for the instance.
            fileid: ino.wrapping_mul(2).wrapping_add(1),
            atime_ns: n.atime_ns,
            mtime_ns: n.mtime_ns,
            ctime_ns: n.ctime_ns,
        }
    }

    fn entries(&self, ino: u64) -> SrvResult<&BTreeMap<String, u64>> {
        match &self.node(ino).content {
            Content::Dir { entries } => Ok(entries),
            _ => Err(SrvError::NotDir),
        }
    }

    fn entries_mut(&mut self, ino: u64) -> SrvResult<&mut BTreeMap<String, u64>> {
        match &mut self.node_mut(ino).content {
            Content::Dir { entries } => Ok(entries),
            _ => Err(SrvError::NotDir),
        }
    }

    fn find(&self, dir: u64, name: &str) -> SrvResult<Option<u64>> {
        Ok(self.entries(dir)?.get(name).copied())
    }

    fn touch_dir(&mut self, dir: u64, clock_ns: u64) {
        let t = clock_us(clock_ns);
        let n = self.node_mut(dir);
        n.mtime_ns = t;
        n.ctime_ns = t;
    }

    /// True if `node` is `anc` or lies anywhere below it.
    fn is_within(&self, anc: u64, node: u64) -> bool {
        if anc == node {
            return true;
        }
        if let Content::Dir { entries } = &self.node(anc).content {
            let children: Vec<u64> = entries.values().copied().collect();
            return children.iter().any(|c| self.is_within(*c, node));
        }
        false
    }

    fn unlink_node(&mut self, ino: u64) {
        let n = self.node_mut(ino);
        if n.nlink > 1 {
            n.nlink -= 1;
            return;
        }
        if let Content::Dir { entries } = &n.content {
            let children: Vec<u64> = entries.values().copied().collect();
            for c in children {
                self.unlink_node(c);
            }
        }
        let node = self.nodes.remove(&ino).expect("present");
        if self.leaky {
            self.trash.insert(ino, node);
        }
    }

    fn file_data_mut(&mut self, ino: u64) -> SrvResult<&mut Vec<u8>> {
        match &mut self.node_mut(ino).content {
            Content::File { data } => Ok(data),
            Content::Dir { .. } => Err(SrvError::IsDir),
            Content::Symlink { .. } => Err(SrvError::Inval),
        }
    }

    /// Number of leaked (trashed) nodes.
    pub fn trash_len(&self) -> usize {
        self.trash.len()
    }
}

impl NfsServer for BtreeFs {
    fn name(&self) -> &'static str {
        "btree-fs"
    }

    fn root(&self) -> ServerFh {
        self.fh_of(self.root_ino)
    }

    fn getattr(&self, fh: &ServerFh) -> SrvResult<SrvAttr> {
        let ino = self.resolve(fh)?;
        Ok(self.attr_of(ino))
    }

    fn setattr(&mut self, fh: &ServerFh, sa: SrvSetAttr, clock_ns: u64) -> SrvResult<SrvAttr> {
        let ino = self.resolve(fh)?;
        if let Some(size) = sa.size {
            let data = self.file_data_mut(ino)?;
            data.resize(size as usize, 0);
            self.node_mut(ino).mtime_ns = clock_us(clock_ns);
        }
        let n = self.node_mut(ino);
        if let Some(mode) = sa.mode {
            n.mode = mode;
        }
        if let Some(uid) = sa.uid {
            n.uid = uid;
        }
        if let Some(gid) = sa.gid {
            n.gid = gid;
        }
        n.ctime_ns = clock_us(clock_ns);
        Ok(self.attr_of(ino))
    }

    fn lookup(&mut self, dir: &ServerFh, name: &str) -> SrvResult<(ServerFh, SrvAttr)> {
        let dir = self.resolve(dir)?;
        match self.find(dir, name)? {
            Some(ino) => Ok((self.fh_of(ino), self.attr_of(ino))),
            None => Err(SrvError::NoEnt),
        }
    }

    fn read(
        &mut self,
        fh: &ServerFh,
        offset: u64,
        count: u32,
        clock_ns: u64,
    ) -> SrvResult<Vec<u8>> {
        let ino = self.resolve(fh)?;
        let out = match &self.node(ino).content {
            Content::File { data } => {
                let start = (offset as usize).min(data.len());
                let end = (offset as usize).saturating_add(count as usize).min(data.len());
                data[start..end].to_vec()
            }
            Content::Dir { .. } => return Err(SrvError::IsDir),
            Content::Symlink { .. } => return Err(SrvError::Inval),
        };
        self.node_mut(ino).atime_ns = clock_us(clock_ns);
        Ok(out)
    }

    fn peek(&self, fh: &ServerFh, offset: u64, count: u32) -> SrvResult<Vec<u8>> {
        let ino = self.resolve(fh)?;
        match &self.node(ino).content {
            Content::File { data } => {
                let start = (offset as usize).min(data.len());
                let end = (offset as usize).saturating_add(count as usize).min(data.len());
                Ok(data[start..end].to_vec())
            }
            Content::Dir { .. } => Err(SrvError::IsDir),
            Content::Symlink { .. } => Err(SrvError::Inval),
        }
    }

    fn write(
        &mut self,
        fh: &ServerFh,
        offset: u64,
        data: &[u8],
        clock_ns: u64,
    ) -> SrvResult<SrvAttr> {
        let ino = self.resolve(fh)?;
        let file = self.file_data_mut(ino)?;
        let end = offset as usize + data.len();
        if file.len() < end {
            file.resize(end, 0);
        }
        file[offset as usize..end].copy_from_slice(data);
        let t = clock_us(clock_ns);
        let n = self.node_mut(ino);
        n.mtime_ns = t;
        n.ctime_ns = t;
        Ok(self.attr_of(ino))
    }

    fn create(
        &mut self,
        dir: &ServerFh,
        name: &str,
        mode: u32,
        clock_ns: u64,
        _rng: &mut StdRng,
    ) -> SrvResult<(ServerFh, SrvAttr)> {
        let dir = self.resolve(dir)?;
        if self.find(dir, name)?.is_some() {
            return Err(SrvError::Exist);
        }
        self.entries(dir)?;
        let ino =
            self.alloc(Node::new(ObjKind::File, mode, clock_ns, Content::File { data: vec![] }));
        self.entries_mut(dir)?.insert(name.to_owned(), ino);
        self.touch_dir(dir, clock_ns);
        Ok((self.fh_of(ino), self.attr_of(ino)))
    }

    fn remove(&mut self, dir: &ServerFh, name: &str, clock_ns: u64) -> SrvResult<()> {
        let dir = self.resolve(dir)?;
        let ino = self.find(dir, name)?.ok_or(SrvError::NoEnt)?;
        if self.node(ino).kind == ObjKind::Dir {
            return Err(SrvError::IsDir);
        }
        self.entries_mut(dir)?.remove(name);
        self.unlink_node(ino);
        self.touch_dir(dir, clock_ns);
        Ok(())
    }

    fn rename(
        &mut self,
        from_dir: &ServerFh,
        from_name: &str,
        to_dir: &ServerFh,
        to_name: &str,
        clock_ns: u64,
    ) -> SrvResult<()> {
        let fdir = self.resolve(from_dir)?;
        let tdir = self.resolve(to_dir)?;
        let ino = self.find(fdir, from_name)?.ok_or(SrvError::NoEnt)?;
        // A directory cannot be moved into itself or its own subtree.
        if self.node(ino).kind == ObjKind::Dir && self.is_within(ino, tdir) {
            return Err(SrvError::Inval);
        }
        if let Some(existing) = self.find(tdir, to_name)? {
            if existing == ino {
                return Ok(());
            }
            let src_is_dir = self.node(ino).kind == ObjKind::Dir;
            let dst_is_dir = self.node(existing).kind == ObjKind::Dir;
            match (src_is_dir, dst_is_dir) {
                (true, false) => return Err(SrvError::NotDir),
                (false, true) => return Err(SrvError::IsDir),
                (true, true) => {
                    if !self.entries(existing)?.is_empty() {
                        return Err(SrvError::NotEmpty);
                    }
                }
                (false, false) => {}
            }
            self.entries_mut(tdir)?.remove(to_name);
            self.unlink_node(existing);
        }
        self.entries_mut(fdir)?.remove(from_name);
        self.entries_mut(tdir)?.insert(to_name.to_owned(), ino);
        self.touch_dir(fdir, clock_ns);
        if fdir != tdir {
            self.touch_dir(tdir, clock_ns);
        }
        self.node_mut(ino).ctime_ns = clock_us(clock_ns);
        Ok(())
    }

    fn link(&mut self, fh: &ServerFh, dir: &ServerFh, name: &str, clock_ns: u64) -> SrvResult<()> {
        let ino = self.resolve(fh)?;
        if self.node(ino).kind == ObjKind::Dir {
            return Err(SrvError::IsDir);
        }
        let dir = self.resolve(dir)?;
        if self.find(dir, name)?.is_some() {
            return Err(SrvError::Exist);
        }
        self.entries_mut(dir)?.insert(name.to_owned(), ino);
        let t = clock_us(clock_ns);
        let n = self.node_mut(ino);
        n.nlink += 1;
        n.ctime_ns = t;
        self.touch_dir(dir, clock_ns);
        Ok(())
    }

    fn symlink(
        &mut self,
        dir: &ServerFh,
        name: &str,
        target: &str,
        clock_ns: u64,
        _rng: &mut StdRng,
    ) -> SrvResult<(ServerFh, SrvAttr)> {
        let dir = self.resolve(dir)?;
        if self.find(dir, name)?.is_some() {
            return Err(SrvError::Exist);
        }
        self.entries(dir)?;
        let ino = self.alloc(Node::new(
            ObjKind::Symlink,
            0o777,
            clock_ns,
            Content::Symlink { target: target.to_owned() },
        ));
        self.entries_mut(dir)?.insert(name.to_owned(), ino);
        self.touch_dir(dir, clock_ns);
        Ok((self.fh_of(ino), self.attr_of(ino)))
    }

    fn readlink(&self, fh: &ServerFh) -> SrvResult<String> {
        let ino = self.resolve(fh)?;
        match &self.node(ino).content {
            Content::Symlink { target } => Ok(target.clone()),
            _ => Err(SrvError::Inval),
        }
    }

    fn mkdir(
        &mut self,
        dir: &ServerFh,
        name: &str,
        mode: u32,
        clock_ns: u64,
        _rng: &mut StdRng,
    ) -> SrvResult<(ServerFh, SrvAttr)> {
        let dir = self.resolve(dir)?;
        if self.find(dir, name)?.is_some() {
            return Err(SrvError::Exist);
        }
        self.entries(dir)?;
        let ino = self.alloc(Node::new(
            ObjKind::Dir,
            mode,
            clock_ns,
            Content::Dir { entries: BTreeMap::new() },
        ));
        self.entries_mut(dir)?.insert(name.to_owned(), ino);
        self.touch_dir(dir, clock_ns);
        Ok((self.fh_of(ino), self.attr_of(ino)))
    }

    fn rmdir(&mut self, dir: &ServerFh, name: &str, clock_ns: u64) -> SrvResult<()> {
        let dir = self.resolve(dir)?;
        let ino = self.find(dir, name)?.ok_or(SrvError::NoEnt)?;
        if self.node(ino).kind != ObjKind::Dir {
            return Err(SrvError::NotDir);
        }
        if !self.entries(ino)?.is_empty() {
            return Err(SrvError::NotEmpty);
        }
        self.entries_mut(dir)?.remove(name);
        let node = self.nodes.remove(&ino).expect("present");
        if self.leaky {
            self.trash.insert(ino, node);
        }
        self.touch_dir(dir, clock_ns);
        Ok(())
    }

    fn readdir(&self, dir: &ServerFh) -> SrvResult<Vec<(String, ServerFh)>> {
        let dir = self.resolve(dir)?;
        // Lexicographic order (BTreeMap iteration) — happens to match the
        // abstract spec, unlike the other implementations.
        let out: Vec<(String, u64)> =
            self.entries(dir)?.iter().map(|(n, id)| (n.clone(), *id)).collect();
        Ok(out.into_iter().map(|(n, id)| (n, self.fh_of(id))).collect())
    }

    fn reset(&mut self, rng: &mut StdRng) {
        let leaky = self.leaky;
        *self = BtreeFs::new(self.fsid, rng);
        self.leaky = leaky;
    }

    fn remount(&mut self, rng: &mut StdRng) -> ServerFh {
        self.mask = rng.gen();
        self.fh_of(self.root_ino)
    }

    fn inject_corruption(&mut self, fh: &ServerFh) -> bool {
        let Ok(ino) = self.resolve(fh) else { return false };
        match &mut self.node_mut(ino).content {
            Content::File { data } if !data.is_empty() => {
                data.reverse();
                data.push(0xee);
                true
            }
            _ => false,
        }
    }

    fn footprint_bytes(&self) -> u64 {
        let count = |nodes: &BTreeMap<u64, Node>| -> u64 {
            nodes
                .values()
                .map(|n| match &n.content {
                    Content::File { data } => data.len() as u64,
                    Content::Dir { entries } => entries.len() as u64 * 40,
                    Content::Symlink { target } => target.len() as u64,
                })
                .sum::<u64>()
                + nodes.len() as u64 * 112
        };
        count(&self.nodes) + count(&self.trash)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn fs() -> (BtreeFs, StdRng) {
        let mut rng = StdRng::seed_from_u64(3);
        let fs = BtreeFs::new(0x33, &mut rng);
        (fs, rng)
    }

    #[test]
    fn timestamps_truncate_to_microseconds() {
        let (mut fs, mut rng) = fs();
        let root = fs.root();
        let (_, attr) = fs.create(&root, "f", 0o644, 1_234_567_891, &mut rng).unwrap();
        assert_eq!(attr.mtime_ns, 1_234_567_000, "sub-µs precision must be dropped");
    }

    #[test]
    fn readdir_is_sorted_here() {
        let (mut fs, mut rng) = fs();
        let root = fs.root();
        fs.create(&root, "zz", 0o644, 1, &mut rng).unwrap();
        fs.create(&root, "aa", 0o644, 2, &mut rng).unwrap();
        let names: Vec<String> = fs.readdir(&root).unwrap().into_iter().map(|(n, _)| n).collect();
        assert_eq!(names, vec!["aa", "zz"]);
    }

    #[test]
    fn leak_accumulates_in_trash() {
        let (mut fs, mut rng) = fs();
        fs.leaky = true;
        let root = fs.root();
        for i in 0..5 {
            let name = format!("f{i}");
            fs.create(&root, &name, 0o644, 1, &mut rng).unwrap();
            fs.remove(&root, &name, 2).unwrap();
        }
        assert_eq!(fs.trash_len(), 5);
        let before = fs.footprint_bytes();
        fs.reset(&mut rng);
        assert_eq!(fs.trash_len(), 0);
        assert!(fs.footprint_bytes() < before, "reset reclaims the trash");
    }

    #[test]
    fn handles_are_masked_inos() {
        let (mut fs, mut rng) = fs();
        let root = fs.root();
        let (fh, attr) = fs.create(&root, "f", 0o644, 1, &mut rng).unwrap();
        // The handle is not the raw fileid bytes.
        assert_ne!(fh, attr.fileid.to_be_bytes().to_vec());
        assert_eq!(fs.getattr(&fh).unwrap().fileid, attr.fileid);
    }

    #[test]
    fn remount_keeps_fileids_stable() {
        let (mut fs, mut rng) = fs();
        let root = fs.root();
        let (_, before) = fs.create(&root, "f", 0o644, 1, &mut rng).unwrap();
        let new_root = fs.remount(&mut rng);
        let (_, after) = fs.lookup(&new_root, "f").unwrap();
        assert_eq!(before.fileid, after.fileid, "<fsid,fileid> must be persistent (§3.4)");
        assert_eq!(before.fsid, after.fsid);
    }
}
