//! A POSIX-flavoured, path-based client shim.
//!
//! In the paper's Figure 2 the application talks paths to the kernel NFS
//! client, which turns them into handle-based NFS calls (lookups walk the
//! path, a dentry cache avoids re-walking). [`PosixDriver`] plays that
//! role: it executes a program of path-level [`FsCall`]s by expanding each
//! into handle-based [`NfsOp`]s, maintaining a path → oid cache, and
//! collecting path-level results. It implements [`NfsDriver`], so the same
//! program runs unchanged against the replicated service (via
//! [`crate::relay::RelayActor`]) or the unreplicated baseline
//! ([`crate::relay::DirectActor`]).

use crate::ops::{NfsOp, NfsReply, SetAttrs};
use crate::relay::NfsDriver;
use crate::spec::{Fattr, NfsStatus, Oid};
use std::collections::{HashMap, VecDeque};

/// Write/read transfer size (NFS-style 8 KiB).
const CHUNK: u32 = 8192;

/// A path-level file-system call.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FsCall {
    /// `mkdir -p`: creates every missing component.
    MkdirP(String),
    /// Creates (or truncates) a file and writes its contents.
    WriteFile(String, Vec<u8>),
    /// Reads a whole file.
    ReadFile(String),
    /// Reads attributes.
    Stat(String),
    /// Lists a directory (names only, sorted — the common spec guarantees
    /// the order).
    List(String),
    /// Removes a file or symlink.
    Remove(String),
    /// Removes an empty directory.
    Rmdir(String),
    /// Renames/moves (parents must exist).
    Rename(String, String),
    /// Creates a symlink at the first path pointing at the second.
    Symlink(String, String),
}

/// The path-level outcome of one [`FsCall`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FsOut {
    /// Success with no payload.
    Ok,
    /// File contents.
    Data(Vec<u8>),
    /// Attributes.
    Attr(Fattr),
    /// Directory entries.
    Names(Vec<String>),
    /// Failure.
    Err(NfsStatus),
}

/// Splits a path into components, ignoring empty segments.
fn components(path: &str) -> Vec<String> {
    path.split('/').filter(|c| !c.is_empty()).map(str::to_owned).collect()
}

fn parent_and_name(path: &str) -> (String, String) {
    let mut parts = components(path);
    let name = parts.pop().unwrap_or_default();
    (format!("/{}", parts.join("/")), name)
}

#[derive(Debug)]
enum Stage {
    /// Walking path components; `create` turns NoEnt into Mkdir along the
    /// way (for MkdirP) or into Create at the final component (for
    /// WriteFile).
    Walk { walked: String, remaining: VecDeque<String>, create: CreateMode },
    /// Executing the call body once paths are resolved.
    Action,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum CreateMode {
    No,
    Dirs,
    FinalFile,
}

/// One call mid-execution.
#[derive(Debug)]
struct Active {
    call: FsCall,
    stage: Stage,
    /// For WriteFile: remaining data offset. For ReadFile: accumulated
    /// data + next offset.
    cursor: u64,
    buf: Vec<u8>,
    /// For Rename: whether the source parent has been resolved.
    second_walk_done: bool,
}

/// Executes a program of path-level calls over the NFS op stream.
pub struct PosixDriver {
    program: VecDeque<FsCall>,
    cache: HashMap<String, Oid>,
    active: Option<Active>,
    /// `(call, outcome)` log, one entry per program step.
    pub results: Vec<(FsCall, FsOut)>,
}

impl PosixDriver {
    /// Creates a driver for `program`.
    pub fn new(program: Vec<FsCall>) -> Self {
        let mut cache = HashMap::new();
        cache.insert("/".to_owned(), Oid::ROOT);
        Self { program: program.into(), cache, active: None, results: Vec::new() }
    }

    /// The cached oid of `path`, if resolved.
    pub fn resolved(&self, path: &str) -> Option<Oid> {
        self.cache.get(&normalize(path)).copied()
    }

    fn finish(&mut self, out: FsOut) {
        let active = self.active.take().expect("finishing an active call");
        self.results.push((active.call, out));
    }

    /// Starts walking toward `path`; returns the first op, or None if the
    /// path is fully cached already.
    fn start_walk(&mut self, path: &str, create: CreateMode) -> Option<NfsOp> {
        let norm = normalize(path);
        // Longest cached prefix.
        let mut walked = "/".to_owned();
        let mut remaining: VecDeque<String> = components(&norm).into();
        while let Some(next) = remaining.front() {
            let candidate = join(&walked, next);
            if !self.cache.contains_key(&candidate) {
                break;
            }
            walked = candidate;
            remaining.pop_front();
        }
        if remaining.is_empty() {
            return None;
        }
        let dir = self.cache[&walked];
        let name = remaining.front().expect("checked non-empty").clone();
        if let Some(a) = self.active.as_mut() {
            a.stage = Stage::Walk { walked, remaining, create };
        }
        Some(NfsOp::Lookup { dir, name })
    }

    /// Emits the action ops once the relevant paths are cached. Returns
    /// `None` if the call finished immediately.
    fn action_op(&mut self) -> Option<NfsOp> {
        let active = self.active.as_mut().expect("active call");
        active.stage = Stage::Action;
        match &active.call {
            FsCall::MkdirP(_) => {
                self.finish(FsOut::Ok);
                None
            }
            FsCall::WriteFile(path, _) => {
                // Truncate first (the file may pre-exist with longer
                // contents), then stream the chunks from `absorb`.
                let fh = self.cache[&normalize(path)];
                Some(NfsOp::Setattr {
                    fh,
                    attrs: SetAttrs { size: Some(0), ..Default::default() },
                })
            }
            FsCall::ReadFile(path) => {
                let fh = self.cache[&normalize(path)];
                Some(NfsOp::Read { fh, offset: active.cursor, count: CHUNK })
            }
            FsCall::Stat(path) => Some(NfsOp::Getattr { fh: self.cache[&normalize(path)] }),
            FsCall::List(path) => Some(NfsOp::Readdir { dir: self.cache[&normalize(path)] }),
            FsCall::Remove(path) => {
                let (parent, name) = parent_and_name(path);
                Some(NfsOp::Remove { dir: self.cache[&parent], name })
            }
            FsCall::Rmdir(path) => {
                let (parent, name) = parent_and_name(path);
                Some(NfsOp::Rmdir { dir: self.cache[&parent], name })
            }
            FsCall::Rename(from, to) => {
                let (fp, fname) = parent_and_name(from);
                let (tp, tname) = parent_and_name(to);
                Some(NfsOp::Rename {
                    from_dir: self.cache[&fp],
                    from_name: fname,
                    to_dir: self.cache[&tp],
                    to_name: tname,
                })
            }
            FsCall::Symlink(at, target) => {
                let (parent, name) = parent_and_name(at);
                Some(NfsOp::Symlink { dir: self.cache[&parent], name, target: target.clone() })
            }
        }
    }

    /// Begins the next program call. Returns its first op, or records an
    /// immediate result and returns None (caller loops).
    fn begin(&mut self, call: FsCall) -> Option<NfsOp> {
        let (walk_path, create) = match &call {
            FsCall::MkdirP(p) => (p.clone(), CreateMode::Dirs),
            FsCall::WriteFile(p, _) => (p.clone(), CreateMode::FinalFile),
            FsCall::ReadFile(p) | FsCall::Stat(p) | FsCall::List(p) => (p.clone(), CreateMode::No),
            // Structural ops only need the parents resolved.
            FsCall::Remove(p) | FsCall::Rmdir(p) | FsCall::Symlink(p, _) => {
                (parent_and_name(p).0, CreateMode::No)
            }
            FsCall::Rename(from, _) => (parent_and_name(from).0, CreateMode::No),
        };
        self.active = Some(Active {
            call,
            stage: Stage::Action, // start_walk overwrites when walking
            cursor: 0,
            buf: Vec::new(),
            second_walk_done: false,
        });
        match self.start_walk(&walk_path, create) {
            Some(op) => Some(op),
            None => self.walk_complete(),
        }
    }

    /// Called when the current walk has everything cached; may start the
    /// second walk (Rename) or move to the action.
    fn walk_complete(&mut self) -> Option<NfsOp> {
        let needs_second = {
            let a = self.active.as_ref().expect("active");
            matches!(a.call, FsCall::Rename(_, _)) && !a.second_walk_done
        };
        if needs_second {
            let to_parent = {
                let a = self.active.as_mut().expect("active");
                a.second_walk_done = true;
                let FsCall::Rename(_, to) = &a.call else { unreachable!() };
                parent_and_name(to).0
            };
            if let Some(op) = self.start_walk(&to_parent, CreateMode::No) {
                return Some(op);
            }
        }
        self.action_op()
    }

    /// Digests the reply to the op we issued; returns the next op or None
    /// if the current call completed.
    fn absorb(&mut self, op: &NfsOp, reply: &NfsReply) -> Option<NfsOp> {
        enum WalkEvent {
            Resolved { child: String, oid: Oid },
            Missing { create: CreateMode, is_final: bool, dir: Oid, name: String },
            Fail(NfsStatus),
        }

        // Phase 1: extract what happened under a short borrow.
        let walk_event = {
            let active = self.active.as_ref()?;
            match &active.stage {
                Stage::Walk { walked, remaining, create, .. } => Some(match (op, reply) {
                    (
                        NfsOp::Lookup { name, .. }
                        | NfsOp::Mkdir { name, .. }
                        | NfsOp::Create { name, .. },
                        NfsReply::Handle { fh, .. },
                    ) => WalkEvent::Resolved { child: join(walked, name), oid: *fh },
                    (NfsOp::Lookup { dir, name }, NfsReply::Error(NfsStatus::NoEnt)) => {
                        WalkEvent::Missing {
                            create: *create,
                            is_final: remaining.len() == 1,
                            dir: *dir,
                            name: name.clone(),
                        }
                    }
                    (_, NfsReply::Error(s)) => WalkEvent::Fail(*s),
                    _ => WalkEvent::Fail(NfsStatus::Io),
                }),
                Stage::Action => None,
            }
        };

        // Phase 2: act on it.
        if let Some(event) = walk_event {
            return match event {
                WalkEvent::Resolved { child, oid } => {
                    self.cache.insert(child.clone(), oid);
                    let empty = {
                        let a = self.active.as_mut().expect("active");
                        let Stage::Walk { walked, remaining, .. } = &mut a.stage else {
                            unreachable!("walk event implies walk stage")
                        };
                        *walked = child;
                        remaining.pop_front();
                        remaining.is_empty()
                    };
                    if empty {
                        self.walk_complete()
                    } else {
                        self.next_walk_op()
                    }
                }
                WalkEvent::Missing { create, is_final, dir, name } => match (create, is_final) {
                    (CreateMode::Dirs, _) => Some(NfsOp::Mkdir { dir, name, mode: 0o755 }),
                    (CreateMode::FinalFile, true) => {
                        Some(NfsOp::Create { dir, name, mode: 0o644 })
                    }
                    _ => {
                        self.finish(FsOut::Err(NfsStatus::NoEnt));
                        None
                    }
                },
                WalkEvent::Fail(s) => {
                    self.finish(FsOut::Err(s));
                    None
                }
            };
        }

        // Action stage.
        let active = self.active.as_mut().expect("checked above");
        match (&active.call, op, reply) {
            // WriteFile: the truncating setattr completed; start writing.
            (FsCall::WriteFile(path, data), NfsOp::Setattr { .. }, NfsReply::Attr(_)) => {
                if data.is_empty() {
                    self.finish(FsOut::Ok);
                    return None;
                }
                let fh = self.cache[&normalize(path)];
                let len = (data.len() as u64).min(u64::from(CHUNK)) as usize;
                let chunk = data[..len].to_vec();
                active.cursor = len as u64;
                Some(NfsOp::Write { fh, offset: 0, data: chunk })
            }
            (FsCall::WriteFile(path, data), NfsOp::Write { .. }, NfsReply::Attr(_)) => {
                if active.cursor < data.len() as u64 {
                    let fh = self.cache[&normalize(path)];
                    let off = active.cursor;
                    let len = (data.len() as u64 - off).min(u64::from(CHUNK)) as usize;
                    let chunk = data[off as usize..off as usize + len].to_vec();
                    active.cursor += len as u64;
                    Some(NfsOp::Write { fh, offset: off, data: chunk })
                } else {
                    self.finish(FsOut::Ok);
                    None
                }
            }
            (FsCall::ReadFile(path), _, NfsReply::Data(d)) => {
                active.buf.extend_from_slice(d);
                if d.len() == CHUNK as usize {
                    let fh = self.cache[&normalize(path)];
                    active.cursor += d.len() as u64;
                    Some(NfsOp::Read { fh, offset: active.cursor, count: CHUNK })
                } else {
                    let data = std::mem::take(&mut active.buf);
                    self.finish(FsOut::Data(data));
                    None
                }
            }
            (FsCall::Stat(_), _, NfsReply::Attr(a)) => {
                let a = *a;
                self.finish(FsOut::Attr(a));
                None
            }
            (FsCall::List(_), _, NfsReply::Entries(es)) => {
                let names = es.iter().map(|(n, _)| n.clone()).collect();
                self.finish(FsOut::Names(names));
                None
            }
            (FsCall::Remove(p) | FsCall::Rmdir(p), _, NfsReply::Ok) => {
                let gone = normalize(p);
                self.cache
                    .retain(|path, _| path != &gone && !path.starts_with(&format!("{gone}/")));
                self.finish(FsOut::Ok);
                None
            }
            (FsCall::Rename(from, to), _, NfsReply::Ok) => {
                // Move the cache entries under the old path; drop whatever
                // the destination replaced.
                let old = normalize(from);
                let new = normalize(to);
                let moved: Vec<(String, Oid)> = self
                    .cache
                    .iter()
                    .filter(|(p, _)| **p == old || p.starts_with(&format!("{old}/")))
                    .map(|(p, o)| (format!("{new}{}", &p[old.len()..]), *o))
                    .collect();
                self.cache.retain(|p, _| {
                    p != &old
                        && !p.starts_with(&format!("{old}/"))
                        && p != &new
                        && !p.starts_with(&format!("{new}/"))
                });
                self.cache.extend(moved);
                self.finish(FsOut::Ok);
                None
            }
            (FsCall::Symlink(at, _), _, NfsReply::Handle { fh, .. }) => {
                let p = normalize(at);
                let fh = *fh;
                self.cache.insert(p, fh);
                self.finish(FsOut::Ok);
                None
            }
            (_, _, NfsReply::Error(s)) => {
                let s = *s;
                self.finish(FsOut::Err(s));
                None
            }
            _ => {
                self.finish(FsOut::Err(NfsStatus::Io));
                None
            }
        }
    }


    fn next_walk_op(&mut self) -> Option<NfsOp> {
        let (dir, name) = match &self.active.as_ref().expect("active").stage {
            Stage::Walk { walked, remaining, .. } => {
                (self.cache[walked], remaining.front().expect("non-empty").clone())
            }
            _ => unreachable!("only called mid-walk"),
        };
        Some(NfsOp::Lookup { dir, name })
    }
}

fn normalize(path: &str) -> String {
    let c = components(path);
    if c.is_empty() {
        "/".to_owned()
    } else {
        format!("/{}", c.join("/"))
    }
}

fn join(dir: &str, name: &str) -> String {
    if dir == "/" {
        format!("/{name}")
    } else {
        format!("{dir}/{name}")
    }
}

impl NfsDriver for PosixDriver {
    fn next(&mut self, last: Option<(&NfsOp, &NfsReply)>) -> Option<NfsOp> {
        if let Some((op, reply)) = last {
            if let Some(next) = self.absorb(op, reply) {
                return Some(next);
            }
        }
        loop {
            if self.active.is_some() {
                // An active call that produced no op means it finished in
                // absorb(); `active` would be None. Getting here with an
                // active call is a walk that found everything cached.
                if let Some(op) = self.walk_complete() {
                    return Some(op);
                }
                continue;
            }
            let call = self.program.pop_front()?;
            if let Some(op) = self.begin(call) {
                return Some(op);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inode_fs::InodeFs;
    use crate::wrapper::NfsWrapper;
    use base::{ModifyLog, Wrapper};
    use base_pbft::ExecEnv;
    use rand::SeedableRng;

    /// Runs a program directly against one wrapper (no network).
    fn run(program: Vec<FsCall>) -> Vec<(FsCall, FsOut)> {
        let mut rng = rand::rngs::StdRng::seed_from_u64(11);
        let mut w = NfsWrapper::with_capacity(InodeFs::new(0x77, &mut rng), 512);
        let mut mods = ModifyLog::new();
        let mut driver = PosixDriver::new(program);
        let mut last: Option<(NfsOp, NfsReply)> = None;
        let mut ts = 0u64;
        let mut guard = 0;
        loop {
            guard += 1;
            assert!(guard < 100_000, "driver did not terminate");
            let next = driver.next(last.as_ref().map(|(o, r)| (o, r)));
            let Some(op) = next else { break };
            ts += 1;
            let mut env = ExecEnv::new(ts * 3, &mut rng);
            let bytes = w.execute(&op.to_bytes(), 1, &ts.to_be_bytes(), false, &mut mods, &mut env);
            let reply = NfsReply::from_bytes(&bytes).expect("reply");
            last = Some((op, reply));
        }
        driver.results
    }

    #[test]
    fn mkdir_p_creates_nested_paths() {
        let results = run(vec![
            FsCall::MkdirP("/a/b/c".into()),
            FsCall::List("/a".into()),
            FsCall::List("/a/b".into()),
        ]);
        assert_eq!(results[0].1, FsOut::Ok);
        assert_eq!(results[1].1, FsOut::Names(vec!["b".into()]));
        assert_eq!(results[2].1, FsOut::Names(vec!["c".into()]));
    }

    #[test]
    fn write_then_read_round_trips_large_files() {
        let data: Vec<u8> = (0..40_000u32).map(|i| (i % 251) as u8).collect();
        let results = run(vec![
            FsCall::MkdirP("/docs".into()),
            FsCall::WriteFile("/docs/big.bin".into(), data.clone()),
            FsCall::ReadFile("/docs/big.bin".into()),
            FsCall::Stat("/docs/big.bin".into()),
        ]);
        assert_eq!(results[1].1, FsOut::Ok);
        assert_eq!(results[2].1, FsOut::Data(data));
        match &results[3].1 {
            FsOut::Attr(a) => assert_eq!(a.size, 40_000),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn remove_and_missing_paths() {
        let results = run(vec![
            FsCall::WriteFile("/f.txt".into(), b"x".to_vec()),
            FsCall::Remove("/f.txt".into()),
            FsCall::ReadFile("/f.txt".into()),
            FsCall::Stat("/never/existed".into()),
        ]);
        assert_eq!(results[1].1, FsOut::Ok);
        assert_eq!(results[2].1, FsOut::Err(NfsStatus::NoEnt));
        assert_eq!(results[3].1, FsOut::Err(NfsStatus::NoEnt));
    }

    #[test]
    fn rename_moves_files_and_updates_cache() {
        let results = run(vec![
            FsCall::MkdirP("/a".into()),
            FsCall::MkdirP("/b".into()),
            FsCall::WriteFile("/a/x".into(), b"payload".to_vec()),
            FsCall::Rename("/a/x".into(), "/b/y".into()),
            FsCall::ReadFile("/b/y".into()),
            FsCall::ReadFile("/a/x".into()),
        ]);
        assert_eq!(results[3].1, FsOut::Ok);
        assert_eq!(results[4].1, FsOut::Data(b"payload".to_vec()));
        assert_eq!(results[5].1, FsOut::Err(NfsStatus::NoEnt));
    }

    #[test]
    fn overwrite_truncates() {
        let results = run(vec![
            FsCall::WriteFile("/f".into(), b"a long first version".to_vec()),
            FsCall::WriteFile("/f".into(), b"v2".to_vec()),
            FsCall::ReadFile("/f".into()),
        ]);
        assert_eq!(results[2].1, FsOut::Data(b"v2".to_vec()));
    }

    #[test]
    fn symlink_and_rmdir() {
        let results = run(vec![
            FsCall::MkdirP("/d".into()),
            FsCall::Symlink("/d/link".into(), "/elsewhere".into()),
            FsCall::List("/d".into()),
            FsCall::Remove("/d/link".into()),
            FsCall::Rmdir("/d".into()),
            FsCall::List("/".into()),
        ]);
        assert_eq!(results[1].1, FsOut::Ok);
        assert_eq!(results[2].1, FsOut::Names(vec!["link".into()]));
        assert_eq!(results[4].1, FsOut::Ok);
        assert_eq!(results[5].1, FsOut::Names(vec![]));
    }
}
