//! `FlatFs`: a flat path-table file system — the directory structure is a
//! single `path → tag` map (directories are just prefixes plus a marker
//! node), and objects live in a separate `tag → node` store keyed by random
//! 64-bit tags.
//!
//! This is the fourth architecture family (after inode-table,
//! log-structured and BTree): directory renames rewrite whole key ranges of
//! the path table, `readdir` order follows a per-boot salted hash of the
//! name, handles are `tag ⊕ boot-salt` (volatile across reboots, stable
//! across renames like real NFS handles), and `fileid`s are the random
//! tags. With four distinct implementations, a four-replica group can run
//! a different one on every replica — the paper's ideal
//! opportunistic-N-version deployment.

use crate::server::{NfsServer, ObjKind, ServerFh, SrvAttr, SrvError, SrvResult, SrvSetAttr};
use rand::rngs::StdRng;
use rand::Rng;
use std::collections::HashMap;

fn hash64(salt: u64, s: &str) -> u64 {
    let mut h: u64 = salt ^ 0xcbf2_9ce4_8422_2325;
    for b in s.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

#[derive(Debug, Clone)]
enum Payload {
    File(Vec<u8>),
    Dir,
    Symlink(String),
}

#[derive(Debug, Clone)]
struct Node {
    mode: u32,
    uid: u32,
    gid: u32,
    nlink: u32,
    atime_ns: u64,
    mtime_ns: u64,
    ctime_ns: u64,
    payload: Payload,
}

impl Node {
    fn new(kind: ObjKind, mode: u32, clock_ns: u64) -> Self {
        let payload = match kind {
            ObjKind::File => Payload::File(Vec::new()),
            ObjKind::Dir => Payload::Dir,
            ObjKind::Symlink => Payload::Symlink(String::new()),
        };
        Node {
            mode,
            uid: 0,
            gid: 0,
            nlink: 1,
            atime_ns: clock_ns,
            mtime_ns: clock_ns,
            ctime_ns: clock_ns,
            payload,
        }
    }

    fn kind(&self) -> ObjKind {
        match self.payload {
            Payload::File(_) => ObjKind::File,
            Payload::Dir => ObjKind::Dir,
            Payload::Symlink(_) => ObjKind::Symlink,
        }
    }
}

/// The flat path-table file system.
pub struct FlatFs {
    fsid: u64,
    /// Directory structure: full path → object tag. The root is "".
    paths: HashMap<String, u64>,
    /// Object store: tag → node.
    nodes: HashMap<u64, Node>,
    /// One representative (canonical) path per tag.
    tag_path: HashMap<u64, String>,
    /// Per-boot handle salt.
    salt: u64,
    root_tag: u64,
}

impl FlatFs {
    /// Creates an empty file system.
    pub fn new(fsid: u64, rng: &mut StdRng) -> Self {
        let root_tag: u64 = rng.gen();
        let mut fs = Self {
            fsid,
            paths: HashMap::new(),
            nodes: HashMap::new(),
            tag_path: HashMap::new(),
            salt: rng.gen(),
            root_tag,
        };
        fs.paths.insert(String::new(), root_tag);
        fs.tag_path.insert(root_tag, String::new());
        fs.nodes.insert(root_tag, Node::new(ObjKind::Dir, 0o755, 0));
        fs
    }

    fn fh_of(&self, tag: u64) -> ServerFh {
        (tag ^ self.salt).to_be_bytes().to_vec()
    }

    fn resolve(&self, fh: &ServerFh) -> SrvResult<u64> {
        if fh.len() != 8 {
            return Err(SrvError::Stale);
        }
        let tag = u64::from_be_bytes(fh.as_slice().try_into().expect("length checked")) ^ self.salt;
        if self.nodes.contains_key(&tag) {
            Ok(tag)
        } else {
            Err(SrvError::Stale)
        }
    }

    fn dir_path(&self, tag: u64) -> SrvResult<String> {
        match self.nodes.get(&tag).map(Node::kind) {
            Some(ObjKind::Dir) => Ok(self.tag_path[&tag].clone()),
            Some(_) => Err(SrvError::NotDir),
            None => Err(SrvError::Stale),
        }
    }

    fn child_path(dir: &str, name: &str) -> String {
        if dir.is_empty() {
            name.to_owned()
        } else {
            format!("{dir}/{name}")
        }
    }

    /// Direct children of `dir`, in salted-hash order.
    fn children(&self, dir: &str) -> Vec<(String, u64)> {
        let prefix = if dir.is_empty() { String::new() } else { format!("{dir}/") };
        let mut out = Vec::new();
        for (path, tag) in &self.paths {
            if path.is_empty() || !path.starts_with(&prefix) {
                continue;
            }
            let rest = &path[prefix.len()..];
            if !rest.is_empty() && !rest.contains('/') {
                out.push((rest.to_owned(), *tag));
            }
        }
        out.sort_by_key(|(name, _)| hash64(self.salt, name));
        out
    }

    fn attr_of(&self, tag: u64) -> SrvAttr {
        let n = &self.nodes[&tag];
        let size = match &n.payload {
            Payload::Dir => self.children(&self.tag_path[&tag]).len() as u64,
            Payload::File(d) => d.len() as u64,
            Payload::Symlink(t) => t.len() as u64,
        };
        SrvAttr {
            kind: n.kind(),
            mode: n.mode,
            nlink: match n.kind() {
                ObjKind::Dir => 2,
                _ => n.nlink,
            },
            uid: n.uid,
            gid: n.gid,
            size,
            fsid: self.fsid,
            fileid: tag,
            atime_ns: n.atime_ns,
            mtime_ns: n.mtime_ns,
            ctime_ns: n.ctime_ns,
        }
    }

    fn fresh_tag(&self, rng: &mut StdRng) -> u64 {
        loop {
            let t: u64 = rng.gen();
            if !self.nodes.contains_key(&t) {
                return t;
            }
        }
    }

    fn touch(&mut self, tag: u64, clock_ns: u64) {
        if let Some(n) = self.nodes.get_mut(&tag) {
            n.mtime_ns = clock_ns;
            n.ctime_ns = clock_ns;
        }
    }

    fn file_data_mut(&mut self, tag: u64) -> SrvResult<&mut Vec<u8>> {
        match self.nodes.get_mut(&tag).map(|n| &mut n.payload) {
            Some(Payload::File(d)) => Ok(d),
            Some(Payload::Dir) => Err(SrvError::IsDir),
            Some(Payload::Symlink(_)) => Err(SrvError::Inval),
            None => Err(SrvError::Stale),
        }
    }

    /// Removes the path binding and drops one link; reclaims the node
    /// (recursively for directories) at zero links.
    fn unlink_path(&mut self, path: &str) {
        let Some(tag) = self.paths.remove(path) else { return };
        if self.tag_path.get(&tag).map(String::as_str) == Some(path) {
            // Re-point the canonical path if another link remains.
            let other = self.paths.iter().find(|(_, t)| **t == tag).map(|(p, _)| p.clone());
            match other {
                Some(p) => {
                    self.tag_path.insert(tag, p);
                }
                None => {
                    self.tag_path.remove(&tag);
                }
            }
        }
        let n = self.nodes.get_mut(&tag).expect("path implies node");
        if n.nlink > 1 {
            n.nlink -= 1;
            return;
        }
        if n.kind() == ObjKind::Dir {
            let prefix = format!("{path}/");
            let mut children: Vec<String> =
                self.paths.keys().filter(|p| p.starts_with(&prefix)).cloned().collect();
            // Deepest first so directories empty out bottom-up.
            children.sort_by_key(|p| std::cmp::Reverse(p.len()));
            for c in children {
                self.unlink_path(&c);
            }
        }
        self.nodes.remove(&tag);
    }

    /// Moves the subtree rooted at `from` to `to` (path rewriting).
    fn move_subtree(&mut self, from: &str, to: &str) {
        let from_prefix = format!("{from}/");
        let affected: Vec<String> = self
            .paths
            .keys()
            .filter(|p| *p == from || p.starts_with(&from_prefix))
            .cloned()
            .collect();
        for old in affected {
            let new = format!("{to}{}", &old[from.len()..]);
            let tag = self.paths.remove(&old).expect("listed above");
            if self.tag_path.get(&tag).map(String::as_str) == Some(old.as_str()) {
                self.tag_path.insert(tag, new.clone());
            }
            self.paths.insert(new, tag);
        }
    }
}

impl NfsServer for FlatFs {
    fn name(&self) -> &'static str {
        "flat-fs"
    }

    fn root(&self) -> ServerFh {
        self.fh_of(self.root_tag)
    }

    fn getattr(&self, fh: &ServerFh) -> SrvResult<SrvAttr> {
        let tag = self.resolve(fh)?;
        Ok(self.attr_of(tag))
    }

    fn setattr(&mut self, fh: &ServerFh, sa: SrvSetAttr, clock_ns: u64) -> SrvResult<SrvAttr> {
        let tag = self.resolve(fh)?;
        if let Some(size) = sa.size {
            let d = self.file_data_mut(tag)?;
            d.resize(size as usize, 0);
            self.nodes.get_mut(&tag).expect("resolved").mtime_ns = clock_ns;
        }
        let n = self.nodes.get_mut(&tag).expect("resolved");
        if let Some(mode) = sa.mode {
            n.mode = mode;
        }
        if let Some(uid) = sa.uid {
            n.uid = uid;
        }
        if let Some(gid) = sa.gid {
            n.gid = gid;
        }
        n.ctime_ns = clock_ns;
        Ok(self.attr_of(tag))
    }

    fn lookup(&mut self, dir: &ServerFh, name: &str) -> SrvResult<(ServerFh, SrvAttr)> {
        let d = self.dir_path(self.resolve(dir)?)?;
        match self.paths.get(&Self::child_path(&d, name)) {
            Some(&tag) => Ok((self.fh_of(tag), self.attr_of(tag))),
            None => Err(SrvError::NoEnt),
        }
    }

    fn read(
        &mut self,
        fh: &ServerFh,
        offset: u64,
        count: u32,
        clock_ns: u64,
    ) -> SrvResult<Vec<u8>> {
        let tag = self.resolve(fh)?;
        let out = match &self.nodes[&tag].payload {
            Payload::File(d) => {
                let start = (offset as usize).min(d.len());
                let end = (offset as usize).saturating_add(count as usize).min(d.len());
                d[start..end].to_vec()
            }
            Payload::Dir => return Err(SrvError::IsDir),
            Payload::Symlink(_) => return Err(SrvError::Inval),
        };
        self.nodes.get_mut(&tag).expect("resolved").atime_ns = clock_ns;
        Ok(out)
    }

    fn peek(&self, fh: &ServerFh, offset: u64, count: u32) -> SrvResult<Vec<u8>> {
        let tag = self.resolve(fh)?;
        match &self.nodes[&tag].payload {
            Payload::File(d) => {
                let start = (offset as usize).min(d.len());
                let end = (offset as usize).saturating_add(count as usize).min(d.len());
                Ok(d[start..end].to_vec())
            }
            Payload::Dir => Err(SrvError::IsDir),
            Payload::Symlink(_) => Err(SrvError::Inval),
        }
    }

    fn write(
        &mut self,
        fh: &ServerFh,
        offset: u64,
        data: &[u8],
        clock_ns: u64,
    ) -> SrvResult<SrvAttr> {
        let tag = self.resolve(fh)?;
        let file = self.file_data_mut(tag)?;
        let end = offset as usize + data.len();
        if file.len() < end {
            file.resize(end, 0);
        }
        file[offset as usize..end].copy_from_slice(data);
        let n = self.nodes.get_mut(&tag).expect("resolved");
        n.mtime_ns = clock_ns;
        n.ctime_ns = clock_ns;
        Ok(self.attr_of(tag))
    }

    fn create(
        &mut self,
        dir: &ServerFh,
        name: &str,
        mode: u32,
        clock_ns: u64,
        rng: &mut StdRng,
    ) -> SrvResult<(ServerFh, SrvAttr)> {
        let d = self.dir_path(self.resolve(dir)?)?;
        let child = Self::child_path(&d, name);
        if self.paths.contains_key(&child) {
            return Err(SrvError::Exist);
        }
        let tag = self.fresh_tag(rng);
        self.nodes.insert(tag, Node::new(ObjKind::File, mode, clock_ns));
        self.paths.insert(child.clone(), tag);
        self.tag_path.insert(tag, child);
        let dtag = self.paths[&d];
        self.touch(dtag, clock_ns);
        Ok((self.fh_of(tag), self.attr_of(tag)))
    }

    fn remove(&mut self, dir: &ServerFh, name: &str, clock_ns: u64) -> SrvResult<()> {
        let d = self.dir_path(self.resolve(dir)?)?;
        let child = Self::child_path(&d, name);
        match self.paths.get(&child).map(|t| self.nodes[t].kind()) {
            Some(ObjKind::Dir) => return Err(SrvError::IsDir),
            None => return Err(SrvError::NoEnt),
            _ => {}
        }
        self.unlink_path(&child);
        let dtag = self.paths[&d];
        self.touch(dtag, clock_ns);
        Ok(())
    }

    fn rename(
        &mut self,
        from_dir: &ServerFh,
        from_name: &str,
        to_dir: &ServerFh,
        to_name: &str,
        clock_ns: u64,
    ) -> SrvResult<()> {
        let fd = self.dir_path(self.resolve(from_dir)?)?;
        let td = self.dir_path(self.resolve(to_dir)?)?;
        let from = Self::child_path(&fd, from_name);
        let to = Self::child_path(&td, to_name);
        let src_tag = *self.paths.get(&from).ok_or(SrvError::NoEnt)?;
        if from == to {
            return Ok(());
        }
        let src_is_dir = self.nodes[&src_tag].kind() == ObjKind::Dir;
        // A directory cannot be moved into itself or its own subtree.
        if src_is_dir && (td == from || td.starts_with(&format!("{from}/"))) {
            return Err(SrvError::Inval);
        }
        if let Some(&dst_tag) = self.paths.get(&to) {
            if dst_tag == src_tag {
                return Ok(());
            }
            let dst_is_dir = self.nodes[&dst_tag].kind() == ObjKind::Dir;
            match (src_is_dir, dst_is_dir) {
                (true, false) => return Err(SrvError::NotDir),
                (false, true) => return Err(SrvError::IsDir),
                (true, true) => {
                    if !self.children(&to).is_empty() {
                        return Err(SrvError::NotEmpty);
                    }
                }
                (false, false) => {}
            }
            self.unlink_path(&to);
        }
        if src_is_dir {
            self.move_subtree(&from, &to);
        } else {
            let tag = self.paths.remove(&from).expect("source exists");
            if self.tag_path.get(&tag).map(String::as_str) == Some(from.as_str()) {
                self.tag_path.insert(tag, to.clone());
            }
            self.paths.insert(to, tag);
        }
        let fdtag = self.paths[&fd];
        self.touch(fdtag, clock_ns);
        if fd != td {
            let tdtag = self.paths[&td];
            self.touch(tdtag, clock_ns);
        }
        self.nodes.get_mut(&src_tag).expect("moved").ctime_ns = clock_ns;
        Ok(())
    }

    fn link(&mut self, fh: &ServerFh, dir: &ServerFh, name: &str, clock_ns: u64) -> SrvResult<()> {
        let tag = self.resolve(fh)?;
        if self.nodes[&tag].kind() == ObjKind::Dir {
            return Err(SrvError::IsDir);
        }
        let d = self.dir_path(self.resolve(dir)?)?;
        let child = Self::child_path(&d, name);
        if self.paths.contains_key(&child) {
            return Err(SrvError::Exist);
        }
        self.paths.insert(child, tag);
        let n = self.nodes.get_mut(&tag).expect("resolved");
        n.nlink += 1;
        n.ctime_ns = clock_ns;
        let dtag = self.paths[&d];
        self.touch(dtag, clock_ns);
        Ok(())
    }

    fn symlink(
        &mut self,
        dir: &ServerFh,
        name: &str,
        target: &str,
        clock_ns: u64,
        rng: &mut StdRng,
    ) -> SrvResult<(ServerFh, SrvAttr)> {
        let d = self.dir_path(self.resolve(dir)?)?;
        let child = Self::child_path(&d, name);
        if self.paths.contains_key(&child) {
            return Err(SrvError::Exist);
        }
        let tag = self.fresh_tag(rng);
        let mut node = Node::new(ObjKind::Symlink, 0o777, clock_ns);
        node.payload = Payload::Symlink(target.to_owned());
        self.nodes.insert(tag, node);
        self.paths.insert(child.clone(), tag);
        self.tag_path.insert(tag, child);
        let dtag = self.paths[&d];
        self.touch(dtag, clock_ns);
        Ok((self.fh_of(tag), self.attr_of(tag)))
    }

    fn readlink(&self, fh: &ServerFh) -> SrvResult<String> {
        let tag = self.resolve(fh)?;
        match &self.nodes[&tag].payload {
            Payload::Symlink(t) => Ok(t.clone()),
            _ => Err(SrvError::Inval),
        }
    }

    fn mkdir(
        &mut self,
        dir: &ServerFh,
        name: &str,
        mode: u32,
        clock_ns: u64,
        rng: &mut StdRng,
    ) -> SrvResult<(ServerFh, SrvAttr)> {
        let d = self.dir_path(self.resolve(dir)?)?;
        let child = Self::child_path(&d, name);
        if self.paths.contains_key(&child) {
            return Err(SrvError::Exist);
        }
        let tag = self.fresh_tag(rng);
        self.nodes.insert(tag, Node::new(ObjKind::Dir, mode, clock_ns));
        self.paths.insert(child.clone(), tag);
        self.tag_path.insert(tag, child);
        let dtag = self.paths[&d];
        self.touch(dtag, clock_ns);
        Ok((self.fh_of(tag), self.attr_of(tag)))
    }

    fn rmdir(&mut self, dir: &ServerFh, name: &str, clock_ns: u64) -> SrvResult<()> {
        let d = self.dir_path(self.resolve(dir)?)?;
        let child = Self::child_path(&d, name);
        match self.paths.get(&child).map(|t| self.nodes[t].kind()) {
            Some(ObjKind::Dir) => {}
            Some(_) => return Err(SrvError::NotDir),
            None => return Err(SrvError::NoEnt),
        }
        if !self.children(&child).is_empty() {
            return Err(SrvError::NotEmpty);
        }
        self.unlink_path(&child);
        let dtag = self.paths[&d];
        self.touch(dtag, clock_ns);
        Ok(())
    }

    fn readdir(&self, dir: &ServerFh) -> SrvResult<Vec<(String, ServerFh)>> {
        let d = self.dir_path(self.resolve(dir)?)?;
        Ok(self.children(&d).into_iter().map(|(name, tag)| (name, self.fh_of(tag))).collect())
    }

    fn reset(&mut self, rng: &mut StdRng) {
        *self = FlatFs::new(self.fsid, rng);
    }

    fn remount(&mut self, rng: &mut StdRng) -> ServerFh {
        self.salt = rng.gen();
        self.fh_of(self.root_tag)
    }

    fn inject_corruption(&mut self, fh: &ServerFh) -> bool {
        let Ok(tag) = self.resolve(fh) else { return false };
        match self.nodes.get_mut(&tag).map(|n| &mut n.payload) {
            Some(Payload::File(d)) if !d.is_empty() => {
                for b in d.iter_mut() {
                    *b = !*b;
                }
                true
            }
            _ => false,
        }
    }

    fn footprint_bytes(&self) -> u64 {
        let paths: u64 = self.paths.keys().map(|p| p.len() as u64 + 48).sum();
        let nodes: u64 = self
            .nodes
            .values()
            .map(|n| {
                96 + match &n.payload {
                    Payload::File(d) => d.len() as u64,
                    Payload::Dir => 0,
                    Payload::Symlink(t) => t.len() as u64,
                }
            })
            .sum();
        paths + nodes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn fs() -> (FlatFs, StdRng) {
        let mut rng = StdRng::seed_from_u64(4);
        let fs = FlatFs::new(0x44, &mut rng);
        (fs, rng)
    }

    #[test]
    fn basic_tree_operations() {
        let (mut fs, mut rng) = fs();
        let root = fs.root();
        let (d, _) = fs.mkdir(&root, "d", 0o755, 1, &mut rng).unwrap();
        let (f, _) = fs.create(&d, "f", 0o644, 2, &mut rng).unwrap();
        fs.write(&f, 0, b"flat", 3).unwrap();
        assert_eq!(fs.read(&f, 0, 10, 4).unwrap(), b"flat");
        let (f2, a) = fs.lookup(&d, "f").unwrap();
        assert_eq!(f2, f);
        assert_eq!(a.size, 4);
    }

    #[test]
    fn handles_survive_renames() {
        let (mut fs, mut rng) = fs();
        let root = fs.root();
        let (d, _) = fs.mkdir(&root, "old", 0o755, 1, &mut rng).unwrap();
        let (f, _) = fs.create(&d, "inner", 0o644, 2, &mut rng).unwrap();
        fs.write(&f, 0, b"deep", 3).unwrap();
        fs.rename(&root, "old", &root, "new", 4).unwrap();
        // Both the dir and the child handle remain valid (NFS semantics).
        assert!(fs.getattr(&d).is_ok());
        assert_eq!(fs.read(&f, 0, 10, 5).unwrap(), b"deep");
        assert_eq!(fs.lookup(&root, "old"), Err(SrvError::NoEnt));
        let (d2, _) = fs.lookup(&root, "new").unwrap();
        assert_eq!(d2, d);
    }

    #[test]
    fn fileid_survives_rename() {
        let (mut fs, mut rng) = fs();
        let root = fs.root();
        let (_, before) = fs.create(&root, "a", 0o644, 1, &mut rng).unwrap();
        fs.rename(&root, "a", &root, "b", 2).unwrap();
        let (_, after) = fs.lookup(&root, "b").unwrap();
        assert_eq!(before.fileid, after.fileid, "<fsid,fileid> persistent");
    }

    #[test]
    fn hard_links_share_data_and_handle() {
        let (mut fs, mut rng) = fs();
        let root = fs.root();
        let (f, _) = fs.create(&root, "x", 0o644, 1, &mut rng).unwrap();
        fs.write(&f, 0, b"shared", 2).unwrap();
        fs.link(&f, &root, "y", 3).unwrap();
        let (y, ya) = fs.lookup(&root, "y").unwrap();
        assert_eq!(y, f, "hard links resolve to the same handle");
        assert_eq!(ya.nlink, 2);
        fs.write(&y, 6, b"!", 4).unwrap();
        assert_eq!(fs.read(&f, 0, 10, 5).unwrap(), b"shared!");
        fs.remove(&root, "x", 6).unwrap();
        let (_, ya2) = fs.lookup(&root, "y").unwrap();
        assert_eq!(ya2.nlink, 1);
        assert_eq!(fs.read(&f, 0, 10, 7).unwrap(), b"shared!");
    }

    #[test]
    fn remount_invalidates_handles_keeps_paths() {
        let (mut fs, mut rng) = fs();
        let root = fs.root();
        let (f, _) = fs.create(&root, "f", 0o644, 1, &mut rng).unwrap();
        fs.write(&f, 0, b"keep", 2).unwrap();
        let new_root = fs.remount(&mut rng);
        assert_eq!(fs.getattr(&f), Err(SrvError::Stale));
        let (f2, _) = fs.lookup(&new_root, "f").unwrap();
        assert_eq!(fs.read(&f2, 0, 10, 3).unwrap(), b"keep");
    }

    #[test]
    fn readdir_order_is_salted_hash() {
        let (mut fs, mut rng) = fs();
        let root = fs.root();
        for n in ["a", "b", "c", "d", "e"] {
            fs.create(&root, n, 0o644, 1, &mut rng).unwrap();
        }
        let names: Vec<String> = fs.readdir(&root).unwrap().into_iter().map(|(n, _)| n).collect();
        let mut sorted = names.clone();
        sorted.sort();
        assert_ne!(names, sorted, "order must be hash-based, got {names:?}");
    }

    #[test]
    fn recursive_delete_reclaims_subtree() {
        let (mut fs, mut rng) = fs();
        let root = fs.root();
        let (d, _) = fs.mkdir(&root, "d", 0o755, 1, &mut rng).unwrap();
        let (sub, _) = fs.mkdir(&d, "sub", 0o755, 2, &mut rng).unwrap();
        fs.create(&sub, "leaf", 0o644, 3, &mut rng).unwrap();
        assert_eq!(fs.rmdir(&root, "d", 4), Err(SrvError::NotEmpty));
        fs.remove(&sub, "leaf", 5).unwrap();
        fs.rmdir(&d, "sub", 6).unwrap();
        fs.rmdir(&root, "d", 7).unwrap();
        assert_eq!(fs.nodes.len(), 1, "only the root remains");
        assert_eq!(fs.paths.len(), 1);
    }
}
